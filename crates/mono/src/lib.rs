//! A small monolithic Unix-like kernel — the Linux-shaped baseline the
//! runtime evaluation compares against (paper §6.4, Figure 10).
//!
//! It runs on the same [`hk_vm`] machine substrate as Hyperkernel, but
//! makes the *conventional* design choices the paper measures against:
//!
//! * user and kernel share one address space, so system calls enter via
//!   `syscall`/`sysret` with **no page-table switch and no TLB flush**;
//! * exceptions always enter the kernel first; user-level handlers are
//!   reached by a **signal upcall** and return with `sigreturn`;
//! * memory permissions change through an `mprotect` system call that
//!   the kernel services by editing PTEs and issuing INVLPG.
//!
//! The benchmarks of Figure 10 (null syscall, user fault dispatch, and
//! the Appel–Li `prot1`/`protN` memory-management patterns) exercise
//! exactly these paths on both kernels.

use hk_abi::{pte_encode, KernelParams, PTE_P, PTE_U, PTE_W};
use hk_vm::paging::{join_va, split_va, PageFault, VirtAddr};
use hk_vm::{CostModel, Machine};

/// Cycle cost of the kernel work in a trivial syscall (`gettid`-class):
/// argument fetch, task-struct lookup, return. Chosen so the total null
/// syscall cost lands near Figure 10's Linux row (125 cycles on Kaby
/// Lake: 69 for `syscall`/`sysret` + ~56 of kernel work).
const NULL_SYSCALL_WORK: u64 = 56;
/// Kernel work to service an mprotect on one page (find VMA, edit PTE).
const MPROTECT_WORK: u64 = 180;
/// Kernel work on the page-fault path before the upcall decision
/// (fault decoding, VMA lookup, signal setup).
const FAULT_WORK: u64 = 700;

/// A process as the baseline kernel sees it.
#[derive(Debug, Clone)]
struct MonoProc {
    root_pn: u64,
    /// Whether a user SIGSEGV handler is installed.
    has_handler: bool,
}

/// The monolithic baseline kernel plus its machine.
#[derive(Debug)]
pub struct MonoSys {
    /// The machine (public for cycle accounting in benches).
    pub machine: Machine,
    procs: Vec<MonoProc>,
    /// The running process index.
    pub current: usize,
    next_free_page: u64,
    /// Count of signal upcalls delivered (for tests).
    pub signals_delivered: u64,
}

impl MonoSys {
    /// Boots the baseline kernel with one process.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid.
    pub fn boot(params: KernelParams, cost: CostModel) -> MonoSys {
        assert!(params.validate());
        // Reserve a small kernel region like Hyperkernel's layout.
        let mut sys = MonoSys {
            machine: Machine::new(params, 4096, cost),
            procs: Vec::new(),
            current: 0,
            next_free_page: 0,
            signals_delivered: 0,
        };
        let root = sys.alloc_page();
        sys.procs.push(MonoProc {
            root_pn: root,
            has_handler: false,
        });
        sys.machine.set_cr3(root);
        sys
    }

    fn alloc_page(&mut self) -> u64 {
        let pn = self.next_free_page;
        assert!(
            pn < self.machine.params().nr_pages,
            "baseline kernel out of pages"
        );
        self.next_free_page += 1;
        pn
    }

    /// The null system call (`gettid`-class): enter, trivial work, leave.
    /// No address-space switch — the whole point of the comparison.
    pub fn sys_nop(&mut self) -> i64 {
        self.machine.charge_syscall_roundtrip();
        self.machine.charge_kernel_work(NULL_SYSCALL_WORK);
        self.current as i64
    }

    /// `mmap`-class: map a fresh zeroed page at `va` (building
    /// intermediate tables as needed), writable + user.
    pub fn sys_mmap_page(&mut self, va: VirtAddr) -> Result<(), &'static str> {
        self.machine.charge_syscall_roundtrip();
        self.machine.charge_kernel_work(MPROTECT_WORK);
        let frame = self.alloc_page();
        self.map_page(va, frame, PTE_P | PTE_W | PTE_U)
    }

    /// `mprotect`-class: change one page's writability. The kernel edits
    /// the PTE and invalidates the TLB entry.
    pub fn sys_mprotect(&mut self, va: VirtAddr, writable: bool) -> Result<(), &'static str> {
        self.machine.charge_syscall_roundtrip();
        self.machine.charge_kernel_work(MPROTECT_WORK);
        let params = *self.machine.params();
        let (idx, _) = split_va(&params, va).ok_or("non-canonical va")?;
        let root = self.procs[self.current].root_pn;
        let mut table = root;
        for (level, &i) in idx.iter().enumerate() {
            let addr = self.machine.map.ram_page_addr(table) + i;
            let entry = self.machine.phys.read(addr);
            if entry & PTE_P == 0 {
                return Err("unmapped");
            }
            if level == 3 {
                let pfn = hk_abi::pte_pfn(entry);
                let perm = if writable {
                    PTE_P | PTE_W | PTE_U
                } else {
                    PTE_P | PTE_U
                };
                self.machine.phys.write(addr, pte_encode(pfn, perm));
                self.machine.invlpg(va);
            } else {
                table = hk_abi::pte_pfn(entry) as u64;
            }
        }
        Ok(())
    }

    /// Registers a user SIGSEGV handler.
    pub fn sys_sigaction(&mut self) {
        self.machine.charge_syscall_roundtrip();
        self.machine.charge_kernel_work(40);
        self.procs[self.current].has_handler = true;
    }

    /// User-mode read. On fault, the kernel-mediated path runs: kernel
    /// entry + signal upcall to the user handler (if any).
    pub fn user_read(&mut self, va: VirtAddr) -> Result<i64, PageFault> {
        match self.machine.guest_read(va) {
            Ok(v) => Ok(v),
            Err(f) => {
                self.deliver_fault();
                Err(f)
            }
        }
    }

    /// User-mode write; fault handling as in [`MonoSys::user_read`].
    pub fn user_write(&mut self, va: VirtAddr, val: i64) -> Result<(), PageFault> {
        match self.machine.guest_write(va, val) {
            Ok(()) => Ok(()),
            Err(f) => {
                self.deliver_fault();
                Err(f)
            }
        }
    }

    /// The baseline fault path: exception into the kernel, fault
    /// decoding, then a signal upcall to user space and the eventual
    /// sigreturn. Compare `hk_kernel`'s direct user delivery.
    fn deliver_fault(&mut self) {
        self.machine.charge_fault_kernel_entry();
        self.machine.charge_kernel_work(FAULT_WORK);
        if self.procs[self.current].has_handler {
            self.machine.charge_signal_upcall();
            self.signals_delivered += 1;
        }
    }

    fn map_page(&mut self, va: VirtAddr, frame: u64, perm: i64) -> Result<(), &'static str> {
        let params = *self.machine.params();
        let (idx, _) = split_va(&params, va).ok_or("non-canonical va")?;
        let root = self.procs[self.current].root_pn;
        let mut table = root;
        for (level, &i) in idx.iter().enumerate() {
            let addr = self.machine.map.ram_page_addr(table) + i;
            let entry = self.machine.phys.read(addr);
            if level == 3 {
                self.machine
                    .phys
                    .write(addr, pte_encode(frame as i64, perm));
                return Ok(());
            }
            if entry & PTE_P == 0 {
                let next = self.alloc_page();
                self.machine
                    .phys
                    .write(addr, pte_encode(next as i64, PTE_P | PTE_W | PTE_U));
                table = next;
            } else {
                table = hk_abi::pte_pfn(entry) as u64;
            }
        }
        unreachable!()
    }

    /// Convenience for benchmarks: a user virtual address for page `n`.
    pub fn page_va(&self, n: u64) -> VirtAddr {
        let params = self.machine.params();
        let k = params.page_words.trailing_zeros() as u64;
        let per_pt = 1u64 << k;
        join_va(params, [0, 0, n / per_pt, n % per_pt], 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MonoSys {
        MonoSys::boot(KernelParams::verification(), CostModel::default_model())
    }

    #[test]
    fn null_syscall_is_cheap() {
        let mut s = sys();
        let before = s.machine.cycles.total;
        s.sys_nop();
        let cost = s.machine.cycles.total - before;
        // Figure 10 Linux row: 125 cycles on Kaby Lake.
        assert_eq!(cost, 69 + 56);
    }

    #[test]
    fn mmap_and_access() {
        let mut s = sys();
        let va = s.page_va(1);
        s.sys_mmap_page(va).unwrap();
        s.user_write(va + 2, 77).unwrap();
        assert_eq!(s.user_read(va + 2).unwrap(), 77);
    }

    #[test]
    fn mprotect_blocks_writes_then_allows() {
        let mut s = sys();
        let va = s.page_va(1);
        s.sys_mmap_page(va).unwrap();
        s.sys_mprotect(va, false).unwrap();
        assert!(s.user_write(va, 1).is_err());
        assert!(s.user_read(va).is_ok());
        s.sys_mprotect(va, true).unwrap();
        assert!(s.user_write(va, 1).is_ok());
    }

    #[test]
    fn faults_are_kernel_mediated() {
        let mut s = sys();
        let va = s.page_va(1);
        s.sys_mmap_page(va).unwrap();
        s.sys_mprotect(va, false).unwrap();
        s.sys_sigaction();
        let before = s.machine.cycles.total;
        let _ = s.user_write(va, 1);
        let cost = s.machine.cycles.total - before;
        assert_eq!(s.signals_delivered, 1);
        // Kernel entry + fault work + signal upcall dominate: the paper's
        // Linux fault row is ~2900 cycles; ours must be the same order.
        assert!(cost > 2000, "fault path too cheap: {cost}");
        assert!(cost < 6000, "fault path too expensive: {cost}");
    }

    #[test]
    fn syscall_does_not_flush_tlb() {
        let mut s = sys();
        let va = s.page_va(1);
        s.sys_mmap_page(va).unwrap();
        s.user_read(va).unwrap();
        let (_, misses_before, _) = s.machine.tlb_stats();
        s.sys_nop();
        s.user_read(va).unwrap();
        let (_, misses_after, _) = s.machine.tlb_stats();
        assert_eq!(
            misses_before, misses_after,
            "null syscall must not disturb the TLB (shared address space)"
        );
    }
}
