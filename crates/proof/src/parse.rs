//! Parsing a binary-DRAT stream back into steps.

use crate::fmt::{decode_lit, TAG_ADD, TAG_DELETE, TAG_INPUT};
use crate::ProofError;

/// What a proof step does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// An input clause (axiom).
    Input,
    /// A derived clause (RUP-checked when on the core).
    Add,
    /// A clause deletion.
    Delete,
}

/// One decoded proof step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// What the step does.
    pub kind: StepKind,
    /// The clause literals, in stream order (possibly empty).
    pub lits: Vec<i32>,
}

/// Decodes a complete proof stream. Fails with the byte offset of the
/// first malformed construct.
pub fn parse_proof(bytes: &[u8]) -> Result<Vec<Step>, ProofError> {
    let mut steps = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let kind = match bytes[pos] {
            TAG_INPUT => StepKind::Input,
            TAG_ADD => StepKind::Add,
            TAG_DELETE => StepKind::Delete,
            _ => {
                return Err(ProofError::Malformed {
                    offset: pos,
                    detail: "unknown step tag",
                })
            }
        };
        pos += 1;
        let mut lits = Vec::new();
        loop {
            let (next, lit) = decode_lit(bytes, pos)
                .map_err(|(offset, detail)| ProofError::Malformed { offset, detail })?;
            pos = next;
            match lit {
                Some(l) => lits.push(l),
                None => break,
            }
        }
        steps.push(Step { kind, lits });
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProofWriter;

    #[test]
    fn writer_parser_roundtrip() {
        let mut w = ProofWriter::new();
        w.add_input(&[1, -2, 300]);
        w.add_lemma(&[-1]);
        w.delete(&[1, -2, 300]);
        w.add_lemma(&[]);
        let steps = parse_proof(w.bytes()).expect("parse");
        assert_eq!(steps.len(), 4);
        assert_eq!(w.num_steps(), 4);
        assert_eq!(
            steps[0],
            Step {
                kind: StepKind::Input,
                lits: vec![1, -2, 300]
            }
        );
        assert_eq!(
            steps[1],
            Step {
                kind: StepKind::Add,
                lits: vec![-1]
            }
        );
        assert_eq!(
            steps[2],
            Step {
                kind: StepKind::Delete,
                lits: vec![1, -2, 300]
            }
        );
        assert_eq!(
            steps[3],
            Step {
                kind: StepKind::Add,
                lits: vec![]
            }
        );
    }

    #[test]
    fn unknown_tag_is_rejected_with_offset() {
        let mut w = ProofWriter::new();
        w.add_input(&[1]);
        let mut bytes = w.bytes().to_vec();
        let off = bytes.len();
        bytes.push(b'x');
        match parse_proof(&bytes) {
            Err(ProofError::Malformed { offset, .. }) => assert_eq!(offset, off),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn truncated_step_is_rejected() {
        let mut w = ProofWriter::new();
        w.add_input(&[1, 2]);
        let bytes = &w.bytes()[..w.byte_len() - 1]; // drop the terminator
        assert!(matches!(
            parse_proof(bytes),
            Err(ProofError::Malformed { .. })
        ));
    }
}
