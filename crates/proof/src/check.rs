//! The independent backward DRAT checker.
//!
//! The checker rebuilds the clause database by replaying the proof
//! forward (resolving each deletion to a concrete clause copy), then
//! walks the proof **backwards** from the final lemma. A lemma is
//! RUP-checked only if some later check used it as an antecedent — the
//! rest of the proof is dead weight and is skipped, which is both the
//! classic performance trick and the *trimming* output: the marked core
//! is exactly the part of the proof the refutation needs.
//!
//! A RUP (reverse unit propagation) check of clause `C` asserts the
//! negation of every literal of `C` on top of the persistent root trail
//! and requires unit propagation to derive a conflict. Propagation uses
//! two watched literals per clause; clauses leave and re-enter the
//! database as the backward pass crosses addition and deletion steps, so
//! watch entries carry a generation stamp and are dropped lazily when
//! stale. When a clause that currently *forces* a root literal is
//! deactivated, the trail is truncated from that literal and the
//! propagation queue is rewound to zero — re-scanning the surviving
//! prefix is what keeps the watch invariants sound across mid-trail
//! truncation, which ordinary CDCL backtracking never does.
//!
//! Input clauses (`i` steps) are axioms: they stay active at every
//! position, so a lemma may freely use inputs that appear later in the
//! stream (the incremental solver grows the formula between solve
//! calls), while lemmas may only use *earlier* lemmas — the backward
//! pass deactivates each lemma before checking it, which rules out
//! circular justification structurally.

use std::collections::HashMap;

use crate::parse::{parse_proof, StepKind};
use crate::ProofError;

const UNDEF: u8 = 2;
const TRUE: u8 = 1;
const FALSE: u8 = 0;

const NO_REASON: u32 = u32::MAX;

/// What a successful check reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Total proof steps.
    pub steps: usize,
    /// Input (`i`) steps.
    pub inputs: usize,
    /// Lemma (`a`) steps.
    pub lemmas: usize,
    /// Deletion (`d`) steps.
    pub deletions: usize,
    /// Lemmas on the verified core (each RUP-checked).
    pub core_lemmas: usize,
    /// Input clauses the core derivation uses.
    pub core_inputs: usize,
    /// The certified final clause (sorted), i.e. the last lemma of the
    /// stream. Empty means the inputs were refuted outright; non-empty
    /// is the assumption-conflict clause of an incremental query.
    pub final_clause: Vec<i32>,
}

impl CheckOutcome {
    /// Fraction of the lemmas the refutation actually used; `1.0 -
    /// trim_ratio()` is the share of the proof that trimming discards.
    pub fn trim_ratio(&self) -> f64 {
        if self.lemmas == 0 {
            0.0
        } else {
            self.core_lemmas as f64 / self.lemmas as f64
        }
    }
}

#[derive(Debug)]
struct CClause {
    /// Literals sorted by (variable, sign) and deduplicated.
    lits: Vec<i32>,
    /// The two watched literals (meaningful for watched clauses only).
    w0: i32,
    w1: i32,
    active: bool,
    /// Bumped on every reactivation; watch entries with an older stamp
    /// are stale and dropped lazily.
    gen: u32,
    core: bool,
    input: bool,
    /// Contains both `l` and `¬l`: trivially valid and propagationally
    /// inert, so never watched and never RUP-checked.
    tautology: bool,
    /// Variable this clause currently forces on the trail (0 = none);
    /// checked against `reason[var]` before trusting it.
    reason_var: i32,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: u32,
    gen: u32,
    blocker: i32,
}

/// A propagation conflict: the falsified clause (if any) and the literal
/// whose enqueue failed (0 when the clause was found falsified outright).
#[derive(Debug, Clone, Copy)]
struct Conflict {
    cause: Option<u32>,
    lit: i32,
}

#[inline]
fn enc(l: i32) -> usize {
    ((l.unsigned_abs() as usize - 1) << 1) | usize::from(l < 0)
}

/// Sorts by (variable, sign), dedups, and reports whether the clause is
/// a tautology.
fn normalize(lits: &[i32]) -> (Vec<i32>, bool) {
    let mut out = lits.to_vec();
    out.sort_unstable_by_key(|&l| (l.unsigned_abs(), l < 0));
    out.dedup();
    let taut = out
        .windows(2)
        .any(|w| w[0].unsigned_abs() == w[1].unsigned_abs());
    (out, taut)
}

#[derive(Debug, Default)]
struct Checker {
    clauses: Vec<CClause>,
    /// `watches[enc(x)]`: clauses currently watching literal `x`.
    watches: Vec<Vec<Watch>>,
    /// Truth value per variable (1-based index).
    assign: Vec<u8>,
    reason: Vec<u32>,
    trail_pos: Vec<usize>,
    trail: Vec<i32>,
    qhead: usize,
    /// Active size-1 clauses; re-enqueued after trail truncation (unit
    /// clauses have no watches, so nothing else would re-derive them).
    unit_crefs: Vec<u32>,
    /// Clauses suspected falsified under the root assignment; validated
    /// lazily before each use.
    falsified: Vec<u32>,
    /// A truncation happened since the last unit re-enqueue.
    dirty: bool,
    mark: Vec<u32>,
    stamp: u32,
}

impl Checker {
    fn reserve(&mut self, lits: &[i32]) {
        let maxv = lits.iter().map(|l| l.unsigned_abs()).max().unwrap_or(0) as usize;
        if maxv >= self.assign.len() {
            self.assign.resize(maxv + 1, UNDEF);
            self.reason.resize(maxv + 1, NO_REASON);
            self.trail_pos.resize(maxv + 1, 0);
            self.mark.resize(maxv + 1, 0);
            self.watches.resize(2 * maxv, Vec::new());
        }
    }

    fn new_clause(&mut self, lits: Vec<i32>, input: bool, tautology: bool) -> u32 {
        self.reserve(&lits);
        let cref = self.clauses.len() as u32;
        self.clauses.push(CClause {
            lits,
            w0: 0,
            w1: 0,
            active: true,
            gen: 0,
            core: false,
            input,
            tautology,
            reason_var: 0,
        });
        cref
    }

    #[inline]
    fn value(&self, l: i32) -> u8 {
        let a = self.assign[l.unsigned_abs() as usize];
        if a == UNDEF {
            UNDEF
        } else if l < 0 {
            a ^ 1
        } else {
            a
        }
    }

    #[inline]
    fn assign_lit(&mut self, l: i32, r: u32) {
        let v = l.unsigned_abs() as usize;
        debug_assert_eq!(self.assign[v], UNDEF);
        self.assign[v] = if l < 0 { FALSE } else { TRUE };
        self.reason[v] = r;
        self.trail_pos[v] = self.trail.len();
        self.trail.push(l);
        if r != NO_REASON {
            self.clauses[r as usize].reason_var = v as i32;
        }
    }

    fn watch(&mut self, cref: u32, a: i32, b: i32) {
        let gen = self.clauses[cref as usize].gen;
        self.clauses[cref as usize].w0 = a;
        self.clauses[cref as usize].w1 = b;
        self.watches[enc(a)].push(Watch {
            cref,
            gen,
            blocker: b,
        });
        self.watches[enc(b)].push(Watch {
            cref,
            gen,
            blocker: a,
        });
    }

    /// Builds watches and enqueues units over the clauses active at the
    /// end of the forward replay.
    fn init(&mut self) {
        for cref in 0..self.clauses.len() as u32 {
            let c = &self.clauses[cref as usize];
            if !c.active || c.tautology {
                continue;
            }
            match c.lits.len() {
                0 => self.falsified.push(cref),
                1 => {
                    self.unit_crefs.push(cref);
                    let l = self.clauses[cref as usize].lits[0];
                    match self.value(l) {
                        UNDEF => self.assign_lit(l, cref),
                        FALSE => self.falsified.push(cref),
                        _ => {}
                    }
                }
                _ => {
                    let (a, b) = {
                        let c = &self.clauses[cref as usize];
                        (c.lits[0], c.lits[1])
                    };
                    self.watch(cref, a, b);
                }
            }
        }
    }

    /// Unassigns the trail suffix from `pos` and rewinds the propagation
    /// queue to zero: the surviving prefix is self-justified (reasons only
    /// point backwards), but units it implied may have been cut out, so
    /// the whole prefix must be re-scanned for propagation completeness.
    fn truncate_from(&mut self, pos: usize) {
        for i in pos..self.trail.len() {
            let v = self.trail[i].unsigned_abs() as usize;
            self.assign[v] = UNDEF;
            self.reason[v] = NO_REASON;
        }
        self.trail.truncate(pos);
        self.qhead = 0;
        self.dirty = true;
    }

    fn deactivate(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        c.active = false;
        let rv = c.reason_var;
        c.reason_var = 0;
        if rv != 0 {
            let v = rv as usize;
            if self.assign[v] != UNDEF && self.reason[v] == cref {
                self.truncate_from(self.trail_pos[v]);
            }
        }
    }

    /// Re-enters a clause crossed backwards over its deletion step,
    /// re-establishing the watch/unit invariants under the *current*
    /// root assignment.
    fn reactivate(&mut self, cref: u32) {
        {
            let c = &mut self.clauses[cref as usize];
            c.gen += 1;
            c.active = true;
            if c.tautology {
                return;
            }
        }
        let lits = self.clauses[cref as usize].lits.clone();
        match lits.len() {
            0 => self.falsified.push(cref),
            1 => {
                self.unit_crefs.push(cref);
                match self.value(lits[0]) {
                    UNDEF => self.assign_lit(lits[0], cref),
                    FALSE => self.falsified.push(cref),
                    _ => {}
                }
            }
            _ => {
                let mut free = lits.iter().copied().filter(|&y| self.value(y) != FALSE);
                match (free.next(), free.next()) {
                    (Some(a), Some(b)) => self.watch(cref, a, b),
                    (Some(a), None) => {
                        // Unit (or satisfied): the second watch is a
                        // falsified literal, which is safe because any
                        // later truncation rewinds the queue to zero and
                        // re-scans the falsifier.
                        let b = lits.iter().copied().find(|&y| y != a).expect("len >= 2");
                        self.watch(cref, a, b);
                        if self.value(a) == UNDEF {
                            self.assign_lit(a, cref);
                        }
                    }
                    (None, _) => {
                        self.watch(cref, lits[0], lits[1]);
                        self.falsified.push(cref);
                    }
                }
            }
        }
    }

    /// Two-watched-literal unit propagation. On conflict the queue is
    /// left pointing at the triggering literal so the conflict is
    /// re-findable after the database changes.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            let widx = enc(-p);
            let mut ws = std::mem::take(&mut self.watches[widx]);
            let mut i = 0;
            let mut j = 0;
            let mut confl: Option<Conflict> = None;
            'entries: while i < ws.len() {
                let w = ws[i];
                i += 1;
                {
                    let c = &self.clauses[w.cref as usize];
                    if !c.active || c.gen != w.gen {
                        continue; // stale entry: drop
                    }
                }
                if self.value(w.blocker) == TRUE {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let (other, falsified_is_w0) = {
                    let c = &self.clauses[w.cref as usize];
                    if c.w0 == -p {
                        (c.w1, true)
                    } else {
                        (c.w0, false)
                    }
                };
                if self.value(other) == TRUE {
                    ws[j] = Watch {
                        blocker: other,
                        ..w
                    };
                    j += 1;
                    continue;
                }
                let replacement = {
                    let c = &self.clauses[w.cref as usize];
                    c.lits
                        .iter()
                        .copied()
                        .find(|&y| y != c.w0 && y != c.w1 && self.value(y) != FALSE)
                };
                if let Some(y) = replacement {
                    {
                        let c = &mut self.clauses[w.cref as usize];
                        if falsified_is_w0 {
                            c.w0 = y;
                        } else {
                            c.w1 = y;
                        }
                    }
                    self.watches[enc(y)].push(Watch {
                        blocker: other,
                        ..w
                    });
                    continue; // moved off this list
                }
                // Unit or conflicting on `other`.
                ws[j] = Watch {
                    blocker: other,
                    ..w
                };
                j += 1;
                if self.value(other) == FALSE {
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    confl = Some(Conflict {
                        cause: Some(w.cref),
                        lit: other,
                    });
                    break 'entries;
                }
                self.assign_lit(other, w.cref);
            }
            ws.truncate(j);
            self.watches[widx] = ws;
            if confl.is_some() {
                // Leave qhead at `p`: re-propagation re-finds the
                // conflict for as long as it persists.
                return confl;
            }
            self.qhead += 1;
        }
        None
    }

    /// Brings the root assignment to a propagation fixpoint, reporting a
    /// conflict if the active database is propagationally unsatisfiable.
    fn root_conflict(&mut self) -> Option<Conflict> {
        // Validate suspected-falsified clauses lazily, draining stale
        // entries until one is confirmed (kept for re-discovery) or the
        // list is empty.
        while let Some(&cref) = self.falsified.last() {
            let c = &self.clauses[cref as usize];
            if c.active && c.lits.iter().all(|&l| self.value(l) == FALSE) {
                return Some(Conflict {
                    cause: Some(cref),
                    lit: 0,
                });
            }
            self.falsified.pop();
        }
        if self.dirty {
            self.dirty = false;
            let units = std::mem::take(&mut self.unit_crefs);
            let mut confl = None;
            for &cref in &units {
                let c = &self.clauses[cref as usize];
                if !c.active {
                    continue;
                }
                let l = c.lits[0];
                match self.value(l) {
                    UNDEF => self.assign_lit(l, cref),
                    FALSE => {
                        self.falsified.push(cref);
                        confl = Some(Conflict {
                            cause: Some(cref),
                            lit: 0,
                        });
                    }
                    _ => {}
                }
            }
            self.unit_crefs = units
                .into_iter()
                .filter(|&c| self.clauses[c as usize].active)
                .collect();
            if confl.is_some() {
                return confl;
            }
        }
        if let Some(c) = self.propagate() {
            if let Some(cref) = c.cause {
                // Found at the root: a genuinely falsified clause.
                self.falsified.push(cref);
            }
            return Some(c);
        }
        None
    }

    /// Marks the conflict's antecedent cone: the falsified clause plus
    /// every reason clause reachable through the implication graph.
    fn mark_core(&mut self, confl: &Conflict) {
        self.stamp += 1;
        let mut stack: Vec<usize> = Vec::new();
        if let Some(cref) = confl.cause {
            self.clauses[cref as usize].core = true;
            for &l in &self.clauses[cref as usize].lits {
                stack.push(l.unsigned_abs() as usize);
            }
        }
        if confl.lit != 0 {
            stack.push(confl.lit.unsigned_abs() as usize);
        }
        while let Some(v) = stack.pop() {
            if self.mark[v] == self.stamp {
                continue;
            }
            self.mark[v] = self.stamp;
            if self.assign[v] == UNDEF {
                continue;
            }
            let r = self.reason[v];
            if r == NO_REASON {
                continue;
            }
            self.clauses[r as usize].core = true;
            for &l in &self.clauses[r as usize].lits {
                stack.push(l.unsigned_abs() as usize);
            }
        }
    }

    /// RUP check of `lits` against the currently active database,
    /// marking antecedents core on success.
    fn rup_check(&mut self, lits: &[i32]) -> bool {
        if let Some(c) = self.root_conflict() {
            self.mark_core(&c);
            return true;
        }
        let root_len = self.trail.len();
        debug_assert_eq!(self.qhead, root_len);
        let mut confl: Option<Conflict> = None;
        for &l in lits {
            match self.value(l) {
                // Asserting ¬l contradicts the root-propagated l: the
                // conflict is l's own reason chain.
                TRUE => {
                    confl = Some(Conflict {
                        cause: None,
                        lit: l,
                    });
                    break;
                }
                FALSE => {}
                _ => self.assign_lit(-l, NO_REASON),
            }
        }
        if confl.is_none() {
            confl = self.propagate();
        }
        // Mark before undoing: marking walks the live reason graph.
        let ok = match &confl {
            Some(c) => {
                self.mark_core(c);
                true
            }
            None => false,
        };
        for i in root_len..self.trail.len() {
            let v = self.trail[i].unsigned_abs() as usize;
            self.assign[v] = UNDEF;
            self.reason[v] = NO_REASON;
        }
        self.trail.truncate(root_len);
        self.qhead = root_len;
        ok
    }
}

/// Checks a complete binary-DRAT stream.
///
/// The certified claim on success: the conjunction of the stream's input
/// clauses implies [`CheckOutcome::final_clause`] (the last lemma). An
/// empty final clause certifies the inputs unsatisfiable.
pub fn check_proof(bytes: &[u8]) -> Result<CheckOutcome, ProofError> {
    let steps = parse_proof(bytes)?;
    let mut chk = Checker::default();
    let mut by_key: HashMap<Vec<i32>, Vec<u32>> = HashMap::new();
    let mut step_cref: Vec<u32> = Vec::with_capacity(steps.len());
    let mut last_lemma: Option<usize> = None;
    let (mut inputs, mut lemmas, mut deletions) = (0usize, 0usize, 0usize);
    // Forward replay: build the database, resolve each deletion to a
    // concrete clause copy (multiset semantics).
    for (i, step) in steps.iter().enumerate() {
        match step.kind {
            StepKind::Input | StepKind::Add => {
                let (key, taut) = normalize(&step.lits);
                let is_input = step.kind == StepKind::Input;
                let cref = chk.new_clause(key.clone(), is_input, taut);
                by_key.entry(key).or_default().push(cref);
                step_cref.push(cref);
                if is_input {
                    inputs += 1;
                } else {
                    lemmas += 1;
                    last_lemma = Some(i);
                }
            }
            StepKind::Delete => {
                deletions += 1;
                let (key, _) = normalize(&step.lits);
                let cref = match by_key.get_mut(&key) {
                    Some(list) if !list.is_empty() => {
                        // Prefer retiring a lemma copy over an input
                        // copy (inputs are axioms; when the producer's
                        // root-level GC deletes an input clause, its
                        // level-0-stripped form was also logged as a
                        // lemma, so the lemma copy is the one to spend).
                        let pos = list
                            .iter()
                            .rposition(|&c| !chk.clauses[c as usize].input)
                            .unwrap_or(list.len() - 1);
                        list.remove(pos)
                    }
                    _ => {
                        return Err(ProofError::BogusDeletion {
                            step: i,
                            clause: step.lits.clone(),
                        })
                    }
                };
                chk.clauses[cref as usize].active = false;
                step_cref.push(cref);
            }
        }
    }
    let target = last_lemma.ok_or(ProofError::NoLemma)?;
    chk.init();
    chk.clauses[step_cref[target] as usize].core = true;
    // Backward pass: reactivate deletions, deactivate lemmas, RUP-check
    // the core ones. Inputs stay active throughout (axioms).
    for i in (0..steps.len()).rev() {
        match steps[i].kind {
            StepKind::Delete => chk.reactivate(step_cref[i]),
            StepKind::Input => {}
            StepKind::Add => {
                let cref = step_cref[i] as usize;
                let (core, taut) = (chk.clauses[cref].core, chk.clauses[cref].tautology);
                chk.deactivate(step_cref[i]);
                if core && !taut {
                    let lits = chk.clauses[cref].lits.clone();
                    if !chk.rup_check(&lits) {
                        return Err(ProofError::LemmaNotImplied {
                            step: i,
                            clause: steps[i].lits.clone(),
                        });
                    }
                }
            }
        }
    }
    let mut core_lemmas = 0;
    let mut core_inputs = 0;
    for (i, step) in steps.iter().enumerate() {
        let core = chk.clauses[step_cref[i] as usize].core;
        match step.kind {
            StepKind::Add if core => core_lemmas += 1,
            StepKind::Input if core => core_inputs += 1,
            _ => {}
        }
    }
    let mut final_clause = chk.clauses[step_cref[target] as usize].lits.clone();
    final_clause.sort_unstable();
    Ok(CheckOutcome {
        steps: steps.len(),
        inputs,
        lemmas,
        deletions,
        core_lemmas,
        core_inputs,
        final_clause,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProofWriter;

    #[test]
    fn simple_refutation_is_accepted_and_fully_core() {
        let mut w = ProofWriter::new();
        w.add_input(&[1, 2]);
        w.add_input(&[-1, 2]);
        w.add_input(&[1, -2]);
        w.add_input(&[-1, -2]);
        w.add_lemma(&[2]);
        w.add_lemma(&[]);
        let out = check_proof(w.bytes()).expect("valid refutation");
        assert_eq!(out.steps, 6);
        assert_eq!((out.inputs, out.lemmas, out.deletions), (4, 2, 0));
        assert_eq!(out.core_lemmas, 2);
        assert_eq!(out.core_inputs, 4);
        assert!(out.final_clause.is_empty());
        assert!((out.trim_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unused_lemmas_are_trimmed() {
        let mut w = ProofWriter::new();
        w.add_input(&[1]);
        w.add_input(&[-1]);
        w.add_input(&[7, 8]); // irrelevant input
        w.add_lemma(&[7]); // RUP? assert -7: no conflict... must be implied!
        w.add_lemma(&[]);
        // Lemma [7] is NOT implied, but it is also not on the core, so
        // backward checking never examines it: trimming in action.
        let out = check_proof(w.bytes()).expect("refutation via units");
        assert_eq!(out.core_lemmas, 1);
        assert_eq!(out.core_inputs, 2);
        assert!(out.trim_ratio() < 1.0);
    }

    #[test]
    fn non_core_bogus_lemma_still_requires_core_to_hold() {
        // Same stream but with the refutation broken: now the checker
        // must reject, proving the trim does not skip *needed* steps.
        let mut w = ProofWriter::new();
        w.add_input(&[1]);
        w.add_input(&[7, 8]);
        w.add_lemma(&[]);
        match check_proof(w.bytes()) {
            Err(ProofError::LemmaNotImplied { step, .. }) => assert_eq!(step, 2),
            other => panic!("expected LemmaNotImplied at step 2, got {other:?}"),
        }
    }

    #[test]
    fn final_nonempty_lemma_is_certified() {
        // The assumption-conflict shape: the stream ends with a
        // non-empty clause implied by the inputs.
        let mut w = ProofWriter::new();
        w.add_input(&[1]);
        w.add_input(&[-1, 2]);
        w.add_lemma(&[2]);
        let out = check_proof(w.bytes()).expect("implied unit");
        assert_eq!(out.final_clause, vec![2]);
        assert_eq!(out.core_inputs, 2);
    }

    #[test]
    fn tautology_lemma_is_trivially_valid() {
        let mut w = ProofWriter::new();
        w.add_input(&[5]);
        w.add_lemma(&[2, -2]);
        let out = check_proof(w.bytes()).expect("tautology");
        assert_eq!(out.final_clause, vec![-2, 2]);
        assert_eq!(out.core_inputs, 0);
    }

    #[test]
    fn deletion_before_use_is_rejected() {
        let mut w = ProofWriter::new();
        w.add_input(&[1, 2]);
        w.add_input(&[-1, 2]);
        w.add_input(&[-2, 3]);
        w.add_input(&[-2, -3]);
        w.add_lemma(&[2]);
        w.delete(&[2]); // retire the lemma...
        w.add_lemma(&[]); // ...then use it: without [2] nothing propagates
        match check_proof(w.bytes()) {
            Err(ProofError::LemmaNotImplied { step, .. }) => assert_eq!(step, 6),
            other => panic!("expected LemmaNotImplied at step 6, got {other:?}"),
        }
    }

    #[test]
    fn deletion_after_use_is_accepted() {
        let mut w = ProofWriter::new();
        w.add_input(&[1, 2]);
        w.add_input(&[-1, 2]);
        w.add_input(&[-2, 3]);
        w.add_input(&[-2, -3]);
        w.add_lemma(&[2]);
        w.add_lemma(&[3]);
        w.delete(&[2]);
        w.add_lemma(&[]);
        let out = check_proof(w.bytes()).expect("deletion after use");
        assert_eq!(out.deletions, 1);
        assert_eq!(out.core_lemmas, 3);
    }

    #[test]
    fn bogus_deletion_is_rejected_with_step_index() {
        let mut w = ProofWriter::new();
        w.add_input(&[1, 2]);
        w.delete(&[3, 4]);
        w.add_lemma(&[]);
        match check_proof(w.bytes()) {
            Err(ProofError::BogusDeletion { step, clause }) => {
                assert_eq!(step, 1);
                assert_eq!(clause, vec![3, 4]);
            }
            other => panic!("expected BogusDeletion at step 1, got {other:?}"),
        }
    }

    #[test]
    fn double_deletion_of_single_copy_is_bogus() {
        let mut w = ProofWriter::new();
        w.add_input(&[-1]);
        w.add_lemma(&[1, 2]); // not implied, but never on the core
        w.delete(&[1, 2]);
        w.delete(&[2, 1]); // same clause modulo order: no copy left
        w.add_lemma(&[]);
        match check_proof(w.bytes()) {
            Err(ProofError::BogusDeletion { step, .. }) => assert_eq!(step, 3),
            other => panic!("expected BogusDeletion at step 3, got {other:?}"),
        }
    }

    #[test]
    fn multiset_deletion_consumes_one_copy_at_a_time() {
        let mut w = ProofWriter::new();
        w.add_input(&[1]);
        w.add_input(&[-1, 2]);
        w.add_lemma(&[2]);
        w.add_lemma(&[2]); // second copy of the same lemma
        w.delete(&[2]); // removes one copy; the other remains usable
        w.add_input(&[-2]);
        w.add_lemma(&[]);
        let out = check_proof(w.bytes()).expect("one copy survives");
        assert_eq!(out.deletions, 1);
    }

    #[test]
    fn empty_stream_and_lemma_free_stream_are_rejected() {
        assert_eq!(check_proof(&[]), Err(ProofError::NoLemma));
        let mut w = ProofWriter::new();
        w.add_input(&[1]);
        w.add_input(&[-1]);
        assert_eq!(check_proof(w.bytes()), Err(ProofError::NoLemma));
    }

    #[test]
    fn contradictory_unit_inputs_refute() {
        let mut w = ProofWriter::new();
        w.add_input(&[4]);
        w.add_input(&[-4]);
        w.add_lemma(&[]);
        let out = check_proof(w.bytes()).expect("unit clash");
        assert_eq!(out.core_inputs, 2);
    }

    #[test]
    fn inputs_after_lemmas_are_usable_axioms() {
        // The incremental stream shape: a lemma from an early solve call,
        // then formula growth, then a refutation using both.
        let mut w = ProofWriter::new();
        w.add_input(&[1, 2]);
        w.add_input(&[-1, 2]);
        w.add_lemma(&[2]); // call 1 derives this
        w.add_input(&[-2]); // formula grows between calls
        w.add_lemma(&[]); // call 2 refutes
        let out = check_proof(w.bytes()).expect("incremental shape");
        assert_eq!(out.core_lemmas, 2);
        assert_eq!(out.core_inputs, 3);
    }

    #[test]
    fn pigeonhole_resolution_chain_is_accepted() {
        // 3 pigeons / 2 holes with a hand-built resolution-style DRUP
        // derivation; every lemma is RUP at its position.
        // Vars: p(i,j) = i*2 + j + 1 for pigeon i, hole j.
        let v = |i: i32, j: i32| i * 2 + j + 1;
        let mut w = ProofWriter::new();
        for i in 0..3 {
            w.add_input(&[v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    w.add_input(&[-v(a, j), -v(b, j)]);
                }
            }
        }
        // Assume pigeon 0 in hole 0: pigeons 1,2 must share hole 1.
        w.add_lemma(&[-v(0, 0), v(1, 1)]);
        w.add_lemma(&[-v(0, 0), v(2, 1)]);
        w.add_lemma(&[-v(0, 0)]);
        // So pigeon 0 is in hole 1; pigeons 1,2 must share hole 0.
        w.add_lemma(&[v(0, 1)]);
        w.add_lemma(&[v(1, 0)]);
        w.add_lemma(&[v(2, 0)]);
        w.add_lemma(&[]);
        let out = check_proof(w.bytes()).expect("pigeonhole refutation");
        assert!(out.final_clause.is_empty());
        assert!(out.core_lemmas >= 4);
    }

    #[test]
    fn flipped_literal_in_core_lemma_is_rejected_at_its_step() {
        // Chain 1→2→3: [3] is implied, the flipped [-3] is not.
        let mut w = ProofWriter::new();
        w.add_input(&[1]);
        w.add_input(&[-1, 2]);
        w.add_input(&[-2, 3]);
        w.add_lemma(&[-3]);
        match check_proof(w.bytes()) {
            Err(ProofError::LemmaNotImplied { step, clause }) => {
                assert_eq!(step, 3);
                assert_eq!(clause, vec![-3]);
            }
            other => panic!("expected LemmaNotImplied at step 3, got {other:?}"),
        }
    }
}
