//! `hk-proof`: binary-DRAT proof production and independent checking.
//!
//! The verification pipeline's Unsat answers come from our own CDCL
//! solver, so by themselves they are claims, not evidence. This crate
//! closes that gap: the solver emits a compact binary proof stream
//! ([`ProofWriter`]) of every clause it learns, deletes, and concludes
//! with, and a from-scratch **backward** checker ([`check_proof`])
//! re-derives the result with nothing in common with the solver but the
//! clause database. The checker walks the proof backwards from the final
//! lemma, RUP-checking only the lemmas that the refutation actually uses
//! (proof *trimming*), and reports the used core so unsat cores can be
//! shrunk and audited.
//!
//! The format (see [`fmt`]) extends binary DRAT with an input tag so a
//! single stream can interleave formula growth with derivation — which is
//! what an incremental solver does across `push`/`pop` scopes. Input
//! clauses are axioms at any position; lemmas may only depend on inputs
//! and *earlier* lemmas, which the backward pass enforces structurally.

pub mod fmt;

mod check;
mod parse;
mod writer;

pub use check::{check_proof, CheckOutcome};
pub use parse::{parse_proof, Step, StepKind};
pub use writer::ProofWriter;

/// Why a proof was rejected. Every structural rejection carries the
/// step index (or byte offset) of the first offending construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// The byte stream is not well-formed binary DRAT.
    Malformed {
        /// Byte offset of the malformed construct.
        offset: usize,
        /// What went wrong.
        detail: &'static str,
    },
    /// The proof contains no lemma (`a`) step, so there is nothing to
    /// certify.
    NoLemma,
    /// A deletion step names a clause with no active copy in the
    /// database at that point.
    BogusDeletion {
        /// Index of the offending deletion step.
        step: usize,
        /// The clause the step tried to delete.
        clause: Vec<i32>,
    },
    /// A lemma on the proof core is not derivable by unit propagation
    /// from the clauses active at its step.
    LemmaNotImplied {
        /// Index of the offending lemma step.
        step: usize,
        /// The lemma that failed the RUP check.
        clause: Vec<i32>,
    },
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::Malformed { offset, detail } => {
                write!(f, "malformed proof at byte {offset}: {detail}")
            }
            ProofError::NoLemma => write!(f, "proof contains no lemma step"),
            ProofError::BogusDeletion { step, clause } => {
                write!(
                    f,
                    "step {step}: deletion of clause {clause:?} not in the database"
                )
            }
            ProofError::LemmaNotImplied { step, clause } => {
                write!(
                    f,
                    "step {step}: lemma {clause:?} is not implied (RUP check failed)"
                )
            }
        }
    }
}

impl std::error::Error for ProofError {}
