//! The proof producer side: an append-only binary-DRAT stream.

use crate::fmt::{encode_lit, TAG_ADD, TAG_DELETE, TAG_INPUT};

/// An in-memory binary-DRAT proof under construction.
///
/// The writer is deliberately dumb: it performs no normalization, no
/// deduplication, and no checking — it records exactly what the solver
/// did, and the independent checker decides whether that was sound. One
/// writer accumulates the whole lifetime of a solver, so in incremental
/// mode a single stream interleaves input growth, lemmas, and deletions
/// across many `solve` calls.
#[derive(Debug, Default, Clone)]
pub struct ProofWriter {
    buf: Vec<u8>,
    steps: u64,
}

impl ProofWriter {
    /// Creates an empty proof stream.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn step(&mut self, tag: u8, lits: &[i32]) {
        self.buf.push(tag);
        for &l in lits {
            encode_lit(&mut self.buf, l);
        }
        self.buf.push(0);
        self.steps += 1;
    }

    /// Records an input clause (part of the formula, not derived).
    #[inline]
    pub fn add_input(&mut self, lits: &[i32]) {
        self.step(TAG_INPUT, lits);
    }

    /// Records a derived clause. An empty slice records the refutation.
    #[inline]
    pub fn add_lemma(&mut self, lits: &[i32]) {
        self.step(TAG_ADD, lits);
    }

    /// Records the deletion of one active copy of a clause.
    #[inline]
    pub fn delete(&mut self, lits: &[i32]) {
        self.step(TAG_DELETE, lits);
    }

    /// The proof bytes accumulated so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Steps emitted so far (inputs + lemmas + deletions).
    pub fn num_steps(&self) -> u64 {
        self.steps
    }

    /// Size of the stream in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }
}
