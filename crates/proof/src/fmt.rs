//! The binary proof codec.
//!
//! A proof is a flat byte stream of steps. Each step is a one-byte tag
//! followed by zero or more literals and a single `0x00` terminator:
//!
//! * `i` (0x69) — an **input** clause: part of the formula being refuted.
//!   Inputs are axioms; the checker never derives them.
//! * `a` (0x61) — a **lemma**: a clause the producer claims is implied by
//!   the inputs and earlier lemmas. Every core lemma is RUP-checked. An
//!   empty `a` step is a refutation of the inputs; a non-empty final `a`
//!   step certifies that clause (the assumption-conflict case).
//! * `d` (0x64) — a **deletion**: removes one active copy of the clause
//!   from the database (learnt-clause garbage collection).
//!
//! Literals use the DIMACS convention (nonzero signed integers) mapped to
//! `u = 2·|l| + (l < 0)` and emitted as little-endian base-128 varints
//! (low 7 bits per byte, high bit set on every byte but the last). Since
//! `u ≥ 2` for every literal, a bare `0x00` byte unambiguously terminates
//! the step. This is the classic binary-DRAT layout with an extra tag for
//! input clauses, which the checker needs because the incremental solver
//! interleaves formula growth with derivation steps.

/// Tag byte of an input-clause step.
pub const TAG_INPUT: u8 = b'i';
/// Tag byte of a lemma (clause-addition) step.
pub const TAG_ADD: u8 = b'a';
/// Tag byte of a clause-deletion step.
pub const TAG_DELETE: u8 = b'd';

/// Appends one literal in varint encoding.
#[inline]
pub fn encode_lit(buf: &mut Vec<u8>, l: i32) {
    debug_assert!(l != 0, "literal 0 is the step terminator");
    let mut u = (l.unsigned_abs() as u64) * 2 + u64::from(l < 0);
    loop {
        let byte = (u & 0x7f) as u8;
        u >>= 7;
        if u == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes the literal (or terminator) at `pos`. Returns the new
/// position and `None` for the `0x00` step terminator. `Err` carries the
/// offset of the malformed byte and a static description.
#[inline]
pub fn decode_lit(bytes: &[u8], pos: usize) -> Result<(usize, Option<i32>), (usize, &'static str)> {
    let mut u: u64 = 0;
    let mut shift = 0u32;
    let mut p = pos;
    loop {
        let &byte = bytes.get(p).ok_or((p, "truncated literal"))?;
        p += 1;
        u |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 35 {
            return Err((pos, "literal varint overflows 32 bits"));
        }
    }
    if u == 0 {
        return Ok((p, None));
    }
    if u == 1 {
        return Err((pos, "encoded literal has variable 0"));
    }
    let var = u >> 1;
    if var > i32::MAX as u64 {
        return Err((pos, "literal variable exceeds i32"));
    }
    let l = if u & 1 == 1 {
        -(var as i32)
    } else {
        var as i32
    };
    Ok((p, Some(l)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_literals() {
        let cases = [
            1,
            -1,
            2,
            -2,
            63,
            -64,
            100,
            -8191,
            1 << 20,
            i32::MAX,
            i32::MIN + 1,
        ];
        for &l in &cases {
            let mut buf = Vec::new();
            encode_lit(&mut buf, l);
            let (pos, got) = decode_lit(&buf, 0).expect("decode");
            assert_eq!(pos, buf.len());
            assert_eq!(got, Some(l), "literal {l}");
        }
    }

    #[test]
    fn terminator_decodes_as_none() {
        let (pos, got) = decode_lit(&[0x00], 0).expect("decode");
        assert_eq!((pos, got), (1, None));
    }

    #[test]
    fn truncated_varint_is_rejected() {
        // High bit set on the last available byte: continuation promised,
        // stream ends.
        assert!(decode_lit(&[0x85], 0).is_err());
        assert!(decode_lit(&[], 0).is_err());
    }
}
