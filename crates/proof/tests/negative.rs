//! Satellite: hand-corrupted proofs must be rejected, and the error must
//! name the offending step so a failing certification is debuggable.
//!
//! Each test starts from one known-good refutation and applies exactly
//! one corruption: a flipped literal, a dropped step, or a deletion of a
//! clause that was never added.
//!
//! The base formula is chosen so that unit propagation stalls without
//! the lemmas: `{1,2,3}×{1,-2,3}×…` forces `1` only via case splits on
//! `2` and `3`, and symmetrically forces `¬1` via splits on `4` and `5`.
//! (A denser formula like the 3-pigeon/2-hole principle is useless here:
//! it is so propagation-saturated that even a *flipped* unit lemma is
//! still RUP, and the corruption would go undetected.)

use hk_proof::{check_proof, ProofError, ProofWriter};

const INPUTS: [[i32; 3]; 8] = [
    [1, 2, 3],
    [1, 2, -3],
    [1, -2, 3],
    [1, -2, -3],
    [-1, 4, 5],
    [-1, 4, -5],
    [-1, -4, 5],
    [-1, -4, -5],
];

/// The refutation: two case splits derive `1`, two more refute it.
const LEMMAS: [&[i32]; 4] = [&[1, 2], &[1], &[4], &[]];

/// Inputs occupy steps 0..8; lemma `k` (with none dropped) is step 8+k.
const FIRST_LEMMA_STEP: usize = 8;

/// Builds the proof, letting tests tamper with or drop individual lemmas.
fn build(lemma_edit: impl Fn(usize, &mut Vec<i32>), drop_lemma: Option<usize>) -> ProofWriter {
    let mut w = ProofWriter::new();
    for c in &INPUTS {
        w.add_input(c);
    }
    for (k, lemma) in LEMMAS.iter().enumerate() {
        if drop_lemma == Some(k) {
            continue;
        }
        let mut lits = lemma.to_vec();
        lemma_edit(k, &mut lits);
        w.add_lemma(&lits);
    }
    w
}

#[test]
fn untampered_proof_is_accepted() {
    let out = check_proof(build(|_, _| {}, None).bytes()).expect("the baseline proof must check");
    assert!(out.final_clause.is_empty());
    assert_eq!(out.lemmas, 4);
    assert_eq!(out.inputs, 8);
}

#[test]
fn flipped_literal_is_rejected_with_step_index() {
    // Lemma 1 (`[1]`) becomes `[-1]`. Asserting `1` only touches ternary
    // clauses, so nothing propagates and the RUP check must fail — even
    // though the stream still refutes downstream (the final conflict can
    // lean on the corrupted lemma, which is exactly why it must be
    // re-derived, not trusted).
    let w = build(
        |k, lits| {
            if k == 1 {
                lits[0] = -lits[0];
            }
        },
        None,
    );
    match check_proof(w.bytes()) {
        Err(ProofError::LemmaNotImplied { step, clause }) => {
            assert_eq!(step, FIRST_LEMMA_STEP + 1);
            assert_eq!(clause, vec![-1]);
        }
        other => panic!("expected LemmaNotImplied, got {other:?}"),
    }
}

#[test]
fn dropped_step_is_rejected_at_the_first_lemma_that_needed_it() {
    // Drop lemma 0 (`[1, 2]`). Lemma `[1]` relied on it to finish the
    // split on `2`; with one step missing, every later lemma shifts down
    // by one, so the failure lands at the old step of the dropped lemma.
    let w = build(|_, _| {}, Some(0));
    match check_proof(w.bytes()) {
        Err(ProofError::LemmaNotImplied { step, clause }) => {
            assert_eq!(step, FIRST_LEMMA_STEP);
            assert_eq!(clause, vec![1]);
        }
        other => panic!("expected LemmaNotImplied, got {other:?}"),
    }
}

#[test]
fn bogus_deletion_is_rejected_with_step_index() {
    let mut w = build(|_, _| {}, None);
    // Delete a clause that was never added.
    w.delete(&[2, -5, 3]);
    match check_proof(w.bytes()) {
        Err(ProofError::BogusDeletion { step, clause }) => {
            assert_eq!(step, FIRST_LEMMA_STEP + 4);
            assert_eq!(clause, vec![2, -5, 3]);
        }
        other => panic!("expected BogusDeletion, got {other:?}"),
    }
}

#[test]
fn double_deletion_is_rejected_even_though_the_clause_existed() {
    let mut w = build(|_, _| {}, None);
    w.delete(&[1, 2, 3]); // legal: one copy exists
    w.delete(&[3, 2, 1]); // bogus: no copy left (order-insensitive)
    match check_proof(w.bytes()) {
        Err(ProofError::BogusDeletion { step, .. }) => {
            assert_eq!(step, FIRST_LEMMA_STEP + 5);
        }
        other => panic!("expected BogusDeletion, got {other:?}"),
    }
}

#[test]
fn truncated_stream_is_rejected_with_byte_offset() {
    let w = build(|_, _| {}, None);
    let bytes = &w.bytes()[..w.byte_len() - 1];
    match check_proof(bytes) {
        Err(ProofError::Malformed { offset, .. }) => assert!(offset >= bytes.len() - 2),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn corrupted_tag_byte_is_rejected_with_byte_offset() {
    let w = build(|_, _| {}, None);
    let mut bytes = w.bytes().to_vec();
    bytes[0] = 0x7f; // clobber the first tag
    match check_proof(&bytes) {
        Err(ProofError::Malformed { offset, .. }) => assert_eq!(offset, 0),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn errors_render_the_step_index() {
    let e = ProofError::LemmaNotImplied {
        step: 42,
        clause: vec![1, -2],
    };
    assert!(e.to_string().contains("42"));
    let e = ProofError::BogusDeletion {
        step: 7,
        clause: vec![3],
    };
    assert!(e.to_string().contains("7"));
}
