//! An sh-like shell and coreutils, running as guest processes
//! (paper §4.3: "we have ported xv6 user programs to Hyperkernel,
//! including utilities and a shell").
//!
//! The shell parses pipelines like `echo hello | rev | upper`, spawns a
//! child process per command, wires the stages together with kernel
//! pipes granted through `sys_transfer_fd` before `sys_set_runnable`
//! (the embryo-wiring pattern), and collects the final stage's output to
//! the console.
//!
//! Utilities are poll-style actors over the kernel's all-or-error pipe
//! calls: `echo`, `rev`, `upper`, `wc`, and `cat` (which reads from the
//! file server over IPC).

use hk_abi::{Sysno, EAGAIN};
use hk_kernel::{GuestEnv, GuestProg, Poll};

use crate::fs::server::{build_request, op, CallResult, IpcClient};
use crate::ulib::{self, PageBudget, UserVm};

/// Standard fd numbers used by the shell wiring.
pub const STDIN: i64 = 0;
/// Standard output.
pub const STDOUT: i64 = 1;

/// What a utility does with a line of words.
#[derive(Debug, Clone)]
pub enum Util {
    /// Emits its argument, then EOF.
    Echo(String),
    /// Reverses the byte stream.
    Rev,
    /// Uppercases the byte stream.
    Upper,
    /// Counts words seen, emits the count as decimal digits at EOF.
    Wc,
    /// Reads the named file from the file server and emits it.
    Cat { path: String, fs_server: i64 },
}

enum UtilState {
    Setup,
    Run,
    Drain(Vec<i64>, usize),
    CloseOut,
    Exit,
}

/// A coreutil actor: reads STDIN (if wired), transforms, writes STDOUT.
pub struct UtilProc {
    util: Util,
    budget: PageBudget,
    vm: Option<UserVm>,
    frame: i64,
    state: UtilState,
    collected: Vec<i64>,
    fs_client: Option<IpcClient>,
}

impl UtilProc {
    /// Creates a utility actor.
    pub fn new(util: Util, budget: PageBudget) -> UtilProc {
        UtilProc {
            util,
            budget,
            vm: None,
            frame: -1,
            state: UtilState::Setup,
            collected: Vec::new(),
            fs_client: None,
        }
    }

    /// Reads everything available from STDIN; Ok(true) = EOF reached.
    fn slurp(&mut self, env: &mut GuestEnv) -> Result<bool, ()> {
        loop {
            let r = env.hypercall(Sysno::PipeRead, &[STDIN, self.frame, 0, 1]);
            if r == 1 {
                self.collected.push(env.page_word(self.frame, 0));
                continue;
            }
            if r == 0 {
                return Ok(true); // EOF
            }
            if r == -EAGAIN {
                return Ok(false);
            }
            return Err(());
        }
    }

    fn transform(&self) -> Vec<i64> {
        match &self.util {
            Util::Echo(s) => s.bytes().map(|b| b as i64).collect(),
            Util::Rev => {
                let mut v = self.collected.clone();
                v.reverse();
                v
            }
            Util::Upper => self
                .collected
                .iter()
                .map(|&w| (w as u8 as char).to_ascii_uppercase() as i64)
                .collect(),
            Util::Wc => self
                .collected
                .iter()
                .filter(|&&w| w == ' ' as i64)
                .count()
                .wrapping_add(if self.collected.is_empty() { 0 } else { 1 })
                .to_string()
                .bytes()
                .map(|b| b as i64)
                .collect(),
            Util::Cat { .. } => self.collected.clone(),
        }
    }
}

impl GuestProg for UtilProc {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        loop {
            match &mut self.state {
                UtilState::Setup => {
                    // Close-on-exec discipline: drop every inherited fd
                    // except the stdio pair the parent wired for us.
                    let nr_fds = env.machine.params().nr_fds as i64;
                    for fd in 2..nr_fds {
                        env.hypercall(Sysno::Close, &[fd]);
                    }
                    let mut vm = UserVm::new(env.proc_field("pml4"));
                    let (_va, frame) = vm.mmap_any(env, &mut self.budget).expect("util setup");
                    self.frame = frame;
                    self.vm = Some(vm);
                    if let Util::Cat { fs_server, .. } = self.util {
                        self.fs_client = Some(IpcClient::new(fs_server));
                    }
                    self.state = UtilState::Run;
                }
                UtilState::Run => match &self.util {
                    Util::Echo(_) => {
                        let out = self.transform();
                        self.state = UtilState::Drain(out, 0);
                    }
                    Util::Cat { path, .. } => {
                        let req = build_request(op::READ, 0, 400, path, &[]);
                        let path = path.clone();
                        let client = self.fs_client.as_mut().unwrap();
                        match client.step(env, self.frame, &req) {
                            CallResult::NotYet => return Poll::Pending,
                            CallResult::Done(status, data) => {
                                let out = if status == 0 {
                                    data
                                } else {
                                    format!("cat: {path}: error {status}")
                                        .bytes()
                                        .map(|b| b as i64)
                                        .collect()
                                };
                                self.state = UtilState::Drain(out, 0);
                            }
                        }
                    }
                    _ => match self.slurp(env) {
                        Ok(true) => {
                            let out = self.transform();
                            self.state = UtilState::Drain(out, 0);
                        }
                        Ok(false) => return Poll::Pending,
                        Err(()) => {
                            // STDIN not wired: act on empty input.
                            let out = self.transform();
                            self.state = UtilState::Drain(out, 0);
                        }
                    },
                },
                UtilState::Drain(out, pos) => {
                    while *pos < out.len() {
                        env.set_page_word(self.frame, 0, out[*pos]);
                        let r = env.hypercall(Sysno::PipeWrite, &[STDOUT, self.frame, 0, 1]);
                        if r == 1 {
                            *pos += 1;
                            continue;
                        }
                        if r == -EAGAIN {
                            env.hypercall(Sysno::Yield, &[]);
                            return Poll::Pending;
                        }
                        // STDOUT broken/not wired: print to console.
                        let c = out[*pos] as u8;
                        env.putc(c);
                        *pos += 1;
                    }
                    self.state = UtilState::CloseOut;
                }
                UtilState::CloseOut => {
                    env.hypercall(Sysno::Close, &[STDOUT]);
                    env.hypercall(Sysno::Close, &[STDIN]);
                    self.state = UtilState::Exit;
                }
                UtilState::Exit => {
                    ulib::exit(env);
                    return Poll::Exited;
                }
            }
        }
    }
}

/// Parses a pipeline string into utilities. `cat` needs the fs server's
/// PID supplied by the shell.
pub fn parse_pipeline(line: &str, fs_server: i64) -> Vec<Util> {
    line.split('|')
        .map(|cmd| {
            let cmd = cmd.trim();
            let (name, rest) = match cmd.split_once(' ') {
                Some((n, r)) => (n, r.trim().to_string()),
                None => (cmd, String::new()),
            };
            match name {
                "echo" => Util::Echo(rest),
                "rev" => Util::Rev,
                "upper" => Util::Upper,
                "wc" => Util::Wc,
                "cat" => Util::Cat {
                    path: rest,
                    fs_server,
                },
                other => Util::Echo(format!("sh: unknown command `{other}`")),
            }
        })
        .collect()
}

/// The shell actor: runs one pipeline, reading the final stage's output
/// from a pipe and echoing it to the console, then exits.
pub struct Shell {
    line: String,
    fs_server: i64,
    budget: PageBudget,
    first_child_pid: i64,
    state: ShellState,
    frame: i64,
    vm: Option<UserVm>,
    /// The pipeline's collected output (also printed to the console).
    pub output: Vec<u8>,
}

enum ShellState {
    Setup,
    Spawn,
    Collect,
    Done,
}

impl Shell {
    /// A shell that will run `line` once. Children get consecutive PIDs
    /// starting at `first_child_pid`.
    pub fn new(line: &str, fs_server: i64, budget: PageBudget, first_child_pid: i64) -> Shell {
        Shell {
            line: line.to_string(),
            fs_server,
            budget,
            first_child_pid,
            state: ShellState::Setup,
            frame: -1,
            vm: None,
            output: Vec::new(),
        }
    }

    /// Lowest fd the shell uses for plumbing (above the stdio pair).
    const PLUMB: i64 = 4;
}

impl GuestProg for Shell {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        loop {
            match self.state {
                ShellState::Setup => {
                    let mut vm = UserVm::new(env.proc_field("pml4"));
                    let (_va, frame) = vm.mmap_any(env, &mut self.budget).expect("shell setup");
                    self.frame = frame;
                    self.vm = Some(vm);
                    self.state = ShellState::Spawn;
                }
                ShellState::Spawn => {
                    let utils = parse_pipeline(&self.line, self.fs_server);
                    let n = utils.len() as i64;
                    // Pipes: stage i writes pipe i, stage i+1 reads it.
                    // Pipe k uses fds (PLUMB + 2k, PLUMB + 2k + 1) and
                    // kernel resources chosen deterministically.
                    for k in 0..n {
                        let fd_r = Self::PLUMB + 2 * k;
                        let fd_w = fd_r + 1;
                        let r = env.hypercall(Sysno::Pipe, &[fd_r, 2 * k, fd_w, 2 * k + 1, k]);
                        assert_eq!(r, 0, "shell pipe {k} failed: {r}");
                    }
                    for (i, util) in utils.into_iter().enumerate() {
                        let pid = self.first_child_pid + i as i64;
                        let mut wiring = Vec::new();
                        if i > 0 {
                            // STDIN from pipe i-1's read end.
                            wiring.push((Self::PLUMB + 2 * (i as i64 - 1), STDIN));
                        }
                        // STDOUT to pipe i's write end.
                        wiring.push((Self::PLUMB + 2 * i as i64 + 1, STDOUT));
                        let child_budget = ulib::spawn(env, &mut self.budget, pid, &wiring, 8)
                            .expect("shell spawn");
                        env.register_actor(pid, Box::new(UtilProc::new(util, child_budget)));
                    }
                    // The shell keeps only the last pipe's read end; close
                    // everything else so EOF propagates.
                    for k in 0..n {
                        let fd_r = Self::PLUMB + 2 * k;
                        let fd_w = fd_r + 1;
                        if k != n - 1 {
                            env.hypercall(Sysno::Close, &[fd_r]);
                        }
                        env.hypercall(Sysno::Close, &[fd_w]);
                    }
                    self.state = ShellState::Collect;
                }
                ShellState::Collect => {
                    let utils_n = self.line.split('|').count() as i64;
                    let last_read = Self::PLUMB + 2 * (utils_n - 1);
                    loop {
                        let r = env.hypercall(Sysno::PipeRead, &[last_read, self.frame, 0, 1]);
                        if r == 1 {
                            let b = env.page_word(self.frame, 0) as u8;
                            self.output.push(b);
                            env.putc(b);
                            continue;
                        }
                        if r == -EAGAIN {
                            env.hypercall(Sysno::Yield, &[]);
                            return Poll::Pending;
                        }
                        if r == 0 {
                            // EOF: pipeline finished.
                            env.hypercall(Sysno::Close, &[last_read]);
                            env.putc(b'\n');
                            self.state = ShellState::Done;
                            break;
                        }
                        panic!("shell pipe read failed: {r}");
                    }
                }
                ShellState::Done => return Poll::Pending,
            }
        }
    }
}
