//! An HTTP/1.0 server and client over the TCP stack, serving files from
//! the journaling file system — the workload the paper uses to "host
//! the git repository of this paper" (§4.3).

use crate::fs::disk::RamDisk;
use crate::fs::{FileSys, FsError};
use crate::net::{ConnId, Event, NetStack};

/// Renders an HTTP string into wire words (one byte per word).
pub fn to_words(s: &str) -> Vec<i64> {
    s.bytes().map(|b| b as i64).collect()
}

/// Decodes wire words back into a string.
pub fn to_string(words: &[i64]) -> String {
    words.iter().map(|&w| w as u8 as char).collect()
}

/// A parsed HTTP request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method, e.g. `GET`.
    pub method: String,
    /// Request path, e.g. `/index.html`.
    pub path: String,
}

/// Parses the first request line out of raw text.
pub fn parse_request(text: &str) -> Option<HttpRequest> {
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    Some(HttpRequest { method, path })
}

/// Builds a response with status line, length header, and body.
pub fn build_response(status: u32, reason: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Splits a raw HTTP response into `(status, body)`.
pub fn parse_response(text: &str) -> Option<(u32, String)> {
    let (head, body) = text.split_once("\r\n\r\n")?;
    let status = head.split_whitespace().nth(1)?.parse().ok()?;
    Some((status, body.to_string()))
}

/// The HTTP server: a TCP listener on port 80 backed by a file system.
#[derive(Debug)]
pub struct HttpServer {
    /// The server's network stack.
    pub stack: NetStack,
    fs: FileSys<RamDisk>,
    /// Bytes of request text accumulated per connection.
    partial: std::collections::HashMap<ConnId, String>,
    /// Requests served.
    pub served: u64,
}

impl HttpServer {
    /// A server at address `ip`, port 80, over the given file system.
    pub fn new(ip: i64, fs: FileSys<RamDisk>) -> HttpServer {
        let mut stack = NetStack::new(ip);
        stack.listen(80);
        HttpServer {
            stack,
            fs,
            partial: std::collections::HashMap::new(),
            served: 0,
        }
    }

    /// Processes pending stack events; responses are queued on the
    /// stack for the driver/wire to carry.
    pub fn step(&mut self) {
        while let Some(event) = self.stack.next_event() {
            match event {
                Event::Accepted(c) => {
                    self.partial.insert(c, String::new());
                }
                Event::Data(c, words) => {
                    let text = to_string(&words);
                    let buf = self.partial.entry(c).or_default();
                    buf.push_str(&text);
                    if buf.contains("\r\n\r\n") || buf.ends_with('\n') {
                        let request = parse_request(buf).clone();
                        let response = self.respond(request);
                        self.stack.send(c, &to_words(&response));
                        self.stack.close(c);
                        self.partial.remove(&c);
                        self.served += 1;
                    }
                }
                Event::PeerClosed(c) | Event::Reset(c) => {
                    self.partial.remove(&c);
                }
                Event::Connected(_) => {}
            }
        }
    }

    fn respond(&mut self, request: Option<HttpRequest>) -> String {
        let Some(req) = request else {
            return build_response(400, "Bad Request", "malformed request\n");
        };
        if req.method != "GET" {
            return build_response(405, "Method Not Allowed", "only GET\n");
        }
        match self.fs.read_str(&req.path) {
            Ok(body) => build_response(200, "OK", &body),
            Err(FsError::IsDir) => match self.fs.readdir(&req.path) {
                Ok(entries) => {
                    let listing: String = entries
                        .into_iter()
                        .map(|(_, name)| format!("{name}\n"))
                        .collect();
                    build_response(200, "OK", &listing)
                }
                Err(_) => build_response(500, "Internal Server Error", ""),
            },
            Err(FsError::NotFound) => build_response(404, "Not Found", "no such file\n"),
            Err(e) => build_response(500, "Internal Server Error", &format!("{e:?}\n")),
        }
    }
}

/// A one-shot HTTP client: connects, sends `GET path`, collects the
/// response until the server closes.
#[derive(Debug)]
pub struct HttpClient {
    /// The client's network stack.
    pub stack: NetStack,
    conn: ConnId,
    sent: bool,
    path: String,
    buf: String,
    /// The completed response, once the server closes.
    pub response: Option<(u32, String)>,
}

impl HttpClient {
    /// Starts a GET for `path` against `server_ip`.
    pub fn get(ip: i64, server_ip: i64, path: &str) -> HttpClient {
        let mut stack = NetStack::new(ip);
        let conn = stack.connect(49_000, server_ip, 80);
        HttpClient {
            stack,
            conn,
            sent: false,
            path: path.to_string(),
            buf: String::new(),
            response: None,
        }
    }

    /// Processes pending events; call after each wire pump.
    pub fn step(&mut self) {
        while let Some(event) = self.stack.next_event() {
            match event {
                Event::Connected(c) if c == self.conn && !self.sent => {
                    let req = format!("GET {} HTTP/1.0\r\n\r\n", self.path);
                    self.stack.send(c, &to_words(&req));
                    self.sent = true;
                }
                Event::Data(c, words) if c == self.conn => {
                    self.buf.push_str(&to_string(&words));
                }
                Event::PeerClosed(c) | Event::Reset(c) if c == self.conn => {
                    self.response = parse_response(&self.buf);
                    self.stack.close(self.conn);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::T_FILE;
    use crate::net::pump;

    fn site() -> FileSys<RamDisk> {
        let mut fs = FileSys::mkfs(RamDisk::new(64, 512), 32, 8).unwrap();
        fs.create("/index.html", T_FILE).unwrap();
        fs.write_str("/index.html", "<h1>hyperkernel</h1>").unwrap();
        fs.create("/papers", crate::fs::T_DIR).unwrap();
        fs.create("/papers/sosp17.txt", T_FILE).unwrap();
        fs.write_str("/papers/sosp17.txt", "push-button verification")
            .unwrap();
        fs
    }

    fn fetch(path: &str) -> (u32, String) {
        let mut server = HttpServer::new(2, site());
        let mut client = HttpClient::get(1, 2, path);
        for _ in 0..20 {
            pump(&mut client.stack, &mut server.stack);
            server.step();
            pump(&mut client.stack, &mut server.stack);
            client.step();
            if let Some(r) = client.response.clone() {
                return r;
            }
        }
        panic!("no response for {path}");
    }

    #[test]
    fn serves_files() {
        let (status, body) = fetch("/index.html");
        assert_eq!(status, 200);
        assert_eq!(body, "<h1>hyperkernel</h1>");
    }

    #[test]
    fn serves_nested_paths_and_listings() {
        let (status, body) = fetch("/papers/sosp17.txt");
        assert_eq!(status, 200);
        assert_eq!(body, "push-button verification");
        let (status, listing) = fetch("/papers");
        assert_eq!(status, 200);
        assert!(listing.contains("sosp17.txt"));
    }

    #[test]
    fn missing_file_is_404() {
        let (status, _) = fetch("/nope.html");
        assert_eq!(status, 404);
    }

    #[test]
    fn http_codec_roundtrip() {
        let resp = build_response(200, "OK", "body text");
        let (status, body) = parse_response(&resp).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "body text");
        let req = parse_request("GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/x");
    }
}
