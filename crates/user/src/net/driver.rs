//! The user-space NIC driver (the E1000-driver analogue, paper §4.3:
//! "a user-space driver for the E1000 network card (through IOMMU
//! system calls)").
//!
//! The driver exercises the verified device path end to end: it claims
//! the device by building an IOMMU page table through the four
//! `sys_alloc_iommu_*` calls, maps the same DMA page into its own
//! address space with `sys_map_dmapage`, claims an interrupt vector and
//! routes the device to it with `sys_alloc_intremap`, and then moves
//! frames by programming the NIC against device-virtual address 0.

use std::cell::RefCell;
use std::rc::Rc;

use hk_abi::{Sysno, PTE_P, PTE_U, PTE_W};
use hk_kernel::GuestEnv;
use hk_vm::dev::Nic;

use super::NetStack;
use crate::ulib::{PageBudget, UserVm};

/// Driver errors (kernel errnos bubbled up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverError(pub &'static str, pub i64);

/// The NIC driver: owns the device model and a DMA buffer. The NIC is
/// shared (`Rc<RefCell<..>>`) so the test harness can play "the wire" on
/// the other side.
#[derive(Debug)]
pub struct NicDriver {
    /// The device (owned by the driver process, as in the paper).
    pub nic: Rc<RefCell<Nic>>,
    /// DMA page index used as the packet buffer.
    dma_index: i64,
    /// Guest virtual address where the DMA page is mapped.
    buf_va: u64,
    /// Interrupt vector claimed for the NIC.
    pub vector: i64,
    set_up: bool,
}

impl NicDriver {
    /// Wraps a NIC; call [`NicDriver::setup`] before use.
    pub fn new(nic: Rc<RefCell<Nic>>) -> NicDriver {
        NicDriver {
            nic,
            dma_index: 0,
            buf_va: 0,
            vector: 0,
            set_up: false,
        }
    }

    /// Claims the device, builds its IOMMU table, maps the DMA buffer
    /// into our address space, and routes its interrupt. Consumes 4
    /// pages from the budget for the IOMMU table plus whatever the
    /// CPU-side mapping needs.
    pub fn setup(
        &mut self,
        env: &mut GuestEnv,
        vm: &mut UserVm,
        budget: &mut PageBudget,
        dma_index: i64,
        vector: i64,
    ) -> Result<(), DriverError> {
        let dev = self.nic.borrow().dev_id as i64;
        let pw = PTE_P | PTE_W;
        let take = |b: &mut PageBudget| b.take().ok_or(DriverError("out of pages", 0));
        let root = take(budget)?;
        let r = env.hypercall(Sysno::AllocIommuRoot, &[dev, root]);
        if r != 0 {
            return Err(DriverError("alloc_iommu_root", r));
        }
        let pdpt = take(budget)?;
        let r = env.hypercall(Sysno::AllocIommuPdpt, &[root, 0, pdpt, pw]);
        if r != 0 {
            return Err(DriverError("alloc_iommu_pdpt", r));
        }
        let pd = take(budget)?;
        let r = env.hypercall(Sysno::AllocIommuPd, &[pdpt, 0, pd, pw]);
        if r != 0 {
            return Err(DriverError("alloc_iommu_pd", r));
        }
        let pt = take(budget)?;
        let r = env.hypercall(Sysno::AllocIommuPt, &[pd, 0, pt, pw]);
        if r != 0 {
            return Err(DriverError("alloc_iommu_pt", r));
        }
        // Device-virtual address 0 -> DMA page `dma_index`.
        let r = env.hypercall(Sysno::AllocIommuFrame, &[pt, 0, dma_index, pw]);
        if r != 0 {
            return Err(DriverError("alloc_iommu_frame", r));
        }
        // Map the same DMA page into our own address space so we can
        // read received frames and stage outgoing ones.
        let vpage = 200; // an arbitrary unused virtual page
        let (l3, l2, l1, l0) = {
            let k = env.machine.params().page_words.trailing_zeros() as u64;
            let mask = (1u64 << k) - 1;
            (
                (vpage >> (3 * k)) & mask,
                (vpage >> (2 * k)) & mask,
                (vpage >> k) & mask,
                vpage & mask,
            )
        };
        // Build the CPU-side chain with the ulib allocator (reuses any
        // existing intermediate tables).
        let probe = vm.map_vpage(env, budget, vpage ^ 1, true); // ensure chain exists nearby
        let _ = probe;
        let _ = (l3, l2, l1, l0);
        // Find the PT covering vpage; map_vpage(vpage^1) shares it.
        let (pt_page, _slot) = vm
            .pt_slot(env, vpage ^ 1)
            .ok_or(DriverError("pt chain missing", 0))?;
        let slot = (vpage & ((env.machine.params().page_words) - 1)) as i64;
        let r = env.hypercall(
            Sysno::MapDmaPage,
            &[env.pid, pt_page, slot, dma_index, PTE_P | PTE_W | PTE_U],
        );
        if r != 0 {
            return Err(DriverError("map_dmapage", r));
        }
        self.buf_va = vpage * env.machine.params().page_words;
        // Interrupts: claim the vector and route the device to it.
        let r = env.hypercall(Sysno::AllocVector, &[vector]);
        if r != 0 {
            return Err(DriverError("alloc_vector", r));
        }
        let r = env.hypercall(Sysno::AllocIntremap, &[0, dev, vector]);
        if r != 0 {
            return Err(DriverError("alloc_intremap", r));
        }
        // Point the NIC's interrupt line at our vector.
        self.nic.borrow_mut().vector = vector as u64;
        self.dma_index = dma_index;
        self.vector = vector;
        self.set_up = true;
        Ok(())
    }

    /// Moves frames between the NIC and the stack: acknowledges the
    /// pending interrupt, drains received frames (DMA in, then read
    /// through our own mapping), and transmits everything the stack has
    /// queued (write through our mapping, then DMA out). Returns how
    /// many frames moved.
    pub fn pump(&mut self, env: &mut GuestEnv, stack: &mut NetStack) -> usize {
        assert!(self.set_up, "driver not set up");
        let mut moved = 0;
        // Acknowledge a pending interrupt, if any.
        env.hypercall(Sysno::AckIntr, &[self.vector]);
        // RX.
        let max = env.machine.params().page_words;
        loop {
            let fetched = self.nic.borrow_mut().fetch_rx(env.machine, 0, max);
            match fetched {
                Ok(Some(n)) => {
                    let mut frame = Vec::with_capacity(n as usize);
                    for i in 0..n {
                        let w = env.read(self.buf_va + i).expect("driver buffer mapped");
                        frame.push(w);
                    }
                    stack.on_packet(&frame);
                    moved += 1;
                }
                Ok(None) => break,
                Err(e) => panic!("DMA fault in NIC driver: {e:?}"),
            }
        }
        // TX.
        for pkt in stack.take_outgoing() {
            let n = (pkt.len() as u64).min(max);
            for (i, w) in pkt.iter().take(n as usize).enumerate() {
                env.write(self.buf_va + i as u64, *w)
                    .expect("driver buffer mapped");
            }
            self.nic
                .borrow_mut()
                .transmit(env.machine, 0, n)
                .expect("DMA fault on transmit");
            moved += 1;
        }
        moved
    }
}
