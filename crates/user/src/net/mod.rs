//! A small user-space TCP/IP stack — the lwIP analogue (paper §4.3:
//! "ported lwIP to run as a dedicated network server").
//!
//! Packets are word vectors (the simulated wire is word-granular):
//!
//! * IP header: `[proto, src_ip, dst_ip, len, payload...]`
//! * UDP payload: `[src_port, dst_port, data...]`
//! * TCP payload: `[src_port, dst_port, seq, ack, flags, data...]`
//!
//! The TCP implementation does the real state-machine work — three-way
//! handshake, cumulative acknowledgements, in-order segment acceptance,
//! FIN/ACK teardown, RST on closed ports — but omits retransmission
//! timers: the simulated wire neither drops nor reorders (out-of-order
//! segments are dropped and show up as lost data, which the tests
//! exercise).

pub mod driver;

use std::collections::{HashMap, VecDeque};

/// IP protocol numbers.
pub mod proto {
    /// UDP.
    pub const UDP: i64 = 17;
    /// TCP.
    pub const TCP: i64 = 6;
}

/// TCP flags.
pub mod flags {
    /// Synchronize.
    pub const SYN: i64 = 1;
    /// Acknowledge.
    pub const ACK: i64 = 2;
    /// Finish.
    pub const FIN: i64 = 4;
    /// Reset.
    pub const RST: i64 = 8;
}

/// A raw packet on the wire.
pub type Packet = Vec<i64>;

/// Builds an IP packet.
pub fn ip_packet(proto: i64, src: i64, dst: i64, payload: &[i64]) -> Packet {
    let mut p = vec![proto, src, dst, payload.len() as i64];
    p.extend_from_slice(payload);
    p
}

/// Parses an IP packet into `(proto, src, dst, payload)`.
pub fn parse_ip(p: &[i64]) -> Option<(i64, i64, i64, &[i64])> {
    if p.len() < 4 {
        return None;
    }
    let len = p[3].max(0) as usize;
    if p.len() < 4 + len {
        return None;
    }
    Some((p[0], p[1], p[2], &p[4..4 + len]))
}

/// TCP connection states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Sent SYN, awaiting SYN|ACK.
    SynSent,
    /// Received SYN on a listener, sent SYN|ACK.
    SynRcvd,
    /// Data flows.
    Established,
    /// We sent FIN, awaiting its ACK.
    FinWait,
    /// Peer sent FIN; we acked and closed too.
    Closed,
}

/// Identifier of a connection within a stack.
pub type ConnId = usize;

/// Events surfaced to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A new inbound connection was accepted on a listening port.
    Accepted(ConnId),
    /// An outbound connect completed.
    Connected(ConnId),
    /// In-order data arrived.
    Data(ConnId, Vec<i64>),
    /// The peer closed (all data delivered).
    PeerClosed(ConnId),
    /// The connection was reset.
    Reset(ConnId),
}

#[derive(Debug)]
struct Conn {
    state: TcpState,
    local_port: i64,
    remote_ip: i64,
    remote_port: i64,
    /// Next sequence number we will send.
    snd_next: i64,
    /// Next sequence number we expect to receive.
    rcv_next: i64,
}

/// A host stack: one IP address, listeners, connections, queues.
#[derive(Debug)]
pub struct NetStack {
    /// This host's address.
    pub ip: i64,
    listeners: Vec<i64>,
    conns: Vec<Conn>,
    out: VecDeque<Packet>,
    events: VecDeque<Event>,
    /// UDP receive queue per port.
    udp_rx: HashMap<i64, VecDeque<(i64, i64, Vec<i64>)>>,
    next_iss: i64,
}

impl NetStack {
    /// A stack for address `ip`.
    pub fn new(ip: i64) -> NetStack {
        NetStack {
            ip,
            listeners: Vec::new(),
            conns: Vec::new(),
            out: VecDeque::new(),
            events: VecDeque::new(),
            udp_rx: HashMap::new(),
            next_iss: 1000,
        }
    }

    /// Starts listening on a TCP port.
    pub fn listen(&mut self, port: i64) {
        if !self.listeners.contains(&port) {
            self.listeners.push(port);
        }
    }

    /// Opens a connection; the handshake completes asynchronously
    /// ([`Event::Connected`]).
    pub fn connect(&mut self, local_port: i64, remote_ip: i64, remote_port: i64) -> ConnId {
        let iss = self.next_iss;
        self.next_iss += 10_000;
        let id = self.conns.len();
        self.conns.push(Conn {
            state: TcpState::SynSent,
            local_port,
            remote_ip,
            remote_port,
            snd_next: iss + 1,
            rcv_next: 0,
        });
        let seg = [local_port, remote_port, iss, 0, flags::SYN];
        let pkt = ip_packet(proto::TCP, self.ip, remote_ip, &seg);
        self.out.push_back(pkt);
        id
    }

    /// Sends data on an established connection. Returns false if the
    /// connection cannot send.
    pub fn send(&mut self, id: ConnId, data: &[i64]) -> bool {
        let (dst_ip, seg) = {
            let c = &mut self.conns[id];
            if c.state != TcpState::Established {
                return false;
            }
            let mut seg = vec![
                c.local_port,
                c.remote_port,
                c.snd_next,
                c.rcv_next,
                flags::ACK,
            ];
            seg.extend_from_slice(data);
            c.snd_next += data.len() as i64;
            (c.remote_ip, seg)
        };
        let pkt = ip_packet(proto::TCP, self.ip, dst_ip, &seg);
        self.out.push_back(pkt);
        true
    }

    /// Closes our side (sends FIN).
    pub fn close(&mut self, id: ConnId) {
        let (dst_ip, seg) = {
            let c = &mut self.conns[id];
            if !matches!(c.state, TcpState::Established | TcpState::SynRcvd) {
                return;
            }
            c.state = TcpState::FinWait;
            let seg = vec![
                c.local_port,
                c.remote_port,
                c.snd_next,
                c.rcv_next,
                flags::FIN | flags::ACK,
            ];
            c.snd_next += 1; // FIN consumes a sequence number
            (c.remote_ip, seg)
        };
        let pkt = ip_packet(proto::TCP, self.ip, dst_ip, &seg);
        self.out.push_back(pkt);
    }

    /// Connection state, for tests and servers.
    pub fn state(&self, id: ConnId) -> TcpState {
        self.conns[id].state
    }

    /// Sends a UDP datagram.
    pub fn udp_send(&mut self, src_port: i64, dst_ip: i64, dst_port: i64, data: &[i64]) {
        let mut payload = vec![src_port, dst_port];
        payload.extend_from_slice(data);
        let pkt = ip_packet(proto::UDP, self.ip, dst_ip, &payload);
        self.out.push_back(pkt);
    }

    /// Receives a pending UDP datagram on `port`:
    /// `(src_ip, src_port, data)`.
    pub fn udp_recv(&mut self, port: i64) -> Option<(i64, i64, Vec<i64>)> {
        self.udp_rx.get_mut(&port)?.pop_front()
    }

    /// Takes all packets queued for transmission.
    pub fn take_outgoing(&mut self) -> Vec<Packet> {
        self.out.drain(..).collect()
    }

    /// Takes the next application event.
    pub fn next_event(&mut self) -> Option<Event> {
        self.events.pop_front()
    }

    fn find_conn(&self, lport: i64, rip: i64, rport: i64) -> Option<ConnId> {
        self.conns.iter().position(|c| {
            c.local_port == lport
                && c.remote_ip == rip
                && c.remote_port == rport
                && c.state != TcpState::Closed
        })
    }

    /// Feeds one packet from the wire into the stack.
    pub fn on_packet(&mut self, pkt: &[i64]) {
        let Some((proto_n, src, dst, payload)) = parse_ip(pkt) else {
            return;
        };
        if dst != self.ip {
            return; // not ours
        }
        match proto_n {
            proto::UDP => {
                if payload.len() < 2 {
                    return;
                }
                let (sp, dp) = (payload[0], payload[1]);
                self.udp_rx
                    .entry(dp)
                    .or_default()
                    .push_back((src, sp, payload[2..].to_vec()));
            }
            proto::TCP => self.on_tcp(src, payload),
            _ => {}
        }
    }

    fn on_tcp(&mut self, src_ip: i64, seg: &[i64]) {
        if seg.len() < 5 {
            return;
        }
        let (sport, dport, seq, ack, fl) = (seg[0], seg[1], seg[2], seg[3], seg[4]);
        let data = &seg[5..];
        if let Some(id) = self.find_conn(dport, src_ip, sport) {
            self.on_tcp_conn(id, seq, ack, fl, data);
            return;
        }
        // No connection: maybe a listener?
        if fl & flags::SYN != 0 && self.listeners.contains(&dport) {
            let iss = self.next_iss;
            self.next_iss += 10_000;
            let id = self.conns.len();
            self.conns.push(Conn {
                state: TcpState::SynRcvd,
                local_port: dport,
                remote_ip: src_ip,
                remote_port: sport,
                snd_next: iss + 1,
                rcv_next: seq + 1,
            });
            let reply = [dport, sport, iss, seq + 1, flags::SYN | flags::ACK];
            let pkt = ip_packet(proto::TCP, self.ip, src_ip, &reply);
            self.out.push_back(pkt);
            let _ = id;
            return;
        }
        // Closed port: reset (unless this was itself a reset).
        if fl & flags::RST == 0 {
            let reply = [dport, sport, 0, seq + 1, flags::RST];
            let pkt = ip_packet(proto::TCP, self.ip, src_ip, &reply);
            self.out.push_back(pkt);
        }
    }

    fn on_tcp_conn(&mut self, id: ConnId, seq: i64, ack: i64, fl: i64, data: &[i64]) {
        if fl & flags::RST != 0 {
            self.conns[id].state = TcpState::Closed;
            self.events.push_back(Event::Reset(id));
            return;
        }
        let state = self.conns[id].state;
        match state {
            TcpState::SynSent => {
                if fl & flags::SYN != 0 && fl & flags::ACK != 0 {
                    {
                        let c = &mut self.conns[id];
                        c.rcv_next = seq + 1;
                        c.state = TcpState::Established;
                    }
                    self.ack(id);
                    self.events.push_back(Event::Connected(id));
                }
            }
            TcpState::SynRcvd => {
                if fl & flags::ACK != 0 && ack == self.conns[id].snd_next {
                    self.conns[id].state = TcpState::Established;
                    self.events.push_back(Event::Accepted(id));
                    // The handshake ACK may carry data.
                    if !data.is_empty() {
                        self.deliver(id, seq, data);
                    }
                }
            }
            TcpState::Established => {
                if !data.is_empty() {
                    self.deliver(id, seq, data);
                }
                if fl & flags::FIN != 0 {
                    let expected = self.conns[id].rcv_next;
                    if seq + data.len() as i64 == expected || seq == expected {
                        {
                            let c = &mut self.conns[id];
                            c.rcv_next += 1; // the FIN
                            c.state = TcpState::Closed;
                        }
                        self.ack(id);
                        self.events.push_back(Event::PeerClosed(id));
                    }
                }
            }
            TcpState::FinWait => {
                if !data.is_empty() {
                    self.deliver(id, seq, data);
                }
                if fl & flags::ACK != 0 && ack == self.conns[id].snd_next {
                    self.conns[id].state = TcpState::Closed;
                }
                if fl & flags::FIN != 0 {
                    {
                        let c = &mut self.conns[id];
                        c.rcv_next += 1;
                        c.state = TcpState::Closed;
                    }
                    self.ack(id);
                    self.events.push_back(Event::PeerClosed(id));
                }
            }
            TcpState::Closed => {}
        }
    }

    fn deliver(&mut self, id: ConnId, seq: i64, data: &[i64]) {
        let expected = self.conns[id].rcv_next;
        if seq != expected {
            // Out-of-order or duplicate: drop (no reassembly buffer).
            return;
        }
        self.conns[id].rcv_next += data.len() as i64;
        self.ack(id);
        self.events.push_back(Event::Data(id, data.to_vec()));
    }

    fn ack(&mut self, id: ConnId) {
        let c = &self.conns[id];
        let seg = [
            c.local_port,
            c.remote_port,
            c.snd_next,
            c.rcv_next,
            flags::ACK,
        ];
        let pkt = ip_packet(proto::TCP, self.ip, c.remote_ip, &seg);
        self.out.push_back(pkt);
    }
}

/// Shuttles queued packets between two stacks until quiescent (a test
/// and loopback helper; the real path goes through the NIC driver).
pub fn pump(a: &mut NetStack, b: &mut NetStack) {
    loop {
        let mut moved = false;
        for pkt in a.take_outgoing() {
            b.on_packet(&pkt);
            moved = true;
        }
        for pkt in b.take_outgoing() {
            a.on_packet(&pkt);
            moved = true;
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_roundtrip() {
        let mut a = NetStack::new(1);
        let mut b = NetStack::new(2);
        a.udp_send(500, 2, 53, &[9, 8, 7]);
        pump(&mut a, &mut b);
        let (src, sp, data) = b.udp_recv(53).unwrap();
        assert_eq!((src, sp, data), (1, 500, vec![9, 8, 7]));
        assert!(b.udp_recv(53).is_none());
        // Wrong destination address is ignored.
        a.udp_send(500, 9, 53, &[1]);
        pump(&mut a, &mut b);
        assert!(b.udp_recv(53).is_none());
    }

    #[test]
    fn tcp_handshake_and_data() {
        let mut client = NetStack::new(1);
        let mut server = NetStack::new(2);
        server.listen(80);
        let c = client.connect(40_000, 2, 80);
        pump(&mut client, &mut server);
        assert_eq!(client.next_event(), Some(Event::Connected(c)));
        let s = match server.next_event() {
            Some(Event::Accepted(s)) => s,
            other => panic!("expected accept, got {other:?}"),
        };
        assert_eq!(client.state(c), TcpState::Established);
        assert_eq!(server.state(s), TcpState::Established);
        // Client -> server data.
        client.send(c, &[10, 20, 30]);
        pump(&mut client, &mut server);
        assert_eq!(server.next_event(), Some(Event::Data(s, vec![10, 20, 30])));
        // Server -> client data.
        server.send(s, &[42]);
        pump(&mut client, &mut server);
        assert_eq!(client.next_event(), Some(Event::Data(c, vec![42])));
    }

    #[test]
    fn tcp_teardown() {
        let mut client = NetStack::new(1);
        let mut server = NetStack::new(2);
        server.listen(80);
        let c = client.connect(40_000, 2, 80);
        pump(&mut client, &mut server);
        client.next_event();
        let s = match server.next_event() {
            Some(Event::Accepted(s)) => s,
            _ => unreachable!(),
        };
        client.close(c);
        pump(&mut client, &mut server);
        assert_eq!(server.next_event(), Some(Event::PeerClosed(s)));
        server.close(s);
        pump(&mut client, &mut server);
        assert_eq!(client.state(c), TcpState::Closed);
        assert_eq!(server.state(s), TcpState::Closed);
    }

    #[test]
    fn closed_port_resets() {
        let mut client = NetStack::new(1);
        let mut server = NetStack::new(2);
        let c = client.connect(40_000, 2, 81); // nobody listening
        pump(&mut client, &mut server);
        assert_eq!(client.next_event(), Some(Event::Reset(c)));
        assert_eq!(client.state(c), TcpState::Closed);
    }

    #[test]
    fn out_of_order_segment_dropped() {
        let mut client = NetStack::new(1);
        let mut server = NetStack::new(2);
        server.listen(80);
        let c = client.connect(40_000, 2, 80);
        pump(&mut client, &mut server);
        client.next_event();
        let s = match server.next_event() {
            Some(Event::Accepted(s)) => s,
            _ => unreachable!(),
        };
        // Hand-forge a future segment: wrong seq, must be dropped.
        let conn = &client.conns[c];
        let seg = [
            conn.local_port,
            conn.remote_port,
            conn.snd_next + 100,
            conn.rcv_next,
            flags::ACK,
            7,
        ];
        let pkt = ip_packet(proto::TCP, 1, 2, &seg);
        server.on_packet(&pkt);
        assert_eq!(server.next_event(), None);
        // In-order traffic still works afterwards.
        client.send(c, &[1]);
        pump(&mut client, &mut server);
        assert_eq!(server.next_event(), Some(Event::Data(s, vec![1])));
    }

    #[test]
    fn two_connections_multiplex() {
        let mut client = NetStack::new(1);
        let mut server = NetStack::new(2);
        server.listen(80);
        let c1 = client.connect(40_000, 2, 80);
        let c2 = client.connect(40_001, 2, 80);
        pump(&mut client, &mut server);
        let mut accepted = Vec::new();
        while let Some(e) = server.next_event() {
            if let Event::Accepted(s) = e {
                accepted.push(s);
            }
        }
        assert_eq!(accepted.len(), 2);
        client.send(c1, &[1]);
        client.send(c2, &[2]);
        pump(&mut client, &mut server);
        let mut got = Vec::new();
        while let Some(e) = server.next_event() {
            if let Event::Data(s, d) = e {
                got.push((s, d));
            }
        }
        assert_eq!(got.len(), 2);
        assert_ne!(got[0].0, got[1].0);
    }
}
