//! The Linux user-emulation layer ("Hyp-Linux", paper §4.3/§6.4).
//!
//! The paper runs unmodified statically-linked Linux binaries by letting
//! the emulator — which runs in the same (ring-0 guest) process —
//! intercept `syscall` instructions and mimic Linux semantics, as in
//! Dune. This module reproduces that structure over HXE, a tiny binary
//! format standing in for ELF: an HXE image is a list of instructions
//! whose `Syscall` op carries real Linux syscall numbers; the emulator
//! services them *in-process* (the cheap path Figure 10's Hyp-Linux
//! column measures) and falls back to hypercalls only where kernel
//! state is genuinely involved.

use hk_abi::Sysno;
use hk_kernel::{GuestEnv, GuestProg, Poll};

use crate::ulib::{self, PageBudget, UserVm};

/// Linux syscall numbers the emulator understands (x86-64 ABI).
pub mod linux {
    /// write(fd, buf, len) — fd 1 goes to the console.
    pub const WRITE: i64 = 1;
    /// brk(addr) — grows the data segment.
    pub const BRK: i64 = 12;
    /// getpid().
    pub const GETPID: i64 = 39;
    /// exit(code).
    pub const EXIT: i64 = 60;
    /// gettid() — the Figure 10 null-syscall benchmark.
    pub const GETTID: i64 = 186;
}

/// HXE instructions. Registers are 8 virtual i64 cells.
#[derive(Debug, Clone)]
pub enum Op {
    /// `r[d] = imm`.
    Movi(usize, i64),
    /// `r[d] = r[a] + r[b]`.
    Add(usize, usize, usize),
    /// `r[d] = r[a] - r[b]`.
    Sub(usize, usize, usize),
    /// `r[d] = mem[r[a]]` (guest virtual).
    Load(usize, usize),
    /// `mem[r[a]] = r[b]`.
    Store(usize, usize),
    /// Jump to `target` if `r[a] != 0`.
    Jnz(usize, usize),
    /// Emit one character (low byte of `r[a]`) into the write buffer.
    Putc(usize),
    /// Linux syscall: number in `r[0]`, args in `r[1..]`, result to
    /// `r[0]`.
    Syscall,
    /// Stop.
    Halt,
}

/// A loaded HXE image.
#[derive(Debug, Clone)]
pub struct HxeImage {
    /// Program text.
    pub ops: Vec<Op>,
}

impl HxeImage {
    /// "hello" — writes a string via Linux `write(1, ...)`.
    pub fn hello(msg: &str) -> HxeImage {
        let mut ops = Vec::new();
        for b in msg.bytes() {
            ops.push(Op::Movi(1, b as i64));
            ops.push(Op::Putc(1));
        }
        ops.push(Op::Movi(0, linux::WRITE));
        ops.push(Op::Movi(1, 1));
        ops.push(Op::Syscall);
        ops.push(Op::Movi(0, linux::EXIT));
        ops.push(Op::Syscall);
        HxeImage { ops }
    }

    /// A compute loop: sums 1..=n into r3, then exits with the sum as
    /// the code (sha1sum/gzip stand-in: pure computation under
    /// emulation).
    pub fn sum_loop(n: i64) -> HxeImage {
        HxeImage {
            ops: vec![
                Op::Movi(1, n),   // counter
                Op::Movi(2, 1),   // constant 1
                Op::Movi(3, 0),   // acc
                Op::Add(3, 3, 1), // 3: acc += counter
                Op::Sub(1, 1, 2), // counter -= 1
                Op::Jnz(1, 3),    // loop
                Op::Movi(0, linux::EXIT),
                Op::Syscall,
            ],
        }
    }

    /// The Figure 10 null-syscall benchmark body: `gettid` n times.
    pub fn gettid_loop(n: usize) -> HxeImage {
        let mut ops = Vec::new();
        for _ in 0..n {
            ops.push(Op::Movi(0, linux::GETTID));
            ops.push(Op::Syscall);
        }
        ops.push(Op::Movi(0, linux::EXIT));
        ops.push(Op::Syscall);
        HxeImage { ops }
    }

    /// brk + memory touch: exercises the emulator's mmap-on-brk path.
    pub fn brk_touch(words: i64) -> HxeImage {
        HxeImage {
            ops: vec![
                Op::Movi(0, linux::BRK),
                Op::Movi(1, words),
                Op::Syscall, // r0 = base va
                Op::Movi(2, 4242),
                Op::Store(0, 2), // mem[base] = 4242
                Op::Load(3, 0),  // r3 = mem[base]
                Op::Movi(0, linux::EXIT),
                Op::Add(1, 3, 3), // exit code = 2 * value
                Op::Syscall,
            ],
        }
    }
}

/// Cycle cost of intercepting one `syscall` instruction in-process: the
/// Hyp-Linux row of Figure 10 measures 136 cycles for `gettid` — the
/// trap costs nothing (no mode switch), just emulator dispatch.
const EMU_DISPATCH_CYCLES: u64 = 136;

/// The emulator actor: interprets one HXE image as a guest process.
pub struct LinuxEmu {
    image: HxeImage,
    budget: PageBudget,
    vm: Option<UserVm>,
    regs: [i64; 8],
    pc: usize,
    brk_va: u64,
    /// Output written through Linux `write`.
    write_buf: Vec<u8>,
    /// Exit code once the program exits.
    pub exit_code: Option<i64>,
    /// Emulated Linux syscalls serviced.
    pub syscalls: u64,
    /// Instructions per poll slice.
    pub slice: usize,
}

impl LinuxEmu {
    /// Loads an image.
    pub fn new(image: HxeImage, budget: PageBudget) -> LinuxEmu {
        LinuxEmu {
            image,
            budget,
            vm: None,
            regs: [0; 8],
            pc: 0,
            brk_va: 0,
            write_buf: Vec::new(),
            exit_code: None,
            syscalls: 0,
            slice: 512,
        }
    }

    fn emulate_syscall(&mut self, env: &mut GuestEnv) -> i64 {
        self.syscalls += 1;
        env.machine.cycles.charge(EMU_DISPATCH_CYCLES);
        match self.regs[0] {
            linux::GETTID | linux::GETPID => env.pid,
            linux::WRITE => {
                // The buffer was staged through Putc; flush to console.
                for b in std::mem::take(&mut self.write_buf) {
                    env.putc(b);
                }
                0
            }
            linux::BRK => {
                // Grow by mapping pages through the real VM syscalls.
                let vm = self.vm.as_mut().expect("vm set up");
                let words = self.regs[1].max(1) as u64;
                let pages = words.div_ceil(env.machine.params().page_words);
                let mut base = 0;
                for i in 0..pages {
                    match vm.mmap_any(env, &mut self.budget) {
                        Ok((va, _frame)) => {
                            if i == 0 {
                                base = va;
                            }
                        }
                        Err(_) => return -12, // -ENOMEM, Linux-style
                    }
                }
                self.brk_va = base + words;
                base as i64
            }
            linux::EXIT => {
                self.exit_code = Some(self.regs[1]);
                0
            }
            _ => -38, // -ENOSYS
        }
    }
}

impl GuestProg for LinuxEmu {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        if self.vm.is_none() {
            // Close-on-exec: emulated binaries start with a clean table.
            let nr_fds = env.machine.params().nr_fds as i64;
            for fd in 0..nr_fds {
                env.hypercall(Sysno::Close, &[fd]);
            }
            self.vm = Some(UserVm::new(env.proc_field("pml4")));
        }
        if self.exit_code.is_some() {
            return Poll::Pending;
        }
        for _ in 0..self.slice {
            let Some(op) = self.image.ops.get(self.pc).cloned() else {
                self.exit_code = Some(0);
                break;
            };
            self.pc += 1;
            match op {
                Op::Movi(d, v) => self.regs[d] = v,
                Op::Add(d, a, b) => self.regs[d] = self.regs[a].wrapping_add(self.regs[b]),
                Op::Sub(d, a, b) => self.regs[d] = self.regs[a].wrapping_sub(self.regs[b]),
                Op::Load(d, a) => match env.read(self.regs[a] as u64) {
                    Ok(v) => self.regs[d] = v,
                    Err(_) => {
                        // Unhandled fault: the process triple-faults.
                        self.exit_code = Some(-11);
                        break;
                    }
                },
                Op::Store(a, b) => {
                    if env.write(self.regs[a] as u64, self.regs[b]).is_err() {
                        self.exit_code = Some(-11);
                        break;
                    }
                }
                Op::Jnz(a, target) => {
                    if self.regs[a] != 0 {
                        self.pc = target;
                    }
                }
                Op::Putc(a) => self.write_buf.push(self.regs[a] as u8),
                Op::Syscall => {
                    self.regs[0] = self.emulate_syscall(env);
                    if self.exit_code.is_some() {
                        break;
                    }
                }
                Op::Halt => {
                    self.exit_code = Some(0);
                    break;
                }
            }
        }
        if self.exit_code.is_some() {
            ulib::exit(env);
            Poll::Exited
        } else {
            Poll::Ready
        }
    }
}

/// Convenience: the hypercall-based null syscall, for the Hyperkernel
/// column of Figure 10 (the ported-binary configuration).
pub fn native_nop(env: &mut GuestEnv) -> i64 {
    env.hypercall(Sysno::Nop, &[])
}
