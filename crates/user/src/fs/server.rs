//! The file server: the journaling file system running as a dedicated
//! user process (paper §4.3), serving requests over the kernel's
//! synchronous IPC with page transfer.
//!
//! Protocol: the client writes a request into one of its frames,
//! `sys_send`s it to the server, and blocks in `sys_recv`. The server —
//! parked in `sys_recv` — wakes, executes the operation against the
//! file system, and `sys_reply_wait`s the response back, donating the
//! CPU to the client and re-arming itself for the next request.
//!
//! Request page layout (words):
//! `[op, a, b, path_len, path bytes..., data_len, data...]`.
//! The response status travels in the IPC value register; response data
//! in the transferred page.

use hk_abi::{Sysno, EAGAIN};
use hk_kernel::{GuestEnv, GuestProg, Poll};

use super::disk::RamDisk;
use super::{FileSys, FsError, T_DIR, T_FILE};
use crate::ulib::{PageBudget, UserVm};

/// Request opcodes.
pub mod op {
    /// Create a file: path -> [inum].
    pub const CREATE: i64 = 1;
    /// Create a directory: path -> [inum].
    pub const MKDIR: i64 = 2;
    /// Read: a=off, b=len, path -> data.
    pub const READ: i64 = 3;
    /// Write: a=off, path + data -> [].
    pub const WRITE: i64 = 4;
    /// Stat: path -> [inum, ty, size].
    pub const STAT: i64 = 5;
    /// Unlink: path -> [].
    pub const UNLINK: i64 = 6;
    /// Readdir: path -> [inum, len, bytes...] records.
    pub const READDIR: i64 = 7;
}

/// Encodes an [`FsError`] as a negative IPC status.
pub fn encode_err(e: &FsError) -> i64 {
    -100 - match e {
        FsError::NotFound => 0,
        FsError::Exists => 1,
        FsError::NoSpace => 2,
        FsError::NotDir => 3,
        FsError::IsDir => 4,
        FsError::NotEmpty => 5,
        FsError::BadName => 6,
        FsError::TooBig => 7,
        FsError::BadSuperblock => 8,
    }
}

/// Builds a request word vector.
pub fn build_request(op: i64, a: i64, b: i64, path: &str, data: &[i64]) -> Vec<i64> {
    let mut w = vec![op, a, b, path.len() as i64];
    w.extend(path.bytes().map(|c| c as i64));
    w.push(data.len() as i64);
    w.extend_from_slice(data);
    w
}

#[derive(Debug)]
struct Request {
    op: i64,
    a: i64,
    b: i64,
    path: String,
    data: Vec<i64>,
}

enum ServerState {
    Setup,
    Arming,
    Waiting,
    Replying { client: i64, status: i64, len: i64 },
}

/// The file server actor.
pub struct FsServer {
    fs: FileSys<RamDisk>,
    budget: PageBudget,
    vm: Option<UserVm>,
    frame: i64,
    state: ServerState,
    /// Requests served (for tests and statistics).
    pub served: u64,
}

impl FsServer {
    /// A server around a freshly formatted RAM disk.
    pub fn new(budget: PageBudget) -> FsServer {
        let fs = FileSys::mkfs(RamDisk::new(64, 1024), 64, 16).expect("mkfs");
        Self::with_fs(fs, budget)
    }

    /// A server over an existing (possibly pre-populated) file system.
    pub fn with_fs(fs: FileSys<RamDisk>, budget: PageBudget) -> FsServer {
        FsServer {
            fs,
            budget,
            vm: None,
            frame: -1,
            state: ServerState::Setup,
            served: 0,
        }
    }

    /// Direct access to the underlying file system (tests, mkfs tooling).
    pub fn fs_mut(&mut self) -> &mut FileSys<RamDisk> {
        &mut self.fs
    }

    fn parse(env: &GuestEnv, frame: i64) -> Request {
        let pw = env.machine.params().page_words;
        let w = |i: u64| env.page_word(frame, i);
        let op = w(0);
        let a = w(1);
        let b = w(2);
        let path_len = (w(3).max(0) as u64).min(pw.saturating_sub(5));
        let path: String = (0..path_len).map(|i| w(4 + i) as u8 as char).collect();
        let data_off = 4 + path_len;
        let data_len = (w(data_off).max(0) as u64).min(pw - data_off - 1);
        let data: Vec<i64> = (0..data_len).map(|i| w(data_off + 1 + i)).collect();
        Request {
            op,
            a,
            b,
            path,
            data,
        }
    }

    fn execute(&mut self, req: &Request) -> (i64, Vec<i64>) {
        let r: Result<Vec<i64>, FsError> = match req.op {
            op::CREATE => self.fs.create(&req.path, T_FILE).map(|i| vec![i as i64]),
            op::MKDIR => self.fs.create(&req.path, T_DIR).map(|i| vec![i as i64]),
            op::READ => self.fs.read(&req.path, req.a as u64, req.b as u64),
            op::WRITE => self
                .fs
                .write(&req.path, req.a as u64, &req.data)
                .map(|()| Vec::new()),
            op::STAT => self
                .fs
                .stat(&req.path)
                .map(|st| vec![st.inum as i64, st.ty, st.size as i64]),
            op::UNLINK => self.fs.unlink(&req.path).map(|()| Vec::new()),
            op::READDIR => self.fs.readdir(&req.path).map(|entries| {
                let mut out = Vec::new();
                for (inum, name) in entries {
                    out.push(inum as i64);
                    out.push(name.len() as i64);
                    out.extend(name.bytes().map(|b| b as i64));
                }
                out
            }),
            _ => Err(FsError::BadName),
        };
        match r {
            Ok(data) => (0, data),
            Err(e) => (encode_err(&e), Vec::new()),
        }
    }
}

impl GuestProg for FsServer {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        loop {
            match self.state {
                ServerState::Setup => {
                    // Drop any inherited descriptors; the server speaks
                    // IPC only.
                    let nr_fds = env.machine.params().nr_fds as i64;
                    for fd in 0..nr_fds {
                        env.hypercall(Sysno::Close, &[fd]);
                    }
                    let mut vm = UserVm::new(env.proc_field("pml4"));
                    match vm.mmap_any(env, &mut self.budget) {
                        Ok((_va, frame)) => {
                            self.frame = frame;
                            self.vm = Some(vm);
                            self.state = ServerState::Arming;
                        }
                        Err(e) => panic!("fs server setup failed: {e:?}"),
                    }
                }
                ServerState::Arming => {
                    let r = env.hypercall(Sysno::Recv, &[0, self.frame, -1]);
                    if r == 0 {
                        self.state = ServerState::Waiting;
                        return Poll::Pending; // now sleeping
                    }
                    if r == -EAGAIN {
                        return Poll::Pending; // nobody to yield to yet
                    }
                    panic!("fs server recv failed: {r}");
                }
                ServerState::Waiting => {
                    let sender = env.hvm_reg(2);
                    if sender == 0 {
                        // Spurious schedule; no message yet.
                        return Poll::Pending;
                    }
                    env.clear_hvm_reg(2);
                    let req = Self::parse(env, self.frame);
                    let (status, mut data) = self.execute(&req);
                    // Responses are capped at one page (the IPC transfer
                    // unit); larger reads must be chunked by the client.
                    data.truncate(env.machine.params().page_words as usize);
                    for (i, w) in data.iter().enumerate() {
                        env.set_page_word(self.frame, i as u64, *w);
                    }
                    self.served += 1;
                    self.state = ServerState::Replying {
                        client: sender,
                        status,
                        len: data.len() as i64,
                    };
                }
                ServerState::Replying {
                    client,
                    status,
                    len,
                } => {
                    let r = env.hypercall(Sysno::ReplyWait, &[client, status, self.frame, len, -1]);
                    if r == 0 {
                        // Reply delivered; we are re-armed and sleeping.
                        self.state = ServerState::Waiting;
                        return Poll::Pending;
                    }
                    if r == -EAGAIN {
                        // Client not yet blocked; let it run.
                        env.hypercall(Sysno::Yield, &[]);
                        return Poll::Pending;
                    }
                    panic!("fs server reply failed: {r}");
                }
            }
        }
    }
}

/// Client-side result of driving one IPC call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallResult {
    /// Still in flight; return `Poll::Pending` and try again when
    /// re-polled.
    NotYet,
    /// The server answered: `(status, response data)`.
    Done(i64, Vec<i64>),
}

/// Client state machine for request/response over IPC.
#[derive(Debug)]
pub struct IpcClient {
    /// The server process id.
    pub server: i64,
    state: ClientState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Idle,
    /// Sent, but not yet parked in `sys_recv`.
    NeedRecv,
    /// Parked; the next wake-up with our server as sender is the reply.
    Blocked,
}

impl IpcClient {
    /// A client of `server`.
    pub fn new(server: i64) -> IpcClient {
        IpcClient {
            server,
            state: ClientState::Idle,
        }
    }

    /// Drives one call forward. `frame` must be an owned frame holding
    /// the request (it is overwritten by the response).
    pub fn step(&mut self, env: &mut GuestEnv, frame: i64, req: &[i64]) -> CallResult {
        if self.state == ClientState::Idle {
            assert!(
                req.len() as u64 <= env.machine.params().page_words,
                "request larger than one page"
            );
            for (i, w) in req.iter().enumerate() {
                env.set_page_word(frame, i as u64, *w);
            }
            let r = env.hypercall(Sysno::Send, &[self.server, 1, frame, req.len() as i64, -1]);
            if r == -EAGAIN {
                // Server busy with someone else; retry later.
                env.hypercall(Sysno::Yield, &[]);
                return CallResult::NotYet;
            }
            assert_eq!(r, 0, "send to fs server failed: {r}");
            self.state = ClientState::NeedRecv;
        }
        if self.state == ClientState::NeedRecv {
            // Did the reply land already (we could not block earlier)?
            if env.hvm_reg(2) == self.server {
                return self.finish(env, frame);
            }
            let r = env.hypercall(Sysno::Recv, &[self.server, frame, -1]);
            if r == 0 {
                self.state = ClientState::Blocked;
                return CallResult::NotYet; // sleeping until the reply
            }
            if r == -EAGAIN {
                // Cannot block (no runnable successor); stay in NeedRecv
                // and retry on the next poll.
                return CallResult::NotYet;
            }
            panic!("recv for reply failed: {r}");
        }
        // Blocked and woken: check for the reply.
        if env.hvm_reg(2) != self.server {
            return CallResult::NotYet;
        }
        self.finish(env, frame)
    }

    fn finish(&mut self, env: &mut GuestEnv, frame: i64) -> CallResult {
        let status = env.hvm_reg(0);
        let len = env.hvm_reg(1).clamp(0, 512);
        env.clear_hvm_reg(2);
        self.state = ClientState::Idle;
        let data: Vec<i64> = (0..len as u64).map(|i| env.page_word(frame, i)).collect();
        CallResult::Done(status, data)
    }
}
