//! Write-ahead journaling (the xv6 log).
//!
//! All writes inside a transaction are absorbed in memory. Commit writes
//! the staged sectors into the log area, then the header (count + target
//! LBAs) — the commit point — then installs the sectors at their home
//! locations and clears the header. Recovery at mount replays any
//! committed-but-uninstalled log, so every operation is all-or-nothing
//! across crashes.

use std::collections::HashMap;

use super::disk::DiskIo;

/// The journal wrapped around a disk.
#[derive(Debug)]
pub struct Log<D: DiskIo> {
    disk: D,
    header_lba: u64,
    capacity: u64,
    /// Staged writes of the open transaction (absorption: the newest
    /// write to an LBA wins).
    staged: HashMap<u64, Vec<i64>>,
    /// Order of first-write for deterministic log placement.
    order: Vec<u64>,
    in_tx: bool,
}

impl<D: DiskIo> Log<D> {
    /// Wraps `disk`; the log occupies `header_lba` (the header) plus the
    /// following `capacity` sectors.
    pub fn new(disk: D, header_lba: u64, capacity: u64) -> Log<D> {
        Log {
            disk,
            header_lba,
            capacity,
            staged: HashMap::new(),
            order: Vec::new(),
            in_tx: false,
        }
    }

    /// Words per sector of the underlying disk.
    pub fn sector_words(&self) -> u64 {
        self.disk.sector_words()
    }

    /// Unwraps the disk.
    pub fn into_disk(self) -> D {
        assert!(!self.in_tx, "transaction still open");
        self.disk
    }

    /// Begins a transaction.
    ///
    /// # Panics
    ///
    /// Panics on nested transactions.
    pub fn begin(&mut self) {
        assert!(!self.in_tx, "nested transaction");
        self.in_tx = true;
    }

    /// Reads a sector, seeing staged writes.
    pub fn read(&mut self, lba: u64) -> Vec<i64> {
        if let Some(s) = self.staged.get(&lba) {
            return s.clone();
        }
        let mut buf = vec![0i64; self.disk.sector_words() as usize];
        self.disk.read_sector(lba, &mut buf);
        buf
    }

    /// Stages a sector write (must be inside a transaction).
    ///
    /// # Panics
    ///
    /// Panics outside a transaction or when the log capacity is
    /// exceeded (operations must be sized to the log, as in xv6).
    pub fn write(&mut self, lba: u64, data: &[i64]) {
        assert!(self.in_tx, "write outside transaction");
        if !self.staged.contains_key(&lba) {
            assert!(
                (self.order.len() as u64) < self.capacity,
                "transaction exceeds log capacity"
            );
            self.order.push(lba);
        }
        self.staged.insert(lba, data.to_vec());
    }

    /// Commits: log sectors, header (commit point), install, clear.
    pub fn commit(&mut self) {
        assert!(self.in_tx);
        let sw = self.disk.sector_words() as usize;
        if !self.order.is_empty() {
            // 1. Write staged data into the log area.
            for (i, &lba) in self.order.iter().enumerate() {
                let data = &self.staged[&lba];
                self.disk.write_sector(self.header_lba + 1 + i as u64, data);
            }
            // 2. Commit point: the header names the home locations.
            let mut header = vec![0i64; sw];
            header[0] = self.order.len() as i64;
            for (i, &lba) in self.order.iter().enumerate() {
                header[1 + i] = lba as i64;
            }
            self.disk.write_sector(self.header_lba, &header);
            // 3. Install at home locations.
            for &lba in &self.order {
                let data = self.staged[&lba].clone();
                self.disk.write_sector(lba, &data);
            }
            // 4. Clear the header.
            let zero = vec![0i64; sw];
            self.disk.write_sector(self.header_lba, &zero);
        }
        self.staged.clear();
        self.order.clear();
        self.in_tx = false;
    }

    /// Aborts: drops all staged writes.
    pub fn abort(&mut self) {
        assert!(self.in_tx);
        self.staged.clear();
        self.order.clear();
        self.in_tx = false;
    }

    /// Replays a committed log after a crash (idempotent).
    pub fn recover(&mut self) {
        let sw = self.disk.sector_words() as usize;
        let mut header = vec![0i64; sw];
        self.disk.read_sector(self.header_lba, &mut header);
        let n = header[0] as u64;
        if n == 0 {
            return;
        }
        let mut buf = vec![0i64; sw];
        for i in 0..n {
            let home = header[1 + i as usize] as u64;
            self.disk.read_sector(self.header_lba + 1 + i, &mut buf);
            self.disk.write_sector(home, &buf);
        }
        let zero = vec![0i64; sw];
        self.disk.write_sector(self.header_lba, &zero);
    }
}

#[cfg(test)]
mod tests {
    use super::super::disk::{DiskIo, RamDisk};
    use super::*;

    #[test]
    fn absorption_and_commit() {
        let mut log = Log::new(RamDisk::new(8, 32), 1, 4);
        log.begin();
        log.write(10, &[1; 8]);
        log.write(10, &[2; 8]); // absorbed
        log.write(11, &[3; 8]);
        assert_eq!(log.read(10), vec![2; 8]);
        log.commit();
        let mut disk = log.into_disk();
        let mut buf = [0i64; 8];
        disk.read_sector(10, &mut buf);
        assert_eq!(buf, [2; 8]);
    }

    #[test]
    fn abort_discards() {
        let mut log = Log::new(RamDisk::new(8, 32), 1, 4);
        log.begin();
        log.write(10, &[9; 8]);
        log.abort();
        assert_eq!(log.read(10), vec![0; 8]);
    }

    #[test]
    fn crash_before_commit_point_loses_tx() {
        // Simulate: stage + write log sectors but crash before header.
        let mut disk = RamDisk::new(8, 32);
        // Hand-stage what commit step 1 would do.
        disk.write_sector(2, &[7; 8]);
        // No header write: recovery must be a no-op.
        let mut log = Log::new(disk, 1, 4);
        log.recover();
        assert_eq!(log.read(10), vec![0; 8]);
    }

    #[test]
    fn crash_after_commit_point_replays() {
        // Simulate: log sector + header written, crash before install.
        let mut disk = RamDisk::new(8, 32);
        disk.write_sector(2, &[7; 8]); // first log slot
        let mut header = [0i64; 8];
        header[0] = 1;
        header[1] = 10;
        disk.write_sector(1, &header);
        let mut log = Log::new(disk, 1, 4);
        log.recover();
        assert_eq!(log.read(10), vec![7; 8]);
        // Header cleared; recovery is idempotent.
        log.recover();
        assert_eq!(log.read(10), vec![7; 8]);
    }

    #[test]
    #[should_panic(expected = "exceeds log capacity")]
    fn oversized_transaction_panics() {
        let mut log = Log::new(RamDisk::new(8, 32), 1, 2);
        log.begin();
        log.write(10, &[1; 8]);
        log.write(11, &[1; 8]);
        log.write(12, &[1; 8]);
    }
}
