//! The xv6-style journaling file system, ported to run in user space
//! (paper §4.3): superblock, write-ahead log, on-disk inodes with direct
//! and singly-indirect blocks, sector allocation bitmap, and directories
//! as inode-typed files of fixed-size entries.
//!
//! Every mutating operation is a transaction: its sector writes are
//! staged, committed to the log, and only then installed — a crash at
//! any point either replays the whole operation at mount or loses it
//! entirely (see the crash-recovery tests).

pub mod disk;
pub mod log;
pub mod server;

use disk::DiskIo;
use log::Log;

/// Inode type: unused slot.
pub const T_FREE: i64 = 0;
/// Inode type: directory.
pub const T_DIR: i64 = 1;
/// Inode type: regular file.
pub const T_FILE: i64 = 2;

/// Words per on-disk inode.
const INODE_WORDS: u64 = 16;
/// Direct sector pointers per inode.
const NDIRECT: usize = 12;
/// Words per directory entry: inum + 15 name characters.
const DIRENT_WORDS: u64 = 16;
/// Maximum file-name length.
pub const NAME_MAX: usize = 15;
/// Root directory inode number (0 is reserved/invalid).
pub const ROOT_INUM: u64 = 1;
/// Superblock magic.
const MAGIC: i64 = 0x4659_5348; // "HSYF"

/// File-system errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path component or inode missing.
    NotFound,
    /// Name already exists.
    Exists,
    /// No free inode/sector.
    NoSpace,
    /// Wrong inode type for the operation.
    NotDir,
    /// Wrong inode type for the operation.
    IsDir,
    /// Directory not empty on unlink.
    NotEmpty,
    /// Name too long or malformed path.
    BadName,
    /// Offset beyond the maximum file size.
    TooBig,
    /// Superblock invalid (not a filesystem).
    BadSuperblock,
}

/// Superblock contents.
#[derive(Debug, Clone, Copy)]
struct SuperBlock {
    nlog: u64,
    ninodes: u64,
    log_start: u64,
    inode_start: u64,
    bitmap_start: u64,
    data_start: u64,
    nsectors: u64,
}

/// File metadata as reported by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// The inode number.
    pub inum: u64,
    /// `T_DIR` or `T_FILE`.
    pub ty: i64,
    /// Size in words.
    pub size: u64,
}

/// The file system over a disk.
#[derive(Debug)]
pub struct FileSys<D: DiskIo> {
    log: Log<D>,
    sb: SuperBlock,
}

#[derive(Debug, Clone)]
struct Inode {
    ty: i64,
    size: u64,
    addrs: [u64; NDIRECT],
    indirect: u64,
}

impl<D: DiskIo> FileSys<D> {
    /// Formats a disk: superblock, empty log, `ninodes` inodes, bitmap,
    /// data area, and an empty root directory.
    pub fn mkfs(mut disk: D, ninodes: u64, nlog: u64) -> Result<FileSys<D>, FsError> {
        let sw = disk.sector_words();
        assert!(sw >= INODE_WORDS, "sectors too small for inodes");
        let nsectors = disk.nsectors();
        let inode_sectors = ninodes.div_ceil(sw / INODE_WORDS);
        let log_start = 1;
        let inode_start = log_start + 1 + nlog; // +1 for the log header
        let bitmap_start = inode_start + inode_sectors;
        // One bit per sector, 64 bits per word.
        let bitmap_sectors = nsectors.div_ceil(sw * 64);
        let data_start = bitmap_start + bitmap_sectors;
        if data_start + 8 > nsectors {
            return Err(FsError::NoSpace);
        }
        let mut sector = vec![0i64; sw as usize];
        sector[0] = MAGIC;
        sector[1] = nsectors as i64;
        sector[2] = nlog as i64;
        sector[3] = ninodes as i64;
        sector[4] = log_start as i64;
        sector[5] = inode_start as i64;
        sector[6] = bitmap_start as i64;
        sector[7] = data_start as i64;
        disk.write_sector(0, &sector);
        // Zero the log header, inode and bitmap areas.
        let zero = vec![0i64; sw as usize];
        for lba in log_start..data_start {
            disk.write_sector(lba, &zero);
        }
        let sb = SuperBlock {
            nlog,
            ninodes,
            log_start,
            inode_start,
            bitmap_start,
            data_start,
            nsectors,
        };
        let mut fs = FileSys {
            log: Log::new(disk, log_start, nlog),
            sb,
        };
        // Mark the metadata sectors as allocated in the bitmap and build
        // the root directory, all in one transaction.
        fs.log.begin();
        for lba in 0..data_start {
            fs.bitmap_set(lba, true);
        }
        let root = Inode {
            ty: T_DIR,
            size: 0,
            addrs: [0; NDIRECT],
            indirect: 0,
        };
        fs.put_inode(ROOT_INUM, &root);
        fs.log.commit();
        Ok(fs)
    }

    /// Mounts an existing filesystem, replaying any committed log.
    pub fn mount(mut disk: D) -> Result<FileSys<D>, FsError> {
        let sw = disk.sector_words();
        let mut sector = vec![0i64; sw as usize];
        disk.read_sector(0, &mut sector);
        if sector[0] != MAGIC {
            return Err(FsError::BadSuperblock);
        }
        let sb = SuperBlock {
            nsectors: sector[1] as u64,
            nlog: sector[2] as u64,
            ninodes: sector[3] as u64,
            log_start: sector[4] as u64,
            inode_start: sector[5] as u64,
            bitmap_start: sector[6] as u64,
            data_start: sector[7] as u64,
        };
        let mut log = Log::new(disk, sb.log_start, sb.nlog);
        log.recover();
        Ok(FileSys { log, sb })
    }

    /// Consumes the filesystem, returning the disk (for crash tests).
    pub fn into_disk(self) -> D {
        self.log.into_disk()
    }

    // -----------------------------------------------------------------
    // Inodes.
    // -----------------------------------------------------------------

    fn inode_pos(&self, inum: u64) -> (u64, u64) {
        let sw = self.log.sector_words();
        let per = sw / INODE_WORDS;
        (self.sb.inode_start + inum / per, (inum % per) * INODE_WORDS)
    }

    fn get_inode(&mut self, inum: u64) -> Inode {
        let (lba, off) = self.inode_pos(inum);
        let sector = self.log.read(lba);
        let w = &sector[off as usize..];
        let mut addrs = [0u64; NDIRECT];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = w[2 + i] as u64;
        }
        Inode {
            ty: w[0],
            size: w[1] as u64,
            addrs,
            indirect: w[2 + NDIRECT] as u64,
        }
    }

    fn put_inode(&mut self, inum: u64, ino: &Inode) {
        let (lba, off) = self.inode_pos(inum);
        let mut sector = self.log.read(lba);
        let w = &mut sector[off as usize..(off + INODE_WORDS) as usize];
        w[0] = ino.ty;
        w[1] = ino.size as i64;
        for (i, &a) in ino.addrs.iter().enumerate() {
            w[2 + i] = a as i64;
        }
        w[2 + NDIRECT] = ino.indirect as i64;
        self.log.write(lba, &sector);
    }

    fn alloc_inode(&mut self, ty: i64) -> Result<u64, FsError> {
        for inum in 1..self.sb.ninodes {
            let ino = self.get_inode(inum);
            if ino.ty == T_FREE {
                self.put_inode(
                    inum,
                    &Inode {
                        ty,
                        size: 0,
                        addrs: [0; NDIRECT],
                        indirect: 0,
                    },
                );
                return Ok(inum);
            }
        }
        Err(FsError::NoSpace)
    }

    // -----------------------------------------------------------------
    // Sector allocation bitmap.
    // -----------------------------------------------------------------

    fn bitmap_set(&mut self, lba: u64, used: bool) {
        let sw = self.log.sector_words();
        let bits_per_sector = sw * 64;
        let sector_lba = self.sb.bitmap_start + lba / bits_per_sector;
        let bit = lba % bits_per_sector;
        let mut sector = self.log.read(sector_lba);
        let word = (bit / 64) as usize;
        let mask = 1i64 << (bit % 64) as u32;
        if used {
            sector[word] |= mask;
        } else {
            sector[word] &= !mask;
        }
        self.log.write(sector_lba, &sector);
    }

    fn alloc_sector(&mut self) -> Result<u64, FsError> {
        let sw = self.log.sector_words();
        let bits_per_sector = sw * 64;
        for lba in self.sb.data_start..self.sb.nsectors {
            let sector_lba = self.sb.bitmap_start + lba / bits_per_sector;
            let bit = lba % bits_per_sector;
            let sector = self.log.read(sector_lba);
            let word = (bit / 64) as usize;
            if sector[word] & (1i64 << (bit % 64) as u32) == 0 {
                self.bitmap_set(lba, true);
                // Fresh sectors are zeroed (no stale data).
                let zero = vec![0i64; sw as usize];
                self.log.write(lba, &zero);
                return Ok(lba);
            }
        }
        Err(FsError::NoSpace)
    }

    // -----------------------------------------------------------------
    // Block mapping (bmap) and file I/O.
    // -----------------------------------------------------------------

    /// Maximum file size in words.
    pub fn max_file_words(&self) -> u64 {
        let sw = self.log.sector_words();
        (NDIRECT as u64 + sw) * sw
    }

    fn bmap(&mut self, ino: &mut Inode, n: u64, alloc: bool) -> Result<u64, FsError> {
        let sw = self.log.sector_words();
        if (n as usize) < NDIRECT {
            if ino.addrs[n as usize] == 0 {
                if !alloc {
                    return Err(FsError::NotFound);
                }
                ino.addrs[n as usize] = self.alloc_sector()?;
            }
            return Ok(ino.addrs[n as usize]);
        }
        let n = n - NDIRECT as u64;
        if n >= sw {
            return Err(FsError::TooBig);
        }
        if ino.indirect == 0 {
            if !alloc {
                return Err(FsError::NotFound);
            }
            ino.indirect = self.alloc_sector()?;
        }
        let mut ind = self.log.read(ino.indirect);
        if ind[n as usize] == 0 {
            if !alloc {
                return Err(FsError::NotFound);
            }
            let s = self.alloc_sector()?;
            ind = self.log.read(ino.indirect);
            ind[n as usize] = s as i64;
            self.log.write(ino.indirect, &ind);
        }
        Ok(ind[n as usize] as u64)
    }

    fn readi(&mut self, ino: &mut Inode, off: u64, len: u64) -> Vec<i64> {
        let sw = self.log.sector_words();
        let end = (off + len).min(ino.size);
        let mut out = Vec::new();
        let mut pos = off;
        while pos < end {
            let sector_idx = pos / sw;
            let Ok(lba) = self.bmap(ino, sector_idx, false) else {
                break;
            };
            let sector = self.log.read(lba);
            let start = (pos % sw) as usize;
            let take = ((end - pos) as usize).min(sw as usize - start);
            out.extend_from_slice(&sector[start..start + take]);
            pos += take as u64;
        }
        out
    }

    fn writei(&mut self, ino: &mut Inode, off: u64, data: &[i64]) -> Result<(), FsError> {
        let sw = self.log.sector_words();
        if off + data.len() as u64 > self.max_file_words() {
            return Err(FsError::TooBig);
        }
        let mut pos = off;
        let mut remaining = data;
        while !remaining.is_empty() {
            let lba = self.bmap(ino, pos / sw, true)?;
            let mut sector = self.log.read(lba);
            let start = (pos % sw) as usize;
            let take = remaining.len().min(sw as usize - start);
            sector[start..start + take].copy_from_slice(&remaining[..take]);
            self.log.write(lba, &sector);
            pos += take as u64;
            remaining = &remaining[take..];
        }
        if pos > ino.size {
            ino.size = pos;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Directories and paths.
    // -----------------------------------------------------------------

    fn dir_entries(&mut self, dir: &mut Inode) -> Vec<(u64, String)> {
        let raw = self.readi(dir, 0, dir.size);
        raw.chunks(DIRENT_WORDS as usize)
            .filter(|c| c[0] != 0)
            .map(|c| {
                let name: String = c[1..]
                    .iter()
                    .take_while(|&&w| w != 0)
                    .map(|&w| w as u8 as char)
                    .collect();
                (c[0] as u64, name)
            })
            .collect()
    }

    fn dir_lookup(&mut self, dir: &mut Inode, name: &str) -> Option<(u64, u64)> {
        let raw = self.readi(dir, 0, dir.size);
        for (i, c) in raw.chunks(DIRENT_WORDS as usize).enumerate() {
            if c[0] == 0 {
                continue;
            }
            let ename: String = c[1..]
                .iter()
                .take_while(|&&w| w != 0)
                .map(|&w| w as u8 as char)
                .collect();
            if ename == name {
                return Some((c[0] as u64, i as u64 * DIRENT_WORDS));
            }
        }
        None
    }

    fn dir_link(&mut self, dir: &mut Inode, name: &str, inum: u64) -> Result<(), FsError> {
        if name.is_empty() || name.len() > NAME_MAX {
            return Err(FsError::BadName);
        }
        let mut entry = vec![0i64; DIRENT_WORDS as usize];
        entry[0] = inum as i64;
        for (i, b) in name.bytes().enumerate() {
            entry[1 + i] = b as i64;
        }
        // Reuse a tombstone slot if any.
        let raw = self.readi(dir, 0, dir.size);
        for (i, c) in raw.chunks(DIRENT_WORDS as usize).enumerate() {
            if c[0] == 0 {
                return self.writei(dir, i as u64 * DIRENT_WORDS, &entry);
            }
        }
        let off = dir.size;
        self.writei(dir, off, &entry)
    }

    fn split_path(path: &str) -> Result<Vec<&str>, FsError> {
        if !path.starts_with('/') {
            return Err(FsError::BadName);
        }
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        for p in &parts {
            if p.len() > NAME_MAX {
                return Err(FsError::BadName);
            }
        }
        Ok(parts)
    }

    /// Resolves a path to an inode number.
    pub fn namei(&mut self, path: &str) -> Result<u64, FsError> {
        let parts = Self::split_path(path)?;
        let mut inum = ROOT_INUM;
        for p in parts {
            let mut ino = self.get_inode(inum);
            if ino.ty != T_DIR {
                return Err(FsError::NotDir);
            }
            inum = self.dir_lookup(&mut ino, p).ok_or(FsError::NotFound)?.0;
        }
        Ok(inum)
    }

    fn namei_parent<'p>(&mut self, path: &'p str) -> Result<(u64, &'p str), FsError> {
        let parts = Self::split_path(path)?;
        let Some((last, dirs)) = parts.split_last() else {
            return Err(FsError::BadName);
        };
        let mut inum = ROOT_INUM;
        for p in dirs {
            let mut ino = self.get_inode(inum);
            if ino.ty != T_DIR {
                return Err(FsError::NotDir);
            }
            inum = self.dir_lookup(&mut ino, p).ok_or(FsError::NotFound)?.0;
        }
        Ok((inum, last))
    }

    // -----------------------------------------------------------------
    // Public transactional operations.
    // -----------------------------------------------------------------

    /// Creates a file or directory at `path`.
    pub fn create(&mut self, path: &str, ty: i64) -> Result<u64, FsError> {
        let (dir_inum, name) = self.namei_parent(path)?;
        self.log.begin();
        let result = (|| {
            let mut dir = self.get_inode(dir_inum);
            if dir.ty != T_DIR {
                return Err(FsError::NotDir);
            }
            if self.dir_lookup(&mut dir, name).is_some() {
                return Err(FsError::Exists);
            }
            let inum = self.alloc_inode(ty)?;
            self.dir_link(&mut dir, name, inum)?;
            self.put_inode(dir_inum, &dir);
            Ok(inum)
        })();
        match result {
            Ok(inum) => {
                self.log.commit();
                Ok(inum)
            }
            Err(e) => {
                self.log.abort();
                Err(e)
            }
        }
    }

    /// Writes `data` into the file at `path` at word offset `off`,
    /// extending it as needed. Large writes are split across
    /// transactions sized to the log (as in xv6's `filewrite`), so each
    /// transaction fits the journal; a crash can lose a suffix but never
    /// corrupts the file system.
    pub fn write(&mut self, path: &str, off: u64, data: &[i64]) -> Result<(), FsError> {
        let inum = self.namei(path)?;
        let sw = self.log.sector_words();
        // Per transaction: data sectors + inode + bitmap + indirect + dir
        // slack must fit the log.
        let chunk_sectors = (self.sb.nlog.saturating_sub(4)).max(1);
        let chunk_words = (chunk_sectors * sw) as usize;
        let mut pos = off;
        for piece in data.chunks(chunk_words.max(1)) {
            self.log.begin();
            let result = (|| {
                let mut ino = self.get_inode(inum);
                if ino.ty == T_DIR {
                    return Err(FsError::IsDir);
                }
                self.writei(&mut ino, pos, piece)?;
                self.put_inode(inum, &ino);
                Ok(())
            })();
            match result {
                Ok(()) => self.log.commit(),
                Err(e) => {
                    self.log.abort();
                    return Err(e);
                }
            }
            pos += piece.len() as u64;
        }
        Ok(())
    }

    /// Reads up to `len` words from `path` at word offset `off`.
    pub fn read(&mut self, path: &str, off: u64, len: u64) -> Result<Vec<i64>, FsError> {
        let inum = self.namei(path)?;
        let mut ino = self.get_inode(inum);
        if ino.ty == T_DIR {
            return Err(FsError::IsDir);
        }
        Ok(self.readi(&mut ino, off, len))
    }

    /// Stats a path.
    pub fn stat(&mut self, path: &str) -> Result<Stat, FsError> {
        let inum = self.namei(path)?;
        let ino = self.get_inode(inum);
        Ok(Stat {
            inum,
            ty: ino.ty,
            size: ino.size,
        })
    }

    /// Lists a directory.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<(u64, String)>, FsError> {
        let inum = self.namei(path)?;
        let mut ino = self.get_inode(inum);
        if ino.ty != T_DIR {
            return Err(FsError::NotDir);
        }
        Ok(self.dir_entries(&mut ino))
    }

    /// Removes a file or an empty directory.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        let (dir_inum, name) = self.namei_parent(path)?;
        self.log.begin();
        let result = (|| {
            let mut dir = self.get_inode(dir_inum);
            let (inum, off) = self.dir_lookup(&mut dir, name).ok_or(FsError::NotFound)?;
            let mut ino = self.get_inode(inum);
            if ino.ty == T_DIR && !self.dir_entries(&mut ino).is_empty() {
                return Err(FsError::NotEmpty);
            }
            // Free the data sectors.
            let sw = self.log.sector_words();
            for i in 0..ino.addrs.len() {
                if ino.addrs[i] != 0 {
                    self.bitmap_set(ino.addrs[i], false);
                }
            }
            if ino.indirect != 0 {
                let ind = self.log.read(ino.indirect);
                for &s in ind.iter().take(sw as usize) {
                    if s != 0 {
                        self.bitmap_set(s as u64, false);
                    }
                }
                self.bitmap_set(ino.indirect, false);
            }
            self.put_inode(
                inum,
                &Inode {
                    ty: T_FREE,
                    size: 0,
                    addrs: [0; NDIRECT],
                    indirect: 0,
                },
            );
            // Tombstone the directory entry.
            let zero = vec![0i64; DIRENT_WORDS as usize];
            self.writei(&mut dir, off, &zero)?;
            self.put_inode(dir_inum, &dir);
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.log.commit();
                Ok(())
            }
            Err(e) => {
                self.log.abort();
                Err(e)
            }
        }
    }

    /// Writes a string as a file (one byte per word; word-pure contents).
    pub fn write_str(&mut self, path: &str, s: &str) -> Result<(), FsError> {
        let data: Vec<i64> = s.bytes().map(|b| b as i64).collect();
        self.write(path, 0, &data)
    }

    /// Reads a whole file back as a string.
    pub fn read_str(&mut self, path: &str) -> Result<String, FsError> {
        let st = self.stat(path)?;
        let words = self.read(path, 0, st.size)?;
        Ok(words.iter().map(|&w| w as u8 as char).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::disk::RamDisk;
    use super::*;

    fn fresh() -> FileSys<RamDisk> {
        FileSys::mkfs(RamDisk::new(64, 256), 32, 8).unwrap()
    }

    #[test]
    fn create_write_read() {
        let mut fs = fresh();
        fs.create("/hello.txt", T_FILE).unwrap();
        fs.write_str("/hello.txt", "hello, hyperkernel").unwrap();
        assert_eq!(fs.read_str("/hello.txt").unwrap(), "hello, hyperkernel");
        let st = fs.stat("/hello.txt").unwrap();
        assert_eq!(st.ty, T_FILE);
        assert_eq!(st.size, 18);
    }

    #[test]
    fn directories_nest() {
        let mut fs = fresh();
        fs.create("/etc", T_DIR).unwrap();
        fs.create("/etc/conf", T_DIR).unwrap();
        fs.create("/etc/conf/a", T_FILE).unwrap();
        fs.write_str("/etc/conf/a", "x").unwrap();
        let names: Vec<String> = fs
            .readdir("/etc/conf")
            .unwrap()
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        assert_eq!(names, vec!["a"]);
        assert_ne!(fs.namei("/etc").unwrap(), ROOT_INUM);
        assert_eq!(fs.stat("/etc").unwrap().ty, T_DIR);
    }

    #[test]
    fn errors_are_reported() {
        let mut fs = fresh();
        assert_eq!(fs.read_str("/nope"), Err(FsError::NotFound));
        fs.create("/a", T_FILE).unwrap();
        assert_eq!(fs.create("/a", T_FILE), Err(FsError::Exists));
        assert_eq!(fs.create("/a/b", T_FILE), Err(FsError::NotDir));
        assert_eq!(fs.readdir("/a"), Err(FsError::NotDir));
        fs.create("/d", T_DIR).unwrap();
        fs.create("/d/x", T_FILE).unwrap();
        assert_eq!(fs.unlink("/d"), Err(FsError::NotEmpty));
    }

    #[test]
    fn unlink_frees_space() {
        let mut fs = fresh();
        fs.create("/big", T_FILE).unwrap();
        let blob = vec![7i64; 64 * 10];
        fs.write("/big", 0, &blob).unwrap();
        fs.unlink("/big").unwrap();
        assert_eq!(fs.stat("/big"), Err(FsError::NotFound));
        // Space is reusable: write an equally big file again.
        fs.create("/big2", T_FILE).unwrap();
        fs.write("/big2", 0, &blob).unwrap();
        assert_eq!(fs.read("/big2", 0, 640).unwrap().len(), 640);
    }

    #[test]
    fn large_file_uses_indirect_blocks() {
        let mut fs = FileSys::mkfs(RamDisk::new(64, 512), 16, 8).unwrap();
        fs.create("/big", T_FILE).unwrap();
        // > NDIRECT sectors: 20 sectors of 64 words.
        let data: Vec<i64> = (0..64 * 20).collect();
        fs.write("/big", 0, &data).unwrap();
        let back = fs.read("/big", 0, data.len() as u64).unwrap();
        assert_eq!(back, data);
        // Sparse-ish offsets work too.
        fs.write("/big", 100, &[-5]).unwrap();
        assert_eq!(fs.read("/big", 100, 1).unwrap(), vec![-5]);
    }

    #[test]
    fn file_size_limit_enforced() {
        let mut fs = fresh();
        fs.create("/f", T_FILE).unwrap();
        let max = fs.max_file_words();
        assert_eq!(fs.write("/f", max, &[1]), Err(FsError::TooBig));
    }

    #[test]
    fn remount_preserves_data() {
        let mut fs = fresh();
        fs.create("/persist", T_FILE).unwrap();
        fs.write_str("/persist", "still here").unwrap();
        let disk = fs.into_disk();
        let mut fs2 = FileSys::mount(disk).unwrap();
        assert_eq!(fs2.read_str("/persist").unwrap(), "still here");
    }

    #[test]
    fn mount_rejects_garbage() {
        let disk = RamDisk::new(64, 64);
        assert!(matches!(FileSys::mount(disk), Err(FsError::BadSuperblock)));
    }
}
