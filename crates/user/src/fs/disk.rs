//! Disk abstraction for the file system.
//!
//! The file system runs over anything sector-addressed: a plain in-memory
//! disk for unit tests and offline `mkfs`, or the machine's simulated
//! NVMe-class block device reached through IOMMU-mapped DMA buffers (the
//! driver lives in the file-server process).

/// A sector-addressed disk of 64-bit words.
pub trait DiskIo {
    /// Words per sector.
    fn sector_words(&self) -> u64;
    /// Total sectors.
    fn nsectors(&self) -> u64;
    /// Reads sector `lba` into `buf` (exactly one sector long).
    fn read_sector(&mut self, lba: u64, buf: &mut [i64]);
    /// Writes sector `lba` from `buf`.
    fn write_sector(&mut self, lba: u64, buf: &[i64]);
}

/// An in-memory disk.
#[derive(Debug, Clone)]
pub struct RamDisk {
    sector_words: u64,
    data: Vec<i64>,
}

impl RamDisk {
    /// A zeroed disk.
    pub fn new(sector_words: u64, nsectors: u64) -> RamDisk {
        let words = sector_words
            .checked_mul(nsectors)
            .expect("disk size overflows u64");
        RamDisk {
            sector_words,
            data: vec![0; words as usize],
        }
    }

    /// Clones the raw contents (crash-simulation snapshots).
    pub fn snapshot(&self) -> RamDisk {
        self.clone()
    }
}

impl DiskIo for RamDisk {
    fn sector_words(&self) -> u64 {
        self.sector_words
    }

    fn nsectors(&self) -> u64 {
        self.data.len() as u64 / self.sector_words
    }

    fn read_sector(&mut self, lba: u64, buf: &mut [i64]) {
        let s = sector_start(lba, self.sector_words, self.nsectors());
        buf.copy_from_slice(&self.data[s..s + self.sector_words as usize]);
    }

    fn write_sector(&mut self, lba: u64, buf: &[i64]) {
        let s = sector_start(lba, self.sector_words, self.nsectors());
        self.data[s..s + self.sector_words as usize].copy_from_slice(buf);
    }
}

/// Word offset of sector `lba`, rejecting out-of-range and wrapping LBAs
/// explicitly rather than through a confusing slice panic (or, for a
/// wrapped product, a silent read of the wrong sector).
fn sector_start(lba: u64, sector_words: u64, nsectors: u64) -> usize {
    assert!(
        lba < nsectors,
        "sector {lba} out of range (disk has {nsectors})"
    );
    lba.checked_mul(sector_words)
        .expect("sector offset overflows u64") as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramdisk_roundtrip() {
        let mut d = RamDisk::new(8, 16);
        let w = [1i64, 2, 3, 4, 5, 6, 7, 8];
        d.write_sector(3, &w);
        let mut r = [0i64; 8];
        d.read_sector(3, &mut r);
        assert_eq!(r, w);
        d.read_sector(4, &mut r);
        assert_eq!(r, [0; 8]);
    }

    #[test]
    fn last_sector_is_addressable() {
        let mut d = RamDisk::new(4, 16);
        let w = [9i64; 4];
        d.write_sector(15, &w);
        let mut r = [0i64; 4];
        d.read_sector(15, &mut r);
        assert_eq!(r, w);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sector_past_end_panics() {
        let mut d = RamDisk::new(4, 16);
        d.write_sector(16, &[0; 4]);
    }
}
