//! User space: everything that runs as guest processes on the verified
//! kernel (paper §4.3).
//!
//! Hyperkernel's exokernel-flavoured interface pushes policy to user
//! space, so this crate is where the familiar Unix machinery lives:
//!
//! * [`ulib`] — the libc analogue: page allocation and address-space
//!   construction over the fine-grained VM system calls, process
//!   spawning, pipe I/O with retry loops (the kernel's interface is
//!   all-or-error by design);
//! * [`fs`] — the xv6-style journaling file system, usable on a RAM
//!   disk or behind the DMA block-device driver, plus the file server
//!   process;
//! * [`net`] — a small TCP/IP stack (the lwIP analogue) and a network
//!   server over the simulated NIC;
//! * [`httpd`] — an HTTP server/client pair on top of [`net`] and
//!   [`fs`] (the paper hosts its own git repository this way);
//! * [`shell`] — an sh-like shell and coreutils, wiring pipelines
//!   through kernel pipes and `sys_transfer_fd`;
//! * [`linuxemu`] — the Linux user-emulation layer: runs HXE "binaries"
//!   whose Linux system calls are serviced in-process, the Hyp-Linux
//!   configuration of Figure 10.

pub mod fs;
pub mod httpd;
pub mod linuxemu;
pub mod net;
pub mod shell;
pub mod ulib;
