//! The libc analogue: user-space policy over the kernel's fine-grained,
//! all-or-error system calls (paper §4.1: "explicit resource
//! management", §4.3 "we have implemented a libc that is source
//! compatible with xv6").
//!
//! The kernel never searches for resources, so user space must: each
//! process carries a [`PageBudget`] of RAM page numbers it considers
//! its own (boot hands init everything; parents donate sub-ranges to
//! children), a [`UserVm`] that builds its address space one verified
//! system call at a time, and retry wrappers that turn the kernel's
//! `-EAGAIN` discipline into blocking-style pipe I/O.

use hk_abi::{Sysno, EAGAIN, PTE_P, PTE_U, PTE_W};
use hk_kernel::GuestEnv;

/// The set of RAM pages a process may allocate from (a suggestion: the
/// kernel re-validates every allocation).
#[derive(Debug, Clone, Default)]
pub struct PageBudget {
    free: Vec<i64>,
}

impl PageBudget {
    /// A budget over an explicit page range.
    pub fn from_range(lo: i64, hi: i64) -> PageBudget {
        PageBudget {
            free: (lo..hi).rev().collect(),
        }
    }

    /// Takes one page from the budget.
    pub fn take(&mut self) -> Option<i64> {
        self.free.pop()
    }

    /// Returns a page to the budget.
    pub fn give_back(&mut self, pn: i64) {
        self.free.push(pn);
    }

    /// Splits off `n` pages for a child process.
    pub fn donate(&mut self, n: usize) -> PageBudget {
        let at = self.free.len().saturating_sub(n);
        PageBudget {
            free: self.free.split_off(at),
        }
    }

    /// Pages remaining.
    pub fn remaining(&self) -> usize {
        self.free.len()
    }
}

/// A user-level view of this process's address space: which intermediate
/// tables exist, and a bump allocator over virtual page numbers.
#[derive(Debug, Default)]
pub struct UserVm {
    /// The process's page-table root (pml4 page number).
    pub pml4: i64,
    /// Installed PDPTs by l3 index.
    pdpts: std::collections::HashMap<u64, i64>,
    /// Installed PDs by (l3, l2).
    pds: std::collections::HashMap<(u64, u64), i64>,
    /// Installed PTs by (l3, l2, l1).
    pts: std::collections::HashMap<(u64, u64, u64), i64>,
    /// Next unused virtual page number for `mmap_any`.
    next_vpage: u64,
    /// Mapped frames by virtual page number.
    pub frames: std::collections::HashMap<u64, i64>,
}

/// Errors from user-level VM construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The page budget ran dry.
    OutOfPages,
    /// The kernel rejected a call (errno).
    Kernel(i64),
}

impl UserVm {
    /// Creates the view for a process whose root is `pml4`.
    pub fn new(pml4: i64) -> UserVm {
        UserVm {
            pml4,
            next_vpage: 1, // leave virtual page 0 unmapped (null guard)
            ..UserVm::default()
        }
    }

    /// Splits a virtual page number into table indices.
    fn split(env: &GuestEnv, vpage: u64) -> (u64, u64, u64, u64) {
        let k = env.machine.params().page_words.trailing_zeros() as u64;
        let mask = (1u64 << k) - 1;
        (
            (vpage >> (3 * k)) & mask,
            (vpage >> (2 * k)) & mask,
            (vpage >> k) & mask,
            vpage & mask,
        )
    }

    /// Ensures the page-table chain for `vpage` exists, then maps a
    /// fresh frame there with the given write permission.
    pub fn map_vpage(
        &mut self,
        env: &mut GuestEnv,
        budget: &mut PageBudget,
        vpage: u64,
        writable: bool,
    ) -> Result<i64, VmError> {
        let pid = env.pid;
        let (l3, l2, l1, l0) = Self::split(env, vpage);
        let all = PTE_P | PTE_W | PTE_U;
        if !self.pdpts.contains_key(&l3) {
            let pn = budget.take().ok_or(VmError::OutOfPages)?;
            let r = env.hypercall(Sysno::AllocPdpt, &[pid, self.pml4, l3 as i64, pn, all]);
            if r != 0 {
                return Err(VmError::Kernel(r));
            }
            self.pdpts.insert(l3, pn);
        }
        let pdpt = self.pdpts[&l3];
        if let std::collections::hash_map::Entry::Vacant(e) = self.pds.entry((l3, l2)) {
            let pn = budget.take().ok_or(VmError::OutOfPages)?;
            let r = env.hypercall(Sysno::AllocPd, &[pid, pdpt, l2 as i64, pn, all]);
            if r != 0 {
                return Err(VmError::Kernel(r));
            }
            e.insert(pn);
        }
        let pd = self.pds[&(l3, l2)];
        if let std::collections::hash_map::Entry::Vacant(e) = self.pts.entry((l3, l2, l1)) {
            let pn = budget.take().ok_or(VmError::OutOfPages)?;
            let r = env.hypercall(Sysno::AllocPt, &[pid, pd, l1 as i64, pn, all]);
            if r != 0 {
                return Err(VmError::Kernel(r));
            }
            e.insert(pn);
        }
        let pt = self.pts[&(l3, l2, l1)];
        let frame = budget.take().ok_or(VmError::OutOfPages)?;
        let perm = if writable { all } else { PTE_P | PTE_U };
        let r = env.hypercall(Sysno::AllocFrame, &[pid, pt, l0 as i64, frame, perm]);
        if r != 0 {
            return Err(VmError::Kernel(r));
        }
        self.frames.insert(vpage, frame);
        Ok(frame)
    }

    /// `mmap`-style: maps the next free virtual page, returning
    /// `(virtual address, frame page number)`.
    pub fn mmap_any(
        &mut self,
        env: &mut GuestEnv,
        budget: &mut PageBudget,
    ) -> Result<(u64, i64), VmError> {
        let vpage = self.next_vpage;
        self.next_vpage += 1;
        let frame = self.map_vpage(env, budget, vpage, true)?;
        let va = vpage * env.machine.params().page_words;
        Ok((va, frame))
    }

    /// The PT page and slot covering `vpage` (for `sys_protect_frame`).
    pub fn pt_slot(&self, env: &GuestEnv, vpage: u64) -> Option<(i64, i64)> {
        let (l3, l2, l1, l0) = Self::split(env, vpage);
        self.pts.get(&(l3, l2, l1)).map(|&pt| (pt, l0 as i64))
    }

    /// mprotect-style permission change on an already-mapped page.
    pub fn protect_vpage(
        &mut self,
        env: &mut GuestEnv,
        vpage: u64,
        writable: bool,
    ) -> Result<(), VmError> {
        let (pt, slot) = self.pt_slot(env, vpage).ok_or(VmError::Kernel(-1))?;
        let frame = *self.frames.get(&vpage).ok_or(VmError::Kernel(-1))?;
        let perm = if writable {
            PTE_P | PTE_W | PTE_U
        } else {
            PTE_P | PTE_U
        };
        let r = env.hypercall(Sysno::ProtectFrame, &[pt, slot, frame, perm]);
        if r != 0 {
            return Err(VmError::Kernel(r));
        }
        Ok(())
    }
}

/// Spawns a child process: takes 3 pages from the budget for the child's
/// anatomy, clones, optionally pre-wires file descriptors
/// (`(parent_fd, child_fd)` pairs), donates `donate_pages` pages, and
/// makes it runnable. Returns the child's budget (to be handed to its
/// actor).
pub fn spawn(
    env: &mut GuestEnv,
    budget: &mut PageBudget,
    child_pid: i64,
    fd_wiring: &[(i64, i64)],
    donate_pages: usize,
) -> Result<PageBudget, i64> {
    let pml4 = budget.take().ok_or(-1i64)?;
    let hvm = budget.take().ok_or(-1i64)?;
    let stack = budget.take().ok_or(-1i64)?;
    let r = env.hypercall(Sysno::CloneProc, &[child_pid, pml4, hvm, stack]);
    if r != 0 {
        budget.give_back(stack);
        budget.give_back(hvm);
        budget.give_back(pml4);
        return Err(r);
    }
    for &(pfd, cfd) in fd_wiring {
        let r = env.hypercall(Sysno::TransferFd, &[child_pid, pfd, cfd]);
        if r != 0 {
            return Err(r);
        }
    }
    let child_budget = budget.donate(donate_pages);
    let r = env.hypercall(Sysno::SetRunnable, &[child_pid]);
    if r != 0 {
        return Err(r);
    }
    Ok(child_budget)
}

/// Exits the calling process (kill self); returns only if the kernel
/// refused (no runnable successor).
pub fn exit(env: &mut GuestEnv) -> i64 {
    env.hypercall(Sysno::Kill, &[env.pid])
}

/// Blocking-style pipe write: retries `-EAGAIN` by yielding. Returns
/// words written or a kernel error.
pub fn pipe_write_all(
    env: &mut GuestEnv,
    fd: i64,
    pn: i64,
    offset: i64,
    len: i64,
    max_retries: usize,
) -> i64 {
    for _ in 0..max_retries {
        let r = env.hypercall(Sysno::PipeWrite, &[fd, pn, offset, len]);
        if r != -EAGAIN {
            return r;
        }
        env.hypercall(Sysno::Yield, &[]);
    }
    -EAGAIN
}

/// Blocking-style pipe read; `Ok(0)` is EOF.
pub fn pipe_read_all(
    env: &mut GuestEnv,
    fd: i64,
    pn: i64,
    offset: i64,
    len: i64,
    max_retries: usize,
) -> i64 {
    for _ in 0..max_retries {
        let r = env.hypercall(Sysno::PipeRead, &[fd, pn, offset, len]);
        if r != -EAGAIN {
            return r;
        }
        env.hypercall(Sysno::Yield, &[]);
    }
    -EAGAIN
}

/// Writes a Rust string into an owned page, one byte per word (the
/// word-granular analogue of a C string buffer).
pub fn store_str(env: &mut GuestEnv, pn: i64, offset: u64, s: &str) -> u64 {
    for (i, b) in s.bytes().enumerate() {
        env.set_page_word(pn, offset + i as u64, b as i64);
    }
    s.len() as u64
}

/// Reads `len` byte-words from an owned page as a string.
pub fn load_str(env: &GuestEnv, pn: i64, offset: u64, len: u64) -> String {
    (0..len)
        .map(|i| env.page_word(pn, offset + i) as u8 as char)
        .collect()
}

/// The boot-time page budget for init: everything the kernel's boot code
/// left free (pages 3.. are the free list; 0-2 are init's own anatomy).
pub fn init_budget(env: &GuestEnv) -> PageBudget {
    PageBudget::from_range(3, env.machine.params().nr_pages as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_arithmetic() {
        let mut b = PageBudget::from_range(3, 11);
        assert_eq!(b.remaining(), 8);
        assert_eq!(b.take().unwrap(), 3);
        let mut child = b.donate(3);
        assert_eq!(child.remaining(), 3);
        assert!(child.take().is_some());
        assert_eq!(b.remaining(), 4);
        b.give_back(3);
        assert_eq!(b.remaining(), 5);
    }
}
