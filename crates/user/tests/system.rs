//! Whole-OS integration tests: boot the verified kernel, run multiple
//! guest processes, and exercise the user-space stack end to end —
//! IPC-backed file service, shell pipelines over kernel pipes, the
//! IOMMU-backed NIC driver, and Linux emulation.

use hk_abi::KernelParams;
use hk_kernel::{GuestEnv, GuestProg, Poll, System};
use hk_user::fs::server::{build_request, op, CallResult, FsServer, IpcClient};
use hk_user::fs::{disk::RamDisk, FileSys, T_FILE};
use hk_user::linuxemu::{HxeImage, LinuxEmu};
use hk_user::shell::Shell;
use hk_user::ulib::{self, PageBudget, UserVm};
use hk_vm::CostModel;

fn boot() -> System {
    System::boot(KernelParams::production(), CostModel::default_model())
}

// ---------------------------------------------------------------------
// FS server + client over IPC.
// ---------------------------------------------------------------------

/// `(status, data)` rows shared between the exerciser and the assertions.
type SharedResults = std::rc::Rc<std::cell::RefCell<Vec<(i64, Vec<i64>)>>>;

/// Init actor that spawns the fs server and performs a scripted series
/// of file operations against it.
struct FsExerciser {
    budget: Option<PageBudget>,
    vm: Option<UserVm>,
    frame: i64,
    client: IpcClient,
    script: Vec<Vec<i64>>,
    step: usize,
    /// (status, data) per completed request.
    pub results: SharedResults,
    spawned: bool,
}

impl FsExerciser {
    fn new(results: SharedResults) -> FsExerciser {
        let hello: Vec<i64> = "hello from ipc".bytes().map(|b| b as i64).collect();
        FsExerciser {
            budget: None,
            vm: None,
            frame: -1,
            client: IpcClient::new(2),
            script: vec![
                build_request(op::CREATE, 0, 0, "/greeting", &[]),
                build_request(op::WRITE, 0, 0, "/greeting", &hello),
                build_request(op::STAT, 0, 0, "/greeting", &[]),
                build_request(op::READ, 0, hello.len() as i64, "/greeting", &[]),
                build_request(op::MKDIR, 0, 0, "/tmp", &[]),
                build_request(op::READDIR, 0, 0, "/", &[]),
                build_request(op::READ, 0, 4, "/missing", &[]),
            ],
            step: 0,
            results,
            spawned: false,
        }
    }
}

impl GuestProg for FsExerciser {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        if self.budget.is_none() {
            let mut budget = ulib::init_budget(env);
            // Spawn the fs server as PID 2 with a healthy page budget.
            let server_budget = ulib::spawn(env, &mut budget, 2, &[], 16).unwrap();
            env.register_actor(2, Box::new(FsServer::new(server_budget)));
            self.spawned = true;
            let mut vm = UserVm::new(env.proc_field("pml4"));
            let (_va, frame) = vm.mmap_any(env, &mut budget).unwrap();
            self.frame = frame;
            self.vm = Some(vm);
            self.budget = Some(budget);
        }
        while self.step < self.script.len() {
            let req = self.script[self.step].clone();
            match self.client.step(env, self.frame, &req) {
                CallResult::NotYet => return Poll::Pending,
                CallResult::Done(status, data) => {
                    self.results.borrow_mut().push((status, data));
                    self.step += 1;
                }
            }
        }
        Poll::Pending
    }
}

#[test]
fn fs_server_over_ipc() {
    let mut system = boot();
    let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    system.set_init(Box::new(FsExerciser::new(results.clone())));
    system.run(20_000);
    let results = results.borrow();
    assert_eq!(results.len(), 7, "all requests answered: {results:?}");
    // CREATE -> inum.
    assert_eq!(results[0].0, 0);
    // WRITE ok.
    assert_eq!(results[1].0, 0);
    // STAT: [inum, ty, size].
    assert_eq!(results[2].0, 0);
    assert_eq!(results[2].1[1], T_FILE);
    assert_eq!(results[2].1[2], 14);
    // READ returns the contents.
    let text: String = results[3].1.iter().map(|&w| w as u8 as char).collect();
    assert_eq!(text, "hello from ipc");
    // MKDIR ok; READDIR lists both entries.
    assert_eq!(results[4].0, 0);
    let listing: String = results[5].1.iter().map(|&w| w as u8 as char).collect();
    assert!(listing.contains("greeting"), "{listing}");
    assert!(listing.contains("tmp"), "{listing}");
    // Missing file: NotFound (-100).
    assert_eq!(results[6].0, -100);
}

// ---------------------------------------------------------------------
// Shell pipelines.
// ---------------------------------------------------------------------

/// Init actor that just hosts a shell (the shell spawns its own
/// children).
struct ShellInit {
    shell: Shell,
    started: bool,
}

impl GuestProg for ShellInit {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        if !self.started {
            self.started = true;
        }
        self.shell.poll(env)
    }
}

fn run_pipeline(line: &str) -> String {
    let mut system = boot();
    let budget = PageBudget::from_range(3, 200);
    let shell = Shell::new(line, 0, budget, 2);
    system.set_init(Box::new(ShellInit {
        shell,
        started: false,
    }));
    let exit = system.run(50_000);
    let text = system.console_text();
    let line_out = text.lines().last().unwrap_or("").to_string();
    let _ = exit;
    line_out
}

#[test]
fn shell_echo() {
    assert_eq!(run_pipeline("echo hello world"), "hello world");
}

#[test]
fn shell_pipeline_rev() {
    assert_eq!(run_pipeline("echo stressed | rev"), "desserts");
}

#[test]
fn shell_pipeline_three_stages() {
    assert_eq!(run_pipeline("echo stressed | rev | upper"), "DESSERTS");
}

#[test]
fn shell_wc() {
    assert_eq!(run_pipeline("echo one two three | wc"), "3");
}

#[test]
fn shell_unknown_command() {
    assert!(run_pipeline("frobnicate").contains("unknown command"));
}

// ---------------------------------------------------------------------
// Linux emulation.
// ---------------------------------------------------------------------

struct EmuInit {
    spawned: bool,
}

impl GuestProg for EmuInit {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        if !self.spawned {
            let mut budget = ulib::init_budget(env);
            let child = ulib::spawn(env, &mut budget, 2, &[], 24).unwrap();
            env.register_actor(
                2,
                Box::new(LinuxEmu::new(HxeImage::hello("emulated hello\n"), child)),
            );
            let child2 = ulib::spawn(env, &mut budget, 3, &[], 24).unwrap();
            env.register_actor(3, Box::new(LinuxEmu::new(HxeImage::brk_touch(10), child2)));
            self.spawned = true;
        }
        Poll::Pending
    }
}

#[test]
fn linux_emulation_runs_binaries() {
    let mut system = boot();
    system.set_init(Box::new(EmuInit { spawned: false }));
    system.run(20_000);
    assert!(
        system.console_text().contains("emulated hello"),
        "console: {:?}",
        system.console_text()
    );
    // Both emulated processes exited and became zombies.
    assert_eq!(
        system
            .kernel
            .read_global(&system.machine, "procs", 2, "state", 0),
        hk_abi::proc_state::ZOMBIE
    );
    assert_eq!(
        system
            .kernel
            .read_global(&system.machine, "procs", 3, "state", 0),
        hk_abi::proc_state::ZOMBIE
    );
}

// ---------------------------------------------------------------------
// Full teardown: zombie reclamation through the verified interface.
// ---------------------------------------------------------------------

struct ReaperInit {
    phase: usize,
    /// Pages reclaimed so far.
    reclaimed: std::rc::Rc<std::cell::RefCell<i64>>,
}

impl GuestProg for ReaperInit {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        use hk_abi::Sysno;
        match self.phase {
            0 => {
                let mut budget = ulib::init_budget(env);
                let child = ulib::spawn(env, &mut budget, 2, &[], 16).unwrap();
                // The child maps a couple of pages then exits.
                struct Mapper {
                    budget: PageBudget,
                }
                impl GuestProg for Mapper {
                    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
                        let mut vm = UserVm::new(env.proc_field("pml4"));
                        vm.mmap_any(env, &mut self.budget).unwrap();
                        vm.mmap_any(env, &mut self.budget).unwrap();
                        ulib::exit(env);
                        Poll::Exited
                    }
                }
                env.register_actor(2, Box::new(Mapper { budget: child }));
                self.phase = 1;
                Poll::Pending
            }
            1 => {
                // Reclaim every page owned by PID 2 (fails harmlessly
                // until the child is a zombie).
                let nr_pages = env.machine.params().nr_pages;
                let mut count = 0;
                for pn in 0..nr_pages as i64 {
                    if env.hypercall(Sysno::ReclaimPage, &[pn]) == 0 {
                        count += 1;
                    }
                }
                let r = env.hypercall(Sysno::Reap, &[2]);
                if r == 0 {
                    *self.reclaimed.borrow_mut() = count;
                    self.phase = 2;
                }
                Poll::Pending
            }
            _ => Poll::Pending,
        }
    }
}

#[test]
fn zombie_reclamation_and_reap() {
    let mut system = boot();
    let reclaimed = std::rc::Rc::new(std::cell::RefCell::new(0));
    system.set_init(Box::new(ReaperInit {
        phase: 0,
        reclaimed: reclaimed.clone(),
    }));
    system.run(30_000);
    // 3 anatomy pages + 2 frames + page-table chain (3 tables) = 8.
    assert_eq!(*reclaimed.borrow(), 8);
    assert_eq!(
        system
            .kernel
            .read_global(&system.machine, "procs", 2, "state", 0),
        hk_abi::proc_state::FREE
    );
    assert!(system.kernel.check_invariant(&mut system.machine).unwrap());
}

// ---------------------------------------------------------------------
// HTTP over the NIC driver (DMA through the verified IOMMU path).
// ---------------------------------------------------------------------

struct WebInit {
    driver: Option<hk_user::net::driver::NicDriver>,
    server: Option<hk_user::httpd::HttpServer>,
    vm: Option<UserVm>,
    budget: Option<PageBudget>,
}

impl GuestProg for WebInit {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        if self.vm.is_none() {
            let mut budget = ulib::init_budget(env);
            let mut vm = UserVm::new(env.proc_field("pml4"));
            let mut driver = self.driver.take().unwrap();
            driver
                .setup(env, &mut vm, &mut budget, 0, 5)
                .expect("driver setup");
            self.driver = Some(driver);
            self.vm = Some(vm);
            self.budget = Some(budget);
        }
        let driver = self.driver.as_mut().unwrap();
        let server = self.server.as_mut().unwrap();
        let moved = driver.pump(env, &mut server.stack);
        server.step();
        let moved2 = driver.pump(env, &mut server.stack);
        if moved + moved2 > 0 {
            Poll::Ready
        } else {
            Poll::Pending
        }
    }
}

#[test]
fn http_over_iommu_nic() {
    use hk_user::httpd::{HttpClient, HttpServer};
    use hk_vm::dev::{Nic, Wire};

    let mut system = boot();
    // Server side: filesystem with content, NIC device 0 on vector 5.
    let mut fs = FileSys::mkfs(RamDisk::new(64, 512), 32, 8).unwrap();
    fs.create("/index.html", T_FILE).unwrap();
    fs.write_str("/index.html", "<h1>served over DMA</h1>")
        .unwrap();
    let server_nic = std::rc::Rc::new(std::cell::RefCell::new(Nic::new(0, 5)));
    system.set_init(Box::new(WebInit {
        driver: Some(hk_user::net::driver::NicDriver::new(server_nic.clone())),
        server: Some(HttpServer::new(2, fs)),
        vm: None,
        budget: None,
    }));
    // Client side: a host on the other end of the wire (outside the
    // machine, like the paper's external HTTP client).
    let mut client = HttpClient::get(1, 2, "/index.html");
    // Event loop: run the guest, then move frames across the wire. The
    // client side needs its own pseudo-NIC; we move frames directly
    // between the client stack and the guest NIC queues.
    for _ in 0..60 {
        system.run(200);
        // The wire: drain guest tx into the client, deliver client tx as
        // guest rx (raising the NIC interrupt through the machine).
        {
            let mut nic = server_nic.borrow_mut();
            for frame in std::mem::take(&mut nic.tx_queue) {
                client.stack.on_packet(&frame);
            }
            for pkt in client.stack.take_outgoing() {
                nic.wire_deliver(&mut system.machine, pkt);
            }
        }
        client.step();
        if client.response.is_some() {
            break;
        }
    }
    let (status, body) = client.response.clone().expect("response arrived");
    assert_eq!(status, 200);
    assert_eq!(body, "<h1>served over DMA</h1>");
    let _ = Wire;
}
