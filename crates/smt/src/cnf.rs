//! CNF construction with Tseitin gates.
//!
//! [`CnfBuilder`] accumulates clauses over positive integer variables
//! (DIMACS-style literals: `v` / `-v`) and provides cached logic gates so
//! the bit-blaster emits structurally shared circuits. Variable 1 is
//! reserved and forced true, letting constants be represented as literals.

use std::collections::HashMap;

/// A DIMACS-style literal: positive for the variable, negative for its
/// negation. Never zero.
pub type Lit = i32;

/// The reserved always-true literal.
pub const LIT_TRUE: Lit = 1;
/// The reserved always-false literal.
pub const LIT_FALSE: Lit = -1;

/// Gate cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GateKey {
    And(Lit, Lit),
    Xor(Lit, Lit),
    Mux(Lit, Lit, Lit),
}

/// Incrementally builds a CNF formula with structural sharing.
#[derive(Debug)]
pub struct CnfBuilder {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
    cache: HashMap<GateKey, Lit>,
    /// Clauses already handed out by [`CnfBuilder::take_new`].
    drained: usize,
}

impl Default for CnfBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CnfBuilder {
    /// Creates a builder with the constant-true variable already asserted.
    pub fn new() -> Self {
        CnfBuilder {
            num_vars: 1,
            clauses: vec![vec![LIT_TRUE]],
            cache: HashMap::new(),
            drained: 0,
        }
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The accumulated clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Consumes the builder, returning `(num_vars, clauses)`.
    pub fn finish(self) -> (u32, Vec<Vec<Lit>>) {
        (self.num_vars, self.clauses)
    }

    /// Incremental drain: the clauses added since the previous
    /// `take_new` call (initially, all of them), with the current
    /// variable count. The builder stays usable, so a persistent
    /// bit-blaster can feed a persistent SAT solver batch by batch.
    pub fn take_new(&mut self) -> (u32, Vec<Vec<Lit>>) {
        let new = self.clauses[self.drained..].to_vec();
        self.drained = self.clauses.len();
        (self.num_vars, new)
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn new_var(&mut self) -> Lit {
        self.num_vars += 1;
        self.num_vars as Lit
    }

    /// Adds a clause (no tautology/duplicate filtering; the SAT solver
    /// handles those).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        debug_assert!(lits.iter().all(|&l| l != 0));
        self.clauses.push(lits.to_vec());
    }

    /// Asserts that a literal is true.
    pub fn assert_lit(&mut self, l: Lit) {
        self.add_clause(&[l]);
    }

    /// Converts a boolean constant to a literal.
    pub fn const_lit(&self, b: bool) -> Lit {
        if b {
            LIT_TRUE
        } else {
            LIT_FALSE
        }
    }

    /// `a AND b` as a literal.
    pub fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant and structural shortcuts.
        if a == LIT_FALSE || b == LIT_FALSE || a == -b {
            return LIT_FALSE;
        }
        if a == LIT_TRUE {
            return b;
        }
        if b == LIT_TRUE || a == b {
            return a;
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        if let Some(&o) = self.cache.get(&GateKey::And(a, b)) {
            return o;
        }
        let o = self.new_var();
        self.add_clause(&[-o, a]);
        self.add_clause(&[-o, b]);
        self.add_clause(&[o, -a, -b]);
        self.cache.insert(GateKey::And(a, b), o);
        o
    }

    /// `a OR b` as a literal.
    pub fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        -self.and_gate(-a, -b)
    }

    /// `a XOR b` as a literal.
    pub fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == LIT_FALSE {
            return b;
        }
        if b == LIT_FALSE {
            return a;
        }
        if a == LIT_TRUE {
            return -b;
        }
        if b == LIT_TRUE {
            return -a;
        }
        if a == b {
            return LIT_FALSE;
        }
        if a == -b {
            return LIT_TRUE;
        }
        // Canonicalize on variables: xor is symmetric and
        // xor(-a, b) = -xor(a, b).
        let mut negate = false;
        let (mut a, mut b) = (a, b);
        if a < 0 {
            a = -a;
            negate = !negate;
        }
        if b < 0 {
            b = -b;
            negate = !negate;
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        let o = if let Some(&o) = self.cache.get(&GateKey::Xor(a, b)) {
            o
        } else {
            let o = self.new_var();
            self.add_clause(&[-o, a, b]);
            self.add_clause(&[-o, -a, -b]);
            self.add_clause(&[o, -a, b]);
            self.add_clause(&[o, a, -b]);
            self.cache.insert(GateKey::Xor(a, b), o);
            o
        };
        if negate {
            -o
        } else {
            o
        }
    }

    /// `if c then t else e` as a literal.
    pub fn mux_gate(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if c == LIT_TRUE {
            return t;
        }
        if c == LIT_FALSE {
            return e;
        }
        if t == e {
            return t;
        }
        if t == LIT_TRUE && e == LIT_FALSE {
            return c;
        }
        if t == LIT_FALSE && e == LIT_TRUE {
            return -c;
        }
        if t == LIT_TRUE {
            return self.or_gate(c, e);
        }
        if t == LIT_FALSE {
            return self.and_gate(-c, e);
        }
        if e == LIT_TRUE {
            return self.or_gate(-c, t);
        }
        if e == LIT_FALSE {
            return self.and_gate(c, t);
        }
        if let Some(&o) = self.cache.get(&GateKey::Mux(c, t, e)) {
            return o;
        }
        let o = self.new_var();
        self.add_clause(&[-o, -c, t]);
        self.add_clause(&[-o, c, e]);
        self.add_clause(&[o, -c, -t]);
        self.add_clause(&[o, c, -e]);
        self.cache.insert(GateKey::Mux(c, t, e), o);
        o
    }

    /// `a == b` (XNOR) as a literal.
    pub fn eq_gate(&mut self, a: Lit, b: Lit) -> Lit {
        -self.xor_gate(a, b)
    }

    /// Full-adder sum and carry: `(sum, carry)` of `a + b + cin`.
    pub fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let ab = self.xor_gate(a, b);
        let sum = self.xor_gate(ab, cin);
        let c1 = self.and_gate(a, b);
        let c2 = self.and_gate(ab, cin);
        let carry = self.or_gate(c1, c2);
        (sum, carry)
    }

    /// Conjunction of many literals as a single literal.
    ///
    /// Reduces as a balanced tree rather than a linear fold: the clause
    /// count is identical, but the Tseitin output sits at depth
    /// `O(log n)` instead of `O(n)`, so unit propagation reaches the
    /// inputs in logarithmically many implication steps and conflict
    /// clauses over wide gates stay short.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_tree(lits, LIT_TRUE, Self::and_gate)
    }

    /// Disjunction of many literals as a single literal (balanced, see
    /// [`CnfBuilder::and_many`]).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_tree(lits, LIT_FALSE, Self::or_gate)
    }

    fn reduce_tree(
        &mut self,
        lits: &[Lit],
        unit: Lit,
        gate: fn(&mut Self, Lit, Lit) -> Lit,
    ) -> Lit {
        match lits.len() {
            0 => unit,
            1 => lits[0],
            n => {
                let (lo, hi) = lits.split_at(n / 2);
                let a = self.reduce_tree(lo, unit, gate);
                let b = self.reduce_tree(hi, unit, gate);
                gate(self, a, b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force checks a gate's clauses define the expected function.
    fn check_gate(builder: &CnfBuilder, inputs: &[Lit], output: Lit, f: &dyn Fn(&[bool]) -> bool) {
        let n = builder.num_vars() as usize;
        'outer: for bits in 0..(1u32 << n) {
            let val = |l: Lit| -> bool {
                let v = l.unsigned_abs() as usize;
                let b = bits >> (v - 1) & 1 == 1;
                if l > 0 {
                    b
                } else {
                    !b
                }
            };
            for clause in builder.clauses() {
                if !clause.iter().any(|&l| val(l)) {
                    continue 'outer; // not a satisfying assignment
                }
            }
            let ins: Vec<bool> = inputs.iter().map(|&l| val(l)).collect();
            assert_eq!(val(output), f(&ins), "gate mismatch on {ins:?}");
        }
    }

    #[test]
    fn and_gate_semantics() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        let o = b.and_gate(x, y);
        check_gate(&b, &[x, y], o, &|i| i[0] && i[1]);
    }

    #[test]
    fn xor_gate_semantics() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        let o = b.xor_gate(x, -y);
        check_gate(&b, &[x, y], o, &|i| i[0] ^ !i[1]);
    }

    #[test]
    fn mux_gate_semantics() {
        let mut b = CnfBuilder::new();
        let c = b.new_var();
        let t = b.new_var();
        let e = b.new_var();
        let o = b.mux_gate(c, t, e);
        check_gate(&b, &[c, t, e], o, &|i| if i[0] { i[1] } else { i[2] });
    }

    #[test]
    fn full_adder_semantics() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        let c = b.new_var();
        let (s, co) = b.full_adder(x, y, c);
        check_gate(&b, &[x, y, c], s, &|i| i[0] ^ i[1] ^ i[2]);
        check_gate(&b, &[x, y, c], co, &|i| {
            (i[0] && i[1]) || (i[2] && (i[0] ^ i[1]))
        });
    }

    #[test]
    fn gate_caching() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        let o1 = b.and_gate(x, y);
        let o2 = b.and_gate(y, x);
        assert_eq!(o1, o2);
        let x1 = b.xor_gate(x, y);
        let x2 = b.xor_gate(-x, -y);
        assert_eq!(x1, x2); // xor(-a,-b) == xor(a,b)
        let x3 = b.xor_gate(-x, y);
        assert_eq!(x3, -x1);
    }

    #[test]
    fn take_new_drains_incrementally() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        b.add_clause(&[x, y]);
        let (nv1, first) = b.take_new();
        assert_eq!(nv1, 3);
        assert_eq!(first.len(), 2); // the LIT_TRUE unit + [x, y]
        let (_, empty) = b.take_new();
        assert!(empty.is_empty());
        let o = b.and_gate(x, y);
        b.assert_lit(o);
        let (nv2, second) = b.take_new();
        assert_eq!(nv2, 4);
        assert_eq!(second.len(), 4); // three gate clauses + the unit
                                     // The full clause list is unaffected by draining.
        assert_eq!(b.clauses().len(), 6);
    }

    #[test]
    fn many_gates_are_balanced_and_correct() {
        let mut b = CnfBuilder::new();
        assert_eq!(b.and_many(&[]), LIT_TRUE);
        assert_eq!(b.or_many(&[]), LIT_FALSE);
        let xs: Vec<Lit> = (0..5).map(|_| b.new_var()).collect();
        assert_eq!(b.and_many(&xs[..1]), xs[0]);
        let o_and = b.and_many(&xs);
        check_gate(&b, &xs, o_and, &|i| i.iter().all(|&x| x));
        let mut b = CnfBuilder::new();
        let xs: Vec<Lit> = (0..5).map(|_| b.new_var()).collect();
        let o_or = b.or_many(&xs);
        check_gate(&b, &xs, o_or, &|i| i.iter().any(|&x| x));
    }

    #[test]
    fn constant_shortcuts() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        assert_eq!(b.and_gate(x, LIT_TRUE), x);
        assert_eq!(b.and_gate(x, LIT_FALSE), LIT_FALSE);
        assert_eq!(b.and_gate(x, -x), LIT_FALSE);
        assert_eq!(b.or_gate(x, -x), LIT_TRUE);
        assert_eq!(b.xor_gate(x, x), LIT_FALSE);
        assert_eq!(b.mux_gate(LIT_TRUE, x, LIT_FALSE), x);
    }
}
