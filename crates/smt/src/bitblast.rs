//! Bit-blasting: lowering UF-free terms to CNF.
//!
//! Every bit-vector term becomes a vector of literals (LSB first); every
//! boolean term becomes a single literal. Adders are ripple-carry,
//! multipliers shift-and-add, dividers restoring long division, and
//! variable shifts barrel shifters — standard circuits whose equivalence
//! with the ground evaluator ([`crate::eval`]) is property-tested.
//!
//! Terms containing [`crate::term::TermData::Apply`] must first go through
//! [`crate::ackermann`].
//!
//! The blaster is **persistent**: the term→literal cache and the variable
//! maps only ever grow, so one `BitBlaster` can encode a whole incremental
//! solver lifetime — later assertions reuse every circuit already built,
//! and [`CnfBuilder::take_new`] hands the delta to a live SAT solver.

use std::collections::HashMap;

use crate::cnf::{CnfBuilder, Lit, LIT_FALSE, LIT_TRUE};
use crate::term::{BvBinOp, CmpOp, Ctx, Sort, TermData, TermId, VarId};

/// A blasted term: one literal for booleans, LSB-first literals for
/// bit-vectors.
#[derive(Debug, Clone)]
pub enum Blasted {
    /// Boolean literal.
    Bool(Lit),
    /// Bit-vector literals, least-significant bit first.
    Bv(Vec<Lit>),
}

impl Blasted {
    fn as_bool(&self) -> Lit {
        match self {
            Blasted::Bool(l) => *l,
            Blasted::Bv(_) => panic!("expected bool blasting"),
        }
    }

    fn as_bv(&self) -> &[Lit] {
        match self {
            Blasted::Bv(bits) => bits,
            Blasted::Bool(_) => panic!("expected bv blasting"),
        }
    }
}

/// Bit-blaster state: the CNF under construction plus caches.
#[derive(Debug, Default)]
pub struct BitBlaster {
    /// The CNF being built.
    pub builder: CnfBuilder,
    cache: HashMap<TermId, Blasted>,
    /// Bit literals allocated for each bit-vector variable (for models).
    pub var_bv: HashMap<VarId, Vec<Lit>>,
    /// Literal allocated for each boolean variable (for models).
    pub var_bool: HashMap<VarId, Lit>,
}

impl BitBlaster {
    /// Creates an empty bit-blaster.
    pub fn new() -> Self {
        BitBlaster {
            builder: CnfBuilder::new(),
            cache: HashMap::new(),
            var_bv: HashMap::new(),
            var_bool: HashMap::new(),
        }
    }

    /// Asserts that a boolean term holds.
    pub fn assert_term(&mut self, ctx: &Ctx, t: TermId) {
        let l = self.bool_lit(ctx, t);
        self.builder.assert_lit(l);
    }

    /// Asserts `act => t`: the term holds whenever the activation
    /// literal is true. Scoped assertions are encoded this way so a
    /// retired scope can be switched off with the single unit clause
    /// `¬act` instead of rebuilding the solver.
    pub fn assert_term_under(&mut self, ctx: &Ctx, act: Lit, t: TermId) {
        let l = self.bool_lit(ctx, t);
        self.builder.add_clause(&[-act, l]);
    }

    /// Blasts a boolean term to a literal.
    pub fn bool_lit(&mut self, ctx: &Ctx, t: TermId) -> Lit {
        self.blast(ctx, t);
        self.cache[&t].as_bool()
    }

    /// Blasts a bit-vector term to its bit literals.
    pub fn bv_lits(&mut self, ctx: &Ctx, t: TermId) -> Vec<Lit> {
        self.blast(ctx, t);
        self.cache[&t].as_bv().to_vec()
    }

    /// Iterative post-order blasting of the term DAG rooted at `root`.
    fn blast(&mut self, ctx: &Ctx, root: TermId) {
        let mut stack: Vec<(TermId, bool)> = vec![(root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if self.cache.contains_key(&t) {
                continue;
            }
            if !expanded {
                stack.push((t, true));
                for c in term_children(ctx, t) {
                    if !self.cache.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
                continue;
            }
            let b = self.blast_node(ctx, t);
            self.cache.insert(t, b);
        }
    }

    fn blast_node(&mut self, ctx: &Ctx, t: TermId) -> Blasted {
        let b = &mut self.builder;
        match ctx.data(t) {
            TermData::True => Blasted::Bool(LIT_TRUE),
            TermData::False => Blasted::Bool(LIT_FALSE),
            TermData::BvConst { width, value } => Blasted::Bv(
                (0..*width)
                    .map(|i| b.const_lit(value >> i & 1 == 1))
                    .collect(),
            ),
            TermData::Var(v) => match ctx.var_decl(*v).sort {
                Sort::Bool => {
                    let l = *self.var_bool.entry(*v).or_insert_with(|| b.new_var());
                    Blasted::Bool(l)
                }
                Sort::Bv(w) => {
                    let bits = self
                        .var_bv
                        .entry(*v)
                        .or_insert_with(|| (0..w).map(|_| b.new_var()).collect())
                        .clone();
                    Blasted::Bv(bits)
                }
            },
            TermData::Not(a) => Blasted::Bool(-self.cache[a].as_bool()),
            TermData::And(args) => {
                let lits: Vec<Lit> = args.iter().map(|a| self.cache[a].as_bool()).collect();
                Blasted::Bool(self.builder.and_many(&lits))
            }
            TermData::Or(args) => {
                let lits: Vec<Lit> = args.iter().map(|a| self.cache[a].as_bool()).collect();
                Blasted::Bool(self.builder.or_many(&lits))
            }
            TermData::Eq(x, y) => match (&self.cache[x], &self.cache[y]) {
                (Blasted::Bool(a), Blasted::Bool(c)) => {
                    let (a, c) = (*a, *c);
                    Blasted::Bool(self.builder.eq_gate(a, c))
                }
                (Blasted::Bv(a), Blasted::Bv(c)) => {
                    let (a, c) = (a.clone(), c.clone());
                    let mut acc = LIT_TRUE;
                    for (ba, bc) in a.iter().zip(c.iter()) {
                        let e = self.builder.eq_gate(*ba, *bc);
                        acc = self.builder.and_gate(acc, e);
                    }
                    Blasted::Bool(acc)
                }
                _ => panic!("eq sort mismatch at blast time"),
            },
            TermData::Ite(c, x, y) => {
                let cl = self.cache[c].as_bool();
                match (&self.cache[x], &self.cache[y]) {
                    (Blasted::Bool(a), Blasted::Bool(e)) => {
                        let (a, e) = (*a, *e);
                        Blasted::Bool(self.builder.mux_gate(cl, a, e))
                    }
                    (Blasted::Bv(a), Blasted::Bv(e)) => {
                        let (a, e) = (a.clone(), e.clone());
                        let bits = a
                            .iter()
                            .zip(e.iter())
                            .map(|(&ta, &te)| self.builder.mux_gate(cl, ta, te))
                            .collect();
                        Blasted::Bv(bits)
                    }
                    _ => panic!("ite sort mismatch at blast time"),
                }
            }
            TermData::BvNot(a) => Blasted::Bv(self.cache[a].as_bv().iter().map(|&l| -l).collect()),
            TermData::BvBin(op, x, y) => {
                let a = self.cache[x].as_bv().to_vec();
                let c = self.cache[y].as_bv().to_vec();
                Blasted::Bv(self.blast_binop(*op, &a, &c))
            }
            TermData::Cmp(op, x, y) => {
                let a = self.cache[x].as_bv().to_vec();
                let c = self.cache[y].as_bv().to_vec();
                Blasted::Bool(self.blast_cmp(*op, &a, &c))
            }
            TermData::ZExt(a, w) => {
                let mut bits = self.cache[a].as_bv().to_vec();
                bits.resize(*w as usize, LIT_FALSE);
                Blasted::Bv(bits)
            }
            TermData::SExt(a, w) => {
                let mut bits = self.cache[a].as_bv().to_vec();
                let sign = *bits.last().expect("sext of empty bv");
                bits.resize(*w as usize, sign);
                Blasted::Bv(bits)
            }
            TermData::Extract(a, hi, lo) => {
                let bits = self.cache[a].as_bv();
                Blasted::Bv(bits[*lo as usize..=*hi as usize].to_vec())
            }
            TermData::Concat(x, y) => {
                let hi = self.cache[x].as_bv().to_vec();
                let mut bits = self.cache[y].as_bv().to_vec();
                bits.extend(hi);
                Blasted::Bv(bits)
            }
            TermData::Apply(..) => {
                panic!("Apply reached the bit-blaster; run Ackermann reduction first")
            }
        }
    }

    fn blast_binop(&mut self, op: BvBinOp, a: &[Lit], c: &[Lit]) -> Vec<Lit> {
        match op {
            BvBinOp::Add => self.adder(a, c, LIT_FALSE).0,
            BvBinOp::Sub => {
                let nc: Vec<Lit> = c.iter().map(|&l| -l).collect();
                self.adder(a, &nc, LIT_TRUE).0
            }
            BvBinOp::Mul => self.multiplier(a, c),
            BvBinOp::Udiv => self.divider(a, c).0,
            BvBinOp::Urem => self.divider(a, c).1,
            BvBinOp::And => a
                .iter()
                .zip(c)
                .map(|(&x, &y)| self.builder.and_gate(x, y))
                .collect(),
            BvBinOp::Or => a
                .iter()
                .zip(c)
                .map(|(&x, &y)| self.builder.or_gate(x, y))
                .collect(),
            BvBinOp::Xor => a
                .iter()
                .zip(c)
                .map(|(&x, &y)| self.builder.xor_gate(x, y))
                .collect(),
            BvBinOp::Shl => self.shifter(a, c, ShiftKind::Left),
            BvBinOp::Lshr => self.shifter(a, c, ShiftKind::RightLogical),
            BvBinOp::Ashr => self.shifter(a, c, ShiftKind::RightArith),
        }
    }

    fn blast_cmp(&mut self, op: CmpOp, a: &[Lit], c: &[Lit]) -> Lit {
        match op {
            CmpOp::Ult => self.ult_circuit(a, c),
            CmpOp::Ule => -self.ult_circuit(c, a),
            CmpOp::Slt => {
                // Signed compare = unsigned compare with sign bits flipped.
                let mut a2 = a.to_vec();
                let mut c2 = c.to_vec();
                *a2.last_mut().unwrap() = -*a2.last().unwrap();
                *c2.last_mut().unwrap() = -*c2.last().unwrap();
                self.ult_circuit(&a2, &c2)
            }
            CmpOp::Sle => {
                let mut a2 = a.to_vec();
                let mut c2 = c.to_vec();
                *a2.last_mut().unwrap() = -*a2.last().unwrap();
                *c2.last_mut().unwrap() = -*c2.last().unwrap();
                -self.ult_circuit(&c2, &a2)
            }
        }
    }

    /// Ripple-carry adder; returns `(sum bits, carry out)`.
    fn adder(&mut self, a: &[Lit], c: &[Lit], carry_in: Lit) -> (Vec<Lit>, Lit) {
        let mut carry = carry_in;
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(c) {
            let (s, co) = self.builder.full_adder(x, y, carry);
            out.push(s);
            carry = co;
        }
        (out, carry)
    }

    /// Shift-and-add multiplier, truncated to the operand width.
    fn multiplier(&mut self, a: &[Lit], c: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc: Vec<Lit> = vec![LIT_FALSE; w];
        for (i, &ci) in c.iter().enumerate() {
            // Partial product of row i, shifted left by i.
            let mut carry = LIT_FALSE;
            for j in 0..(w - i) {
                let pp = self.builder.and_gate(a[j], ci);
                let (s, co) = self.builder.full_adder(acc[i + j], pp, carry);
                acc[i + j] = s;
                carry = co;
            }
        }
        acc
    }

    /// Restoring long division with SMT-LIB division-by-zero semantics.
    /// Returns `(quotient, remainder)`.
    fn divider(&mut self, a: &[Lit], c: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        // Work in w+1 bits so the shifted remainder never overflows.
        let mut r: Vec<Lit> = vec![LIT_FALSE; w + 1];
        let mut cx: Vec<Lit> = c.to_vec();
        cx.push(LIT_FALSE);
        let mut q: Vec<Lit> = vec![LIT_FALSE; w];
        for i in (0..w).rev() {
            // r = (r << 1) | a[i]
            r.rotate_right(1);
            r[0] = a[i];
            // ge = r >= cx
            let ge = -self.ult_circuit(&r, &cx);
            // r = ge ? r - cx : r
            let ncx: Vec<Lit> = cx.iter().map(|&l| -l).collect();
            let (diff, _) = self.adder(&r, &ncx, LIT_TRUE);
            for k in 0..=w {
                r[k] = self.builder.mux_gate(ge, diff[k], r[k]);
            }
            q[i] = ge;
        }
        // Division by zero: quotient all-ones, remainder = dividend.
        let nz = self.builder.or_many(c);
        let q_final: Vec<Lit> = q
            .iter()
            .map(|&l| self.builder.mux_gate(nz, l, LIT_TRUE))
            .collect();
        let r_final: Vec<Lit> = (0..w)
            .map(|k| self.builder.mux_gate(nz, r[k], a[k]))
            .collect();
        (q_final, r_final)
    }

    /// `a < c` unsigned, via an LSB-to-MSB comparison chain.
    fn ult_circuit(&mut self, a: &[Lit], c: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), c.len());
        let mut lt = LIT_FALSE;
        for (&x, &y) in a.iter().zip(c) {
            // If bits differ, the result so far is y (a=0 < c=1);
            // otherwise keep the lower-bit verdict.
            let diff = self.builder.xor_gate(x, y);
            lt = self.builder.mux_gate(diff, y, lt);
        }
        lt
    }

    /// Barrel shifter.
    fn shifter(&mut self, a: &[Lit], amt: &[Lit], kind: ShiftKind) -> Vec<Lit> {
        let w = a.len();
        let stages = usize::BITS as usize - (w - 1).leading_zeros() as usize;
        let fill = match kind {
            ShiftKind::Left | ShiftKind::RightLogical => LIT_FALSE,
            ShiftKind::RightArith => *a.last().unwrap(),
        };
        let mut cur = a.to_vec();
        for (s, &sel) in amt.iter().enumerate().take(stages) {
            let shift = 1usize << s;
            let mut next = vec![fill; w];
            match kind {
                ShiftKind::Left => {
                    for i in 0..w {
                        let from = if i >= shift {
                            cur[i - shift]
                        } else {
                            LIT_FALSE
                        };
                        next[i] = self.builder.mux_gate(sel, from, cur[i]);
                    }
                }
                ShiftKind::RightLogical | ShiftKind::RightArith => {
                    for i in 0..w {
                        let from = if i + shift < w { cur[i + shift] } else { fill };
                        next[i] = self.builder.mux_gate(sel, from, cur[i]);
                    }
                }
            }
            cur = next;
        }
        // If any shift-amount bit at or above `stages` is set, the shift
        // amount is >= 2^stages >= w, so the result is pure fill.
        let high_bits: Vec<Lit> = amt[stages.min(amt.len())..].to_vec();
        if !high_bits.is_empty() {
            let oversize = self.builder.or_many(&high_bits);
            for bit in cur.iter_mut() {
                *bit = self.builder.mux_gate(oversize, fill, *bit);
            }
        }
        cur
    }
}

#[derive(Debug, Clone, Copy)]
enum ShiftKind {
    Left,
    RightLogical,
    RightArith,
}

/// Children of a term, for traversal (shared with the evaluator).
pub fn term_children(ctx: &Ctx, t: TermId) -> Vec<TermId> {
    term_children_of(ctx.data(t))
}

/// Children of a `TermData` node (for callers holding raw node data,
/// like `Ctx::validate`).
pub fn term_children_of(data: &TermData) -> Vec<TermId> {
    match data {
        TermData::True | TermData::False | TermData::BvConst { .. } | TermData::Var(_) => {
            Vec::new()
        }
        TermData::Not(a)
        | TermData::BvNot(a)
        | TermData::ZExt(a, _)
        | TermData::SExt(a, _)
        | TermData::Extract(a, _, _) => vec![*a],
        TermData::And(args) | TermData::Or(args) => args.to_vec(),
        TermData::Eq(a, b)
        | TermData::BvBin(_, a, b)
        | TermData::Cmp(_, a, b)
        | TermData::Concat(a, b) => vec![*a, *b],
        TermData::Ite(c, a, b) => vec![*c, *a, *b],
        TermData::Apply(_, args) => args.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatOutcome, SatSolver};

    /// Blasts `t`, solves, and returns the model value of `x`'s bits.
    fn solve_for(ctx: &Ctx, assert: TermId, x: TermId) -> Option<u64> {
        let mut bb = BitBlaster::new();
        bb.assert_term(ctx, assert);
        let xbits = bb.bv_lits(ctx, x);
        let (nv, clauses) = bb.builder.finish();
        let mut sat = SatSolver::new();
        sat.reserve_vars(nv);
        for c in &clauses {
            if !sat.add_clause(c) {
                return None;
            }
        }
        match sat.solve() {
            SatOutcome::Sat => {
                let mut v = 0u64;
                for (i, &l) in xbits.iter().enumerate() {
                    let b = if l > 0 {
                        sat.model_value(l as u32)
                    } else {
                        !sat.model_value((-l) as u32)
                    };
                    if b {
                        v |= 1 << i;
                    }
                }
                Some(v)
            }
            SatOutcome::Unsat => None,
            SatOutcome::Unknown => panic!("unexpected unknown"),
        }
    }

    #[test]
    fn solve_addition() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let c3 = ctx.bv_const(16, 3);
        let c10 = ctx.bv_const(16, 10);
        let sum = ctx.bv_add(x, c3);
        let eq = ctx.eq(sum, c10);
        assert_eq!(solve_for(&ctx, eq, x), Some(7));
    }

    #[test]
    fn solve_multiplication() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let c6 = ctx.bv_const(16, 6);
        let c42 = ctx.bv_const(16, 42);
        let prod = ctx.bv_mul(x, c6);
        let eq = ctx.eq(prod, c42);
        let lim = ctx.bv_const(16, 10);
        let small = ctx.ult(x, lim);
        let both = ctx.and2(eq, small);
        assert_eq!(solve_for(&ctx, both, x), Some(7));
    }

    #[test]
    fn solve_division() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let c7 = ctx.bv_const(8, 7);
        let q = ctx.bv_bin(BvBinOp::Udiv, x, c7);
        let r = ctx.bv_bin(BvBinOp::Urem, x, c7);
        let c5 = ctx.bv_const(8, 5);
        let c3 = ctx.bv_const(8, 3);
        let eq_q = ctx.eq(q, c5);
        let eq_r = ctx.eq(r, c3);
        let both = ctx.and2(eq_q, eq_r);
        assert_eq!(solve_for(&ctx, both, x), Some(38));
    }

    #[test]
    fn unsat_contradiction() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let c1 = ctx.bv_const(8, 1);
        let c2 = ctx.bv_const(8, 2);
        let e1 = ctx.eq(x, c1);
        let e2 = ctx.eq(x, c2);
        let both = ctx.and2(e1, e2);
        assert_eq!(solve_for(&ctx, both, x), None);
    }

    #[test]
    fn shift_left_oversize_is_zero() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let amt = ctx.bv_const(8, 8);
        // x << 8 must be 0 for every x, so (x << 8) != 0 is unsat.
        let shifted = ctx.bv_bin(BvBinOp::Shl, x, amt);
        let z = ctx.bv_const(8, 0);
        let ne = ctx.ne(shifted, z);
        assert_eq!(solve_for(&ctx, ne, x), None);
    }

    #[test]
    fn signed_comparison_circuit() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let zero = ctx.bv_const(8, 0);
        let neg_one = ctx.bv_const(8, 0xff);
        // x < 0 (signed) and x == -1.
        let lt = ctx.slt(x, zero);
        let eq = ctx.eq(x, neg_one);
        let both = ctx.and2(lt, eq);
        assert_eq!(solve_for(&ctx, both, x), Some(0xff));
    }
}
