//! Intra-query parallel solving: portfolio racing, learnt-clause
//! sharing, and cube-and-conquer.
//!
//! The driver already spreads *handlers* across threads; this module
//! spends idle cores *inside* a single hard query:
//!
//! * **Portfolio racing** — a query that survives a bounded probe solve
//!   (the conflict threshold) is handed to 2–4 cloned solvers with
//!   deliberately diverse heuristics (LBD vs activity reduction,
//!   inverted phase, no restarts). The first worker to reach a verdict
//!   wins; the rest observe a shared cancel flag, checked once per CDCL
//!   loop round, and stand down. The winning solver — proof stream,
//!   learnt clauses, phases and all — replaces the caller's solver, so
//!   an incremental session continues from the winner's state and a
//!   certified run re-checks the winner's own DRAT stream.
//! * **Learnt-clause sharing** — racing workers export low-LBD (glue)
//!   learnts into a [`ClauseExchange`] and import each other's exports
//!   at restart boundaries. Sharing is disabled while proof logging is
//!   on: an imported lemma is RUP with respect to its *exporter's*
//!   derivation, not the importer's stream, so it would poison the
//!   importer's proof.
//! * **Cube-and-conquer** — part of the worker pool splits the query on
//!   the probe's top-activity (VSIDS) variables into `2^k` cubes and
//!   solves them as independent assumption jobs pulled from a shared
//!   work queue. Any Sat cube answers the query; all cubes Unsat
//!   refutes it. Under certification each cube's conclusion is a
//!   prefix of its worker's proof stream and is checked per cube
//!   (see `Solver::certify_cubes`).
//!
//! Parallelism is budgeted: racing only happens when a [`CoreBudget`]
//! (shared with the driver's handler-level thread pool) has spare
//! cores, so query-level and handler-level parallelism never
//! oversubscribe the machine.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::sat::{SatOutcome, SatSolver};

/// A machine-wide core budget shared between handler-level workers and
/// query-level portfolio racing. Handler threads hold one core each and
/// release it when they run out of work; a racing query opportunistically
/// grabs whatever is spare and returns it when the race ends.
#[derive(Debug)]
pub struct CoreBudget {
    spare: AtomicUsize,
}

impl CoreBudget {
    /// A budget with `total` cores available.
    pub fn new(total: usize) -> CoreBudget {
        CoreBudget {
            spare: AtomicUsize::new(total),
        }
    }

    /// Acquires up to `want` cores, returning how many were actually
    /// obtained (possibly zero). Never blocks.
    pub fn try_acquire(&self, want: usize) -> usize {
        let mut cur = self.spare.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            match self.spare.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns `n` cores to the budget.
    pub fn release(&self, n: usize) {
        self.spare.fetch_add(n, Ordering::AcqRel);
    }

    /// Cores currently spare (advisory; may change immediately).
    pub fn available(&self) -> usize {
        self.spare.load(Ordering::Relaxed)
    }
}

/// A lock-light learnt-clause exchange between portfolio workers.
///
/// The buffer is append-only under a mutex taken briefly at export and
/// at restart-boundary imports — never inside propagation — and each
/// reader keeps its own cursor, so there is no per-clause reference
/// counting or epoch machinery to get wrong.
/// One exchange entry: `(exporting worker, glue, literals)`.
type ExchangeEntry = (usize, u32, Arc<[i32]>);

#[derive(Debug, Default)]
pub struct ClauseExchange {
    buf: Mutex<Vec<ExchangeEntry>>,
    exported: AtomicU64,
    imported: AtomicU64,
}

impl ClauseExchange {
    /// An empty exchange.
    pub fn new() -> ClauseExchange {
        ClauseExchange::default()
    }

    /// Publishes one learnt clause (DIMACS literals) from worker
    /// `from` with the given glue value.
    pub(crate) fn export(&self, from: usize, lbd: u32, lits: &[i32]) {
        self.exported.fetch_add(1, Ordering::Relaxed);
        self.buf
            .lock()
            .unwrap()
            .push((from, lbd, Arc::from(lits.to_vec())));
    }

    /// Fetches every clause published since `cursor` by workers other
    /// than `reader`, advancing the cursor past the end of the buffer.
    pub(crate) fn fetch(&self, reader: usize, cursor: &mut usize) -> Vec<(u32, Arc<[i32]>)> {
        let buf = self.buf.lock().unwrap();
        let start = (*cursor).min(buf.len());
        *cursor = buf.len();
        buf[start..]
            .iter()
            .filter(|(from, _, _)| *from != reader)
            .map(|(_, lbd, lits)| (*lbd, lits.clone()))
            .collect()
    }

    /// Notes that `n` fetched clauses were actually attached by an
    /// importer (clauses already satisfied at the importer's root are
    /// fetched but dropped).
    pub(crate) fn note_imported(&self, n: u64) {
        self.imported.fetch_add(n, Ordering::Relaxed);
    }

    /// Clauses exported by all workers so far.
    pub fn exported(&self) -> u64 {
        self.exported.load(Ordering::Relaxed)
    }

    /// Clauses attached by importers so far.
    pub fn imported(&self) -> u64 {
        self.imported.load(Ordering::Relaxed)
    }
}

/// A worker solver's link to the exchange: the shared buffer, this
/// worker's identity (its own exports are filtered on fetch), a read
/// cursor, and the export glue cutoff.
#[derive(Debug, Clone)]
pub(crate) struct ExchangeLink {
    pub buf: Arc<ClauseExchange>,
    pub id: usize,
    pub cursor: usize,
    pub glue_max: u32,
}

/// Portfolio strategy labels, indexed by the strategy id recorded in
/// [`RaceReport::winner`] and the `race_wins` stats arrays.
pub const STRATEGY_NAMES: [&str; 5] =
    ["base", "flip-reduce", "invert-phase", "no-restarts", "cube"];

const STRAT_BASE: usize = 0;
const STRAT_CUBE: usize = 4;

/// Query-level parallelism knobs (see `SolverConfig.parallel`).
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Maximum solver workers racing one query (including the caller's
    /// own core). `0` or `1` disables intra-query parallelism.
    pub workers: usize,
    /// Conflicts granted to the sequential probe before a query is
    /// declared hard and raced. `0` races every query (test use).
    pub conflict_threshold: u64,
    /// Learnts with glue (LBD) at or below this are shared between
    /// workers; `0` disables sharing. Ignored (forced off) while proof
    /// logging is on.
    pub share_glue_max: u32,
    /// Split hard queries on this many top-VSIDS variables into `2^k`
    /// cube jobs; `0` disables cube-and-conquer.
    pub cube_split_vars: u32,
    /// Make every worker a cube solver (no config racers). Diagnostic
    /// knob for deterministically exercising the cube path in tests.
    pub cube_only: bool,
    /// The shared core budget. `None` disables racing entirely — the
    /// budget is how the driver tells the solver that spare cores may
    /// exist at all.
    pub budget: Option<Arc<CoreBudget>>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: 4,
            conflict_threshold: 30_000,
            share_glue_max: 4,
            cube_split_vars: 3,
            cube_only: false,
            budget: None,
        }
    }
}

/// One cube's certification payload: its worker's full proof stream,
/// the byte length of the stream when the cube concluded (the prefix up
/// to and including the cube's final lemma is itself a complete,
/// checkable DRAT stream), the cube literals, and the failed-assumption
/// set the conclusion claims.
#[derive(Debug, Clone)]
pub struct CubeCert {
    /// The cube worker's proof stream (shared across its cubes).
    pub proof: Arc<Vec<u8>>,
    /// Stream length at this cube's conclusion.
    pub prefix: usize,
    /// The cube's assumption literals.
    pub cube: Vec<i32>,
    /// Failed assumptions reported for this cube (subset of the query
    /// assumptions plus the cube literals).
    pub failed: Vec<i32>,
}

/// What one (possibly raced) solve did, for stats and certification.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Whether a portfolio race actually ran.
    pub raced: bool,
    /// Workers in the race (0 when not raced).
    pub workers: u64,
    /// Winning strategy index into [`STRATEGY_NAMES`], if any worker
    /// reached a verdict.
    pub winner: Option<usize>,
    /// Clauses exported to the exchange by all workers.
    pub clauses_exported: u64,
    /// Clauses imported from the exchange by all workers.
    pub clauses_imported: u64,
    /// Cube jobs generated (0 unless a cube team ran).
    pub cubes_total: u64,
    /// Cube jobs that reached a verdict.
    pub cubes_solved: u64,
    /// Per-cube proof payloads, present only when a cube team won an
    /// Unsat race with proof logging on.
    pub cube_certs: Vec<CubeCert>,
}

/// What one worker brought back from the race.
struct WorkerOut {
    strat: usize,
    solver: SatSolver,
    /// `(proof_prefix_len, cube, failed)` per concluded Unsat cube.
    cube_concls: Vec<(usize, Vec<i32>, Vec<i32>)>,
}

/// A diverse heuristic variant of `base` for strategy `strat`.
fn variant_config(base: &crate::sat::SatConfig, strat: usize) -> crate::sat::SatConfig {
    use crate::sat::ReduceStrategy;
    let mut c = base.clone();
    match strat {
        1 => {
            // Flip the clause-DB reduction policy: LBD and activity
            // keep very different clause populations alive.
            c.reduce_strategy = match c.reduce_strategy {
                ReduceStrategy::Lbd => ReduceStrategy::Activity,
                ReduceStrategy::Activity => ReduceStrategy::Lbd,
            };
        }
        2 => {
            // Invert the default phase and restart more aggressively:
            // drives the search into the complementary half of the
            // assignment space.
            c.default_phase = !c.default_phase;
            c.restart_base = (c.restart_base / 2).max(10);
        }
        3 => {
            // No restarts: deep dives win on some refutations that
            // restart-heavy configs keep abandoning.
            c.restarts = false;
        }
        _ => {}
    }
    c
}

/// Builds the `2^k` cube assumption sets from the probe-warmed solver's
/// top-activity variables (assumption variables excluded). Returns an
/// empty list when no split variables are available.
fn make_cubes(sat: &SatSolver, assumptions: &[i32], k: u32) -> Vec<Vec<i32>> {
    let skip: Vec<u32> = assumptions.iter().map(|l| l.unsigned_abs()).collect();
    let k = k.min(6) as usize; // 64 cubes is already far past useful
    let vars = sat.top_activity_vars(k, &skip);
    if vars.is_empty() {
        return Vec::new();
    }
    let n = vars.len();
    (0..(1usize << n))
        .map(|m| {
            vars.iter()
                .enumerate()
                .map(|(i, &v)| {
                    if (m >> i) & 1 == 1 {
                        v as i32
                    } else {
                        -(v as i32)
                    }
                })
                .collect()
        })
        .collect()
}

/// Solves under `assumptions`, racing a portfolio when the query proves
/// hard and the core budget has spare capacity. On return the caller's
/// solver is the winning worker (or the base worker after an
/// all-Unknown race), with all parallel hooks detached.
pub fn solve_maybe_racing(
    sat: &mut SatSolver,
    assumptions: &[i32],
    cfg: &ParallelConfig,
) -> (SatOutcome, RaceReport) {
    let no_race = RaceReport::default();
    let Some(budget) = cfg.budget.as_ref() else {
        return (sat.solve_with_assumptions(assumptions), no_race);
    };
    if cfg.workers < 2 {
        return (sat.solve_with_assumptions(assumptions), no_race);
    }
    // Sequential probe under a bounded conflict budget: cheap queries
    // never pay for cloning, and the probe warms the VSIDS activity
    // that cube splitting reads.
    let full_budget = sat.config().max_conflicts;
    if cfg.conflict_threshold > 0 {
        let probe = match full_budget {
            Some(b) => b.min(cfg.conflict_threshold),
            None => cfg.conflict_threshold,
        };
        sat.set_max_conflicts(Some(probe));
        let out = sat.solve_with_assumptions(assumptions);
        sat.set_max_conflicts(full_budget);
        if out != SatOutcome::Unknown {
            return (out, no_race);
        }
    }
    let extra = budget.try_acquire(cfg.workers.saturating_sub(1));
    if extra == 0 {
        // No spare cores: resume sequentially (probe learnts are kept).
        return (sat.solve_with_assumptions(assumptions), no_race);
    }
    let n = extra + 1;
    // Strategy assignment. Worker 0 continues the base config; with a
    // cube split the tail workers form the cube team; the middle cycles
    // through the heuristic variants.
    let cubes: Vec<Vec<i32>> = if cfg.cube_split_vars > 0 {
        make_cubes(sat, assumptions, cfg.cube_split_vars)
    } else {
        Vec::new()
    };
    let mut strategies: Vec<usize> = Vec::with_capacity(n);
    if cfg.cube_only && !cubes.is_empty() {
        strategies.resize(n, STRAT_CUBE);
    } else {
        let cube_workers = if cubes.is_empty() {
            0
        } else if n >= 4 {
            n - 3
        } else {
            1
        };
        strategies.push(STRAT_BASE);
        for i in 1..n.saturating_sub(cube_workers) {
            strategies.push(1 + (i - 1) % 3);
        }
        strategies.resize(n, STRAT_CUBE);
    }
    let has_cube_team = strategies.contains(&STRAT_CUBE);
    let proof_on = sat.proof().is_some();
    // Sharing would poison per-worker DRAT streams (imported lemmas are
    // not RUP in the importer's own derivation), so it is hard-gated on
    // proof logging being off.
    let exchange: Option<Arc<ClauseExchange>> = if cfg.share_glue_max > 0 && !proof_on {
        Some(Arc::new(ClauseExchange::new()))
    } else {
        None
    };
    let cancel = Arc::new(AtomicBool::new(false));
    let winner: Mutex<Option<(usize, SatOutcome)>> = Mutex::new(None);
    let next_cube = AtomicUsize::new(0);
    let cubes_unsat = AtomicUsize::new(0);
    let cubes_solved = AtomicU64::new(0);
    let claim = |idx: usize, out: SatOutcome| -> bool {
        let mut w = winner.lock().unwrap();
        if w.is_none() {
            *w = Some((idx, out));
            cancel.store(true, Ordering::SeqCst);
            true
        } else {
            false
        }
    };
    let mut outs: Vec<Option<WorkerOut>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (idx, &strat) in strategies.iter().enumerate() {
            let mut w = sat.clone();
            if strat != STRAT_BASE && strat != STRAT_CUBE {
                *w.config_mut() = variant_config(sat.config(), strat);
            }
            w.set_cancel(Some(cancel.clone()));
            if let Some(x) = &exchange {
                w.attach_exchange(x.clone(), idx, cfg.share_glue_max);
            }
            let cubes = &cubes;
            let claim = &claim;
            let next_cube = &next_cube;
            let cubes_unsat = &cubes_unsat;
            let cubes_solved = &cubes_solved;
            let cancel = &cancel;
            handles.push(scope.spawn(move || {
                if strat != STRAT_CUBE {
                    let outcome = w.solve_with_assumptions(assumptions);
                    if outcome != SatOutcome::Unknown {
                        claim(idx, outcome);
                    }
                    return WorkerOut {
                        strat,
                        solver: w,
                        cube_concls: Vec::new(),
                    };
                }
                // Cube worker: pull jobs until the queue is dry, a
                // verdict is reached, or the budget runs out.
                let mut concls = Vec::new();
                loop {
                    if cancel.load(Ordering::Relaxed) {
                        break;
                    }
                    let ci = next_cube.fetch_add(1, Ordering::SeqCst);
                    if ci >= cubes.len() {
                        break;
                    }
                    let mut a = assumptions.to_vec();
                    a.extend_from_slice(&cubes[ci]);
                    match w.solve_with_assumptions(&a) {
                        SatOutcome::Sat => {
                            // Any satisfied cube satisfies the query.
                            cubes_solved.fetch_add(1, Ordering::Relaxed);
                            claim(idx, SatOutcome::Sat);
                            break;
                        }
                        SatOutcome::Unsat => {
                            cubes_solved.fetch_add(1, Ordering::Relaxed);
                            if let Some(pr) = w.proof() {
                                concls.push((
                                    pr.byte_len(),
                                    cubes[ci].clone(),
                                    w.failed_assumptions().to_vec(),
                                ));
                            }
                            if !w.is_ok() {
                                // Refuted independently of assumptions:
                                // the whole query is Unsat outright.
                                claim(idx, SatOutcome::Unsat);
                                break;
                            }
                            let done = cubes_unsat.fetch_add(1, Ordering::SeqCst) + 1;
                            if done == cubes.len() {
                                // Every cube refuted: the team wins.
                                claim(idx, SatOutcome::Unsat);
                                break;
                            }
                        }
                        SatOutcome::Unknown => break, // cancelled or out of budget
                    }
                }
                WorkerOut {
                    strat,
                    solver: w,
                    cube_concls: concls,
                }
            }));
        }
        for h in handles {
            outs.push(Some(h.join().expect("portfolio worker panicked")));
        }
    });
    budget.release(extra);
    let decided = winner.into_inner().unwrap();
    let mut report = RaceReport {
        raced: true,
        workers: n as u64,
        winner: None,
        clauses_exported: exchange.as_ref().map(|x| x.exported()).unwrap_or(0),
        clauses_imported: exchange.as_ref().map(|x| x.imported()).unwrap_or(0),
        cubes_total: if has_cube_team { cubes.len() as u64 } else { 0 },
        cubes_solved: cubes_solved.load(Ordering::Relaxed),
        cube_certs: Vec::new(),
    };
    let outcome = match decided {
        Some((widx, out)) => {
            let strat = outs[widx].as_ref().expect("winner present").strat;
            report.winner = Some(strat);
            if strat == STRAT_CUBE && out == SatOutcome::Unsat && proof_on {
                // Collect every cube worker's conclusions (the refutation
                // is distributed across the team, not just the claimant).
                for w in outs.iter().flatten() {
                    if w.strat != STRAT_CUBE || w.cube_concls.is_empty() {
                        continue;
                    }
                    let bytes = Arc::new(
                        w.solver
                            .proof()
                            .map(|p| p.bytes().to_vec())
                            .unwrap_or_default(),
                    );
                    for (prefix, cube, failed) in &w.cube_concls {
                        report.cube_certs.push(CubeCert {
                            proof: bytes.clone(),
                            prefix: *prefix,
                            cube: cube.clone(),
                            failed: failed.clone(),
                        });
                    }
                }
            }
            *sat = outs[widx].take().expect("winner present").solver;
            out
        }
        None => {
            // Every worker exhausted its budget. Keep the base worker's
            // state (its learnts feed a possible escalation retry).
            let base = strategies
                .iter()
                .position(|&s| s == STRAT_BASE)
                .unwrap_or(0);
            *sat = outs[base].take().expect("base present").solver;
            SatOutcome::Unknown
        }
    };
    // The written-back solver must not keep stale race hooks: the cancel
    // flag is set, and a later solve would instantly return Unknown.
    sat.set_cancel(None);
    sat.detach_exchange();
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_acquire_release() {
        let b = CoreBudget::new(4);
        assert_eq!(b.try_acquire(3), 3);
        assert_eq!(b.available(), 1);
        assert_eq!(b.try_acquire(3), 1);
        assert_eq!(b.try_acquire(1), 0);
        b.release(2);
        assert_eq!(b.try_acquire(5), 2);
        b.release(4);
        assert_eq!(b.available(), 4);
    }

    #[test]
    fn exchange_filters_own_exports_and_tracks_cursor() {
        let x = ClauseExchange::new();
        x.export(0, 2, &[1, -2]);
        x.export(1, 3, &[3, 4]);
        x.export(0, 1, &[-5]);
        let mut cur = 0;
        let got = x.fetch(0, &mut cur);
        assert_eq!(got.len(), 1);
        assert_eq!(&*got[0].1, &[3, 4]);
        assert_eq!(cur, 3);
        // Nothing new: the cursor prevents re-imports.
        assert!(x.fetch(0, &mut cur).is_empty());
        x.export(1, 2, &[6, 7]);
        let got = x.fetch(0, &mut cur);
        assert_eq!(got.len(), 1);
        assert_eq!(x.exported(), 4);
        x.note_imported(2);
        assert_eq!(x.imported(), 2);
    }

    #[test]
    fn strategy_variants_differ_from_base() {
        let base = crate::sat::SatConfig::default();
        let flip = variant_config(&base, 1);
        assert_ne!(flip.reduce_strategy, base.reduce_strategy);
        let phase = variant_config(&base, 2);
        assert_ne!(phase.default_phase, base.default_phase);
        let norestart = variant_config(&base, 3);
        assert!(!norestart.restarts);
    }
}
