//! Counterexample models.
//!
//! A [`Model`] is a total assignment extracted from a SAT answer, with
//! uninterpreted-function interpretations lifted back through the
//! Ackermann instance table. Models are the raw material for the
//! verifier's concrete test-case generation (paper §2.4): every variable
//! and map cell of the kernel state can be read off and replayed.

use std::collections::HashMap;

use crate::eval::{eval, Assignment, Value};
use crate::term::{Ctx, FuncId, Sort, TermData, TermId, VarId};

/// A satisfying assignment for a checked formula.
#[derive(Debug, Clone, Default)]
pub struct Model {
    /// The underlying total assignment (defaults fill unmentioned vars).
    pub assignment: Assignment,
}

impl Model {
    /// Evaluates any term under the model.
    pub fn eval(&self, ctx: &Ctx, t: TermId) -> Value {
        eval(ctx, t, &self.assignment)
    }

    /// Evaluates a bit-vector term, returning `None` if it is boolean.
    pub fn eval_bv(&self, ctx: &Ctx, t: TermId) -> Option<u64> {
        match self.eval(ctx, t) {
            Value::Bv(v) => Some(v),
            Value::Bool(_) => None,
        }
    }

    /// Evaluates a bit-vector term as a signed 64-bit integer.
    pub fn eval_i64(&self, ctx: &Ctx, t: TermId) -> Option<i64> {
        let w = match ctx.sort(t) {
            Sort::Bv(w) => w,
            Sort::Bool => return None,
        };
        self.eval_bv(ctx, t)
            .map(|v| crate::term::sext_to_64(v, w) as i64)
    }

    /// Evaluates a boolean term, returning `None` if it is a bit-vector.
    pub fn eval_bool(&self, ctx: &Ctx, t: TermId) -> Option<bool> {
        match self.eval(ctx, t) {
            Value::Bool(b) => Some(b),
            Value::Bv(_) => None,
        }
    }

    /// Value of a declared variable.
    pub fn var_value(&self, ctx: &Ctx, v: VarId) -> Value {
        self.assignment
            .vars
            .get(&v)
            .copied()
            .unwrap_or_else(|| match ctx.var_decl(v).sort {
                Sort::Bool => Value::Bool(false),
                Sort::Bv(_) => Value::Bv(0),
            })
    }

    /// The lifted interpretation of an uninterpreted function, if any
    /// application of it appeared in the formula.
    pub fn func_interp(&self, f: FuncId) -> Option<&crate::eval::FuncInterp> {
        self.assignment.funcs.get(&f)
    }

    /// Renders the model restricted to the variables appearing in `terms`
    /// — the "minimized state" output the paper found necessary for
    /// debuggable counterexamples (§6.2).
    pub fn display_relevant(&self, ctx: &Ctx, terms: &[TermId]) -> String {
        let mut vars: Vec<VarId> = Vec::new();
        let mut stack: Vec<TermId> = terms.to_vec();
        let mut seen: HashMap<TermId, ()> = HashMap::new();
        while let Some(t) = stack.pop() {
            if seen.insert(t, ()).is_some() {
                continue;
            }
            if let TermData::Var(v) = ctx.data(t) {
                vars.push(*v);
            }
            stack.extend(crate::bitblast::term_children(ctx, t));
        }
        vars.sort_unstable();
        vars.dedup();
        let mut out = String::new();
        for v in vars {
            let decl = ctx.var_decl(v);
            let val = self.var_value(ctx, v);
            match val {
                Value::Bool(b) => out.push_str(&format!("{} = {}\n", decl.name, b)),
                Value::Bv(x) => out.push_str(&format!("{} = {} (0x{x:x})\n", decl.name, x as i64)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Value;

    #[test]
    fn default_model_evaluates() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(64));
        let one = ctx.bv_const(64, 1);
        let sum = ctx.bv_add(x, one);
        let m = Model::default();
        assert_eq!(m.eval_bv(&ctx, sum), Some(1));
        assert_eq!(m.eval_bool(&ctx, sum), None);
    }

    #[test]
    fn eval_i64_sign_extends() {
        let mut ctx = Ctx::new();
        let neg = ctx.bv_const(8, 0xff);
        let m = Model::default();
        assert_eq!(m.eval_i64(&ctx, neg), Some(-1));
    }

    #[test]
    fn display_relevant_lists_vars() {
        let mut ctx = Ctx::new();
        let x = ctx.var("pid", Sort::Bv(64));
        let y = ctx.var("fd", Sort::Bv(64));
        let e = ctx.eq(x, y);
        let mut m = Model::default();
        if let TermData::Var(v) = ctx.data(x) {
            m.assignment.set_var(*v, Value::Bv(3));
        }
        let s = m.display_relevant(&ctx, &[e]);
        assert!(s.contains("pid = 3"), "{s}");
        assert!(s.contains("fd = 0"), "{s}");
    }
}
