//! A from-scratch SMT solver for the fragment Hyperkernel verification
//! needs: quantifier-free fixed-width bit-vectors plus uninterpreted
//! functions (QF_UFBV), decided by Ackermann reduction, Tseitin
//! bit-blasting, and a CDCL SAT core.
//!
//! The paper (§3) deliberately restricts its use of Z3 to an "effectively
//! decidable fragment of first-order logic": quantifier-free formulas over
//! bit-vectors and equality with uninterpreted functions, with quantifiers
//! appearing only in the declarative layer over *finite* resource domains.
//! That fragment is exactly what this crate decides:
//!
//! * [`term`] — hash-consed term DAG with simplifying smart constructors;
//! * [`eval`] — a ground evaluator (used for concrete spec execution, model
//!   validation, and differential testing of the bit-blaster);
//! * [`ackermann`] — uninterpreted-function elimination;
//! * [`bitblast`] — terms to CNF via Tseitin encoding;
//! * [`sat`] — a CDCL SAT solver (watched literals, VSIDS, 1UIP learning,
//!   Luby restarts, phase saving, LBD-driven learnt-clause reduction,
//!   chronological backtracking, root-level GC and inprocessing);
//! * [`parallel`] — intra-query parallelism: portfolio racing over
//!   diverse solver configs, learnt-clause sharing, cube-and-conquer,
//!   all under a core budget shared with the driver's thread pool;
//! * [`model`] — counterexample models, the raw material for the verifier's
//!   test-case generation (paper §2.4);
//! * [`solver`] — the front door tying the pipeline together;
//! * [`cache`] — a content-addressed verification-condition cache so
//!   repeated `verify_all` runs reuse verdicts instead of re-solving;
//! * [`analysis`] — word-level static analysis (known-bits + interval
//!   abstract interpretation, fact-directed rewriting, cone-of-influence
//!   reduction) that shrinks or outright discharges queries before
//!   bit-blasting.
//!
//! # Examples
//!
//! ```
//! use hk_smt::{Ctx, Solver, SatResult, Sort};
//!
//! let mut ctx = Ctx::new();
//! let x = ctx.var("x", Sort::Bv(64));
//! let c7 = ctx.bv_const(64, 7);
//! let sum = ctx.bv_add(x, c7);
//! let c9 = ctx.bv_const(64, 9);
//! let eq = ctx.eq(sum, c9);
//!
//! let mut solver = Solver::new();
//! solver.assert(&mut ctx, eq);
//! match solver.check(&mut ctx) {
//!     SatResult::Sat(model) => assert_eq!(model.eval_bv(&ctx, x), Some(2)),
//!     _ => panic!("expected sat"),
//! }
//! ```

#![deny(clippy::needless_pass_by_value)]

pub mod ackermann;
pub mod analysis;
pub mod bitblast;
pub mod cache;
pub mod cnf;
pub mod eval;
pub mod model;
pub mod parallel;
pub mod sat;
pub mod solver;
pub mod term;

pub use analysis::{SimplifyOutcome, SimplifyStats};
pub use cache::{CacheStats, CachedVerdict, QueryCache, QueryKey};
pub use model::Model;
pub use parallel::{CoreBudget, ParallelConfig, STRATEGY_NAMES};
pub use sat::{ReduceStrategy, SatConfig, SatSolver};
pub use solver::{SatResult, Solver, SolverConfig, SolverStats, SolverTotals};
pub use term::{BvBinOp, CmpOp, Ctx, FuncId, Sort, TermData, TermId, VarId};
