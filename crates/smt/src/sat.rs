//! A CDCL SAT solver in the MiniSat/Glucose lineage.
//!
//! Features: two-watched-literal propagation, first-UIP conflict analysis
//! with clause minimization, exponential VSIDS variable activities,
//! phase saving, Luby restarts, chronological backtracking for
//! long-distance backjumps, and learnt-clause database reduction driven
//! by LBD ("glue") quality scores on a Glucose-style conflict schedule
//! (the pre-LBD activity-driven policy is still available through
//! [`ReduceStrategy::Activity`]). The heuristic knobs are exposed through
//! [`SatConfig`] so the Figure 9 stability experiment can sweep them
//! (standing in for the paper's sweep over historic Z3 versions).
//!
//! Two maintenance passes keep a long-lived incremental solver healthy:
//!
//! * [`SatSolver::simplify`] — root-level garbage collection: clauses
//!   satisfied by the level-0 trail are deleted and the clause arena is
//!   compacted. The SMT layer calls this after every scope `pop`, so
//!   clauses dead under a retired activation literal are reclaimed
//!   instead of poisoning every later query (the PR 2 regression).
//! * A lightweight **inprocessing** pass (subsumption, self-subsuming
//!   resolution, failed-literal probing on the root level), run when the
//!   clause database has grown enough since the last pass.
//!
//! The solver is **incremental**: [`SatSolver::solve_with_assumptions`]
//! decides the formula under a set of assumption literals (treated as
//! pseudo-decisions below all real decisions, MiniSat-style), and the
//! solver returns to decision level 0 after every call, so clauses and
//! variables can be added between calls while learnt clauses, VSIDS
//! activities, and saved phases carry over. When a query is unsatisfiable
//! *because of* its assumptions, the responsible subset is recovered via
//! final-conflict analysis ([`SatSolver::failed_assumptions`]).
//!
//! The solver can additionally log a binary-DRAT **proof** of its work
//! (see [`SatSolver::start_proof`]): every input clause, learnt clause,
//! deletion, and concluding conflict clause goes into an
//! [`hk_proof::ProofWriter`] stream that the independent checker in
//! `hk-proof` re-derives from scratch. Logging is off by default and
//! every log site is behind an `Option` check, so the disabled cost is
//! one branch per clause event.

use hk_proof::ProofWriter;

/// Truth value lattice used internally.
const UNDEF: u8 = 2;
const TRUE: u8 = 1;
const FALSE: u8 = 0;

/// Sentinel for "no reason clause".
const NO_REASON: u32 = u32::MAX;

/// Which learnt clauses a database reduction keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceStrategy {
    /// Pre-Glucose policy: sort by bumped clause activity and delete the
    /// less active half, on a learnt-count schedule. Kept as the A/B
    /// baseline for the Fig-9 sweep and the differential tests.
    Activity,
    /// Glucose-style policy: sort by LBD (glue), protect low-glue
    /// clauses, and delete the worst half on a conflict-count schedule.
    Lbd,
}

/// Heuristic configuration.
#[derive(Debug, Clone)]
pub struct SatConfig {
    /// VSIDS activity decay factor (e.g. 0.95).
    pub var_decay: f64,
    /// Learnt-clause activity decay factor.
    pub clause_decay: f64,
    /// Whether to restart at all (Luby schedule).
    pub restarts: bool,
    /// Base interval (in conflicts) of the Luby restart sequence.
    pub restart_base: u64,
    /// Whether to reuse the last assigned polarity when deciding.
    pub phase_saving: bool,
    /// Initial polarity when no phase is saved.
    pub default_phase: bool,
    /// Learnt-clause database reduction policy.
    pub reduce_strategy: ReduceStrategy,
    /// Conflicts before the first LBD-scheduled reduction.
    pub reduce_base: u64,
    /// Schedule increment: each reduction pushes the next one this much
    /// further out (in conflicts).
    pub reduce_incr: u64,
    /// Learnt clauses allowed before a database reduction, as a fraction
    /// of the original clause count (MiniSat uses 1/3). Only used by
    /// [`ReduceStrategy::Activity`].
    pub learntsize_factor: f64,
    /// Backtrack chronologically (to the previous level) instead of
    /// backjumping when the jump would discard more than
    /// `chrono_distance` levels. Off by default: on this workload's
    /// hardest refinement queries (`sys_alloc_pdpt`) it reliably
    /// prevents convergence at any `chrono_distance`, while its wins
    /// elsewhere are modest. The machinery is kept correct and under
    /// test (the differential matrix exercises it) as an opt-in knob
    /// with an A/B row in `fig9_stability`.
    pub chrono_backtrack: bool,
    /// Minimum discarded-level count before chronological backtracking
    /// kicks in.
    pub chrono_distance: u32,
    /// Root-level inprocessing (subsumption, self-subsuming resolution,
    /// failed-literal probing) when the clause database has grown enough.
    pub inprocessing: bool,
    /// Optional conflict budget; `None` means run to completion.
    pub max_conflicts: Option<u64>,
    /// Optional wall-clock budget per `solve` call, in milliseconds.
    /// Checked once per search-loop round, so a call overshoots by at
    /// most one decide/propagate round. `None` means run to completion.
    pub max_solve_ms: Option<u64>,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restarts: true,
            restart_base: 100,
            phase_saving: true,
            default_phase: false,
            reduce_strategy: ReduceStrategy::Lbd,
            reduce_base: 2000,
            reduce_incr: 300,
            learntsize_factor: 1.0 / 3.0,
            chrono_backtrack: false,
            chrono_distance: 100,
            inprocessing: true,
            max_conflicts: None,
            max_solve_ms: None,
        }
    }
}

/// Outcome of a SAT query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatOutcome {
    /// A satisfying assignment was found (read it via [`SatSolver::model_value`]).
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted.
    Unknown,
}

/// Runtime statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnts: u64,
    /// Learnt-database reductions performed.
    pub db_reductions: u64,
    /// Learnt clauses deleted by database reductions.
    pub learnts_removed: u64,
    /// Clauses reclaimed by root-level garbage collection
    /// ([`SatSolver::simplify`], notably after scope pops).
    pub gc_clauses: u64,
    /// Conflicts resolved by chronological backtracking instead of a
    /// long backjump.
    pub chrono_backtracks: u64,
    /// Literals probed by failed-literal inprocessing.
    pub probed_literals: u64,
    /// Unit clauses learnt from failed literals.
    pub probe_units: u64,
    /// Clauses deleted because another clause subsumes them.
    pub subsumed: u64,
    /// Clauses strengthened by self-subsuming resolution.
    pub strengthened: u64,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<u32>,
    learnt: bool,
    deleted: bool,
    activity: f64,
    /// Literal block distance (glue) at learning time, refreshed downward
    /// whenever the clause participates in conflict analysis. Zero for
    /// problem clauses (never consulted).
    lbd: u32,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: u32,
    blocker: u32,
}

/// What the branching step produced.
enum Branch {
    /// A decision (assumption or heap pick) was enqueued.
    Decided,
    /// An assumption is falsified by the current level-0-closed state.
    AssumptionFailed(u32),
    /// Every variable is assigned: the formula is satisfied.
    AllAssigned,
}

/// The solver.
///
/// Cloning a solver clones its whole state — clause database, learnt
/// clauses, heuristics, and proof stream — which is what portfolio
/// racing (`crate::parallel`) relies on to hand each worker an
/// independent but warm copy.
#[derive(Debug, Clone)]
pub struct SatSolver {
    config: SatConfig,
    ok: bool,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assigns: Vec<u8>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: Vec<u32>,
    heap_pos: Vec<i32>,
    trail: Vec<u32>,
    trail_lim: Vec<usize>,
    reason: Vec<u32>,
    level: Vec<u32>,
    seen: Vec<bool>,
    qhead: usize,
    num_learnts: usize,
    /// `stats.conflicts` at the last LBD-scheduled reduction.
    conflicts_at_reduce: u64,
    /// Clause count that triggers the next inprocessing pass.
    inprocess_at: usize,
    /// Watermark into the level-0 trail: literals below it are already
    /// present as units in the proof stream (input units, probe/learnt
    /// unit lemmas, or lemmas logged by `simplify`). Root-level GC must
    /// not delete a propagated literal's reason clause before the fact
    /// itself is preserved as a unit lemma, or later RUP checks lose it.
    units_logged: usize,
    /// Level-stamp scratch for LBD computation.
    lbd_seen: Vec<u64>,
    lbd_stamp: u64,
    /// Model snapshot from the last `Sat` answer (the trail itself is
    /// unwound to level 0 before `solve*` returns).
    model: Vec<u8>,
    /// Failed-assumption set from the last assumption-driven `Unsat`.
    conflict: Vec<i32>,
    /// Statistics for benchmarking and diagnostics. Cumulative across
    /// `solve*` calls; snapshot before a call to obtain per-call deltas.
    pub stats: SatStats,
    /// Binary-DRAT proof stream, when logging is on.
    proof: Option<ProofWriter>,
    /// Shared cancellation flag for portfolio racing: checked once per
    /// main-loop round; when set, the solve returns `Unknown` promptly.
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Learnt-clause exchange link for portfolio racing (export at
    /// learning, import at restart boundaries). Never set while proof
    /// logging is on.
    exchange: Option<crate::parallel::ExchangeLink>,
}

#[inline]
fn lit_from_dimacs(l: i32) -> u32 {
    debug_assert!(l != 0);
    let v = (l.unsigned_abs() - 1) * 2;
    if l < 0 {
        v + 1
    } else {
        v
    }
}

#[inline]
fn lit_to_dimacs(l: u32) -> i32 {
    let v = (l >> 1) as i32 + 1;
    if l & 1 == 1 {
        -v
    } else {
        v
    }
}

#[inline]
fn lit_var(l: u32) -> usize {
    (l >> 1) as usize
}

#[inline]
fn lit_neg(l: u32) -> u32 {
    l ^ 1
}

#[inline]
fn lit_sign(l: u32) -> bool {
    l & 1 == 1
}

impl SatSolver {
    /// Creates a solver with the given heuristics.
    pub fn with_config(config: SatConfig) -> Self {
        SatSolver {
            config,
            ok: true,
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            seen: Vec::new(),
            qhead: 0,
            num_learnts: 0,
            conflicts_at_reduce: 0,
            inprocess_at: 1,
            units_logged: 0,
            lbd_seen: Vec::new(),
            lbd_stamp: 0,
            model: Vec::new(),
            conflict: Vec::new(),
            stats: SatStats::default(),
            proof: None,
            cancel: None,
            exchange: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SatConfig {
        &self.config
    }

    /// Mutable access to the configuration (portfolio workers retune a
    /// cloned solver before racing).
    pub fn config_mut(&mut self) -> &mut SatConfig {
        &mut self.config
    }

    /// Installs (or clears) a shared cancellation flag. While the flag
    /// reads `true`, `solve*` returns `Unknown` at the next main-loop
    /// round.
    pub fn set_cancel(&mut self, flag: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>) {
        self.cancel = flag;
    }

    /// Links this solver to a learnt-clause exchange as worker `id`.
    /// Panics if proof logging is on: imported lemmas are RUP with
    /// respect to the exporter's derivation, not this solver's stream,
    /// so sharing under logging would produce uncheckable proofs.
    pub fn attach_exchange(
        &mut self,
        buf: std::sync::Arc<crate::parallel::ClauseExchange>,
        id: usize,
        glue_max: u32,
    ) {
        assert!(
            self.proof.is_none(),
            "clause sharing is unsound under proof logging"
        );
        self.exchange = Some(crate::parallel::ExchangeLink {
            buf,
            id,
            cursor: 0,
            glue_max,
        });
    }

    /// Unlinks this solver from any clause exchange.
    pub fn detach_exchange(&mut self) {
        self.exchange = None;
    }

    /// The `k` unassigned variables with the highest VSIDS activity, as
    /// DIMACS variable numbers, excluding `skip` (assumption
    /// variables). Used to pick cube-split variables after a probe
    /// solve has warmed the activity ordering.
    pub fn top_activity_vars(&self, k: usize, skip: &[u32]) -> Vec<u32> {
        let mut vars: Vec<u32> = (0..self.assigns.len() as u32)
            .filter(|&v| self.assigns[v as usize] == UNDEF && !skip.contains(&(v + 1)))
            .collect();
        vars.sort_by(|&a, &b| {
            self.activity[b as usize]
                .partial_cmp(&self.activity[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        vars.truncate(k);
        vars.iter().map(|&v| v + 1).collect()
    }

    /// Imports clauses published to the exchange since the last import.
    /// Called at restart boundaries with the trail at level 0. Returns
    /// `false` when an import (with root simplification) yields the
    /// empty clause or an immediate root conflict — the formula is
    /// refuted. Only ever runs with proof logging off (enforced by
    /// `attach_exchange`).
    fn import_shared(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        debug_assert!(self.proof.is_none());
        let batch = {
            let link = self.exchange.as_mut().expect("import without exchange");
            let buf = link.buf.clone();
            buf.fetch(link.id, &mut link.cursor)
        };
        if batch.is_empty() {
            return true;
        }
        let mut accepted = 0u64;
        for (lbd, lits) in &batch {
            // Root-simplify against this solver's own level-0 trail:
            // drop the clause if any literal is already true, strip the
            // false ones. Workers share one CNF, so variables line up.
            let mut kept: Vec<u32> = Vec::with_capacity(lits.len());
            let mut satisfied = false;
            for &l in lits.iter() {
                let ul = lit_from_dimacs(l);
                match self.value_lit(ul) {
                    TRUE => {
                        satisfied = true;
                        break;
                    }
                    FALSE => {}
                    _ => kept.push(ul),
                }
            }
            if satisfied {
                continue;
            }
            accepted += 1;
            match kept.len() {
                0 => {
                    // Every literal false at the root: refuted.
                    self.note_imported(accepted);
                    return false;
                }
                1 => {
                    self.enqueue(kept[0], NO_REASON);
                    if self.propagate().is_some() {
                        self.note_imported(accepted);
                        return false;
                    }
                }
                _ => {
                    let lbd = (*lbd).clamp(1, kept.len() as u32);
                    let cref = self.attach_clause(kept, true, lbd);
                    self.bump_clause(cref);
                }
            }
        }
        self.note_imported(accepted);
        true
    }

    fn note_imported(&self, n: u64) {
        if n > 0 {
            if let Some(link) = &self.exchange {
                link.buf.note_imported(n);
            }
        }
    }

    /// Turns on binary-DRAT proof logging. Must be called before any
    /// clause is added: a proof that misses clauses cannot check.
    pub fn start_proof(&mut self) {
        assert!(
            self.clauses.is_empty() && self.trail.is_empty(),
            "start_proof on a solver that already holds clauses"
        );
        self.proof = Some(ProofWriter::new());
    }

    /// The proof stream, when [`SatSolver::start_proof`] was called.
    pub fn proof(&self) -> Option<&ProofWriter> {
        self.proof.as_ref()
    }

    /// Logs the empty clause, concluding the refutation.
    #[inline]
    fn proof_log_empty(&mut self) {
        if let Some(pr) = self.proof.as_mut() {
            pr.add_lemma(&[]);
        }
    }

    /// Creates a solver with default heuristics.
    pub fn new() -> Self {
        Self::with_config(SatConfig::default())
    }

    /// Ensures variables `1..=n` (DIMACS numbering) exist.
    pub fn reserve_vars(&mut self, n: u32) {
        while self.assigns.len() < n as usize {
            let v = self.assigns.len() as u32;
            self.assigns.push(UNDEF);
            self.polarity.push(self.config.default_phase);
            self.activity.push(0.0);
            self.reason.push(NO_REASON);
            self.level.push(0);
            self.seen.push(false);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
            self.heap_pos.push(-1);
            self.heap_insert(v);
        }
    }

    /// Adds a clause in DIMACS literals. Returns `false` if the formula
    /// became trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: &[i32]) -> bool {
        if !self.ok {
            return false;
        }
        debug_assert!(self.trail_lim.is_empty(), "add_clause above level 0");
        // Log the clause exactly as given: the checker does its own
        // normalization, and the original clause (not the level-0
        // simplified one) is the actual axiom.
        if let Some(pr) = self.proof.as_mut() {
            pr.add_input(lits);
        }
        let max_var = lits.iter().map(|l| l.unsigned_abs()).max().unwrap_or(0);
        self.reserve_vars(max_var);
        let mut ls: Vec<u32> = lits.iter().map(|&l| lit_from_dimacs(l)).collect();
        ls.sort_unstable();
        ls.dedup();
        // Tautology and level-0 simplification.
        let mut out: Vec<u32> = Vec::with_capacity(ls.len());
        for &l in &ls {
            if ls.binary_search(&lit_neg(l)).is_ok() {
                return true; // tautology
            }
            match self.value_lit(l) {
                TRUE => return true,
                FALSE => {}
                _ => out.push(l),
            }
        }
        // When level-0-false literals were stripped, the attached form
        // differs from the logged input. Log the stripped form as a
        // lemma too (RUP: the falsifying facts are unit-propagable from
        // the active set), so that a later deletion — which logs the
        // attached literals — retires this copy in the checker rather
        // than mis-matching the original input clause.
        if out.len() < ls.len() && !out.is_empty() {
            let stripped: Vec<i32> = out.iter().map(|&l| lit_to_dimacs(l)).collect();
            if let Some(pr) = self.proof.as_mut() {
                pr.add_lemma(&stripped);
            }
        }
        match out.len() {
            0 => {
                self.proof_log_empty();
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(out[0], NO_REASON);
                if self.propagate().is_some() {
                    self.proof_log_empty();
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(out, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<u32>, learnt: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        self.watches[lit_neg(lits[0]) as usize].push(Watch {
            cref,
            blocker: lits[1],
        });
        self.watches[lit_neg(lits[1]) as usize].push(Watch {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.num_learnts += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd,
        });
        cref
    }

    #[inline]
    fn value_lit(&self, l: u32) -> u8 {
        let a = self.assigns[lit_var(l)];
        if a == UNDEF {
            UNDEF
        } else if lit_sign(l) {
            a ^ 1
        } else {
            a
        }
    }

    #[inline]
    fn enqueue(&mut self, l: u32, reason: u32) {
        debug_assert_eq!(self.value_lit(l), UNDEF);
        let v = lit_var(l);
        self.assigns[v] = if lit_sign(l) { FALSE } else { TRUE };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        if self.config.phase_saving {
            self.polarity[v] = !lit_sign(l);
        }
        self.trail.push(l);
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Unit propagation; returns a conflicting clause reference if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let mut j = 0;
            let mut ws = std::mem::take(&mut self.watches[p as usize]);
            let mut conflict: Option<u32> = None;
            'watches: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Blocker shortcut.
                if self.value_lit(w.blocker) == TRUE {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref as usize;
                // The false literal must be at position 1.
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == lit_neg(p) {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.value_lit(first) == TRUE {
                    ws[j] = Watch {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.value_lit(lk) != FALSE {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[lit_neg(lk) as usize].push(Watch {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[j] = Watch {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.value_lit(first) == FALSE {
                    // Conflict: copy remaining watches back and bail.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        i += 1;
                        j += 1;
                    }
                    conflict = Some(w.cref);
                } else {
                    self.enqueue(first, w.cref);
                }
            }
            ws.truncate(j);
            self.watches[p as usize] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_pos[v] >= 0 {
            self.heap_sift_up(self.heap_pos[v] as usize);
        }
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Literal block distance: the number of distinct decision levels
    /// among a clause's (currently assigned) literals.
    fn clause_lbd(&mut self, lits: &[u32]) -> u32 {
        self.lbd_stamp += 1;
        let stamp = self.lbd_stamp;
        let mut glue = 0u32;
        for &l in lits {
            let lvl = self.level[lit_var(l)] as usize;
            if self.lbd_seen.len() <= lvl {
                self.lbd_seen.resize(lvl + 1, 0);
            }
            if self.lbd_seen[lvl] != stamp {
                self.lbd_seen[lvl] = stamp;
                glue += 1;
            }
        }
        glue
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backjump level, and the clause's LBD.
    fn analyze(&mut self, mut confl: u32) -> (Vec<u32>, u32, u32) {
        let mut learnt: Vec<u32> = vec![0]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<u32> = None;
        let mut index = self.trail.len();
        loop {
            self.bump_clause(confl);
            let lits = self.clauses[confl as usize].lits.clone();
            // A learnt clause re-used in analysis gets its glue refreshed
            // (downward only), Glucose-style: clauses that keep proving
            // useful at low glue are the ones reduction should protect.
            if self.config.reduce_strategy == ReduceStrategy::Lbd
                && self.clauses[confl as usize].learnt
            {
                let glue = self.clause_lbd(&lits);
                let c = &mut self.clauses[confl as usize];
                if glue < c.lbd {
                    c.lbd = glue;
                }
            }
            for &q in &lits {
                // Skip the literal being resolved on (by value, so the
                // watched-literal positions are never disturbed).
                if Some(q) == p {
                    continue;
                }
                let v = lit_var(q);
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next trail literal to resolve on. Only
            // current-level literals are resolution candidates: with
            // chronological backtracking the top trail segment can also
            // hold out-of-order survivors stamped at lower levels, and
            // those are already collected into the learnt tail (their
            // seen flag stays set until the end of analysis).
            loop {
                index -= 1;
                let l = self.trail[index];
                let v = lit_var(l);
                if self.seen[v] && self.level[v] >= self.decision_level() {
                    p = Some(l);
                    break;
                }
            }
            let pv = lit_var(p.unwrap());
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = lit_neg(p.unwrap());
                break;
            }
            confl = self.reason[pv];
            debug_assert_ne!(confl, NO_REASON);
        }
        // Clause minimization: drop literals implied by the rest.
        let keep: Vec<u32> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.literal_redundant(l, &learnt))
            .collect();
        let mut minimized = vec![learnt[0]];
        minimized.extend(keep);
        // Clear seen flags.
        for &l in &learnt {
            self.seen[lit_var(l)] = false;
        }
        // Backjump level: highest level among the non-asserting literals.
        let mut bt = 0;
        if minimized.len() > 1 {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[lit_var(minimized[i])] > self.level[lit_var(minimized[max_i])] {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            bt = self.level[lit_var(minimized[1])];
        }
        let lbd = self.clause_lbd(&minimized);
        (minimized, bt, lbd)
    }

    /// A literal is redundant if its reason clause's literals are all
    /// already in the learnt clause (seen) or assigned at level 0.
    fn literal_redundant(&self, l: u32, _learnt: &[u32]) -> bool {
        let v = lit_var(l);
        let r = self.reason[v];
        if r == NO_REASON {
            return false;
        }
        self.clauses[r as usize].lits.iter().all(|&q| {
            let qv = lit_var(q);
            qv == v || self.seen[qv] || self.level[qv] == 0
        })
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        // Chronological backtracking stamps asserting literals with
        // their true implication level, which can be far below the
        // trail segment they physically occupy. A literal stamped at
        // or below the target level is still implied there — its
        // reason literals all sit at or below its own stamped level —
        // so it survives the backtrack: it is compacted into the
        // reopened segment and re-propagated, rather than unassigned
        // and rediscovered (Nadel & Ryvchin, SAT'18).
        let mut kept: Vec<u32> = Vec::new();
        for i in lim..self.trail.len() {
            let l = self.trail[i];
            let v = lit_var(l);
            if self.level[v] <= level {
                kept.push(l);
                continue;
            }
            self.assigns[v] = UNDEF;
            self.reason[v] = NO_REASON;
            if self.heap_pos[v] < 0 {
                self.heap_insert(v as u32);
            }
        }
        self.trail.truncate(lim);
        self.trail.extend_from_slice(&kept);
        self.trail_lim.truncate(level as usize);
        self.qhead = lim;
    }

    fn decide(&mut self) -> bool {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v as usize] == UNDEF {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let l = if self.polarity[v as usize] {
                    v * 2
                } else {
                    v * 2 + 1
                };
                self.enqueue(l, NO_REASON);
                return true;
            }
        }
        false
    }

    /// Marks a clause deleted, logging the deletion to the proof stream.
    fn delete_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        debug_assert!(!c.deleted);
        c.deleted = true;
        if c.learnt {
            self.num_learnts -= 1;
        }
        if let Some(pr) = self.proof.as_mut() {
            let lits: Vec<i32> = self.clauses[cref as usize]
                .lits
                .iter()
                .map(|&l| lit_to_dimacs(l))
                .collect();
            pr.delete(&lits);
        }
    }

    /// Rebuilds every watch list from the (non-deleted) clause arena.
    fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        for cref in 0..self.clauses.len() as u32 {
            let c = &self.clauses[cref as usize];
            if c.deleted {
                continue;
            }
            let (l0, l1) = (c.lits[0], c.lits[1]);
            self.watches[lit_neg(l0) as usize].push(Watch { cref, blocker: l1 });
            self.watches[lit_neg(l1) as usize].push(Watch { cref, blocker: l0 });
        }
    }

    fn reduce_db(&mut self) {
        self.stats.db_reductions += 1;
        let mut learnt_refs: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                // Binary clauses are always kept; under the LBD policy,
                // low-glue ("glue clauses" proper) are protected too.
                c.learnt
                    && !c.deleted
                    && c.lits.len() > 2
                    && (self.config.reduce_strategy == ReduceStrategy::Activity || c.lbd > 2)
            })
            .collect();
        // Worst candidates first.
        match self.config.reduce_strategy {
            ReduceStrategy::Activity => learnt_refs.sort_by(|&a, &b| {
                self.clauses[a as usize]
                    .activity
                    .partial_cmp(&self.clauses[b as usize].activity)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }),
            ReduceStrategy::Lbd => learnt_refs.sort_by(|&a, &b| {
                let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
                cb.lbd.cmp(&ca.lbd).then(
                    ca.activity
                        .partial_cmp(&cb.activity)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            }),
        }
        let locked: Vec<bool> = (0..self.clauses.len() as u32)
            .map(|cref| {
                self.clauses[cref as usize]
                    .lits
                    .first()
                    .map(|&l| self.value_lit(l) == TRUE && self.reason[lit_var(l)] == cref)
                    .unwrap_or(false)
            })
            .collect();
        let half = learnt_refs.len() / 2;
        let mut removed = 0u64;
        for &cref in &learnt_refs[..half] {
            if !locked[cref as usize] {
                self.delete_clause(cref);
                removed += 1;
            }
        }
        self.stats.learnts_removed += removed;
        if removed == 0 {
            return;
        }
        self.rebuild_watches();
    }

    /// Root-level garbage collection: removes every clause satisfied by
    /// the level-0 trail (with a DRAT `delete` record each) and compacts
    /// the clause arena, dropping tombstones left by earlier reductions.
    /// This is the scope-GC hook — after the SMT layer retires a scope's
    /// activation literal with a unit `¬act`, every clause guarded by
    /// that scope is satisfied at level 0 and reclaimed here. Returns the
    /// number of satisfied clauses deleted.
    ///
    /// Must be called at decision level 0. Safe to call between `solve*`
    /// calls: level-0 reasons are never dereferenced (conflict analysis
    /// stops at level 0), so they are cleared and the arena is free to
    /// move.
    pub fn simplify(&mut self) -> u64 {
        if !self.ok {
            return 0;
        }
        debug_assert_eq!(self.decision_level(), 0, "simplify above level 0");
        if self.qhead < self.trail.len() && self.propagate().is_some() {
            self.proof_log_empty();
            self.ok = false;
            return 0;
        }
        // Level-0 facts derived by propagation exist only through their
        // reason clauses, which are satisfied at level 0 and about to be
        // deleted. Preserve each new fact as a unit lemma (trivially RUP:
        // the checker's propagation re-derives it from the still-active
        // reason chain) before the chain is torn down. Facts enqueued
        // with no reason are already units in the stream.
        for i in self.units_logged..self.trail.len() {
            let l = self.trail[i];
            if self.reason[lit_var(l)] == NO_REASON {
                continue;
            }
            let d = lit_to_dimacs(l);
            if let Some(pr) = self.proof.as_mut() {
                pr.add_lemma(&[d]);
            }
        }
        self.units_logged = self.trail.len();
        for &l in &self.trail {
            self.reason[lit_var(l)] = NO_REASON;
        }
        let old = std::mem::take(&mut self.clauses);
        let mut kept: Vec<Clause> = Vec::with_capacity(old.len());
        let mut removed = 0u64;
        let mut pending_deletes: Vec<Vec<i32>> = Vec::new();
        for c in old {
            if c.deleted {
                continue; // tombstone: already logged at deletion time
            }
            if c.lits.iter().any(|&l| self.value_lit(l) == TRUE) {
                removed += 1;
                if self.proof.is_some() {
                    pending_deletes.push(c.lits.iter().map(|&l| lit_to_dimacs(l)).collect());
                }
                continue;
            }
            kept.push(c);
        }
        if let Some(pr) = self.proof.as_mut() {
            for lits in &pending_deletes {
                pr.delete(lits);
            }
        }
        self.num_learnts = kept.iter().filter(|c| c.learnt).count();
        self.clauses = kept;
        self.rebuild_watches();
        self.stats.gc_clauses += removed;
        removed
    }

    /// Root-level inprocessing: garbage-collect satisfied clauses, then
    /// run bounded subsumption / self-subsuming resolution and
    /// failed-literal probing. All derived facts are DRAT-logged in
    /// derivation order, so proofs stay checkable.
    fn inprocess(&mut self) {
        self.simplify();
        if !self.ok {
            return;
        }
        self.subsume_pass();
        if !self.ok {
            return;
        }
        self.probe_pass();
    }

    /// Bounded backward subsumption and self-subsuming resolution
    /// (SatELite-style): for each small clause `C`, scan the occurrence
    /// list of its rarest literal for clauses `D` that `C` subsumes
    /// outright (delete `D`) or subsumes modulo one flipped literal
    /// (strengthen `D` by resolving that literal away). The strengthened
    /// clause is RUP from `C` and `D`, so it is logged as a lemma before
    /// `D`'s deletion.
    fn subsume_pass(&mut self) {
        const SUBSUMER_MAX_LEN: usize = 16;
        // Literal-visit budget: keeps the pass linear-ish on the big
        // bit-blasted instances.
        let mut budget: u64 = 2_000_000;
        // Occurrence lists are per *variable* (either polarity), so a
        // scan finds both subsumption and self-subsumption partners.
        let nvars = self.assigns.len();
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); nvars];
        let mut sig: Vec<u64> = Vec::with_capacity(self.clauses.len());
        for (i, c) in self.clauses.iter().enumerate() {
            let mut s = 0u64;
            if !c.deleted {
                for &l in &c.lits {
                    occ[lit_var(l)].push(i as u32);
                    s |= 1u64 << (lit_var(l) % 64);
                }
            }
            sig.push(s);
        }
        let mut mark: Vec<u8> = vec![0; self.watches.len()];
        let mut pending_units: Vec<u32> = Vec::new();
        let n = self.clauses.len();
        'subsumers: for i in 0..n {
            if budget == 0 {
                break;
            }
            let c = &self.clauses[i];
            if c.deleted || c.lits.len() > SUBSUMER_MAX_LEN {
                continue;
            }
            let clits = c.lits.clone();
            let csig = sig[i];
            let pv = lit_var(
                *clits
                    .iter()
                    .min_by_key(|&&l| occ[lit_var(l)].len())
                    .unwrap(),
            );
            // Indexed: the body deletes clauses through `&mut self`, so
            // holding an iterator over `occ[pv]` would alias the borrow.
            #[allow(clippy::needless_range_loop)]
            for idx in 0..occ[pv].len() {
                if budget == 0 {
                    continue 'subsumers;
                }
                let d = occ[pv][idx] as usize;
                if d == i {
                    continue;
                }
                let dc = &self.clauses[d];
                if dc.deleted || dc.lits.len() < clits.len() || csig & !sig[d] != 0 {
                    continue;
                }
                budget = budget.saturating_sub(dc.lits.len() as u64 + clits.len() as u64);
                for &l in &dc.lits {
                    mark[l as usize] = 1;
                }
                // Does C subsume D, possibly modulo one flipped literal?
                let mut flipped: Option<u32> = None;
                let mut ok = true;
                for &l in &clits {
                    if mark[l as usize] == 1 {
                        continue;
                    }
                    if mark[lit_neg(l) as usize] == 1 && flipped.is_none() {
                        flipped = Some(l);
                    } else {
                        ok = false;
                        break;
                    }
                }
                for &l in &self.clauses[d].lits {
                    mark[l as usize] = 0;
                }
                if !ok {
                    continue;
                }
                match flipped {
                    None => {
                        self.delete_clause(d as u32);
                        self.stats.subsumed += 1;
                    }
                    Some(l) => {
                        // Self-subsuming resolution: D := D \ {¬l}.
                        let nl = lit_neg(l);
                        let new_lits: Vec<u32> = self.clauses[d]
                            .lits
                            .iter()
                            .copied()
                            .filter(|&q| q != nl)
                            .collect();
                        if let Some(pr) = self.proof.as_mut() {
                            let lemma: Vec<i32> =
                                new_lits.iter().map(|&q| lit_to_dimacs(q)).collect();
                            pr.add_lemma(&lemma);
                        }
                        let learnt = self.clauses[d].learnt;
                        let activity = self.clauses[d].activity;
                        let lbd = self.clauses[d].lbd.min(new_lits.len() as u32);
                        self.delete_clause(d as u32);
                        self.stats.strengthened += 1;
                        if new_lits.len() == 1 {
                            // Enqueued after the watch rebuild below, so
                            // propagation never runs over stale watches.
                            pending_units.push(new_lits[0]);
                        } else {
                            let cref = self.attach_clause(new_lits, learnt, lbd);
                            self.clauses[cref as usize].activity = activity;
                            sig.push(sig[d]);
                        }
                    }
                }
            }
        }
        // Deletions and additions above invalidated the watch lists
        // (attach pushed watches while deleted clauses kept theirs):
        // rebuild, then flush any strengthened-to-unit facts.
        self.rebuild_watches();
        for u in pending_units {
            match self.value_lit(u) {
                TRUE => {}
                FALSE => {
                    self.proof_log_empty();
                    self.ok = false;
                    return;
                }
                _ => self.enqueue(u, NO_REASON),
            }
        }
        if self.propagate().is_some() {
            self.proof_log_empty();
            self.ok = false;
        }
    }

    /// Bounded failed-literal probing at the root: assume a candidate
    /// literal, propagate, and if that conflicts, learn its negation as a
    /// unit (which is RUP: asserting the literal unit-propagates to the
    /// observed conflict). Candidates are literals occurring in binary
    /// clauses, where a probe actually propagates something.
    fn probe_pass(&mut self) {
        const PROBE_MAX: usize = 256;
        const PROP_BUDGET: u64 = 200_000;
        debug_assert_eq!(self.decision_level(), 0);
        let mut cand: Vec<u32> = Vec::new();
        let mut cand_seen: Vec<bool> = vec![false; self.watches.len()];
        'collect: for c in &self.clauses {
            if c.deleted || c.lits.len() != 2 {
                continue;
            }
            for &l in &c.lits {
                // Probe the negation: falsifying one side of a binary
                // clause is guaranteed to propagate the other.
                let probe = lit_neg(l);
                if !cand_seen[probe as usize] {
                    cand_seen[probe as usize] = true;
                    cand.push(probe);
                    if cand.len() >= PROBE_MAX {
                        break 'collect;
                    }
                }
            }
        }
        // Probes must not disturb saved phases: a probe assignment says
        // nothing about where a solution lies.
        let saved_phase_saving = self.config.phase_saving;
        self.config.phase_saving = false;
        let prop_floor = self.stats.propagations;
        for p in cand {
            if self.stats.propagations - prop_floor > PROP_BUDGET {
                break;
            }
            if self.value_lit(p) != UNDEF {
                continue;
            }
            self.stats.probed_literals += 1;
            self.trail_lim.push(self.trail.len());
            self.enqueue(p, NO_REASON);
            let confl = self.propagate();
            self.backtrack_to(0);
            if confl.is_some() {
                if let Some(pr) = self.proof.as_mut() {
                    pr.add_lemma(&[lit_to_dimacs(lit_neg(p))]);
                }
                self.stats.probe_units += 1;
                self.enqueue(lit_neg(p), NO_REASON);
                if self.propagate().is_some() {
                    self.proof_log_empty();
                    self.ok = false;
                    break;
                }
            }
        }
        self.config.phase_saving = saved_phase_saving;
    }

    /// Runs the CDCL loop with no assumptions.
    pub fn solve(&mut self) -> SatOutcome {
        self.solve_with_assumptions(&[])
    }

    /// Runs the CDCL loop under the given assumption literals (DIMACS
    /// numbering). The assumptions act as pseudo-decisions below all real
    /// decisions, so every learnt clause is implied by the clause database
    /// alone and remains valid for later calls with *different*
    /// assumptions. The solver always returns at decision level 0, so
    /// [`SatSolver::add_clause`] and further `solve*` calls may follow any
    /// answer; learnt clauses, activities, and phases are retained.
    ///
    /// On `Sat`, the model is read via [`SatSolver::model_value`]. On
    /// `Unsat` caused by the assumptions, the responsible subset is
    /// available from [`SatSolver::failed_assumptions`]; an empty failed
    /// set means the clauses are unsatisfiable regardless of assumptions
    /// (and the solver is permanently `Unsat` from then on).
    pub fn solve_with_assumptions(&mut self, assumptions: &[i32]) -> SatOutcome {
        self.conflict.clear();
        if !self.ok {
            return SatOutcome::Unsat;
        }
        debug_assert_eq!(self.decision_level(), 0, "solve above level 0");
        let max_var = assumptions
            .iter()
            .map(|l| l.unsigned_abs())
            .max()
            .unwrap_or(0);
        self.reserve_vars(max_var);
        let assumps: Vec<u32> = assumptions.iter().map(|&l| lit_from_dimacs(l)).collect();
        if self.propagate().is_some() {
            self.proof_log_empty();
            self.ok = false;
            return SatOutcome::Unsat;
        }
        if self.config.inprocessing && self.clauses.len() >= self.inprocess_at {
            self.inprocess();
            if !self.ok {
                return SatOutcome::Unsat;
            }
            self.inprocess_at = self.clauses.len() + (self.clauses.len() / 4).max(1000);
        }
        let mut restart_round: u64 = 0;
        let mut conflicts_since_restart: u64 = 0;
        // The conflict budget is per call, so a long-lived incremental
        // solver is not starved by its own history.
        let conflict_floor = self.stats.conflicts;
        // Wall-clock deadline, checked every 256 conflicts so cheap
        // instances never pay for `Instant::now`.
        let deadline = self
            .config
            .max_solve_ms
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        // Budget from the *live* clause count — `clauses` keeps deleted
        // entries as tombstones, and counting those would let the learnt
        // database balloon on a long-lived incremental solver.
        let mut max_learnts =
            (self.num_clauses() as f64 * self.config.learntsize_factor).max(1000.0);
        // Set HK_SAT_DEBUG=1 for search-progress lines on stderr
        // (call header plus a counter snapshot every 64 rounds).
        let debug = std::env::var("HK_SAT_DEBUG").is_ok();
        let mut iters: u64 = 0;
        if debug {
            eprintln!(
                "[sat] solve start: {} vars, {} clauses, {} assumps, deadline={:?}",
                self.assigns.len(),
                self.clauses.len(),
                assumps.len(),
                deadline.is_some()
            );
        }
        loop {
            // The deadline is checked per loop round, not per conflict: a
            // conflict-light instance can sink arbitrary time into the
            // decide/propagate path without ever reaching the conflict
            // branch. One round is at least one `propagate` call, so a
            // clock read per round is noise.
            iters += 1;
            if debug && iters.is_multiple_of(64) {
                eprintln!(
                    "[sat] round {}: {} conflicts, {} decisions, trail {}, learnts {}",
                    iters,
                    self.stats.conflicts - conflict_floor,
                    self.stats.decisions,
                    self.trail.len(),
                    self.num_learnts
                );
            }
            if let Some(deadline) = deadline {
                if std::time::Instant::now() >= deadline {
                    self.backtrack_to(0);
                    return SatOutcome::Unknown;
                }
            }
            if let Some(cancel) = &self.cancel {
                // A racing sibling reached a verdict: stand down. One
                // load per round keeps cancellation latency within a
                // single propagate-analyze step.
                if cancel.load(std::sync::atomic::Ordering::Relaxed) {
                    self.backtrack_to(0);
                    return SatOutcome::Unknown;
                }
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if let Some(budget) = self.config.max_conflicts {
                    if self.stats.conflicts - conflict_floor > budget {
                        self.backtrack_to(0);
                        return SatOutcome::Unknown;
                    }
                }
                // With chronological backtracking the conflict may lie
                // strictly below the current decision level (the clause's
                // literals were all assigned at lower levels). Analysis
                // counts literals at the *current* level, so first drop
                // to the conflict's own level.
                let confl_level = self.clauses[confl as usize]
                    .lits
                    .iter()
                    .map(|&l| self.level[lit_var(l)])
                    .max()
                    .unwrap_or(0);
                if confl_level < self.decision_level() {
                    self.backtrack_to(confl_level);
                }
                if self.decision_level() == 0 {
                    self.proof_log_empty();
                    self.ok = false;
                    return SatOutcome::Unsat;
                }
                let (learnt, bt, lbd) = self.analyze(confl);
                if let Some(pr) = self.proof.as_mut() {
                    let lemma: Vec<i32> = learnt.iter().map(|&l| lit_to_dimacs(l)).collect();
                    pr.add_lemma(&lemma);
                }
                if let Some(x) = &self.exchange {
                    // Export glue clauses (and all units) to racing
                    // siblings. Length-capped: wide clauses cost more to
                    // attach than they prune.
                    if learnt.len() <= 32 && (learnt.len() == 1 || lbd <= x.glue_max) {
                        let lemma: Vec<i32> = learnt.iter().map(|&l| lit_to_dimacs(l)).collect();
                        x.buf.export(x.id, lbd.max(1), &lemma);
                    }
                }
                // Chronological backtracking: when the backjump would
                // discard a deep stretch of (likely still useful) levels,
                // step back a single level instead. The asserting literal
                // is implied there all the same. Unit lemmas always go to
                // the root: they are enqueued without a reason clause and
                // must not be mistaken for decisions at a nonzero level.
                let target = if self.config.chrono_backtrack
                    && learnt.len() > 1
                    && self.decision_level() - bt > self.config.chrono_distance
                {
                    self.stats.chrono_backtracks += 1;
                    self.decision_level() - 1
                } else {
                    bt
                };
                self.backtrack_to(target);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true, lbd);
                    self.bump_clause(cref);
                    self.enqueue(asserting, cref);
                    // The asserting literal is implied at `bt` no matter
                    // how far we actually backtracked. After a
                    // chronological (one-level) step, `enqueue` stamped
                    // it with the inflated current level; correct it, or
                    // every later analysis, LBD, and backjump computed
                    // through this variable inherits the inflation and
                    // the search degenerates into cheap going-nowhere
                    // conflicts. The machinery downstream knows about
                    // the resulting out-of-order trail: `backtrack_to`
                    // keeps survivors stamped at or below its target,
                    // and `analyze` only resolves on current-level
                    // literals when walking the top segment.
                    self.level[lit_var(asserting)] = bt;
                }
                self.var_inc /= self.config.var_decay;
                self.cla_inc /= self.config.clause_decay;
            } else {
                // No conflict.
                if self.config.restarts
                    && conflicts_since_restart >= luby(restart_round) * self.config.restart_base
                {
                    restart_round += 1;
                    conflicts_since_restart = 0;
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                    // Restart boundaries are the one place the trail is
                    // guaranteed back at the root: import what racing
                    // siblings learnt since the last restart.
                    if self.exchange.is_some() && !self.import_shared() {
                        self.ok = false;
                        return SatOutcome::Unsat;
                    }
                }
                match self.config.reduce_strategy {
                    ReduceStrategy::Activity => {
                        if self.num_learnts as f64 >= max_learnts {
                            max_learnts *= 1.5;
                            self.reduce_db();
                        }
                    }
                    ReduceStrategy::Lbd => {
                        // Glucose-style schedule: reductions come on a
                        // conflict count that persists across solve calls,
                        // each one pushing the next further out — an
                        // incremental solver keeps shedding clauses
                        // instead of hoarding its history.
                        let due = self.config.reduce_base
                            + self.config.reduce_incr * self.stats.db_reductions;
                        if self.stats.conflicts - self.conflicts_at_reduce >= due {
                            self.conflicts_at_reduce = self.stats.conflicts;
                            self.reduce_db();
                        }
                    }
                }
                match self.pick_branch(&assumps) {
                    Branch::Decided => {}
                    Branch::AssumptionFailed(p) => {
                        self.analyze_final(p);
                        // Conclude the proof with the negation of the
                        // failed-assumption set: it is derivable by unit
                        // propagation from the clauses alone, and it is
                        // exactly what this `Unsat` answer claims. (With
                        // contradictory duplicate assumptions it is a
                        // tautology, which the checker accepts as such.)
                        if let Some(pr) = self.proof.as_mut() {
                            let lemma: Vec<i32> = self.conflict.iter().map(|&l| -l).collect();
                            pr.add_lemma(&lemma);
                        }
                        self.backtrack_to(0);
                        return SatOutcome::Unsat;
                    }
                    Branch::AllAssigned => {
                        self.stats.learnts = self.num_learnts as u64;
                        self.model.clear();
                        self.model.extend_from_slice(&self.assigns);
                        self.backtrack_to(0);
                        return SatOutcome::Sat;
                    }
                }
            }
        }
    }

    /// The next branch: pending assumptions first (MiniSat-style — an
    /// already-true assumption opens an empty pseudo-level so later
    /// backjumps never skip it), then the activity heap.
    fn pick_branch(&mut self, assumps: &[u32]) -> Branch {
        while (self.decision_level() as usize) < assumps.len() {
            let p = assumps[self.decision_level() as usize];
            match self.value_lit(p) {
                TRUE => self.trail_lim.push(self.trail.len()),
                FALSE => return Branch::AssumptionFailed(p),
                _ => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(p, NO_REASON);
                    return Branch::Decided;
                }
            }
        }
        if self.decide() {
            Branch::Decided
        } else {
            Branch::AllAssigned
        }
    }

    /// Final-conflict analysis: starting from a falsified assumption `p`,
    /// walks the implication graph backwards and collects the assumption
    /// decisions that contributed, yielding the failed-assumption set
    /// (every decision on the trail is an assumption when this runs).
    fn analyze_final(&mut self, p: u32) {
        self.conflict.push(lit_to_dimacs(p));
        if self.decision_level() == 0 {
            // `p` is refuted by the clauses alone; it fails on its own.
            return;
        }
        self.seen[lit_var(p)] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = lit_var(l);
            if !self.seen[v] {
                continue;
            }
            let r = self.reason[v];
            if r == NO_REASON {
                debug_assert!(self.level[v] > 0);
                self.conflict.push(lit_to_dimacs(l));
            } else {
                let lits = self.clauses[r as usize].lits.clone();
                for &q in &lits {
                    let qv = lit_var(q);
                    if qv != v && self.level[qv] > 0 {
                        self.seen[qv] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[lit_var(p)] = false;
    }

    /// The subset of the assumptions responsible for the last
    /// assumption-driven `Unsat` (DIMACS literals, unspecified order).
    /// Empty after an unconditional `Unsat`.
    pub fn failed_assumptions(&self) -> &[i32] {
        &self.conflict
    }

    /// Model value of DIMACS variable `v` after a `Sat` answer.
    pub fn model_value(&self, v: u32) -> bool {
        debug_assert!(v >= 1);
        self.model
            .get((v - 1) as usize)
            .map(|&a| a == TRUE)
            .unwrap_or(false)
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Clauses currently attached (original problem clauses plus learnt,
    /// excluding deleted ones).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Learnt clauses currently in the database.
    pub fn num_learnt_clauses(&self) -> usize {
        self.num_learnts
    }

    /// False once the clause set is unsatisfiable regardless of
    /// assumptions (every later `solve*` call returns `Unsat`).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Adjusts the per-call conflict budget of a live solver (used by the
    /// SMT layer's budget escalation on `Unknown`).
    pub fn set_max_conflicts(&mut self, budget: Option<u64>) {
        self.config.max_conflicts = budget;
    }

    // ------------------------------------------------------------------
    // Activity heap (max-heap with position index).
    // ------------------------------------------------------------------

    fn heap_less(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn heap_insert(&mut self, v: u32) {
        self.heap_pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top as usize] = -1;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a] as usize] = a as i32;
        self.heap_pos[self.heap[b] as usize] = b as i32;
    }
}

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(i: u64) -> u64 {
    let mut k = 1u32;
    loop {
        if i + 1 == (1 << k) - 1 {
            return 1 << (k - 1);
        }
        if i + 1 < (1 << k) - 1 {
            return luby(i + 1 - (1 << (k - 1)));
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_clauses(clauses: &[&[i32]]) -> SatOutcome {
        let mut s = SatSolver::new();
        for c in clauses {
            if !s.add_clause(c) {
                return SatOutcome::Unsat;
            }
        }
        s.solve()
    }

    #[test]
    fn trivial_sat() {
        assert_eq!(solve_clauses(&[&[1], &[2, 3]]), SatOutcome::Sat);
    }

    #[test]
    fn trivial_unsat() {
        assert_eq!(solve_clauses(&[&[1], &[-1]]), SatOutcome::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = SatSolver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn model_satisfies_clauses() {
        let clauses: &[&[i32]] = &[&[1, 2], &[-1, 3], &[-2, -3], &[2, 3]];
        let mut s = SatSolver::new();
        for c in clauses {
            assert!(s.add_clause(c));
        }
        assert_eq!(s.solve(), SatOutcome::Sat);
        for c in clauses {
            assert!(
                c.iter()
                    .any(|&l| s.model_value(l.unsigned_abs()) == (l > 0)),
                "clause {c:?} unsatisfied"
            );
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p(i,j): pigeon i in hole j; vars 1..=6 as i*2+j+1.
        let v = |i: i32, j: i32| i * 2 + j + 1;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert_eq!(solve_clauses(&refs), SatOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5i32;
        let m = 4i32;
        let v = |i: i32, j: i32| i * m + j + 1;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..n {
            clauses.push((0..m).map(|j| v(i, j)).collect());
        }
        for j in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    clauses.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert_eq!(solve_clauses(&refs), SatOutcome::Unsat);
    }

    #[test]
    fn chain_implication_unsat() {
        // 1 -> 2 -> ... -> 50, assert 1 and -50.
        let mut clauses: Vec<Vec<i32>> = vec![vec![1], vec![-50]];
        for i in 1..50 {
            clauses.push(vec![-i, i + 1]);
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert_eq!(solve_clauses(&refs), SatOutcome::Unsat);
    }

    #[test]
    fn luby_sequence() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn assumptions_are_satisfied_by_the_model() {
        let mut s = SatSolver::new();
        assert!(s.add_clause(&[1, 2]));
        assert!(s.add_clause(&[-1, 3]));
        assert_eq!(s.solve_with_assumptions(&[1, -3]), SatOutcome::Unsat);
        // 1 forces 3, contradicting -3: both assumptions are implicated.
        let mut failed = s.failed_assumptions().to_vec();
        failed.sort_unstable();
        assert_eq!(failed, vec![-3, 1]);
        // The same clauses under compatible assumptions are Sat, and the
        // model honours the assumptions.
        assert_eq!(s.solve_with_assumptions(&[-1, 2]), SatOutcome::Sat);
        assert!(!s.model_value(1));
        assert!(s.model_value(2));
        // And with no assumptions the formula is still Sat.
        assert_eq!(s.solve(), SatOutcome::Sat);
    }

    #[test]
    fn failed_assumption_alone_when_refuted_by_clauses() {
        let mut s = SatSolver::new();
        assert!(s.add_clause(&[1]));
        assert!(s.add_clause(&[-1, 2]));
        assert_eq!(s.solve_with_assumptions(&[-2]), SatOutcome::Unsat);
        assert_eq!(s.failed_assumptions(), &[-2]);
        // Not permanently unsat: dropping the assumption recovers Sat.
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert!(s.model_value(1) && s.model_value(2));
    }

    #[test]
    fn unconditional_unsat_has_empty_failed_set() {
        let mut s = SatSolver::new();
        assert!(s.add_clause(&[1, 2]));
        assert!(s.add_clause(&[-1]));
        // The last clause empties at level 0: trivially unsat from here.
        assert!(!s.add_clause(&[-2]));
        assert_eq!(s.solve_with_assumptions(&[3]), SatOutcome::Unsat);
        assert!(s.failed_assumptions().is_empty());
        assert!(!s.is_ok());
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn interleaved_add_clause_and_solve_is_stable() {
        // Grow a chain 1 -> 2 -> ... -> n, probing reachability under
        // assumptions between additions; verdicts must match the obvious
        // semantics at every step, and learnt state must never corrupt
        // later answers.
        let mut s = SatSolver::new();
        for i in 1..20i32 {
            assert!(s.add_clause(&[-i, i + 1]));
            // Assume the chain head true and the new tail false: the
            // implications force a contradiction.
            assert_eq!(s.solve_with_assumptions(&[1, -(i + 1)]), SatOutcome::Unsat);
            assert!(!s.failed_assumptions().is_empty());
            // Head false is always satisfiable.
            assert_eq!(s.solve_with_assumptions(&[-1]), SatOutcome::Sat);
            assert!(!s.model_value(1));
            // Head true propagates the whole chain in the model.
            assert_eq!(s.solve_with_assumptions(&[1]), SatOutcome::Sat);
            for j in 1..=i + 1 {
                assert!(s.model_value(j as u32), "chain var {j} after {i} links");
            }
        }
        // Finally pin both ends permanently and flip to unconditional
        // unsat.
        assert!(s.add_clause(&[1]));
        s.add_clause(&[-20]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn learnt_clauses_survive_across_calls() {
        // Pigeonhole refutations under an activation literal: the second
        // identical query must reuse learnt clauses and finish with
        // strictly fewer new conflicts than the first.
        let n = 6i32;
        let m = 5i32;
        let act = n * m + 1; // activation literal guarding all clauses
        let v = |i: i32, j: i32| i * m + j + 1;
        let mut s = SatSolver::new();
        for i in 0..n {
            let mut c: Vec<i32> = (0..m).map(|j| v(i, j)).collect();
            c.push(-act);
            s.add_clause(&c);
        }
        for j in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause(&[-v(a, j), -v(b, j), -act]);
                }
            }
        }
        assert_eq!(s.solve_with_assumptions(&[act]), SatOutcome::Unsat);
        assert_eq!(s.failed_assumptions(), &[act]);
        let first = s.stats.conflicts;
        assert!(first > 0);
        assert_eq!(s.solve_with_assumptions(&[act]), SatOutcome::Unsat);
        let second = s.stats.conflicts - first;
        assert!(
            second < first,
            "warm call took {second} conflicts vs cold {first}"
        );
        // Deactivated, the formula is satisfiable.
        assert_eq!(s.solve_with_assumptions(&[-act]), SatOutcome::Sat);
    }

    #[test]
    fn duplicate_and_conflicting_assumptions() {
        let mut s = SatSolver::new();
        assert!(s.add_clause(&[1, 2, 3]));
        assert_eq!(s.solve_with_assumptions(&[2, 2]), SatOutcome::Sat);
        assert!(s.model_value(2));
        assert_eq!(s.solve_with_assumptions(&[2, -2]), SatOutcome::Unsat);
        let mut failed = s.failed_assumptions().to_vec();
        failed.sort_unstable();
        assert_eq!(failed, vec![-2, 2]);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard instance with a tiny budget.
        let n = 8i32;
        let m = 7i32;
        let v = |i: i32, j: i32| i * m + j + 1;
        let mut s = SatSolver::with_config(SatConfig {
            max_conflicts: Some(5),
            ..SatConfig::default()
        });
        for i in 0..n {
            let c: Vec<i32> = (0..m).map(|j| v(i, j)).collect();
            s.add_clause(&c);
        }
        for j in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause(&[-v(a, j), -v(b, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SatOutcome::Unknown);
    }

    /// Pigeonhole clauses guarded by an activation literal.
    fn add_guarded_pigeonhole(s: &mut SatSolver, n: i32, m: i32, act: i32) {
        let v = |i: i32, j: i32| i * m + j + 1;
        for i in 0..n {
            let mut c: Vec<i32> = (0..m).map(|j| v(i, j)).collect();
            c.push(-act);
            s.add_clause(&c);
        }
        for j in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause(&[-v(a, j), -v(b, j), -act]);
                }
            }
        }
    }

    #[test]
    fn simplify_reclaims_activation_dead_clauses() {
        let n = 6i32;
        let m = 5i32;
        let act = n * m + 1;
        let mut s = SatSolver::new();
        add_guarded_pigeonhole(&mut s, n, m, act);
        let input_clauses = s.num_clauses();
        assert_eq!(s.solve_with_assumptions(&[act]), SatOutcome::Unsat);
        assert!(s.num_learnt_clauses() > 0, "expected learnt clauses");
        // Retire the scope: every clause contains -act and dies with it.
        assert!(s.add_clause(&[-act]));
        let reclaimed = s.simplify();
        assert!(
            reclaimed >= input_clauses as u64,
            "reclaimed {reclaimed} of {input_clauses} input clauses"
        );
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.num_learnt_clauses(), 0);
        assert_eq!(s.stats.gc_clauses, reclaimed);
        // The solver stays fully usable.
        assert!(s.add_clause(&[1, 2]));
        assert_eq!(s.solve(), SatOutcome::Sat);
    }

    #[test]
    fn strategy_and_knob_matrix_agree() {
        // The same instances must get the same verdict under every
        // combination of reduction strategy, restarts, and chrono.
        for &(strategy, restarts, chrono) in &[
            (ReduceStrategy::Activity, true, true),
            (ReduceStrategy::Activity, false, false),
            (ReduceStrategy::Lbd, true, false),
            (ReduceStrategy::Lbd, false, true),
        ] {
            let config = SatConfig {
                reduce_strategy: strategy,
                restarts,
                chrono_backtrack: chrono,
                chrono_distance: 1, // make chrono actually fire
                ..SatConfig::default()
            };
            let mut s = SatSolver::with_config(config.clone());
            add_guarded_pigeonhole(&mut s, 6, 5, 31);
            assert_eq!(
                s.solve_with_assumptions(&[31]),
                SatOutcome::Unsat,
                "{config:?}"
            );
            assert_eq!(s.failed_assumptions(), &[31]);
            assert_eq!(
                s.solve_with_assumptions(&[-31]),
                SatOutcome::Sat,
                "{config:?}"
            );
        }
    }

    #[test]
    fn inprocessing_subsumes_and_strengthens() {
        let mut s = SatSolver::new();
        assert!(s.add_clause(&[1, 2]));
        assert!(s.add_clause(&[1, 2, 3])); // subsumed by [1, 2]
        assert!(s.add_clause(&[-1, 2, 4])); // strengthened to [2, 4]
        assert!(s.add_clause(&[-4, 5]));
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert!(s.stats.subsumed >= 1, "stats: {:?}", s.stats);
        assert!(s.stats.strengthened >= 1, "stats: {:?}", s.stats);
    }

    #[test]
    fn probing_learns_failed_literals() {
        // Assigning 1 propagates 2, then 3, contradicting [-1, -3]:
        // probing must learn -1. (No pair of these clauses subsumes or
        // strengthens another, so the fact is probing's alone to find.)
        let mut s = SatSolver::new();
        assert!(s.add_clause(&[-1, 2]));
        assert!(s.add_clause(&[-2, 3]));
        assert!(s.add_clause(&[-1, -3]));
        assert!(s.add_clause(&[1, 4, 5]));
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert!(s.stats.probe_units >= 1, "stats: {:?}", s.stats);
        assert!(!s.model_value(1));
    }

    #[test]
    fn lbd_reduction_fires_on_conflict_schedule() {
        let config = SatConfig {
            reduce_base: 50,
            reduce_incr: 20,
            ..SatConfig::default()
        };
        let mut s = SatSolver::with_config(config);
        add_guarded_pigeonhole(&mut s, 7, 6, 43);
        assert_eq!(s.solve_with_assumptions(&[43]), SatOutcome::Unsat);
        assert!(s.stats.db_reductions > 0, "stats: {:?}", s.stats);
        assert!(s.stats.learnts_removed > 0, "stats: {:?}", s.stats);
        // Reduction must not have damaged soundness.
        assert_eq!(s.solve_with_assumptions(&[-43]), SatOutcome::Sat);
    }

    #[test]
    fn time_budget_reports_unknown() {
        // Pigeonhole 9-into-8 needs far more than 256 conflicts (the
        // deadline check interval), so an already-expired deadline must
        // surface as `Unknown` rather than running to completion.
        let n = 9i32;
        let m = 8i32;
        let v = |i: i32, j: i32| i * m + j + 1;
        let mut s = SatSolver::with_config(SatConfig {
            max_solve_ms: Some(0),
            ..SatConfig::default()
        });
        for i in 0..n {
            let c: Vec<i32> = (0..m).map(|j| v(i, j)).collect();
            s.add_clause(&c);
        }
        for j in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause(&[-v(a, j), -v(b, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SatOutcome::Unknown);
    }
}
