//! Content-addressed verification-condition cache.
//!
//! The push-button workflow (paper §6.3) re-runs one solver instance per
//! trap handler on every iteration, and almost all of those queries are
//! *identical* across iterations: the bug-injection loop re-verifies 49
//! unchanged handlers per injected bug, and spec development re-verifies
//! everything after each edit. This module keys each `check` call by a
//! canonical 256-bit hash of the asserted term DAG — independent of
//! `TermId` numbering, so the same VC rebuilt in a fresh [`Ctx`] hits —
//! and caches the verdict (`Unsat`, or `Sat` together with the model
//! restricted to the query's variables and functions).
//!
//! Soundness: a cached `Sat` verdict is *rehydrated* into the querying
//! context and re-validated against the actual assertions with the
//! ground evaluator before being served, so even a hash collision cannot
//! produce a bogus counterexample; a collision on an `Unsat` entry is
//! guarded only by the 256-bit key, which is astronomically unlikely to
//! collide and would at worst suppress a counterexample of a *different*
//! query.
//!
//! The cache is an in-memory LRU (shared across solver instances and
//! worker threads via `Arc`) with an optional on-disk snapshot in a
//! line-oriented text format, so repeated `verify_all` processes can
//! also reuse verdicts.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::eval::Value;
use crate::term::{Ctx, FuncId, Sort, TermData, TermId, VarId};

/// A 256-bit content key for one solver query (the conjunction of the
/// asserted terms, in assertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryKey(pub [u64; 4]);

impl fmt::Display for QueryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// The canonical fingerprint of a query: the content key plus the
/// variable/function dictionaries that map canonical indices (DFS
/// first-encounter order over the assertions) back to this context's
/// ids. The dictionaries are what let a cached model — stored in
/// canonical indices — be rehydrated into any context that builds the
/// same VC.
#[derive(Debug, Clone)]
pub struct QueryFingerprint {
    /// The content key.
    pub key: QueryKey,
    /// Canonical index -> variable, in first-encounter order.
    pub vars: Vec<VarId>,
    /// Canonical index -> function, in first-encounter order.
    pub funcs: Vec<FuncId>,
}

// splitmix64 finalizer: the per-token mixer for the Merkle hash.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn sort_token(s: Sort) -> u64 {
    match s {
        Sort::Bool => 0,
        Sort::Bv(w) => 1 + w as u64,
    }
}

/// Per-node 128-bit hash accumulated over a token stream; the two lanes
/// use different seeds and a lane-coupling rotation so they do not
/// degenerate into one 64-bit hash.
#[derive(Clone, Copy)]
struct H2(u64, u64);

impl H2 {
    fn new(tag: u64) -> H2 {
        H2(
            mix(0x517c_c1b7_2722_0a95, tag),
            mix(0x2545_f491_4f6c_dd1d, tag),
        )
    }

    fn push(&mut self, v: u64) {
        self.0 = mix(self.0, v);
        self.1 = mix(self.1.rotate_left(23), v ^ 0xa076_1d64_78bd_642f);
    }

    fn push_h(&mut self, other: H2) {
        self.push(other.0);
        self.push(other.1);
    }
}

struct Canonicalizer<'a> {
    ctx: &'a Ctx,
    var_canon: HashMap<VarId, u32>,
    vars: Vec<VarId>,
    func_canon: HashMap<FuncId, u32>,
    funcs: Vec<FuncId>,
    hashes: HashMap<TermId, H2>,
}

impl<'a> Canonicalizer<'a> {
    fn new(ctx: &'a Ctx) -> Self {
        Canonicalizer {
            ctx,
            var_canon: HashMap::new(),
            vars: Vec::new(),
            func_canon: HashMap::new(),
            funcs: Vec::new(),
            hashes: HashMap::new(),
        }
    }

    fn canon_var(&mut self, v: VarId) -> u64 {
        if let Some(&i) = self.var_canon.get(&v) {
            return i as u64;
        }
        let i = self.vars.len() as u32;
        self.var_canon.insert(v, i);
        self.vars.push(v);
        i as u64
    }

    fn canon_func(&mut self, f: FuncId) -> u64 {
        if let Some(&i) = self.func_canon.get(&f) {
            return i as u64;
        }
        let i = self.funcs.len() as u32;
        self.func_canon.insert(f, i);
        self.funcs.push(f);
        i as u64
    }

    /// Computes the node hash of `root`, iteratively (symbolic execution
    /// produces DAGs deep enough to overflow the call stack).
    fn hash_term(&mut self, root: TermId) {
        let mut stack: Vec<(TermId, bool)> = vec![(root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if self.hashes.contains_key(&t) {
                continue;
            }
            if !expanded {
                stack.push((t, true));
                for child in crate::bitblast::term_children(self.ctx, t) {
                    if !self.hashes.contains_key(&child) {
                        stack.push((child, false));
                    }
                }
                continue;
            }
            let h = self.hash_node(t);
            self.hashes.insert(t, h);
        }
    }

    fn hash_node(&mut self, t: TermId) -> H2 {
        let child = |me: &Self, c: TermId| me.hashes[&c];
        match self.ctx.data(t).clone() {
            TermData::True => H2::new(0),
            TermData::False => H2::new(1),
            TermData::BvConst { width, value } => {
                let mut h = H2::new(2);
                h.push(width as u64);
                h.push(value);
                h
            }
            TermData::Var(v) => {
                let decl = self.ctx.var_decl(v);
                let (sort, name) = (decl.sort, hash_str(&decl.name));
                let idx = self.canon_var(v);
                let mut h = H2::new(3);
                h.push(idx);
                h.push(sort_token(sort));
                h.push(name);
                h
            }
            TermData::Not(a) => {
                let mut h = H2::new(4);
                h.push_h(child(self, a));
                h
            }
            TermData::And(args) | TermData::Or(args) => {
                let tag = if matches!(self.ctx.data(t), TermData::And(_)) {
                    5
                } else {
                    6
                };
                let mut h = H2::new(tag);
                h.push(args.len() as u64);
                // And/Or args are interned sorted by TermId, which is not
                // canonical across contexts; hash them order-insensitively
                // by combining child hashes with a commutative fold.
                let (mut xa, mut xb) = (0u64, 0u64);
                for &a in args.iter() {
                    let c = child(self, a);
                    xa = xa.wrapping_add(mix(c.0, c.1));
                    xb ^= mix(c.1, c.0);
                }
                h.push(xa);
                h.push(xb);
                h
            }
            TermData::Eq(a, b) => {
                // Eq operands are also ordered by TermId; fold the two
                // child hashes commutatively.
                let (ca, cb) = (child(self, a), child(self, b));
                let mut h = H2::new(7);
                h.push(mix(ca.0, ca.1).wrapping_add(mix(cb.0, cb.1)));
                h.push(mix(ca.1, ca.0) ^ mix(cb.1, cb.0));
                h
            }
            TermData::Ite(c, a, b) => {
                let mut h = H2::new(8);
                h.push_h(child(self, c));
                h.push_h(child(self, a));
                h.push_h(child(self, b));
                h
            }
            TermData::BvNot(a) => {
                let mut h = H2::new(9);
                h.push_h(child(self, a));
                h
            }
            TermData::BvBin(op, a, b) => {
                let mut h = H2::new(10);
                h.push(op as u64);
                if op.commutative() {
                    let (ca, cb) = (child(self, a), child(self, b));
                    h.push(mix(ca.0, ca.1).wrapping_add(mix(cb.0, cb.1)));
                    h.push(mix(ca.1, ca.0) ^ mix(cb.1, cb.0));
                } else {
                    h.push_h(child(self, a));
                    h.push_h(child(self, b));
                }
                h
            }
            TermData::Cmp(op, a, b) => {
                let mut h = H2::new(11);
                h.push(op as u64);
                h.push_h(child(self, a));
                h.push_h(child(self, b));
                h
            }
            TermData::ZExt(a, w) => {
                let mut h = H2::new(12);
                h.push(w as u64);
                h.push_h(child(self, a));
                h
            }
            TermData::SExt(a, w) => {
                let mut h = H2::new(13);
                h.push(w as u64);
                h.push_h(child(self, a));
                h
            }
            TermData::Extract(a, hi, lo) => {
                let mut h = H2::new(14);
                h.push(hi as u64);
                h.push(lo as u64);
                h.push_h(child(self, a));
                h
            }
            TermData::Concat(a, b) => {
                let mut h = H2::new(15);
                h.push_h(child(self, a));
                h.push_h(child(self, b));
                h
            }
            TermData::Apply(f, args) => {
                let decl = self.ctx.func_decl(f);
                let name = hash_str(&decl.name);
                let range = sort_token(decl.range);
                let domain: Vec<u64> = decl.domain.iter().map(|&s| sort_token(s)).collect();
                let idx = self.canon_func(f);
                let mut h = H2::new(16);
                h.push(idx);
                h.push(name);
                h.push(range);
                for d in domain {
                    h.push(d);
                }
                h.push(args.len() as u64);
                for &a in args.iter() {
                    h.push_h(child(self, a));
                }
                h
            }
        }
    }
}

/// Computes the canonical fingerprint of a query (the assertions, in
/// order). The key is independent of `TermId`/`VarId` numbering: two
/// contexts that build the same VC the same way produce the same key.
pub fn fingerprint(ctx: &Ctx, assertions: &[TermId]) -> QueryFingerprint {
    let mut canon = Canonicalizer::new(ctx);
    let mut key_a = H2::new(0xfeed_face_cafe_beef);
    let mut key_b = H2::new(0x0123_4567_89ab_cdef);
    key_a.push(assertions.len() as u64);
    key_b.push(assertions.len() as u64);
    for &t in assertions {
        canon.hash_term(t);
        let h = canon.hashes[&t];
        key_a.push_h(h);
        key_b.push_h(h);
    }
    QueryFingerprint {
        key: QueryKey([key_a.0, key_a.1, key_b.0, key_b.1]),
        vars: canon.vars,
        funcs: canon.funcs,
    }
}

/// One `(canonical func index, default value, (args, value) entries)`
/// row of a cached function interpretation.
pub type CachedFunc = (u32, u64, Vec<(Vec<u64>, u64)>);

/// A model stored in canonical coordinates: variable values by canonical
/// variable index, function interpretations by canonical function index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CachedModel {
    /// `(canonical var index, value)` for every explicitly assigned var.
    pub vars: Vec<(u32, Value)>,
    /// `(canonical func index, default, entries)` per interpreted func.
    pub funcs: Vec<CachedFunc>,
}

/// A cached verdict for one query.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedVerdict {
    /// The query was unsatisfiable.
    Unsat,
    /// The query was satisfiable, with this canonical model.
    Sat(CachedModel),
}

/// Counters for cache effectiveness (monotonic over the cache lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    verdict: CachedVerdict,
    last_used: u64,
}

struct Inner {
    map: HashMap<QueryKey, Entry>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

/// A shared, thread-safe query cache: wrap in `Arc` and hand the clone
/// to every [`crate::SolverConfig`].
pub struct QueryCache {
    inner: Mutex<Inner>,
}

impl fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("QueryCache")
            .field("entries", &inner.map.len())
            .field("capacity", &inner.capacity)
            .field("stats", &inner.stats)
            .finish()
    }
}

impl QueryCache {
    /// Creates an empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                capacity: capacity.max(1),
                tick: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// Looks up a verdict, bumping recency and hit/miss counters.
    pub fn lookup(&self, key: &QueryKey) -> Option<CachedVerdict> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                let v = e.verdict.clone();
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a verdict, evicting least-recently-used
    /// entries when over capacity.
    pub fn insert(&self, key: QueryKey, verdict: CachedVerdict) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.stats.insertions += 1;
        inner.map.insert(
            key,
            Entry {
                verdict,
                last_used: tick,
            },
        );
        if inner.map.len() > inner.capacity {
            // Batch-evict the oldest eighth (amortizes the scan).
            let target = inner.capacity - inner.capacity / 8;
            let mut ages: Vec<(u64, QueryKey)> =
                inner.map.iter().map(|(k, e)| (e.last_used, *k)).collect();
            ages.sort_unstable();
            let n_evict = inner.map.len().saturating_sub(target);
            for &(_, k) in ages.iter().take(n_evict) {
                inner.map.remove(&k);
                inner.stats.evictions += 1;
            }
        }
    }

    /// Drops an entry (used when a cached `Sat` model fails validation,
    /// which indicates a stale or colliding entry).
    pub fn invalidate(&self, key: &QueryKey) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.remove(key);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Removes every entry (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().unwrap().map.clear();
    }

    // ------------------------------------------------------------------
    // On-disk snapshot: a line-oriented text format, version-tagged.
    // ------------------------------------------------------------------

    /// Writes all entries to `path`, safely against concurrent
    /// snapshotters of the same path (parallel workers, overlapping CI
    /// runs):
    ///
    /// * an advisory file lock on `<path>.lock` serializes writers;
    /// * entries already on disk that this cache does not hold are
    ///   merged into the written snapshot (union; memory wins on a key
    ///   conflict), so concurrent processes warm each other instead of
    ///   last-write-wins clobbering the whole file;
    /// * the snapshot is staged to a per-process temp file and
    ///   atomically renamed into place, so a concurrent
    ///   [`Self::load_snapshot`] never observes a torn file.
    pub fn save_snapshot(&self, path: &Path) -> io::Result<()> {
        let lock_path = path.with_extension("lock");
        let lock_file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&lock_path)?;
        lock_file.lock()?;
        // Merge-on-save: pick up whatever another process published
        // since this cache last read the snapshot. Loaded into a
        // scratch cache so this cache's LRU order and hit counters stay
        // untouched. A corrupt or missing snapshot merges nothing and
        // simply gets replaced.
        let scratch = QueryCache::new(usize::MAX);
        if path.exists() {
            let _ = scratch.load_snapshot(path);
        }
        let inner = self.inner.lock().unwrap();
        let mut scratch_inner = scratch.inner.lock().unwrap();
        let disk_extra: Vec<(QueryKey, CachedVerdict)> = scratch_inner
            .map
            .drain()
            .filter(|(k, _)| !inner.map.contains_key(k))
            .map(|(k, e)| (k, e.verdict))
            .collect();
        drop(scratch_inner);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
            // Deterministic output order keeps snapshots diffable.
            let mut all: Vec<(QueryKey, &CachedVerdict)> =
                inner.map.iter().map(|(k, e)| (*k, &e.verdict)).collect();
            all.extend(disk_extra.iter().map(|(k, v)| (*k, v)));
            all.sort_unstable_by_key(|&(k, _)| k);
            writeln!(w, "hk-smt-qcache 1 {}", all.len())?;
            for (key, verdict) in all {
                let k = key.0;
                match verdict {
                    CachedVerdict::Unsat => {
                        writeln!(w, "unsat {:x} {:x} {:x} {:x}", k[0], k[1], k[2], k[3])?;
                    }
                    CachedVerdict::Sat(m) => {
                        writeln!(
                            w,
                            "sat {:x} {:x} {:x} {:x} {} {}",
                            k[0],
                            k[1],
                            k[2],
                            k[3],
                            m.vars.len(),
                            m.funcs.len()
                        )?;
                        for (idx, v) in &m.vars {
                            match v {
                                Value::Bool(b) => writeln!(w, "v {idx} b {}", *b as u8)?,
                                Value::Bv(x) => writeln!(w, "v {idx} w {x:x}")?,
                            }
                        }
                        for (idx, default, entries) in &m.funcs {
                            writeln!(w, "f {idx} {default:x} {}", entries.len())?;
                            for (args, val) in entries {
                                write!(w, "e {}", args.len())?;
                                for a in args {
                                    write!(w, " {a:x}")?;
                                }
                                writeln!(w, " {val:x}")?;
                            }
                        }
                    }
                }
            }
            w.flush()?;
        }
        let renamed = std::fs::rename(&tmp, path);
        // Advisory lock released when `lock_file` drops; tolerate unlock
        // errors — the close below releases it regardless.
        drop(lock_file);
        renamed
    }

    /// Loads entries from a snapshot written by [`Self::save_snapshot`],
    /// merging into this cache. Malformed input yields `InvalidData`.
    pub fn load_snapshot(&self, path: &Path) -> io::Result<usize> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let file = std::fs::File::open(path)?;
        let mut lines = io::BufReader::new(file).lines();
        let header = lines.next().ok_or_else(|| bad("empty snapshot"))??;
        if !header.starts_with("hk-smt-qcache 1 ") {
            return Err(bad("unsupported snapshot version"));
        }
        let parse_u64 = |s: &str| u64::from_str_radix(s, 16).map_err(|_| bad("bad number"));
        let mut loaded = 0usize;
        let mut line = lines.next().transpose()?;
        while let Some(l) = line {
            let mut it = l.split_ascii_whitespace();
            let kind = it.next().ok_or_else(|| bad("blank entry line"))?;
            let mut key = [0u64; 4];
            for k in key.iter_mut() {
                *k = parse_u64(it.next().ok_or_else(|| bad("short key"))?)?;
            }
            let verdict = match kind {
                "unsat" => {
                    line = lines.next().transpose()?;
                    CachedVerdict::Unsat
                }
                "sat" => {
                    let n_vars: usize = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("missing var count"))?;
                    let n_funcs: usize = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("missing func count"))?;
                    let mut model = CachedModel::default();
                    for _ in 0..n_vars {
                        let l = lines
                            .next()
                            .transpose()?
                            .ok_or_else(|| bad("truncated vars"))?;
                        let mut it = l.split_ascii_whitespace();
                        if it.next() != Some("v") {
                            return Err(bad("expected var line"));
                        }
                        let idx: u32 = it
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| bad("bad var index"))?;
                        let v = match it.next() {
                            Some("b") => Value::Bool(it.next() == Some("1")),
                            Some("w") => Value::Bv(parse_u64(
                                it.next().ok_or_else(|| bad("missing bv value"))?,
                            )?),
                            _ => return Err(bad("bad var kind")),
                        };
                        model.vars.push((idx, v));
                    }
                    for _ in 0..n_funcs {
                        let l = lines
                            .next()
                            .transpose()?
                            .ok_or_else(|| bad("truncated funcs"))?;
                        let mut it = l.split_ascii_whitespace();
                        if it.next() != Some("f") {
                            return Err(bad("expected func line"));
                        }
                        let idx: u32 = it
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| bad("bad func index"))?;
                        let default = parse_u64(it.next().ok_or_else(|| bad("missing default"))?)?;
                        let n_entries: usize = it
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| bad("missing entry count"))?;
                        let mut entries = Vec::with_capacity(n_entries);
                        for _ in 0..n_entries {
                            let l = lines
                                .next()
                                .transpose()?
                                .ok_or_else(|| bad("truncated entries"))?;
                            let mut it = l.split_ascii_whitespace();
                            if it.next() != Some("e") {
                                return Err(bad("expected entry line"));
                            }
                            let arity: usize = it
                                .next()
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| bad("bad arity"))?;
                            let mut args = Vec::with_capacity(arity);
                            for _ in 0..arity {
                                args.push(parse_u64(it.next().ok_or_else(|| bad("short args"))?)?);
                            }
                            let val = parse_u64(it.next().ok_or_else(|| bad("missing value"))?)?;
                            entries.push((args, val));
                        }
                        model.funcs.push((idx, default, entries));
                    }
                    line = lines.next().transpose()?;
                    CachedVerdict::Sat(model)
                }
                _ => return Err(bad("unknown entry kind")),
            };
            self.insert(QueryKey(key), verdict);
            loaded += 1;
        }
        Ok(loaded)
    }
}

/// Converts a model into canonical coordinates for storage, keeping
/// only the variables and functions that occur in the fingerprinted
/// assertions (exactly what is needed to re-evaluate them).
pub fn dehydrate(fp: &QueryFingerprint, model: &crate::model::Model) -> CachedModel {
    let mut out = CachedModel::default();
    for (i, v) in fp.vars.iter().enumerate() {
        if let Some(&val) = model.assignment.vars.get(v) {
            out.vars.push((i as u32, val));
        }
    }
    for (i, f) in fp.funcs.iter().enumerate() {
        if let Some(interp) = model.assignment.funcs.get(f) {
            let mut entries: Vec<(Vec<u64>, u64)> = interp
                .entries
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect();
            entries.sort_unstable();
            out.funcs.push((i as u32, interp.default, entries));
        }
    }
    out
}

/// Rebuilds a model in the querying context from canonical coordinates.
/// Returns `None` when the stored indices do not fit the fingerprint
/// (a collision or format drift) — callers treat that as a miss.
pub fn rehydrate(fp: &QueryFingerprint, m: &CachedModel) -> Option<crate::model::Model> {
    let mut model = crate::model::Model::default();
    for &(idx, val) in &m.vars {
        let v = *fp.vars.get(idx as usize)?;
        model.assignment.set_var(v, val);
    }
    for (idx, default, entries) in &m.funcs {
        let f = *fp.funcs.get(*idx as usize)?;
        let interp = model.assignment.func_mut(f);
        interp.default = *default;
        for (args, val) in entries {
            interp.set(args.clone(), *val);
        }
    }
    Some(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the same little VC in a context that may already hold
    /// other terms, returning the assertions.
    fn build_vc(ctx: &mut Ctx) -> Vec<TermId> {
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let y = ctx.var("y", Sort::Bv(64));
        let fx = ctx.apply(f, &[x]);
        let c5 = ctx.bv_const(64, 5);
        let sum = ctx.bv_add(fx, c5);
        let e1 = ctx.eq(sum, y);
        let lt = ctx.ult(x, y);
        vec![e1, lt]
    }

    #[test]
    fn fingerprint_is_context_independent() {
        let mut ctx1 = Ctx::new();
        let a1 = build_vc(&mut ctx1);
        // A second context with unrelated junk interned first, so all
        // the TermIds/VarIds differ.
        let mut ctx2 = Ctx::new();
        let junk = ctx2.var("junk", Sort::Bv(32));
        let one = ctx2.bv_const(32, 1);
        let _ = ctx2.bv_add(junk, one);
        let a2 = build_vc(&mut ctx2);
        let f1 = fingerprint(&ctx1, &a1);
        let f2 = fingerprint(&ctx2, &a2);
        assert_eq!(f1.key, f2.key);
        assert_eq!(f1.vars.len(), f2.vars.len());
    }

    #[test]
    fn fingerprint_distinguishes_different_vcs() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(64));
        let c1 = ctx.bv_const(64, 1);
        let c2 = ctx.bv_const(64, 2);
        let e1 = ctx.eq(x, c1);
        let e2 = ctx.eq(x, c2);
        let f1 = fingerprint(&ctx, &[e1]);
        let f2 = fingerprint(&ctx, &[e2]);
        assert_ne!(f1.key, f2.key);
        // Different variable *names* are different VCs too.
        let mut ctx2 = Ctx::new();
        let z = ctx2.var("z", Sort::Bv(64));
        let c1 = ctx2.bv_const(64, 1);
        let e1z = ctx2.eq(z, c1);
        assert_ne!(fingerprint(&ctx2, &[e1z]).key, f1.key);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = QueryCache::new(8);
        for i in 0..64u64 {
            cache.insert(QueryKey([i, 0, 0, 0]), CachedVerdict::Unsat);
        }
        assert!(cache.len() <= 8);
        // The most recent insertion survives.
        assert!(cache.lookup(&QueryKey([63, 0, 0, 0])).is_some());
        let stats = cache.stats();
        assert_eq!(stats.insertions, 64);
        assert!(stats.evictions >= 56);
    }

    #[test]
    fn snapshot_roundtrip() {
        let cache = QueryCache::new(64);
        cache.insert(QueryKey([1, 2, 3, 4]), CachedVerdict::Unsat);
        cache.insert(
            QueryKey([5, 6, 7, 8]),
            CachedVerdict::Sat(CachedModel {
                vars: vec![(0, Value::Bv(42)), (1, Value::Bool(true))],
                funcs: vec![(0, 9, vec![(vec![1, 2], 3), (vec![], 4)])],
            }),
        );
        let dir = std::env::temp_dir().join("hk-smt-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("snap-{}.txt", std::process::id()));
        cache.save_snapshot(&path).unwrap();
        let fresh = QueryCache::new(64);
        assert_eq!(fresh.load_snapshot(&path).unwrap(), 2);
        assert_eq!(
            fresh.lookup(&QueryKey([1, 2, 3, 4])),
            Some(CachedVerdict::Unsat)
        );
        match fresh.lookup(&QueryKey([5, 6, 7, 8])) {
            Some(CachedVerdict::Sat(m)) => {
                assert_eq!(m.vars.len(), 2);
                assert_eq!(m.funcs[0].1, 9);
                assert_eq!(m.funcs[0].2.len(), 2);
            }
            other => panic!("bad roundtrip: {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
