//! Ground evaluation of terms under a variable/function assignment.
//!
//! The evaluator serves three roles: it validates models returned by the
//! SAT pipeline (every `Sat` answer is re-checked before being trusted), it
//! executes the state-machine specification *concretely* for differential
//! testing against the kernel interpreter, and it provides the reference
//! semantics the bit-blaster is property-tested against.

use std::collections::HashMap;

use crate::term::{sext_to_64, Ctx, FuncId, Sort, TermData, TermId, VarId};

/// A concrete value: boolean or bit-vector (width implied by the term).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// Bit-vector value, already masked to its width.
    Bv(u64),
}

impl Value {
    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a bit-vector.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Bv(v) => panic!("expected bool, got bv {v}"),
        }
    }

    /// The bit-vector payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a boolean.
    pub fn as_bv(self) -> u64 {
        match self {
            Value::Bv(v) => v,
            Value::Bool(b) => panic!("expected bv, got bool {b}"),
        }
    }
}

/// Interpretation of one uninterpreted function: an exception table plus a
/// default value, the shape SMT solvers give finite function models.
#[derive(Debug, Clone, Default)]
pub struct FuncInterp {
    /// Explicit entries mapping argument tuples to results.
    pub entries: HashMap<Vec<u64>, u64>,
    /// Result for argument tuples not in `entries`.
    pub default: u64,
}

impl FuncInterp {
    /// Looks up the function at the given arguments.
    pub fn get(&self, args: &[u64]) -> u64 {
        self.entries.get(args).copied().unwrap_or(self.default)
    }

    /// Sets the function value at the given arguments.
    pub fn set(&mut self, args: Vec<u64>, value: u64) {
        self.entries.insert(args, value);
    }
}

/// A total assignment to variables and uninterpreted functions.
///
/// Variables without an explicit value default to `false`/`0`, matching
/// the "don't care" completion SAT models leave implicit.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    /// Values of declared variables.
    pub vars: HashMap<VarId, Value>,
    /// Interpretations of declared functions.
    pub funcs: HashMap<FuncId, FuncInterp>,
}

impl Assignment {
    /// Creates an empty assignment (all defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a variable value.
    pub fn set_var(&mut self, v: VarId, value: Value) {
        self.vars.insert(v, value);
    }

    /// Mutable access to a function interpretation, creating it on demand.
    pub fn func_mut(&mut self, f: FuncId) -> &mut FuncInterp {
        self.funcs.entry(f).or_default()
    }
}

/// Evaluates `root` under `asg`, memoizing shared subterms.
///
/// The traversal is iterative, so deeply nested path conditions from
/// symbolic execution cannot overflow the stack.
pub fn eval(ctx: &Ctx, root: TermId, asg: &Assignment) -> Value {
    let mut cache: HashMap<TermId, Value> = HashMap::new();
    let mut stack: Vec<(TermId, bool)> = vec![(root, false)];
    while let Some((t, expanded)) = stack.pop() {
        if cache.contains_key(&t) {
            continue;
        }
        if !expanded {
            stack.push((t, true));
            for child in children(ctx, t) {
                if !cache.contains_key(&child) {
                    stack.push((child, false));
                }
            }
            continue;
        }
        let v = eval_node(ctx, t, asg, &cache);
        cache.insert(t, v);
    }
    cache[&root]
}

/// Convenience: evaluates a boolean term.
pub fn eval_bool(ctx: &Ctx, t: TermId, asg: &Assignment) -> bool {
    eval(ctx, t, asg).as_bool()
}

/// Convenience: evaluates a bit-vector term.
pub fn eval_bv(ctx: &Ctx, t: TermId, asg: &Assignment) -> u64 {
    eval(ctx, t, asg).as_bv()
}

fn children(ctx: &Ctx, t: TermId) -> Vec<TermId> {
    match ctx.data(t) {
        TermData::True | TermData::False | TermData::BvConst { .. } | TermData::Var(_) => {
            Vec::new()
        }
        TermData::Not(a) | TermData::BvNot(a) => vec![*a],
        TermData::ZExt(a, _) | TermData::SExt(a, _) | TermData::Extract(a, _, _) => vec![*a],
        TermData::And(args) | TermData::Or(args) => args.to_vec(),
        TermData::Eq(a, b)
        | TermData::BvBin(_, a, b)
        | TermData::Cmp(_, a, b)
        | TermData::Concat(a, b) => vec![*a, *b],
        TermData::Ite(c, a, b) => vec![*c, *a, *b],
        TermData::Apply(_, args) => args.to_vec(),
    }
}

fn eval_node(ctx: &Ctx, t: TermId, asg: &Assignment, cache: &HashMap<TermId, Value>) -> Value {
    let get = |id: &TermId| cache[id];
    match ctx.data(t) {
        TermData::True => Value::Bool(true),
        TermData::False => Value::Bool(false),
        TermData::BvConst { value, .. } => Value::Bv(*value),
        TermData::Var(v) => {
            asg.vars
                .get(v)
                .copied()
                .unwrap_or_else(|| match ctx.var_decl(*v).sort {
                    Sort::Bool => Value::Bool(false),
                    Sort::Bv(_) => Value::Bv(0),
                })
        }
        TermData::Not(a) => Value::Bool(!get(a).as_bool()),
        TermData::And(args) => Value::Bool(args.iter().all(|a| get(a).as_bool())),
        TermData::Or(args) => Value::Bool(args.iter().any(|a| get(a).as_bool())),
        TermData::Eq(a, b) => Value::Bool(get(a) == get(b)),
        TermData::Ite(c, a, b) => {
            if get(c).as_bool() {
                get(a)
            } else {
                get(b)
            }
        }
        TermData::BvNot(a) => {
            let w = ctx.width(t);
            Value::Bv(!get(a).as_bv() & crate::term::mask(w))
        }
        TermData::BvBin(op, a, b) => {
            let w = ctx.width(t);
            Value::Bv(op.apply(w, get(a).as_bv(), get(b).as_bv()))
        }
        TermData::Cmp(op, a, b) => {
            let w = ctx.width(*a);
            Value::Bool(op.apply(w, get(a).as_bv(), get(b).as_bv()))
        }
        TermData::ZExt(a, _) => Value::Bv(get(a).as_bv()),
        TermData::SExt(a, w) => {
            let src_w = ctx.width(*a);
            Value::Bv(sext_to_64(get(a).as_bv(), src_w) & crate::term::mask(*w))
        }
        TermData::Extract(a, hi, lo) => {
            Value::Bv((get(a).as_bv() >> lo) & crate::term::mask(hi - lo + 1))
        }
        TermData::Concat(a, b) => {
            let wb = ctx.width(*b);
            Value::Bv((get(a).as_bv() << wb) | get(b).as_bv())
        }
        TermData::Apply(f, args) => {
            let vals: Vec<u64> = args.iter().map(|a| get(a).as_bv()).collect();
            let result = asg.funcs.get(f).map(|fi| fi.get(&vals)).unwrap_or(0);
            match ctx.func_decl(*f).range {
                Sort::Bool => Value::Bool(result != 0),
                Sort::Bv(w) => Value::Bv(result & crate::term::mask(w)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var_id(ctx: &Ctx, t: TermId) -> VarId {
        match ctx.data(t) {
            TermData::Var(v) => *v,
            _ => panic!("not a var"),
        }
    }

    #[test]
    fn eval_arith() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let c = ctx.bv_const(8, 10);
        let sum = ctx.bv_add(x, c);
        let mut asg = Assignment::new();
        asg.set_var(var_id(&ctx, x), Value::Bv(250));
        assert_eq!(eval_bv(&ctx, sum, &asg), 4); // wraps at 8 bits
    }

    #[test]
    fn eval_ite_and_cmp() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(64));
        let c5 = ctx.bv_const(64, 5);
        let cond = ctx.ult(x, c5);
        let a = ctx.bv_const(64, 1);
        let b = ctx.bv_const(64, 2);
        let ite = ctx.ite(cond, a, b);
        let mut asg = Assignment::new();
        asg.set_var(var_id(&ctx, x), Value::Bv(3));
        assert_eq!(eval_bv(&ctx, ite, &asg), 1);
        asg.set_var(var_id(&ctx, x), Value::Bv(9));
        assert_eq!(eval_bv(&ctx, ite, &asg), 2);
    }

    #[test]
    fn eval_uf() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let app = ctx.apply(f, &[x]);
        let mut asg = Assignment::new();
        asg.set_var(var_id(&ctx, x), Value::Bv(7));
        let fi = asg.func_mut(f);
        fi.default = 100;
        fi.set(vec![7], 42);
        assert_eq!(eval_bv(&ctx, app, &asg), 42);
        asg.set_var(var_id(&ctx, x), Value::Bv(8));
        assert_eq!(eval_bv(&ctx, app, &asg), 100);
    }

    #[test]
    fn eval_signed_cmp() {
        let mut ctx = Ctx::new();
        let a = ctx.var("a", Sort::Bv(8));
        let b = ctx.var("b", Sort::Bv(8));
        let lt = ctx.slt(a, b);
        let mut asg = Assignment::new();
        // -1 < 1 signed, but 255 > 1 unsigned.
        asg.set_var(var_id(&ctx, a), Value::Bv(0xff));
        asg.set_var(var_id(&ctx, b), Value::Bv(1));
        assert!(eval_bool(&ctx, lt, &asg));
        let ult = ctx.ult(a, b);
        assert!(!eval_bool(&ctx, ult, &asg));
    }

    #[test]
    fn deep_term_no_stack_overflow() {
        let mut ctx = Ctx::new();
        let one = ctx.bv_const(64, 1);
        let mut t = ctx.var("x", Sort::Bv(64));
        for _ in 0..200_000 {
            t = ctx.bv_add(t, one);
        }
        let asg = Assignment::new();
        assert_eq!(eval_bv(&ctx, t, &asg), 200_000);
    }

    #[test]
    fn default_values() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(32));
        let b = ctx.var("b", Sort::Bool);
        let asg = Assignment::new();
        assert_eq!(eval_bv(&ctx, x, &asg), 0);
        assert!(!eval_bool(&ctx, b, &asg));
    }
}
