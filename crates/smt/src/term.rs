//! Hash-consed terms over booleans, fixed-width bit-vectors, and
//! uninterpreted functions.
//!
//! All terms live in a [`Ctx`] and are referenced by [`TermId`]. The
//! constructors are *smart*: they fold constants and apply cheap local
//! rewrites (identity elements, `ite` collapsing, equality of identical
//! terms), which keeps the DAGs emitted by symbolic execution small before
//! they ever reach the bit-blaster. The rewrites implement SMT-LIB
//! semantics for every operator (e.g. `bvudiv x 0 = ~0`), so the ground
//! evaluator in [`crate::eval`] and the bit-blaster in [`crate::bitblast`]
//! can be tested against each other.

use std::collections::HashMap;

/// Sort of a term: boolean or bit-vector of the given width (1..=64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Boolean sort.
    Bool,
    /// Bit-vector sort of the given width in bits.
    Bv(u32),
}

impl Sort {
    /// Width of a bit-vector sort.
    ///
    /// # Panics
    ///
    /// Panics if the sort is [`Sort::Bool`].
    pub fn width(self) -> u32 {
        match self {
            Sort::Bv(w) => w,
            Sort::Bool => panic!("Sort::width on Bool"),
        }
    }
}

/// Reference to an interned term in a [`Ctx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Reference to a declared variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Reference to a declared uninterpreted function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Binary bit-vector operations (SMT-LIB semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BvBinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero yields all-ones.
    Udiv,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Urem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left; amounts `>= width` yield zero.
    Shl,
    /// Logical shift right; amounts `>= width` yield zero.
    Lshr,
    /// Arithmetic shift right; amounts `>= width` yield the sign fill.
    Ashr,
}

impl BvBinOp {
    /// True for operators where argument order does not matter.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BvBinOp::Add | BvBinOp::Mul | BvBinOp::And | BvBinOp::Or | BvBinOp::Xor
        )
    }

    /// Applies the operator to constants of the given width.
    pub fn apply(self, width: u32, a: u64, b: u64) -> u64 {
        let m = mask(width);
        let r = match self {
            BvBinOp::Add => a.wrapping_add(b),
            BvBinOp::Sub => a.wrapping_sub(b),
            BvBinOp::Mul => a.wrapping_mul(b),
            BvBinOp::Udiv => a.checked_div(b).unwrap_or(m),
            BvBinOp::Urem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            BvBinOp::And => a & b,
            BvBinOp::Or => a | b,
            BvBinOp::Xor => a ^ b,
            BvBinOp::Shl => {
                if b >= width as u64 {
                    0
                } else {
                    a << b
                }
            }
            BvBinOp::Lshr => {
                if b >= width as u64 {
                    0
                } else {
                    a >> b
                }
            }
            BvBinOp::Ashr => {
                let sign = a >> (width - 1) & 1;
                if b >= width as u64 {
                    if sign == 1 {
                        m
                    } else {
                        0
                    }
                } else {
                    let sa = sext_to_64(a, width) as i64;
                    (sa >> b) as u64
                }
            }
        };
        r & m
    }
}

/// Bit-vector comparison operations producing booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
}

impl CmpOp {
    /// Applies the comparison to constants of the given width.
    pub fn apply(self, width: u32, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Ult => a < b,
            CmpOp::Ule => a <= b,
            CmpOp::Slt => (sext_to_64(a, width) as i64) < (sext_to_64(b, width) as i64),
            CmpOp::Sle => (sext_to_64(a, width) as i64) <= (sext_to_64(b, width) as i64),
        }
    }
}

/// The interned representation of a term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermData {
    /// Boolean constant true.
    True,
    /// Boolean constant false.
    False,
    /// Bit-vector constant (value is masked to the width).
    BvConst { width: u32, value: u64 },
    /// Declared variable.
    Var(VarId),
    /// Boolean negation.
    Not(TermId),
    /// N-ary conjunction (args sorted, deduplicated, at least 2).
    And(Box<[TermId]>),
    /// N-ary disjunction (args sorted, deduplicated, at least 2).
    Or(Box<[TermId]>),
    /// Equality of two terms of the same sort.
    Eq(TermId, TermId),
    /// If-then-else; condition is boolean, branches share a sort.
    Ite(TermId, TermId, TermId),
    /// Bit-vector complement.
    BvNot(TermId),
    /// Binary bit-vector operation.
    BvBin(BvBinOp, TermId, TermId),
    /// Bit-vector comparison.
    Cmp(CmpOp, TermId, TermId),
    /// Zero-extension to the given (strictly larger) width.
    ZExt(TermId, u32),
    /// Sign-extension to the given (strictly larger) width.
    SExt(TermId, u32),
    /// Bit extraction `[hi:lo]` (inclusive), width `hi - lo + 1`.
    Extract(TermId, u32, u32),
    /// Concatenation; the first operand forms the high bits.
    Concat(TermId, TermId),
    /// Application of an uninterpreted function.
    Apply(FuncId, Box<[TermId]>),
}

/// Declared variable metadata.
#[derive(Debug, Clone)]
pub struct VarDecl {
    /// Display name (need not be unique).
    pub name: String,
    /// Sort of the variable.
    pub sort: Sort,
}

/// Declared uninterpreted-function metadata.
#[derive(Debug, Clone)]
pub struct FuncDecl {
    /// Display name (need not be unique).
    pub name: String,
    /// Argument sorts.
    pub domain: Vec<Sort>,
    /// Result sort.
    pub range: Sort,
}

/// Bit mask with the low `width` bits set.
pub fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Sign-extends a `width`-bit value to 64 bits.
pub fn sext_to_64(v: u64, width: u32) -> u64 {
    if width >= 64 {
        return v;
    }
    let sign = 1u64 << (width - 1);
    if v & sign != 0 {
        v | !mask(width)
    } else {
        v & mask(width)
    }
}

/// Term context: the arena that interns terms and declares variables and
/// uninterpreted functions.
///
/// A context is single-threaded by design; parallel verification creates
/// one context per worker (paper §6.3 runs one Z3 instance per handler).
#[derive(Debug, Default)]
pub struct Ctx {
    terms: Vec<TermData>,
    sorts: Vec<Sort>,
    intern: HashMap<TermData, TermId>,
    vars: Vec<VarDecl>,
    funcs: Vec<FuncDecl>,
}

impl Ctx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned terms (for stats and regression tests).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The data of a term.
    pub fn data(&self, t: TermId) -> &TermData {
        &self.terms[t.0 as usize]
    }

    /// The sort of a term.
    pub fn sort(&self, t: TermId) -> Sort {
        self.sorts[t.0 as usize]
    }

    /// The width of a bit-vector term.
    ///
    /// # Panics
    ///
    /// Panics if the term is boolean.
    pub fn width(&self, t: TermId) -> u32 {
        self.sort(t).width()
    }

    /// Metadata of a declared variable.
    pub fn var_decl(&self, v: VarId) -> &VarDecl {
        &self.vars[v.0 as usize]
    }

    /// Metadata of a declared function.
    pub fn func_decl(&self, f: FuncId) -> &FuncDecl {
        &self.funcs[f.0 as usize]
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Checks every well-formedness invariant of the term store: sort
    /// and width agreement per node, canonical argument ordering from
    /// the smart constructors, no dangling `TermId`/`VarId`/`FuncId`,
    /// and intern-table consistency. Returns the first violation found.
    ///
    /// Run under `debug_assertions` at query entry (`Solver::check`)
    /// and directly by tests; a violation means a constructor or an
    /// external producer of `TermData` broke the term layer's contract.
    pub fn validate(&self) -> Result<(), String> {
        if self.sorts.len() != self.terms.len() {
            return Err(format!(
                "sorts/terms length mismatch: {} vs {}",
                self.sorts.len(),
                self.terms.len()
            ));
        }
        if self.intern.len() != self.terms.len() {
            return Err(format!(
                "intern table has {} entries for {} terms",
                self.intern.len(),
                self.terms.len()
            ));
        }
        for (data, &id) in &self.intern {
            let slot = self
                .terms
                .get(id.0 as usize)
                .ok_or_else(|| format!("intern entry {id:?} is out of bounds"))?;
            if slot != data {
                return Err(format!("intern entry {id:?} disagrees with term store"));
            }
        }
        for (i, data) in self.terms.iter().enumerate() {
            let id = TermId(i as u32);
            self.validate_node(id, data)
                .map_err(|e| format!("term {}: {}", i, e))?;
        }
        Ok(())
    }

    fn validate_node(&self, id: TermId, data: &TermData) -> Result<(), String> {
        let my_sort = self.sorts[id.0 as usize];
        // The store is append-only: every child must already exist.
        for c in crate::bitblast::term_children_of(data) {
            if c.0 >= id.0 {
                return Err(format!("child {c:?} does not precede its parent"));
            }
        }
        let expect_bool = |t: TermId, what: &str| -> Result<(), String> {
            if self.sort(t) == Sort::Bool {
                Ok(())
            } else {
                Err(format!("{what} operand {t:?} is not boolean"))
            }
        };
        let bv_width = |t: TermId, what: &str| -> Result<u32, String> {
            match self.sort(t) {
                Sort::Bv(w) => Ok(w),
                Sort::Bool => Err(format!("{what} operand {t:?} is not a bit-vector")),
            }
        };
        match data {
            TermData::True | TermData::False => {
                if my_sort != Sort::Bool {
                    return Err("boolean constant with non-bool sort".into());
                }
            }
            TermData::BvConst { width, value } => {
                if !(1..=64).contains(width) {
                    return Err(format!("constant width {width} out of range"));
                }
                if *value & !mask(*width) != 0 {
                    return Err(format!("constant {value:#x} exceeds width {width}"));
                }
                if my_sort != Sort::Bv(*width) {
                    return Err("constant sort disagrees with width".into());
                }
            }
            TermData::Var(v) => {
                let decl = self
                    .vars
                    .get(v.0 as usize)
                    .ok_or_else(|| format!("dangling {v:?}"))?;
                if my_sort != decl.sort {
                    return Err(format!("var {} sort disagrees with declaration", decl.name));
                }
            }
            TermData::Not(a) => {
                expect_bool(*a, "not")?;
                if my_sort != Sort::Bool {
                    return Err("not with non-bool sort".into());
                }
            }
            TermData::And(args) | TermData::Or(args) => {
                if args.len() < 2 {
                    return Err("and/or with fewer than 2 args".into());
                }
                if !args.windows(2).all(|w| w[0] < w[1]) {
                    return Err("and/or args not strictly sorted".into());
                }
                for &a in args.iter() {
                    expect_bool(a, "and/or")?;
                }
                if my_sort != Sort::Bool {
                    return Err("and/or with non-bool sort".into());
                }
            }
            TermData::Eq(a, b) => {
                if self.sort(*a) != self.sort(*b) {
                    return Err("eq operands of different sorts".into());
                }
                if a >= b {
                    return Err("eq operands not in canonical order".into());
                }
                if my_sort != Sort::Bool {
                    return Err("eq with non-bool sort".into());
                }
            }
            TermData::Ite(c, t, e) => {
                expect_bool(*c, "ite condition")?;
                if self.sort(*t) != self.sort(*e) {
                    return Err("ite branches of different sorts".into());
                }
                if t == e {
                    return Err("ite with identical branches".into());
                }
                if my_sort != self.sort(*t) {
                    return Err("ite sort disagrees with branches".into());
                }
            }
            TermData::BvNot(a) => {
                let w = bv_width(*a, "bvnot")?;
                if my_sort != Sort::Bv(w) {
                    return Err("bvnot width disagrees with operand".into());
                }
            }
            TermData::BvBin(op, a, b) => {
                let wa = bv_width(*a, "bvbin")?;
                let wb = bv_width(*b, "bvbin")?;
                if wa != wb {
                    return Err(format!("bvbin width mismatch: {wa} vs {wb}"));
                }
                if op.commutative() && a > b {
                    return Err("commutative bvbin not in canonical order".into());
                }
                if my_sort != Sort::Bv(wa) {
                    return Err("bvbin sort disagrees with operands".into());
                }
            }
            TermData::Cmp(_, a, b) => {
                let wa = bv_width(*a, "cmp")?;
                let wb = bv_width(*b, "cmp")?;
                if wa != wb {
                    return Err(format!("cmp width mismatch: {wa} vs {wb}"));
                }
                if my_sort != Sort::Bool {
                    return Err("cmp with non-bool sort".into());
                }
            }
            TermData::ZExt(a, w) | TermData::SExt(a, w) => {
                let wa = bv_width(*a, "ext")?;
                if *w <= wa {
                    return Err(format!("extension to width {w} not wider than {wa}"));
                }
                if *w > 64 {
                    return Err(format!("extension width {w} exceeds 64"));
                }
                if my_sort != Sort::Bv(*w) {
                    return Err("extension sort disagrees with target width".into());
                }
            }
            TermData::Extract(a, hi, lo) => {
                let wa = bv_width(*a, "extract")?;
                if hi < lo || *hi >= wa {
                    return Err(format!("extract [{hi}:{lo}] out of range for width {wa}"));
                }
                if *lo == 0 && *hi == wa - 1 {
                    return Err("full-range extract was not collapsed".into());
                }
                if my_sort != Sort::Bv(hi - lo + 1) {
                    return Err("extract sort disagrees with bit range".into());
                }
            }
            TermData::Concat(a, b) => {
                let wa = bv_width(*a, "concat")?;
                let wb = bv_width(*b, "concat")?;
                if wa + wb > 64 {
                    return Err(format!("concat width {} exceeds 64", wa + wb));
                }
                if my_sort != Sort::Bv(wa + wb) {
                    return Err("concat sort disagrees with operand widths".into());
                }
            }
            TermData::Apply(f, args) => {
                let decl = self
                    .funcs
                    .get(f.0 as usize)
                    .ok_or_else(|| format!("dangling {f:?}"))?;
                if args.len() != decl.domain.len() {
                    return Err(format!(
                        "apply of {} with {} args, expected {}",
                        decl.name,
                        args.len(),
                        decl.domain.len()
                    ));
                }
                for (k, (&a, &d)) in args.iter().zip(decl.domain.iter()).enumerate() {
                    if self.sort(a) != d {
                        return Err(format!("apply of {} arg {k} sort mismatch", decl.name));
                    }
                }
                if my_sort != decl.range {
                    return Err(format!("apply of {} sort disagrees with range", decl.name));
                }
            }
        }
        Ok(())
    }

    fn intern(&mut self, data: TermData, sort: Sort) -> TermId {
        if let Some(&id) = self.intern.get(&data) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(data.clone());
        self.sorts.push(sort);
        self.intern.insert(data, id);
        id
    }

    // ------------------------------------------------------------------
    // Leaves.
    // ------------------------------------------------------------------

    /// The constant `true`.
    pub fn tru(&mut self) -> TermId {
        self.intern(TermData::True, Sort::Bool)
    }

    /// The constant `false`.
    pub fn fls(&mut self) -> TermId {
        self.intern(TermData::False, Sort::Bool)
    }

    /// A boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        if b {
            self.tru()
        } else {
            self.fls()
        }
    }

    /// A bit-vector constant of the given width (value is masked).
    pub fn bv_const(&mut self, width: u32, value: u64) -> TermId {
        assert!((1..=64).contains(&width), "bv width {width}");
        let value = value & mask(width);
        self.intern(TermData::BvConst { width, value }, Sort::Bv(width))
    }

    /// A 64-bit constant from a signed value (the kernel's native word).
    pub fn i64_const(&mut self, value: i64) -> TermId {
        self.bv_const(64, value as u64)
    }

    /// Declares a fresh variable. Each call creates a distinct variable,
    /// even when names collide.
    pub fn var(&mut self, name: impl Into<String>, sort: Sort) -> TermId {
        let v = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.into(),
            sort,
        });
        self.intern(TermData::Var(v), sort)
    }

    /// Declares a fresh uninterpreted function.
    pub fn func(&mut self, name: impl Into<String>, domain: Vec<Sort>, range: Sort) -> FuncId {
        let f = FuncId(self.funcs.len() as u32);
        self.funcs.push(FuncDecl {
            name: name.into(),
            domain,
            range,
        });
        f
    }

    /// Applies an uninterpreted function.
    ///
    /// # Panics
    ///
    /// Panics if the argument sorts do not match the declaration.
    pub fn apply(&mut self, f: FuncId, args: &[TermId]) -> TermId {
        let decl = &self.funcs[f.0 as usize];
        assert_eq!(
            decl.domain.len(),
            args.len(),
            "arity mismatch for {}",
            decl.name
        );
        let range = decl.range;
        for (i, (&a, &s)) in args.iter().zip(decl.domain.iter()).enumerate() {
            assert_eq!(
                self.sort(a),
                s,
                "argument {i} sort mismatch applying {}",
                self.funcs[f.0 as usize].name
            );
        }
        self.intern(TermData::Apply(f, args.into()), range)
    }

    // ------------------------------------------------------------------
    // Boolean connectives.
    // ------------------------------------------------------------------

    /// Boolean negation. Negations are pushed through conjunctions and
    /// disjunctions (negation normal form), so De Morgan-equal formulas
    /// built by different frontends — the spec's `!a && !b` against the
    /// compiled kernel's `!(a || b)` — intern to the same term.
    pub fn not(&mut self, a: TermId) -> TermId {
        debug_assert_eq!(self.sort(a), Sort::Bool);
        match self.data(a).clone() {
            TermData::True => self.fls(),
            TermData::False => self.tru(),
            TermData::Not(inner) => inner,
            TermData::And(args) => {
                let negs: Vec<TermId> = args.iter().map(|&x| self.not(x)).collect();
                self.or(&negs)
            }
            TermData::Or(args) => {
                let negs: Vec<TermId> = args.iter().map(|&x| self.not(x)).collect();
                self.and(&negs)
            }
            _ => self.intern(TermData::Not(a), Sort::Bool),
        }
    }

    /// N-ary conjunction.
    pub fn and(&mut self, args: &[TermId]) -> TermId {
        let mut flat = Vec::with_capacity(args.len());
        for &a in args {
            debug_assert_eq!(self.sort(a), Sort::Bool);
            match self.data(a) {
                TermData::True => {}
                TermData::False => return self.fls(),
                TermData::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(a),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // `x && !x` is false.
        for &t in &flat {
            if let TermData::Not(inner) = self.data(t) {
                if flat.binary_search(inner).is_ok() {
                    return self.fls();
                }
            }
        }
        match flat.len() {
            0 => self.tru(),
            1 => flat[0],
            _ => self.intern(TermData::And(flat.into()), Sort::Bool),
        }
    }

    /// Binary conjunction convenience.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.and(&[a, b])
    }

    /// N-ary disjunction.
    pub fn or(&mut self, args: &[TermId]) -> TermId {
        let mut flat = Vec::with_capacity(args.len());
        for &a in args {
            debug_assert_eq!(self.sort(a), Sort::Bool);
            match self.data(a) {
                TermData::False => {}
                TermData::True => return self.tru(),
                TermData::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(a),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        for &t in &flat {
            if let TermData::Not(inner) = self.data(t) {
                if flat.binary_search(inner).is_ok() {
                    return self.tru();
                }
            }
        }
        match flat.len() {
            0 => self.fls(),
            1 => flat[0],
            _ => self.intern(TermData::Or(flat.into()), Sort::Bool),
        }
    }

    /// Binary disjunction convenience.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.or(&[a, b])
    }

    /// Implication `a => b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or(&[na, b])
    }

    /// Equality (works for both sorts; for booleans this is iff).
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.sort(a), self.sort(b), "eq sort mismatch");
        if a == b {
            return self.tru();
        }
        match (self.data(a).clone(), self.data(b).clone()) {
            (TermData::BvConst { value: va, .. }, TermData::BvConst { value: vb, .. }) => {
                return self.bool_const(va == vb);
            }
            (TermData::True, _) => return b,
            (_, TermData::True) => return a,
            (TermData::False, _) => return self.not(b),
            (_, TermData::False) => return self.not(a),
            _ => {}
        }
        // Normalize 0/1-word comparisons back to booleans: HIR encodes
        // truth values as `ite(c, 1, 0)` words, the spec as booleans;
        // `ite(c, t, e) == k` with constant branches dissolves the word.
        for (ite_side, konst) in [(a, b), (b, a)] {
            if let (TermData::Ite(c, t, e), Some(k)) =
                (self.data(ite_side).clone(), self.const_value(konst))
            {
                if let (Some(tv), Some(ev)) = (self.const_value(t), self.const_value(e)) {
                    return match (tv == k, ev == k) {
                        (true, true) => self.tru(),
                        (true, false) => c,
                        (false, true) => self.not(c),
                        (false, false) => self.fls(),
                    };
                }
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(TermData::Eq(a, b), Sort::Bool)
    }

    /// Disequality.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Pairwise disequality of all terms (SMT-LIB `distinct`), expanded
    /// to a conjunction of `n*(n-1)/2` disequalities.
    pub fn distinct(&mut self, ts: &[TermId]) -> TermId {
        let mut clauses = Vec::new();
        for (i, &a) in ts.iter().enumerate() {
            for &b in &ts[i + 1..] {
                clauses.push(self.ne(a, b));
            }
        }
        self.and(&clauses)
    }

    /// If-then-else.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        debug_assert_eq!(self.sort(c), Sort::Bool);
        assert_eq!(self.sort(t), self.sort(e), "ite branch sort mismatch");
        match self.data(c) {
            TermData::True => return t,
            TermData::False => return e,
            _ => {}
        }
        if t == e {
            return t;
        }
        if self.sort(t) == Sort::Bool {
            let (td, ed) = (self.data(t).clone(), self.data(e).clone());
            match (td, ed) {
                (TermData::True, TermData::False) => return c,
                (TermData::False, TermData::True) => return self.not(c),
                (TermData::True, _) => return self.or2(c, e),
                (_, TermData::False) => return self.and2(c, t),
                (TermData::False, _) => {
                    let nc = self.not(c);
                    return self.and2(nc, e);
                }
                (_, TermData::True) => {
                    let nc = self.not(c);
                    return self.or2(nc, t);
                }
                _ => {}
            }
        }
        // ite(!c, t, e) = ite(c, e, t).
        if let TermData::Not(inner) = self.data(c) {
            let inner = *inner;
            return self.ite(inner, e, t);
        }
        let sort = self.sort(t);
        self.intern(TermData::Ite(c, t, e), sort)
    }

    // ------------------------------------------------------------------
    // Bit-vector operations.
    // ------------------------------------------------------------------

    /// Bit-vector complement.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        match self.data(a) {
            TermData::BvConst { value, .. } => {
                let v = !value;
                self.bv_const(w, v)
            }
            TermData::BvNot(inner) => *inner,
            _ => self.intern(TermData::BvNot(a), Sort::Bv(w)),
        }
    }

    /// Two's-complement negation.
    pub fn bv_neg(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        let zero = self.bv_const(w, 0);
        self.bv_bin(BvBinOp::Sub, zero, a)
    }

    /// Binary bit-vector operation with constant folding and identities.
    pub fn bv_bin(&mut self, op: BvBinOp, a: TermId, b: TermId) -> TermId {
        let w = self.width(a);
        assert_eq!(w, self.width(b), "bv_bin width mismatch");
        let ca = self.const_value(a);
        let cb = self.const_value(b);
        if let (Some(va), Some(vb)) = (ca, cb) {
            let v = op.apply(w, va, vb);
            return self.bv_const(w, v);
        }
        // Identity and absorption rules.
        match op {
            BvBinOp::Add => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
            }
            BvBinOp::Sub => {
                if cb == Some(0) {
                    return a;
                }
                if a == b {
                    return self.bv_const(w, 0);
                }
            }
            BvBinOp::Mul => {
                if ca == Some(0) || cb == Some(0) {
                    return self.bv_const(w, 0);
                }
                if ca == Some(1) {
                    return b;
                }
                if cb == Some(1) {
                    return a;
                }
            }
            BvBinOp::And => {
                if ca == Some(0) || cb == Some(0) {
                    return self.bv_const(w, 0);
                }
                if ca == Some(mask(w)) {
                    return b;
                }
                if cb == Some(mask(w)) {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            BvBinOp::Or => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
                if ca == Some(mask(w)) || cb == Some(mask(w)) {
                    return self.bv_const(w, mask(w));
                }
                if a == b {
                    return a;
                }
            }
            BvBinOp::Xor => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
                if a == b {
                    return self.bv_const(w, 0);
                }
            }
            BvBinOp::Shl | BvBinOp::Lshr | BvBinOp::Ashr => {
                if cb == Some(0) {
                    return a;
                }
                if ca == Some(0) {
                    return self.bv_const(w, 0);
                }
            }
            BvBinOp::Udiv | BvBinOp::Urem => {}
        }
        // Bitwise &/| over 0/1-encoded booleans stay 0/1-encoded with a
        // fused condition, keeping HIR's word-level logic aligned with
        // the spec's boolean terms.
        if matches!(op, BvBinOp::And | BvBinOp::Or) {
            if let (Some(ca), Some(cb)) = (self.as_bool01(a), self.as_bool01(b)) {
                let c = if op == BvBinOp::And {
                    self.and2(ca, cb)
                } else {
                    self.or2(ca, cb)
                };
                let one = self.bv_const(w, 1);
                let zero = self.bv_const(w, 0);
                return self.ite(c, one, zero);
            }
        }
        // Structural rewrites that keep the guarded-update ("blend")
        // idiom multiplier-free: kernel code computes
        // `b + (a - b) * c` with `c` a 0/1 word, which these three rules
        // jointly collapse to `ite(c, a, b)`.
        match op {
            BvBinOp::Mul => {
                // x * ite(c, 1, 0) = ite(c, x, 0); likewise mirrored.
                for (x, sel) in [(a, b), (b, a)] {
                    if let TermData::Ite(c, t, e) = self.data(sel).clone() {
                        let (tv, ev) = (self.const_value(t), self.const_value(e));
                        if tv == Some(1) && ev == Some(0) {
                            let zero = self.bv_const(w, 0);
                            return self.ite(c, x, zero);
                        }
                        if tv == Some(0) && ev == Some(1) {
                            let zero = self.bv_const(w, 0);
                            return self.ite(c, zero, x);
                        }
                    }
                }
            }
            BvBinOp::Add => {
                // x + ite(c, y, 0) = ite(c, x + y, x); mirrored too.
                for (x, sel) in [(a, b), (b, a)] {
                    if let TermData::Ite(c, t, e) = self.data(sel).clone() {
                        if self.const_value(e) == Some(0) {
                            let sum = self.bv_bin(BvBinOp::Add, x, t);
                            return self.ite(c, sum, x);
                        }
                        if self.const_value(t) == Some(0) {
                            let sum = self.bv_bin(BvBinOp::Add, x, e);
                            return self.ite(c, x, sum);
                        }
                    }
                }
                // x + (y - x) = y (wrapping, exact).
                for (x, other) in [(a, b), (b, a)] {
                    if let TermData::BvBin(BvBinOp::Sub, y, x2) = self.data(other) {
                        if *x2 == x {
                            return *y;
                        }
                    }
                }
            }
            _ => {}
        }
        let (a, b) = if op.commutative() && b < a {
            (b, a)
        } else {
            (a, b)
        };
        self.intern(TermData::BvBin(op, a, b), Sort::Bv(w))
    }

    /// Wrapping addition.
    pub fn bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_bin(BvBinOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn bv_sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_bin(BvBinOp::Sub, a, b)
    }

    /// Wrapping multiplication.
    pub fn bv_mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_bin(BvBinOp::Mul, a, b)
    }

    /// Comparison with constant folding.
    pub fn cmp(&mut self, op: CmpOp, a: TermId, b: TermId) -> TermId {
        let w = self.width(a);
        assert_eq!(w, self.width(b), "cmp width mismatch");
        if let (Some(va), Some(vb)) = (self.const_value(a), self.const_value(b)) {
            return self.bool_const(op.apply(w, va, vb));
        }
        if a == b {
            return self.bool_const(matches!(op, CmpOp::Ule | CmpOp::Sle));
        }
        match op {
            CmpOp::Ult => {
                if self.const_value(b) == Some(0) {
                    return self.fls();
                }
                if self.const_value(a) == Some(mask(w)) {
                    return self.fls();
                }
            }
            CmpOp::Ule => {
                if self.const_value(a) == Some(0) {
                    return self.tru();
                }
                if self.const_value(b) == Some(mask(w)) {
                    return self.tru();
                }
            }
            _ => {}
        }
        self.intern(TermData::Cmp(op, a, b), Sort::Bool)
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Ult, a, b)
    }

    /// Unsigned less-or-equal.
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Ule, a, b)
    }

    /// Signed less-than.
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Slt, a, b)
    }

    /// Signed less-or-equal.
    pub fn sle(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Sle, a, b)
    }

    /// Signed greater-or-equal.
    pub fn sge(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Sle, b, a)
    }

    /// Signed greater-than.
    pub fn sgt(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Slt, b, a)
    }

    /// Zero-extension to `width`.
    pub fn zext(&mut self, a: TermId, width: u32) -> TermId {
        let w = self.width(a);
        assert!(width >= w, "zext narrows");
        if width == w {
            return a;
        }
        if let Some(v) = self.const_value(a) {
            return self.bv_const(width, v);
        }
        self.intern(TermData::ZExt(a, width), Sort::Bv(width))
    }

    /// Sign-extension to `width`.
    pub fn sext(&mut self, a: TermId, width: u32) -> TermId {
        let w = self.width(a);
        assert!(width >= w, "sext narrows");
        if width == w {
            return a;
        }
        if let Some(v) = self.const_value(a) {
            let v = sext_to_64(v, w) & mask(width);
            return self.bv_const(width, v);
        }
        self.intern(TermData::SExt(a, width), Sort::Bv(width))
    }

    /// Bit extraction `[hi:lo]`, inclusive on both ends.
    pub fn extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.width(a);
        assert!(hi >= lo && hi < w, "extract range [{hi}:{lo}] of width {w}");
        if lo == 0 && hi == w - 1 {
            return a;
        }
        if let Some(v) = self.const_value(a) {
            let width = hi - lo + 1;
            return self.bv_const(width, v >> lo);
        }
        self.intern(TermData::Extract(a, hi, lo), Sort::Bv(hi - lo + 1))
    }

    /// Concatenation; `a` becomes the high bits.
    pub fn concat(&mut self, a: TermId, b: TermId) -> TermId {
        let (wa, wb) = (self.width(a), self.width(b));
        assert!(wa + wb <= 64, "concat width {} exceeds 64", wa + wb);
        if let (Some(va), Some(vb)) = (self.const_value(a), self.const_value(b)) {
            return self.bv_const(wa + wb, (va << wb) | vb);
        }
        self.intern(TermData::Concat(a, b), Sort::Bv(wa + wb))
    }

    // ------------------------------------------------------------------
    // Inspection helpers.
    // ------------------------------------------------------------------

    /// If `t` is a 0/1-encoded boolean word, returns the underlying
    /// condition: `ite(c, 1, 0)` yields `c`, the inverted `ite(c, 0, 1)`
    /// yields `¬c`, and the constants 1 and 0 yield `true`/`false`.
    pub fn as_bool01(&mut self, t: TermId) -> Option<TermId> {
        if let TermData::Ite(c, tt, ee) = *self.data(t) {
            if self.const_value(tt) == Some(1) && self.const_value(ee) == Some(0) {
                return Some(c);
            }
            if self.const_value(tt) == Some(0) && self.const_value(ee) == Some(1) {
                return Some(self.not(c));
            }
        }
        match self.const_value(t) {
            Some(1) => Some(self.tru()),
            Some(0) => Some(self.fls()),
            _ => None,
        }
    }

    /// The constant value of a bit-vector term, if it is a constant.
    pub fn const_value(&self, t: TermId) -> Option<u64> {
        match self.data(t) {
            TermData::BvConst { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The boolean value of a term, if it is a boolean constant.
    pub fn const_bool(&self, t: TermId) -> Option<bool> {
        match self.data(t) {
            TermData::True => Some(true),
            TermData::False => Some(false),
            _ => None,
        }
    }

    /// Renders a term as an s-expression (for diagnostics and tests).
    pub fn display(&self, t: TermId) -> String {
        let mut out = String::new();
        self.display_into(t, &mut out, 0);
        out
    }

    fn display_into(&self, t: TermId, out: &mut String, depth: usize) {
        use std::fmt::Write;
        if depth > 80 {
            out.push_str("...");
            return;
        }
        match self.data(t) {
            TermData::True => out.push_str("true"),
            TermData::False => out.push_str("false"),
            TermData::BvConst { value, width } => {
                let _ = write!(out, "{value}w{width}");
            }
            TermData::Var(v) => out.push_str(&self.vars[v.0 as usize].name),
            TermData::Not(a) => {
                out.push_str("(not ");
                self.display_into(*a, out, depth + 1);
                out.push(')');
            }
            TermData::And(args) | TermData::Or(args) => {
                out.push_str(if matches!(self.data(t), TermData::And(_)) {
                    "(and"
                } else {
                    "(or"
                });
                for &a in args.iter() {
                    out.push(' ');
                    self.display_into(a, out, depth + 1);
                }
                out.push(')');
            }
            TermData::Eq(a, b) => {
                out.push_str("(= ");
                self.display_into(*a, out, depth + 1);
                out.push(' ');
                self.display_into(*b, out, depth + 1);
                out.push(')');
            }
            TermData::Ite(c, a, b) => {
                out.push_str("(ite ");
                self.display_into(*c, out, depth + 1);
                out.push(' ');
                self.display_into(*a, out, depth + 1);
                out.push(' ');
                self.display_into(*b, out, depth + 1);
                out.push(')');
            }
            TermData::BvNot(a) => {
                out.push_str("(bvnot ");
                self.display_into(*a, out, depth + 1);
                out.push(')');
            }
            TermData::BvBin(op, a, b) => {
                let _ = write!(out, "({op:?} ").map(|_| ());
                self.display_into(*a, out, depth + 1);
                out.push(' ');
                self.display_into(*b, out, depth + 1);
                out.push(')');
            }
            TermData::Cmp(op, a, b) => {
                let _ = write!(out, "({op:?} ");
                self.display_into(*a, out, depth + 1);
                out.push(' ');
                self.display_into(*b, out, depth + 1);
                out.push(')');
            }
            TermData::ZExt(a, w) => {
                let _ = write!(out, "(zext{w} ");
                self.display_into(*a, out, depth + 1);
                out.push(')');
            }
            TermData::SExt(a, w) => {
                let _ = write!(out, "(sext{w} ");
                self.display_into(*a, out, depth + 1);
                out.push(')');
            }
            TermData::Extract(a, hi, lo) => {
                let _ = write!(out, "(extract[{hi}:{lo}] ");
                self.display_into(*a, out, depth + 1);
                out.push(')');
            }
            TermData::Concat(a, b) => {
                out.push_str("(concat ");
                self.display_into(*a, out, depth + 1);
                out.push(' ');
                self.display_into(*b, out, depth + 1);
                out.push(')');
            }
            TermData::Apply(f, args) => {
                let _ = write!(out, "({}", self.funcs[f.0 as usize].name);
                for &a in args.iter() {
                    out.push(' ');
                    self.display_into(a, out, depth + 1);
                }
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut ctx = Ctx::new();
        let a = ctx.bv_const(64, 5);
        let b = ctx.bv_const(64, 5);
        assert_eq!(a, b);
        let x = ctx.var("x", Sort::Bv(64));
        let s1 = ctx.bv_add(x, a);
        let s2 = ctx.bv_add(x, b);
        assert_eq!(s1, s2);
        // Commutativity canonicalization.
        let s3 = ctx.bv_add(a, x);
        assert_eq!(s1, s3);
    }

    #[test]
    fn vars_are_always_fresh() {
        let mut ctx = Ctx::new();
        let a = ctx.var("x", Sort::Bv(8));
        let b = ctx.var("x", Sort::Bv(8));
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_expands_to_pairwise_disequality() {
        let mut ctx = Ctx::new();
        let a = ctx.bv_const(8, 1);
        let b = ctx.bv_const(8, 2);
        let c = ctx.bv_const(8, 1);
        let t = ctx.tru();
        assert_eq!(ctx.distinct(&[]), t);
        assert_eq!(ctx.distinct(&[a]), t);
        assert_eq!(ctx.distinct(&[a, b]), t);
        let f = ctx.fls();
        assert_eq!(ctx.distinct(&[a, b, c]), f);
        // On variables it stays symbolic: a conjunction of 3 disequalities.
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let z = ctx.var("z", Sort::Bv(8));
        let d = ctx.distinct(&[x, y, z]);
        match ctx.data(d) {
            TermData::And(args) => assert_eq!(args.len(), 3),
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn constant_folding() {
        let mut ctx = Ctx::new();
        let a = ctx.bv_const(8, 200);
        let b = ctx.bv_const(8, 100);
        let s = ctx.bv_add(a, b);
        assert_eq!(ctx.const_value(s), Some(44)); // 300 mod 256
        let p = ctx.bv_mul(a, b);
        assert_eq!(ctx.const_value(p), Some(20000 % 256));
    }

    #[test]
    fn udiv_by_zero_is_all_ones() {
        let mut ctx = Ctx::new();
        let a = ctx.bv_const(8, 42);
        let z = ctx.bv_const(8, 0);
        let d = ctx.bv_bin(BvBinOp::Udiv, a, z);
        assert_eq!(ctx.const_value(d), Some(0xff));
        let r = ctx.bv_bin(BvBinOp::Urem, a, z);
        assert_eq!(ctx.const_value(r), Some(42));
    }

    #[test]
    fn shift_semantics() {
        let mut ctx = Ctx::new();
        let a = ctx.bv_const(8, 0x80);
        let big = ctx.bv_const(8, 9);
        let shl = ctx.bv_bin(BvBinOp::Shl, a, big);
        assert_eq!(ctx.const_value(shl), Some(0));
        let ashr = ctx.bv_bin(BvBinOp::Ashr, a, big);
        assert_eq!(ctx.const_value(ashr), Some(0xff));
        let one = ctx.bv_const(8, 1);
        let ashr1 = ctx.bv_bin(BvBinOp::Ashr, a, one);
        assert_eq!(ctx.const_value(ashr1), Some(0xc0));
    }

    #[test]
    fn boolean_simplifications() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bool);
        let nx = ctx.not(x);
        assert_eq!(ctx.and2(x, nx), ctx.fls());
        assert_eq!(ctx.or2(x, nx), ctx.tru());
        let t = ctx.tru();
        assert_eq!(ctx.and2(x, t), x);
        let nnx = ctx.not(nx);
        assert_eq!(nnx, x);
    }

    #[test]
    fn ite_simplifications() {
        let mut ctx = Ctx::new();
        let c = ctx.var("c", Sort::Bool);
        let x = ctx.var("x", Sort::Bv(64));
        let y = ctx.var("y", Sort::Bv(64));
        assert_eq!(ctx.ite(c, x, x), x);
        let t = ctx.tru();
        assert_eq!(ctx.ite(t, x, y), x);
        let f = ctx.fls();
        let tt = ctx.tru();
        let ff = ctx.fls();
        assert_eq!(ctx.ite(c, tt, ff), c);
        assert_eq!(ctx.ite(f, x, y), y);
    }

    #[test]
    fn eq_simplifications() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        assert_eq!(ctx.eq(x, x), ctx.tru());
        let a = ctx.bv_const(16, 3);
        let b = ctx.bv_const(16, 4);
        assert_eq!(ctx.eq(a, b), ctx.fls());
        assert_eq!(ctx.eq(a, a), ctx.tru());
    }

    #[test]
    fn extract_concat_fold() {
        let mut ctx = Ctx::new();
        let a = ctx.bv_const(16, 0xabcd);
        let hi = ctx.extract(a, 15, 8);
        assert_eq!(ctx.const_value(hi), Some(0xab));
        let lo = ctx.extract(a, 7, 0);
        assert_eq!(ctx.const_value(lo), Some(0xcd));
        let back = ctx.concat(hi, lo);
        assert_eq!(ctx.const_value(back), Some(0xabcd));
    }

    #[test]
    fn sext_fold() {
        let mut ctx = Ctx::new();
        let a = ctx.bv_const(8, 0xf0);
        let s = ctx.sext(a, 16);
        assert_eq!(ctx.const_value(s), Some(0xfff0));
        let z = ctx.zext(a, 16);
        assert_eq!(ctx.const_value(z), Some(0x00f0));
    }

    #[test]
    fn display_smoke() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let c = ctx.bv_const(8, 1);
        let s = ctx.bv_add(x, c);
        let e = ctx.eq(s, c);
        let d = ctx.display(e);
        assert!(d.contains("x"), "{d}");
        assert!(d.contains("Add"), "{d}");
    }

    #[test]
    fn validate_accepts_constructed_terms() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let y = ctx.var("y", Sort::Bv(16));
        let p = ctx.var("p", Sort::Bool);
        let f = ctx.func("f", vec![Sort::Bv(16)], Sort::Bv(16));
        let fx = ctx.apply(f, &[x]);
        let sum = ctx.bv_add(fx, y);
        let lo = ctx.extract(sum, 7, 0);
        let wide = ctx.zext(lo, 32);
        let swide = ctx.sext(lo, 24);
        let cc = ctx.concat(lo, lo);
        let cmp = ctx.ult(x, sum);
        let eq = ctx.eq(x, y);
        let ite = ctx.ite(p, x, sum);
        let nn = ctx.bv_not(ite);
        let all = ctx.and(&[cmp, eq, p]);
        let _ = (wide, swide, cc, nn, all);
        ctx.validate().expect("constructed terms are well-formed");
    }

    #[test]
    fn validate_rejects_malformed_nodes() {
        // Forge nodes through `intern` with broken invariants; each must
        // be caught. Separate contexts: one bad node poisons a store.
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(16));
        // Width-mismatched comparison.
        ctx.intern(TermData::Cmp(CmpOp::Ult, x, y), Sort::Bool);
        assert!(ctx.validate().unwrap_err().contains("width mismatch"));

        let mut ctx2 = Ctx::new();
        let a = ctx2.var("a", Sort::Bv(8));
        // Dangling child id.
        ctx2.intern(TermData::BvNot(TermId(99)), Sort::Bv(8));
        assert!(ctx2.validate().is_err());
        let _ = a;

        let mut ctx3 = Ctx::new();
        let v = ctx3.var("v", Sort::Bv(8));
        // Sort disagreeing with the node.
        ctx3.intern(TermData::BvNot(v), Sort::Bv(16));
        assert!(ctx3.validate().unwrap_err().contains("width disagrees"));
    }
}
