//! Cone-of-influence reduction over asserted conjuncts.
//!
//! Two conjuncts interact only if they share an uninterpreted symbol: a
//! variable or an uninterpreted function. (Sharing a function matters
//! even without shared variables — Ackermannization links every pair of
//! applications of one function with congruence constraints.) Grouping
//! conjuncts into connected components over shared symbols therefore
//! partitions the conjunction into independent subproblems:
//!
//!   `⋀ C  is satisfiable  ⟺  every component is satisfiable.`
//!
//! The solver only needs the verdict of the components containing the
//! goal conjuncts *when the answer is Unsat*: if the goal's components
//! are unsatisfiable, so is the whole conjunction. A Sat answer on the
//! reduced set says nothing about the dropped components, so the caller
//! must re-solve the full set before reporting Sat (see
//! `solver.rs::check_oneshot_simplified`).

use std::collections::HashMap;

use crate::term::{Ctx, TermData, TermId};

/// An uninterpreted symbol a conjunct depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Feature {
    Var(u32),
    Func(u32),
}

/// Union-find over conjunct indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Collects the uninterpreted symbols in the cone of `t`.
fn support(ctx: &Ctx, t: TermId, out: &mut Vec<Feature>) {
    let mut stack = vec![t];
    let mut seen = std::collections::HashSet::new();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        match ctx.data(n) {
            TermData::Var(v) => out.push(Feature::Var(v.0)),
            TermData::Apply(f, args) => {
                out.push(Feature::Func(f.0));
                stack.extend(args.iter().copied());
            }
            _ => stack.extend(crate::bitblast::term_children(ctx, n)),
        }
    }
}

/// Computes the keep-mask for `conjuncts`: `true` for members of a
/// connected component that contains at least one goal conjunct.
/// Conjuncts with no uninterpreted symbols are always kept (they are
/// ground; the rewriter normally removes them first, and if one
/// survives it is never worth risking a drop).
pub fn reduce(ctx: &Ctx, conjuncts: &[TermId], is_goal: &[bool]) -> Vec<bool> {
    debug_assert_eq!(conjuncts.len(), is_goal.len());
    let n = conjuncts.len();
    if n == 0 || !is_goal.iter().any(|g| *g) {
        // No distinguished goal: nothing is safe to drop.
        return vec![true; n];
    }
    let mut dsu = Dsu::new(n);
    let mut owner: HashMap<Feature, usize> = HashMap::new();
    let mut features = Vec::new();
    let mut ground = vec![false; n];
    for (i, &c) in conjuncts.iter().enumerate() {
        features.clear();
        support(ctx, c, &mut features);
        ground[i] = features.is_empty();
        for &f in &features {
            match owner.get(&f) {
                Some(&j) => dsu.union(i, j),
                None => {
                    owner.insert(f, i);
                }
            }
        }
    }
    let mut goal_roots = vec![false; n];
    for (i, &goal) in is_goal.iter().enumerate() {
        if goal {
            let r = dsu.find(i);
            goal_roots[r] = true;
        }
    }
    (0..n)
        .map(|i| {
            let r = dsu.find(i);
            goal_roots[r] || ground[i]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn drops_disconnected_component() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let z = ctx.var("z", Sort::Bv(8));
        let c1 = ctx.ult(x, y); // component {x, y}
        let zc = ctx.bv_const(8, 9);
        let c2 = ctx.ult(z, zc); // component {z}
        let c3 = {
            let k = ctx.bv_const(8, 3);
            ctx.ult(k, x) // component {x, y} via x
        };
        let keep = reduce(&ctx, &[c1, c2, c3], &[false, false, true]);
        assert_eq!(keep, vec![true, false, true]);
    }

    #[test]
    fn shared_function_links_conjuncts() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let z = ctx.var("z", Sort::Bv(8));
        let f = ctx.func("f", vec![Sort::Bv(8)], Sort::Bv(8));
        let fx = ctx.apply(f, &[x]);
        let fz = ctx.apply(f, &[z]);
        let c1 = ctx.ult(fx, x); // {f, x}
        let c2 = ctx.ult(fz, z); // {f, z} — linked through f
        let keep = reduce(&ctx, &[c1, c2], &[false, true]);
        assert_eq!(keep, vec![true, true]);
    }

    #[test]
    fn no_goal_keeps_everything() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let c1 = ctx.ult(x, y);
        let keep = reduce(&ctx, &[c1], &[false]);
        assert_eq!(keep, vec![true]);
    }
}
