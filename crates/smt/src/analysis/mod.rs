//! Word-level static analysis of the term DAG, run per query before
//! Ackermannization and bit-blasting.
//!
//! Three cooperating pieces (see DESIGN.md §12):
//!
//! * [`domain`] — abstract interpretation with a known-bits lattice and
//!   unsigned intervals, seeded from asserted facts;
//! * [`rewrite`] — fact-directed simplification of each conjunct, with
//!   equality substitution and own-origin exclusion;
//! * [`coi`] — cone-of-influence reduction dropping asserted conjuncts
//!   whose uninterpreted symbols never reach the goal.
//!
//! The entry points are [`simplify_query`] (oneshot: full rewrite +
//! disjunct refutation + COI) and [`simplify_deltas`] (incremental:
//! rewrites only not-yet-encoded assertions under scope-level
//! visibility rules, never drops conjuncts). Both can report the whole
//! query *statically discharged* when the abstraction alone proves the
//! active conjunction unsatisfiable.

pub mod coi;
pub mod domain;
pub mod rewrite;

use std::collections::{HashMap, HashSet};

use crate::term::{CmpOp, Ctx, Sort, TermData, TermId};

use domain::{Analysis, SeedView, Seeds};
use rewrite::{Facts, Rewriter};

/// Origin tag for facts injected during disjunct refutation; any value
/// distinct from real conjunct indices and [`domain::MULTI_ORIGIN`].
const REFUTE_ORIGIN: u32 = u32::MAX - 1;

/// Counters from one simplification run.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimplifyStats {
    /// Terms visited by the abstract analyses.
    pub terms_visited: u64,
    /// Nodes replaced by a different term.
    pub rewrites: u64,
    /// Bits of bit-vector terms pinned to constants.
    pub bits_pinned: u64,
    /// Conjuncts going in (after flattening top-level `And`s).
    pub conjuncts_before: u64,
    /// Conjuncts surviving rewriting + reduction.
    pub conjuncts_after: u64,
    /// Conjuncts dropped by cone-of-influence reduction.
    pub coi_dropped: u64,
}

impl SimplifyStats {
    fn absorb_rewriter(&mut self, rw: &Rewriter<'_>) {
        self.rewrites += rw.stats.rewrites;
        self.bits_pinned += rw.stats.bits_pinned;
        self.terms_visited += rw.stats.visited;
    }
}

/// Result of simplifying a whole (oneshot) query.
#[derive(Debug)]
pub enum SimplifyOutcome {
    /// The abstraction proved the active conjunction unsatisfiable.
    Discharged(SimplifyStats),
    /// The rewritten assertion set to solve instead of the original.
    Simplified {
        /// Surviving conjuncts (conjunction of these ⟺ original, except
        /// for COI drops — see `coi_dropped_any`).
        assertions: Vec<TermId>,
        /// True when COI dropped conjuncts: an Unsat verdict on
        /// `assertions` still holds for the original, but a Sat verdict
        /// requires re-solving the full set.
        coi_dropped_any: bool,
        /// Run counters.
        stats: SimplifyStats,
    },
}

/// Simplifies a oneshot query. `active` is the full assertion list;
/// assertions at index `goal_start` and beyond are the goal (scoped)
/// part that cone-of-influence reduction anchors on. With
/// `use_coi == false` no conjunct is ever dropped by reduction.
pub fn simplify_query(
    ctx: &mut Ctx,
    active: &[TermId],
    goal_start: usize,
    use_coi: bool,
) -> SimplifyOutcome {
    let mut stats = SimplifyStats::default();

    // Flatten top-level conjunctions and deduplicate, tracking which
    // conjuncts belong to the goal.
    let mut conjuncts: Vec<TermId> = Vec::new();
    let mut is_goal: Vec<bool> = Vec::new();
    let mut seen: HashSet<TermId> = HashSet::new();
    for (ai, &a) in active.iter().enumerate() {
        let goal = ai >= goal_start;
        match ctx.data(a) {
            TermData::And(args) => {
                for &c in args.clone().iter() {
                    if seen.insert(c) {
                        conjuncts.push(c);
                        is_goal.push(goal);
                    }
                }
            }
            _ => {
                if seen.insert(a) {
                    conjuncts.push(a);
                    is_goal.push(goal);
                }
            }
        }
    }
    stats.conjuncts_before = conjuncts.len() as u64;

    // Harvest facts from every conjunct (everything is level 0 in a
    // oneshot query: all clauses live and die together).
    let mut facts = Facts::default();
    for (i, &c) in conjuncts.iter().enumerate() {
        facts.harvest(ctx, c, i as u32, 0);
    }

    // Rewrite each conjunct with its own facts hidden.
    let mut out: Vec<TermId> = Vec::new();
    let mut out_goal: Vec<bool> = Vec::new();
    for (i, &c) in conjuncts.iter().enumerate() {
        let mut rw = Rewriter::new(
            &facts,
            SeedView::Rewriting {
                exclude: Some(i as u32),
                max_level: 0,
            },
        );
        let mut r = rw.rewrite(ctx, c);
        stats.absorb_rewriter(&rw);
        if matches!(ctx.data(r), TermData::Or(_)) {
            r = refute_disjuncts(ctx, &facts.seeds, r, 0, &mut stats);
        }
        match ctx.const_bool(r) {
            Some(false) => {
                stats.conjuncts_after = 0;
                return SimplifyOutcome::Discharged(stats);
            }
            Some(true) => continue, // implied by the others: drop
            None => {
                out.push(r);
                out_goal.push(is_goal[i]);
            }
        }
    }

    // Whole-conjunction discharge check on the rewritten set.
    if conjunction_contradicts(ctx, &out, &mut stats) {
        stats.conjuncts_after = 0;
        return SimplifyOutcome::Discharged(stats);
    }

    // Cone-of-influence reduction anchored on the goal conjuncts.
    let mut coi_dropped_any = false;
    if use_coi {
        let keep = coi::reduce(ctx, &out, &out_goal);
        let mut kept = Vec::with_capacity(out.len());
        for (i, &k) in keep.iter().enumerate() {
            if k {
                kept.push(out[i]);
            } else {
                stats.coi_dropped += 1;
                coi_dropped_any = true;
            }
        }
        out = kept;
    }

    stats.conjuncts_after = out.len() as u64;
    SimplifyOutcome::Simplified {
        assertions: out,
        coi_dropped_any,
        stats,
    }
}

/// One group of assertions sharing a scope level, split into the part
/// already encoded in the incremental engine and the pending delta.
#[derive(Debug)]
pub struct DeltaGroup {
    /// Scope level: base = 0, k-th open scope = k + 1.
    pub level: u32,
    /// Assertions already turned into clauses (facts only; immutable).
    pub encoded: Vec<TermId>,
    /// Assertions awaiting encoding (rewritten by the pass).
    pub pending: Vec<TermId>,
}

/// Result of simplifying the pending deltas of an incremental check.
#[derive(Debug)]
pub struct DeltaOutcome {
    /// The abstraction proved the whole active set unsatisfiable.
    pub discharged: bool,
    /// Rewritten pending assertions, one list per input group, same
    /// lengths as the inputs.
    pub rewritten: Vec<Vec<TermId>>,
    /// Run counters.
    pub stats: SimplifyStats,
}

/// Simplifies the pending deltas of an incremental check.
///
/// Visibility is stratified by scope level: an assertion at level `l`
/// is rewritten using only facts from levels `<= l` (outer scopes
/// outlive inner ones, so those facts are guaranteed active whenever
/// the rewritten clause's activation literal is). No conjunct is
/// dropped — incremental base clauses are permanent and unguarded, so
/// cone-of-influence reduction does not apply.
pub fn simplify_deltas(ctx: &mut Ctx, groups: &[DeltaGroup]) -> DeltaOutcome {
    let mut stats = SimplifyStats::default();

    // Assign one origin per assertion across all groups and harvest.
    let mut facts = Facts::default();
    let mut origin = 0u32;
    let mut pending_origins: Vec<Vec<u32>> = Vec::with_capacity(groups.len());
    for g in groups {
        for &a in &g.encoded {
            facts.harvest(ctx, a, origin, g.level);
            origin += 1;
        }
        let mut po = Vec::with_capacity(g.pending.len());
        for &a in &g.pending {
            facts.harvest(ctx, a, origin, g.level);
            po.push(origin);
            origin += 1;
        }
        pending_origins.push(po);
    }
    stats.conjuncts_before = u64::from(origin);

    // Rewrite the pending deltas under per-level views.
    let mut rewritten: Vec<Vec<TermId>> = Vec::with_capacity(groups.len());
    let mut all_active: Vec<TermId> = Vec::new();
    for g in groups {
        all_active.extend_from_slice(&g.encoded);
    }
    for (gi, g) in groups.iter().enumerate() {
        let mut outs = Vec::with_capacity(g.pending.len());
        for (pi, &a) in g.pending.iter().enumerate() {
            let mut rw = Rewriter::new(
                &facts,
                SeedView::Rewriting {
                    exclude: Some(pending_origins[gi][pi]),
                    max_level: g.level,
                },
            );
            let mut r = rw.rewrite(ctx, a);
            stats.absorb_rewriter(&rw);
            if matches!(ctx.data(r), TermData::Or(_)) {
                r = refute_disjuncts(ctx, &facts.seeds, r, g.level, &mut stats);
            }
            all_active.push(r);
            outs.push(r);
        }
        rewritten.push(outs);
    }

    // Whole-active-set discharge check (encoded originals + rewritten
    // pendings; every fact is visible here).
    let discharged = all_active.iter().any(|&a| ctx.const_bool(a) == Some(false))
        || conjunction_contradicts(ctx, &all_active, &mut stats);

    stats.conjuncts_after = stats.conjuncts_before;
    DeltaOutcome {
        discharged,
        rewritten,
        stats,
    }
}

/// Refutes disjuncts of the `Or` conjunct `t` one at a time: a disjunct
/// whose facts contradict the active facts (restricted to levels
/// `<= level`) cannot hold in any model, so it is deleted from the
/// disjunction. Returns the (possibly) shrunken disjunction.
fn refute_disjuncts(
    ctx: &mut Ctx,
    seeds: &Seeds,
    t: TermId,
    level: u32,
    stats: &mut SimplifyStats,
) -> TermId {
    let TermData::Or(args) = ctx.data(t) else {
        return t;
    };
    let args: Vec<TermId> = args.to_vec();
    let visible = visible_seeds(seeds, level);
    let mut survivors = Vec::with_capacity(args.len());
    for &d in &args {
        let mut s2 = visible.clone();
        s2.add_fact(ctx, d, REFUTE_ORIGIN, level, true);
        let refuted = s2.conflict
            || s2.bv.values().any(|e| e.abs.is_empty())
            || cmp_pairs_contradict(ctx, &s2)
            || {
                let mut an = Analysis::new(&s2, SeedView::Full);
                an.abs(ctx, d);
                stats.terms_visited += an.visited;
                an.contradiction
            };
        if !refuted {
            survivors.push(d);
        }
    }
    if survivors.len() == args.len() {
        return t;
    }
    stats.rewrites += (args.len() - survivors.len()) as u64;
    ctx.or(&survivors)
}

/// Clones the seed entries visible at `level`, resetting the conflict
/// flag (it may have been raised by an invisible entry).
fn visible_seeds(seeds: &Seeds, level: u32) -> Seeds {
    Seeds {
        bv: seeds
            .bv
            .iter()
            .filter(|(_, e)| e.level <= level)
            .map(|(t, e)| (*t, *e))
            .collect(),
        bools: seeds
            .bools
            .iter()
            .filter(|(_, e)| e.level <= level)
            .map(|(t, e)| (*t, *e))
            .collect(),
        conflict: false,
    }
}

/// Full-view contradiction check over a conjunction: harvests fresh
/// facts from `conjuncts` and looks for an empty abstraction, a boolean
/// fact asserted both ways, or a complementary comparison pair.
fn conjunction_contradicts(ctx: &Ctx, conjuncts: &[TermId], stats: &mut SimplifyStats) -> bool {
    let mut seeds = Seeds::default();
    for (i, &c) in conjuncts.iter().enumerate() {
        seeds.add_fact(ctx, c, i as u32, 0, true);
    }
    if seeds.conflict || seeds.bv.values().any(|e| e.abs.is_empty()) {
        return true;
    }
    if cmp_pairs_contradict(ctx, &seeds) {
        return true;
    }
    let mut an = Analysis::new(&seeds, SeedView::Full);
    for &c in conjuncts {
        an.abs(ctx, c);
        if an.contradiction {
            stats.terms_visited += an.visited;
            return true;
        }
    }
    stats.terms_visited += an.visited;
    false
}

/// Positive normal form of an asserted comparison atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Atom {
    Ult(TermId, TermId),
    Ule(TermId, TermId),
    Slt(TermId, TermId),
    Sle(TermId, TermId),
    EqBv(TermId, TermId),
}

/// Detects pairs of asserted facts that are jointly unsatisfiable
/// without any interval information: `a < b ∧ b ≤ a`, `a < b ∧ b < a`,
/// and `a = b ∧ a < b` (each in unsigned and signed form).
fn cmp_pairs_contradict(ctx: &Ctx, seeds: &Seeds) -> bool {
    let mut atoms: HashMap<Atom, ()> = HashMap::new();
    for (&t, e) in &seeds.bools {
        let atom = match ctx.data(t) {
            TermData::Cmp(op, a, b) => {
                let (a, b) = (*a, *b);
                match (op, e.value) {
                    (CmpOp::Ult, true) => Atom::Ult(a, b),
                    (CmpOp::Ult, false) => Atom::Ule(b, a),
                    (CmpOp::Ule, true) => Atom::Ule(a, b),
                    (CmpOp::Ule, false) => Atom::Ult(b, a),
                    (CmpOp::Slt, true) => Atom::Slt(a, b),
                    (CmpOp::Slt, false) => Atom::Sle(b, a),
                    (CmpOp::Sle, true) => Atom::Sle(a, b),
                    (CmpOp::Sle, false) => Atom::Slt(b, a),
                }
            }
            TermData::Eq(a, b) if e.value && ctx.sort(*a) != Sort::Bool => {
                Atom::EqBv(*(a.min(b)), *(a.max(b)))
            }
            _ => continue,
        };
        atoms.insert(atom, ());
    }
    for atom in atoms.keys() {
        let contra = match *atom {
            Atom::Ult(a, b) => {
                atoms.contains_key(&Atom::Ule(b, a))
                    || atoms.contains_key(&Atom::Ult(b, a))
                    || atoms.contains_key(&Atom::EqBv(a.min(b), a.max(b)))
            }
            Atom::Slt(a, b) => {
                atoms.contains_key(&Atom::Sle(b, a))
                    || atoms.contains_key(&Atom::Slt(b, a))
                    || atoms.contains_key(&Atom::EqBv(a.min(b), a.max(b)))
            }
            _ => false,
        };
        if contra {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn discharges_contradictory_bounds() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let five = ctx.bv_const(16, 5);
        let ten = ctx.bv_const(16, 10);
        let lo = ctx.ult(x, five); // x < 5
        let hi = ctx.ule(ten, x); // x >= 10
        match simplify_query(&mut ctx, &[lo, hi], 1, true) {
            SimplifyOutcome::Discharged(_) => {}
            other => panic!("expected discharge, got {other:?}"),
        }
    }

    #[test]
    fn discharges_complementary_cmp_pair() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let y = ctx.var("y", Sort::Bv(16));
        let a = ctx.ult(x, y);
        let b = ctx.ule(y, x);
        match simplify_query(&mut ctx, &[a, b], 1, true) {
            SimplifyOutcome::Discharged(_) => {}
            other => panic!("expected discharge, got {other:?}"),
        }
    }

    #[test]
    fn coi_drops_unrelated_conjuncts() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let z = ctx.var("z", Sort::Bv(8));
        let inv1 = ctx.ult(x, y); // unrelated to the goal
        let c3 = ctx.bv_const(8, 3);
        let goal = ctx.ult(c3, z); // goal touches z only
        match simplify_query(&mut ctx, &[inv1, goal], 1, true) {
            SimplifyOutcome::Simplified {
                assertions,
                coi_dropped_any,
                stats,
            } => {
                assert_eq!(assertions, vec![goal]);
                assert!(coi_dropped_any);
                assert_eq!(stats.coi_dropped, 1);
            }
            other => panic!("expected simplified, got {other:?}"),
        }
    }

    #[test]
    fn refutes_impossible_disjuncts() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let c10 = ctx.bv_const(16, 10);
        let c5 = ctx.bv_const(16, 5);
        let c20 = ctx.bv_const(16, 20);
        let base = ctx.ult(x, c10); // x < 10
        let d1 = ctx.ule(c20, x); // x >= 20: impossible under base
        let y = ctx.var("y", Sort::Bv(16));
        let d2 = ctx.ult(y, c5); // independent: not refutable
        let goal = ctx.or2(d1, d2);
        match simplify_query(&mut ctx, &[base, goal], 1, false) {
            SimplifyOutcome::Simplified { assertions, .. } => {
                assert!(assertions.contains(&d2), "d1 refuted, goal collapses to d2");
                assert!(!assertions.contains(&goal));
            }
            other => panic!("expected simplified, got {other:?}"),
        }
    }

    #[test]
    fn all_disjuncts_refuted_discharges() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let c10 = ctx.bv_const(16, 10);
        let c20 = ctx.bv_const(16, 20);
        let c30 = ctx.bv_const(16, 30);
        let base = ctx.ult(x, c10); // x < 10
        let d1 = ctx.ule(c20, x); // x >= 20
        let d2 = ctx.ule(c30, x); // x >= 30
        let goal = ctx.or2(d1, d2);
        match simplify_query(&mut ctx, &[base, goal], 1, true) {
            SimplifyOutcome::Discharged(_) => {}
            other => panic!("expected discharge, got {other:?}"),
        }
    }

    #[test]
    fn incremental_deltas_rewrite_under_outer_facts() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let five = ctx.bv_const(8, 5);
        let y = ctx.var("y", Sort::Bv(8));
        let def = ctx.eq(x, five); // base, already encoded
        let use_x = ctx.bv_add(x, y);
        let seven = ctx.bv_const(8, 7);
        let pending = ctx.ult(use_x, seven); // scope delta
        let groups = vec![
            DeltaGroup {
                level: 0,
                encoded: vec![def],
                pending: vec![],
            },
            DeltaGroup {
                level: 1,
                encoded: vec![],
                pending: vec![pending],
            },
        ];
        let out = simplify_deltas(&mut ctx, &groups);
        assert!(!out.discharged);
        let expect_sum = ctx.bv_add(five, y);
        let expect = ctx.ult(expect_sum, seven);
        assert_eq!(out.rewritten[1], vec![expect]);
    }

    #[test]
    fn base_delta_ignores_scope_facts() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let five = ctx.bv_const(8, 5);
        let scope_def = ctx.eq(x, five); // scoped fact: may pop later
        let seven = ctx.bv_const(8, 7);
        let base_pending = ctx.ult(x, seven); // base delta: permanent
        let groups = vec![
            DeltaGroup {
                level: 0,
                encoded: vec![],
                pending: vec![base_pending],
            },
            DeltaGroup {
                level: 1,
                encoded: vec![scope_def],
                pending: vec![],
            },
        ];
        let out = simplify_deltas(&mut ctx, &groups);
        // The base delta must NOT be folded using the scoped x = 5.
        assert_eq!(out.rewritten[0], vec![base_pending]);
    }
}
