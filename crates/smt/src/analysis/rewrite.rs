//! Fact-directed rewriting of asserted conjuncts.
//!
//! A [`Facts`] set is harvested from every active conjunct: abstract
//! seeds (see [`super::domain`]) plus an equality substitution map from
//! asserted top-level `Eq`s. A [`Rewriter`] then rebuilds one conjunct
//! bottom-up through the `Ctx` smart constructors, replacing terms the
//! visible facts decide — with the conjunct's own contribution hidden,
//! so a fact can never be used to delete itself.
//!
//! Soundness: rewriting conjunct `Cᵢ` into `Cᵢ'` uses only facts
//! implied by the *other* conjuncts (and outer/base-level ones in the
//! incremental case), so `⋀ⱼ≠ᵢ Cⱼ ⊨ (Cᵢ ↔ Cᵢ')`. Replacing every
//! conjunct simultaneously preserves the models of the conjunction by
//! induction on conjuncts: each single replacement keeps the
//! conjunction equivalent, and equivalence of the whole conjunction is
//! what every later replacement's side condition needs. The trap this
//! scheme must (and does) avoid is two conjuncts deleting each other
//! with each other's content: identical conjuncts are deduplicated
//! before harvest, and a fact asserted by more than one conjunct is
//! demoted to [`MULTI_ORIGIN`], which the rewriting view hides.

use std::collections::HashMap;

use crate::term::{Ctx, Sort, TermData, TermId};

use super::domain::{Analysis, SeedView, Seeds, MULTI_ORIGIN};

/// One oriented equality substitution.
#[derive(Debug, Clone, Copy)]
struct SubstEntry {
    origin: u32,
    level: u32,
    to: TermId,
}

/// Everything the active conjuncts tell us: abstract seeds plus an
/// equality substitution map.
#[derive(Debug, Default)]
pub struct Facts {
    /// Abstract constraints seeded on terms.
    pub seeds: Seeds,
    /// Oriented replacements from asserted `Eq`s. Orientations are
    /// chosen terminating: variable → constant, higher variable → lower
    /// variable, compound → constant. Keys are never constants, so
    /// chains strictly descend and bottom out.
    subst: HashMap<TermId, SubstEntry>,
}

impl Facts {
    /// Harvests seeds and substitutions from one conjunct.
    pub fn harvest(&mut self, ctx: &Ctx, t: TermId, origin: u32, level: u32) {
        self.seeds.add_fact(ctx, t, origin, level, true);
        if let TermData::Eq(a, b) = ctx.data(t) {
            let (a, b) = (*a, *b);
            if ctx.sort(a) == Sort::Bool {
                return;
            }
            let a_const = ctx.const_value(a).is_some();
            let b_const = ctx.const_value(b).is_some();
            let a_var = matches!(ctx.data(a), TermData::Var(_));
            let b_var = matches!(ctx.data(b), TermData::Var(_));
            let oriented = match (a_const, b_const) {
                (true, false) => Some((b, a)),
                (false, true) => Some((a, b)),
                (false, false) if a_var && b_var => {
                    // Replace the higher id by the lower one.
                    Some((a.max(b), a.min(b)))
                }
                _ => None,
            };
            if let Some((from, to)) = oriented {
                // Keep the first orientation for a key; a clashing
                // second equality still lands in the seeds, where the
                // meet exposes any contradiction.
                self.subst
                    .entry(from)
                    .or_insert(SubstEntry { origin, level, to });
            }
        }
    }

    fn lookup(&self, view: SeedView, t: TermId) -> Option<TermId> {
        let e = self.subst.get(&t)?;
        match view {
            SeedView::Full => None,
            SeedView::Rewriting { exclude, max_level } => {
                if e.origin != MULTI_ORIGIN && Some(e.origin) != exclude && e.level <= max_level {
                    Some(e.to)
                } else {
                    None
                }
            }
        }
    }
}

/// Counters reported by one rewrite run.
#[derive(Debug, Default, Clone, Copy)]
pub struct RewriteStats {
    /// Nodes whose rebuilt form differs from the original.
    pub rewrites: u64,
    /// Bits of bit-vector terms replaced by constants.
    pub bits_pinned: u64,
    /// Terms visited by the backing abstract analysis.
    pub visited: u64,
}

/// Rewrites terms bottom-up under one fixed [`SeedView`].
pub struct Rewriter<'f> {
    facts: &'f Facts,
    view: SeedView,
    analysis: Analysis<'f>,
    memo: HashMap<TermId, TermId>,
    /// Counters accumulated across `rewrite` calls.
    pub stats: RewriteStats,
}

impl<'f> Rewriter<'f> {
    /// Creates a rewriter over `facts` restricted to `view`.
    pub fn new(facts: &'f Facts, view: SeedView) -> Rewriter<'f> {
        Rewriter {
            facts,
            view,
            analysis: Analysis::new(&facts.seeds, view),
            memo: HashMap::new(),
            stats: RewriteStats::default(),
        }
    }

    /// Rewrites `t`, memoized across calls on this rewriter.
    pub fn rewrite(&mut self, ctx: &mut Ctx, t: TermId) -> TermId {
        let mut stack = vec![(t, false)];
        while let Some((n, ready)) = stack.pop() {
            if self.memo.contains_key(&n) {
                continue;
            }
            if !ready {
                stack.push((n, true));
                for c in crate::bitblast::term_children(ctx, n) {
                    if !self.memo.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
                continue;
            }
            let out = self.process(ctx, n);
            if out != n {
                self.stats.rewrites += 1;
            }
            self.memo.insert(n, out);
        }
        self.stats.visited = self.analysis.visited;
        self.memo[&t]
    }

    /// True when the analysis met an empty abstraction: the facts
    /// visible to this view are unsatisfiable together.
    pub fn saw_contradiction(&self) -> bool {
        self.analysis.contradiction
    }

    fn process(&mut self, ctx: &mut Ctx, n: TermId) -> TermId {
        let rebuilt = self.rebuild(ctx, n);
        let substituted = self.chase_subst(if rebuilt != n {
            // Both the original and the rebuilt node may be substitution
            // keys (compound keys are recorded pre-rewrite).
            self.facts.lookup(self.view, n).unwrap_or(rebuilt)
        } else {
            rebuilt
        });
        self.fold_by_abstraction(ctx, substituted)
    }

    /// Follows substitution chains (`x → y → c`); orientations strictly
    /// descend, so this terminates.
    fn chase_subst(&self, mut t: TermId) -> TermId {
        while let Some(next) = self.facts.lookup(self.view, t) {
            if next == t {
                break;
            }
            t = next;
        }
        t
    }

    /// Replaces `t` by a constant when the visible facts decide it.
    fn fold_by_abstraction(&mut self, ctx: &mut Ctx, t: TermId) -> TermId {
        match ctx.sort(t) {
            Sort::Bool => {
                if ctx.const_bool(t).is_some() {
                    return t;
                }
                match self.analysis.abs(ctx, t).as_bool() {
                    Some(v) => ctx.bool_const(v),
                    None => t,
                }
            }
            Sort::Bv(w) => {
                if ctx.const_value(t).is_some() {
                    return t;
                }
                match self.analysis.abs(ctx, t).as_bv().and_then(|a| a.as_const()) {
                    Some(v) => {
                        self.stats.bits_pinned += u64::from(w);
                        ctx.bv_const(w, v)
                    }
                    None => t,
                }
            }
        }
    }

    /// Rebuilds `n` from its rewritten children through the smart
    /// constructors (which constant-fold and apply algebraic
    /// identities at every step).
    fn rebuild(&mut self, ctx: &mut Ctx, n: TermId) -> TermId {
        let data = ctx.data(n).clone();
        match data {
            TermData::True | TermData::False | TermData::BvConst { .. } | TermData::Var(_) => n,
            TermData::Not(a) => {
                let a = self.memo[&a];
                ctx.not(a)
            }
            TermData::And(args) => {
                let args: Vec<TermId> = args.iter().map(|a| self.memo[a]).collect();
                ctx.and(&args)
            }
            TermData::Or(args) => {
                let args: Vec<TermId> = args.iter().map(|a| self.memo[a]).collect();
                ctx.or(&args)
            }
            TermData::Eq(a, b) => {
                let (a, b) = (self.memo[&a], self.memo[&b]);
                ctx.eq(a, b)
            }
            TermData::Ite(c, t, e) => {
                let (c, t, e) = (self.memo[&c], self.memo[&t], self.memo[&e]);
                ctx.ite(c, t, e)
            }
            TermData::BvNot(a) => {
                let a = self.memo[&a];
                ctx.bv_not(a)
            }
            TermData::BvBin(op, a, b) => {
                let (a, b) = (self.memo[&a], self.memo[&b]);
                ctx.bv_bin(op, a, b)
            }
            TermData::Cmp(op, a, b) => {
                let (a, b) = (self.memo[&a], self.memo[&b]);
                ctx.cmp(op, a, b)
            }
            TermData::ZExt(a, w) => {
                let a = self.memo[&a];
                ctx.zext(a, w)
            }
            TermData::SExt(a, w) => {
                let a = self.memo[&a];
                ctx.sext(a, w)
            }
            TermData::Extract(a, hi, lo) => {
                let a = self.memo[&a];
                ctx.extract(a, hi, lo)
            }
            TermData::Concat(a, b) => {
                let (a, b) = (self.memo[&a], self.memo[&b]);
                ctx.concat(a, b)
            }
            TermData::Apply(f, args) => {
                let args: Vec<TermId> = args.iter().map(|a| self.memo[a]).collect();
                ctx.apply(f, &args)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    fn rewriting_all() -> SeedView {
        SeedView::Rewriting {
            exclude: None,
            max_level: u32::MAX,
        }
    }

    #[test]
    fn substitutes_var_with_const() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let five = ctx.bv_const(8, 5);
        let eq = ctx.eq(x, five);
        let sum = ctx.bv_add(x, y);

        let mut facts = Facts::default();
        facts.harvest(&ctx, eq, 0, 0);
        let mut rw = Rewriter::new(&facts, rewriting_all());
        let out = rw.rewrite(&mut ctx, sum);
        let expect = ctx.bv_add(five, y);
        assert_eq!(out, expect);
        assert!(rw.stats.rewrites > 0);
    }

    #[test]
    fn own_origin_is_excluded() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let five = ctx.bv_const(8, 5);
        let eq = ctx.eq(x, five);

        let mut facts = Facts::default();
        facts.harvest(&ctx, eq, 7, 0);
        // Rewriting the defining conjunct itself: nothing may change.
        let mut rw = Rewriter::new(
            &facts,
            SeedView::Rewriting {
                exclude: Some(7),
                max_level: u32::MAX,
            },
        );
        assert_eq!(rw.rewrite(&mut ctx, eq), eq);
        // Rewriting any other conjunct: the equality applies.
        let mut rw2 = Rewriter::new(&facts, rewriting_all());
        assert_eq!(rw2.rewrite(&mut ctx, eq), ctx.tru());
    }

    #[test]
    fn interval_fact_decides_comparison() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let ten = ctx.bv_const(16, 10);
        let hundred = ctx.bv_const(16, 100);
        let bound = ctx.ult(x, ten); // fact: x < 10
        let weak = ctx.ult(x, hundred); // conjunct: x < 100

        let mut facts = Facts::default();
        facts.harvest(&ctx, bound, 0, 0);
        let mut rw = Rewriter::new(&facts, rewriting_all());
        assert_eq!(rw.rewrite(&mut ctx, weak), ctx.tru());
    }

    #[test]
    fn knownbits_pin_through_extract() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let low = ctx.extract(x, 5, 0); // 6 bits: always < 64
        let wide = ctx.zext(low, 16);
        let sixty_four = ctx.bv_const(16, 64);
        let q = ctx.ult(wide, sixty_four);

        let facts = Facts::default();
        let mut rw = Rewriter::new(&facts, rewriting_all());
        assert_eq!(rw.rewrite(&mut ctx, q), ctx.tru());
    }

    #[test]
    fn var_chain_terminates() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let c = ctx.bv_const(8, 3);
        let e1 = ctx.eq(x, y); // orient: max(x,y) -> min(x,y)
        let e2 = ctx.eq(x.min(y), c); // lower var -> const
        let mut facts = Facts::default();
        facts.harvest(&ctx, e1, 0, 0);
        facts.harvest(&ctx, e2, 1, 0);
        let mut rw = Rewriter::new(&facts, rewriting_all());
        let hi = x.max(y);
        assert_eq!(rw.rewrite(&mut ctx, hi), c);
    }
}
