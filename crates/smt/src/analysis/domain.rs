//! Abstract domains for word-level static analysis: a per-bit
//! known-bits lattice and an unsigned interval domain, computed together
//! over the hash-consed term DAG.
//!
//! Every bit-vector term gets an [`AbsBv`]: `ones`/`zeros` masks of bits
//! proven constant plus an inclusive unsigned range `[lo, hi]`. The two
//! views cross-pollinate in [`AbsBv::normalize`]: known high-zero bits
//! tighten the range, a tight range pins the common leading bits, and an
//! empty meet (`ones & zeros != 0` or `lo > hi`) is the domain-level
//! signature of an unsatisfiable fact set. Boolean terms abstract to
//! `Option<bool>` — `Some` when the abstraction alone decides them.
//!
//! Soundness invariant: for every term `t` and every assignment
//! satisfying the seeded facts, the concrete value of `t` lies in
//! `abs(t)`. Transfer functions may only over-approximate; the
//! differential fuzz suite (`tests/simplify_differential.rs`) checks the
//! invariant against the ground evaluator on random DAGs.

use std::collections::HashMap;

use crate::term::{mask, sext_to_64, BvBinOp, CmpOp, Ctx, Sort, TermData, TermId};

/// Known-bits + unsigned-interval abstraction of one bit-vector term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsBv {
    /// Width of the abstracted term.
    pub width: u32,
    /// Bits proven to be one.
    pub ones: u64,
    /// Bits proven to be zero.
    pub zeros: u64,
    /// Inclusive unsigned lower bound.
    pub lo: u64,
    /// Inclusive unsigned upper bound.
    pub hi: u64,
}

impl AbsBv {
    /// The unconstrained element: nothing known.
    pub fn top(width: u32) -> AbsBv {
        AbsBv {
            width,
            ones: 0,
            zeros: 0,
            lo: 0,
            hi: mask(width),
        }
    }

    /// The exact abstraction of a constant.
    pub fn exact(width: u32, v: u64) -> AbsBv {
        let v = v & mask(width);
        AbsBv {
            width,
            ones: v,
            zeros: !v & mask(width),
            lo: v,
            hi: v,
        }
    }

    /// Bits not yet pinned either way.
    pub fn unknown_mask(&self) -> u64 {
        mask(self.width) & !self.ones & !self.zeros
    }

    /// Number of bits pinned to a constant.
    pub fn known_bits(&self) -> u32 {
        ((self.ones | self.zeros) & mask(self.width)).count_ones()
    }

    /// True when no concrete value is compatible: the fact set that
    /// seeded this abstraction is unsatisfiable.
    pub fn is_empty(&self) -> bool {
        self.ones & self.zeros != 0 || self.lo > self.hi
    }

    /// The single compatible value, if the abstraction pins one.
    pub fn as_const(&self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        if self.lo == self.hi {
            return Some(self.lo);
        }
        if (self.ones | self.zeros) == mask(self.width) {
            return Some(self.ones);
        }
        None
    }

    /// Cross-pollinates the two views to a local fixpoint: bits tighten
    /// the range, the range pins the common leading bits of `lo`/`hi`.
    pub fn normalize(mut self) -> AbsBv {
        let m = mask(self.width);
        for _ in 0..3 {
            let before = self;
            // Bits → range: the smallest compatible value sets every
            // unknown bit to 0, the largest sets them all to 1.
            self.lo = self.lo.max(self.ones);
            self.hi = self.hi.min(m & !self.zeros);
            if self.lo > self.hi {
                return self;
            }
            // Range → bits: lo and hi agree above their highest
            // differing bit, so those leading bits are pinned.
            let diff = self.lo ^ self.hi;
            let fixed_above = if diff == 0 {
                u64::MAX
            } else {
                !(u64::MAX >> diff.leading_zeros())
            };
            let fixed = fixed_above & m;
            self.ones |= self.lo & fixed;
            self.zeros |= !self.lo & fixed;
            if self == before {
                break;
            }
        }
        self
    }

    /// Greatest lower bound: both constraints hold. An empty result
    /// means the constraints contradict.
    pub fn meet(&self, other: &AbsBv) -> AbsBv {
        debug_assert_eq!(self.width, other.width);
        AbsBv {
            width: self.width,
            ones: self.ones | other.ones,
            zeros: self.zeros | other.zeros,
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
        .normalize()
    }

    /// Least upper bound: either constraint may hold (`ite` join).
    pub fn join(&self, other: &AbsBv) -> AbsBv {
        debug_assert_eq!(self.width, other.width);
        AbsBv {
            width: self.width,
            ones: self.ones & other.ones,
            zeros: self.zeros & other.zeros,
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
        .normalize()
    }

    /// Signed bounds, when the unsigned range does not straddle the
    /// sign boundary.
    fn signed_bounds(&self) -> Option<(i64, i64)> {
        let sign = 1u64 << (self.width - 1);
        if self.hi < sign || self.lo >= sign {
            Some((
                sext_to_64(self.lo, self.width) as i64,
                sext_to_64(self.hi, self.width) as i64,
            ))
        } else {
            None
        }
    }
}

// ----------------------------------------------------------------------
// Transfer functions.
// ----------------------------------------------------------------------

fn tf_bv_not(a: &AbsBv) -> AbsBv {
    let m = mask(a.width);
    AbsBv {
        width: a.width,
        ones: a.zeros,
        zeros: a.ones,
        lo: m - a.hi,
        hi: m - a.lo,
    }
    .normalize()
}

/// Known-bits addition: ripple the carry while both addend bits and the
/// carry stay known; the first unknown poisons everything above it.
fn add_known_bits(a: &AbsBv, b: &AbsBv, width: u32) -> (u64, u64) {
    let (mut ones, mut zeros) = (0u64, 0u64);
    let mut carry = Some(0u64);
    for i in 0..width {
        let bit = 1u64 << i;
        let ka = (a.ones | a.zeros) & bit != 0;
        let kb = (b.ones | b.zeros) & bit != 0;
        match (ka, kb, carry) {
            (true, true, Some(c)) => {
                let va = (a.ones >> i) & 1;
                let vb = (b.ones >> i) & 1;
                let s = va + vb + c;
                if s & 1 == 1 {
                    ones |= bit;
                } else {
                    zeros |= bit;
                }
                carry = Some(s >> 1);
            }
            _ => break,
        }
    }
    (ones, zeros)
}

fn tf_bv_bin(op: BvBinOp, a: &AbsBv, b: &AbsBv) -> AbsBv {
    let w = a.width;
    let m = mask(w);
    let mut r = AbsBv::top(w);
    match op {
        BvBinOp::Add => {
            (r.ones, r.zeros) = add_known_bits(a, b, w);
            if a.hi.checked_add(b.hi).is_some_and(|s| s <= m) {
                r.lo = a.lo + b.lo;
                r.hi = a.hi + b.hi;
            }
        }
        BvBinOp::Sub => {
            if a.lo >= b.hi {
                r.lo = a.lo - b.hi;
                r.hi = a.hi - b.lo;
            }
        }
        BvBinOp::Mul => {
            // Trailing known zeros accumulate through multiplication.
            let tz = trailing_known_zeros(a) + trailing_known_zeros(b);
            if tz >= w {
                return AbsBv::exact(w, 0);
            }
            r.zeros |= mask(tz);
            if a.hi.checked_mul(b.hi).is_some_and(|p| p <= m) {
                r.lo = a.lo * b.lo;
                r.hi = a.hi * b.hi;
            }
        }
        BvBinOp::Udiv => {
            // A nonzero divisor lower bound makes both checked divisions
            // succeed; `b.lo == 0` short-circuits to the top element.
            if let (Some(lo), Some(hi)) = (a.lo.checked_div(b.hi), a.hi.checked_div(b.lo)) {
                r.lo = lo;
                r.hi = hi;
            }
            // A possibly-zero divisor yields all-ones (SMT-LIB), so the
            // top element already covers it.
        }
        BvBinOp::Urem => {
            // The remainder never exceeds the dividend; with a provably
            // nonzero divisor it is also below the divisor.
            r.lo = 0;
            r.hi = if b.lo > 0 { a.hi.min(b.hi - 1) } else { a.hi };
        }
        BvBinOp::And => {
            r.ones = a.ones & b.ones;
            r.zeros = a.zeros | b.zeros;
        }
        BvBinOp::Or => {
            r.ones = a.ones | b.ones;
            r.zeros = a.zeros & b.zeros;
        }
        BvBinOp::Xor => {
            let known = (a.ones | a.zeros) & (b.ones | b.zeros);
            let v = (a.ones ^ b.ones) & known;
            r.ones = v;
            r.zeros = known & !v;
        }
        BvBinOp::Shl => {
            if let Some(sh) = b.as_const() {
                if sh >= w as u64 {
                    return AbsBv::exact(w, 0);
                }
                let sh = sh as u32;
                r.ones = (a.ones << sh) & m;
                r.zeros = ((a.zeros << sh) | mask(sh)) & m;
                if a.hi <= m >> sh {
                    r.lo = a.lo << sh;
                    r.hi = a.hi << sh;
                }
            } else if b.lo < w as u64 {
                // Every feasible shift clears at least `b.lo` low bits;
                // larger shifts clear more (or produce 0, which also
                // has them clear).
                r.zeros |= mask(b.lo as u32);
            } else {
                return AbsBv::exact(w, 0);
            }
        }
        BvBinOp::Lshr => {
            if let Some(sh) = b.as_const() {
                if sh >= w as u64 {
                    return AbsBv::exact(w, 0);
                }
                let sh = sh as u32;
                r.ones = a.ones >> sh;
                r.zeros = (a.zeros >> sh) | (!(m >> sh) & m);
                r.lo = a.lo >> sh;
                r.hi = a.hi >> sh;
            } else {
                r.lo = 0;
                r.hi = a.hi >> b.lo.min(63);
            }
        }
        BvBinOp::Ashr => {
            if a.zeros >> (w - 1) & 1 == 1 {
                // Known non-negative: identical to a logical shift.
                return tf_bv_bin(BvBinOp::Lshr, a, b);
            }
            if let (Some(sh), true) = (b.as_const(), a.ones >> (w - 1) & 1 == 1) {
                // Known negative, constant shift: sign fill with ones.
                if sh >= w as u64 {
                    return AbsBv::exact(w, m);
                }
                let sh = sh as u32;
                let fill = m & !(m >> sh);
                r.ones = (a.ones >> sh) | fill;
                r.zeros = (a.zeros >> sh) & !fill;
            }
        }
    }
    r.normalize()
}

fn trailing_known_zeros(a: &AbsBv) -> u32 {
    (a.zeros | !mask(a.width)).trailing_ones().min(a.width)
}

fn tf_zext(a: &AbsBv, width: u32) -> AbsBv {
    AbsBv {
        width,
        ones: a.ones,
        zeros: a.zeros | (mask(width) & !mask(a.width)),
        lo: a.lo,
        hi: a.hi,
    }
    .normalize()
}

fn tf_sext(a: &AbsBv, width: u32) -> AbsBv {
    let sign = 1u64 << (a.width - 1);
    let high = mask(width) & !mask(a.width);
    if a.zeros & sign != 0 {
        return tf_zext(a, width);
    }
    let mut r = AbsBv::top(width);
    r.ones = a.ones & mask(a.width);
    r.zeros = a.zeros & mask(a.width);
    if a.ones & sign != 0 {
        // Known negative: the extension bits are ones and the value
        // stays in the high (negative) band of the wider width.
        r.ones |= high;
        r.lo = (a.lo | high) & mask(width);
        r.hi = (a.hi | high) & mask(width);
    } else {
        // Sign unknown: the copied low bits are all that survives (the
        // high bits all mirror the unknown sign).
        r.ones &= mask(a.width - 1);
        r.zeros &= mask(a.width - 1);
    }
    r.normalize()
}

fn tf_extract(a: &AbsBv, hi: u32, lo: u32) -> AbsBv {
    let w = hi - lo + 1;
    let mut r = AbsBv {
        width: w,
        ones: (a.ones >> lo) & mask(w),
        zeros: (a.zeros >> lo) & mask(w),
        lo: 0,
        hi: mask(w),
    };
    if hi == a.width - 1 {
        // Extracting through the top bit is a plain right shift, which
        // is monotone, so the range carries over.
        r.lo = a.lo >> lo;
        r.hi = a.hi >> lo;
    }
    r.normalize()
}

fn tf_concat(a: &AbsBv, b: &AbsBv) -> AbsBv {
    let w = a.width + b.width;
    let sh = b.width;
    AbsBv {
        width: w,
        ones: (a.ones << sh) | b.ones,
        zeros: (a.zeros << sh) | b.zeros,
        lo: (a.lo << sh) + b.lo,
        hi: (a.hi << sh) + b.hi,
    }
    .normalize()
}

fn tf_cmp(op: CmpOp, a: &AbsBv, b: &AbsBv) -> Option<bool> {
    match op {
        CmpOp::Ult => {
            if a.hi < b.lo {
                Some(true)
            } else if a.lo >= b.hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ule => {
            if a.hi <= b.lo {
                Some(true)
            } else if a.lo > b.hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Slt | CmpOp::Sle => {
            let (alo, ahi) = a.signed_bounds()?;
            let (blo, bhi) = b.signed_bounds()?;
            if op == CmpOp::Slt {
                if ahi < blo {
                    Some(true)
                } else if alo >= bhi {
                    Some(false)
                } else {
                    None
                }
            } else if ahi <= blo {
                Some(true)
            } else if alo > bhi {
                Some(false)
            } else {
                None
            }
        }
    }
}

fn tf_eq_bv(a: &AbsBv, b: &AbsBv) -> Option<bool> {
    if a.hi < b.lo || b.hi < a.lo {
        return Some(false);
    }
    if a.ones & b.zeros != 0 || b.ones & a.zeros != 0 {
        return Some(false);
    }
    if let (Some(va), Some(vb)) = (a.as_const(), b.as_const()) {
        return Some(va == vb);
    }
    None
}

// ----------------------------------------------------------------------
// The analysis engine.
// ----------------------------------------------------------------------

/// The abstract value of one term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abs {
    /// A boolean term: `Some` when decided by the abstraction.
    Bool(Option<bool>),
    /// A bit-vector term.
    Bv(AbsBv),
}

impl Abs {
    /// The decided boolean value, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Abs::Bool(b) => *b,
            Abs::Bv(_) => None,
        }
    }

    /// The bit-vector abstraction, if this is a bit-vector term.
    pub fn as_bv(&self) -> Option<&AbsBv> {
        match self {
            Abs::Bv(a) => Some(a),
            Abs::Bool(_) => None,
        }
    }
}

/// Marker origin for facts contributed by more than one conjunct. Such
/// facts participate in whole-conjunction contradiction checks but are
/// hidden during rewriting: letting conjunct `i` see a fact it helped
/// establish would permit circular self-simplification (the classic
/// `p ∧ p → true ∧ true` trap).
pub const MULTI_ORIGIN: u32 = u32::MAX;

/// Which seeded facts one analysis run may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedView {
    /// Every seeded fact applies: checking the whole active conjunction
    /// for a contradiction (nothing is rewritten, so circularity is not
    /// a concern).
    Full,
    /// Rewriting one conjunct: facts from that conjunct (`exclude`),
    /// facts owned by several conjuncts, and facts from scopes deeper
    /// than `max_level` are hidden. The level cut keeps base-level
    /// (permanent) clauses from absorbing facts out of popped scopes.
    Rewriting {
        /// The conjunct currently being rewritten, if it contributed
        /// facts of its own.
        exclude: Option<u32>,
        /// Highest scope level whose facts are visible (base = 0).
        max_level: u32,
    },
}

impl SeedView {
    fn admits(self, origin: u32, level: u32) -> bool {
        match self {
            SeedView::Full => true,
            SeedView::Rewriting { exclude, max_level } => {
                origin != MULTI_ORIGIN && Some(origin) != exclude && level <= max_level
            }
        }
    }
}

/// A range/bit constraint seeded on one bit-vector term.
#[derive(Debug, Clone, Copy)]
pub struct SeedBv {
    /// Conjunct index the constraint came from (or [`MULTI_ORIGIN`]).
    pub origin: u32,
    /// Scope level of the asserting conjunct (base = 0).
    pub level: u32,
    /// The constraint itself.
    pub abs: AbsBv,
}

/// A truth value forced on one boolean term.
#[derive(Debug, Clone, Copy)]
pub struct SeedBool {
    /// Conjunct index the fact came from (or [`MULTI_ORIGIN`]).
    pub origin: u32,
    /// Scope level of the asserting conjunct (base = 0).
    pub level: u32,
    /// The forced value.
    pub value: bool,
}

/// Seeded constraints: what asserted facts say about specific terms.
/// Every entry carries the conjunct it came from and that conjunct's
/// scope level, so a [`SeedView`] can hide facts a rewrite must not use.
#[derive(Debug, Default, Clone)]
pub struct Seeds {
    /// Range/bit constraints on bit-vector terms.
    pub bv: HashMap<TermId, SeedBv>,
    /// Truth values forced on boolean terms.
    pub bools: HashMap<TermId, SeedBool>,
    /// Two conjuncts asserted opposite truth values for one term: the
    /// conjunction is unsatisfiable outright.
    pub conflict: bool,
}

impl Seeds {
    /// Adds (meets) a bit-vector constraint from conjunct `origin`.
    pub fn constrain_bv(&mut self, t: TermId, origin: u32, level: u32, c: AbsBv) {
        match self.bv.get_mut(&t) {
            Some(e) => {
                e.abs = e.abs.meet(&c);
                if e.origin != origin {
                    e.origin = MULTI_ORIGIN;
                }
                e.level = e.level.max(level);
            }
            None => {
                self.bv.insert(
                    t,
                    SeedBv {
                        origin,
                        level,
                        abs: c,
                    },
                );
            }
        }
    }

    /// Forces a boolean term's truth value from conjunct `origin`.
    pub fn constrain_bool(&mut self, t: TermId, origin: u32, level: u32, v: bool) {
        match self.bools.get_mut(&t) {
            Some(e) => {
                if e.value != v {
                    self.conflict = true;
                }
                if e.origin != origin {
                    e.origin = MULTI_ORIGIN;
                }
                e.level = e.level.max(level);
            }
            None => {
                self.bools.insert(
                    t,
                    SeedBool {
                        origin,
                        level,
                        value: v,
                    },
                );
            }
        }
    }

    /// Harvests constraints from one asserted conjunct. `positive`
    /// starts true; `Not` flips it on the way down.
    pub fn add_fact(&mut self, ctx: &Ctx, t: TermId, origin: u32, level: u32, positive: bool) {
        self.constrain_bool(t, origin, level, positive);
        match ctx.data(t) {
            TermData::Not(a) => self.add_fact(ctx, *a, origin, level, !positive),
            TermData::And(args) if positive => {
                for &a in args.iter() {
                    self.add_fact(ctx, a, origin, level, true);
                }
            }
            TermData::Or(args) if !positive => {
                for &a in args.iter() {
                    self.add_fact(ctx, a, origin, level, false);
                }
            }
            TermData::Cmp(op, a, b) => {
                self.add_cmp_fact(ctx, *op, *a, *b, origin, level, positive);
            }
            TermData::Eq(a, b) if positive => {
                let (a, b) = (*a, *b);
                if ctx.sort(a) != Sort::Bool {
                    if let Some(v) = ctx.const_value(b) {
                        self.constrain_bv(a, origin, level, AbsBv::exact(ctx.width(a), v));
                    } else if let Some(v) = ctx.const_value(a) {
                        self.constrain_bv(b, origin, level, AbsBv::exact(ctx.width(b), v));
                    }
                }
            }
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn add_cmp_fact(
        &mut self,
        ctx: &Ctx,
        op: CmpOp,
        a: TermId,
        b: TermId,
        origin: u32,
        level: u32,
        positive: bool,
    ) {
        // Normalize to a positive unsigned bound: ¬(a < b) is b <= a,
        // ¬(a <= b) is b < a. Signed bounds are not harvested (the
        // interval domain is unsigned); the comparison itself is still
        // decided by `tf_cmp` when the operand signs pin down.
        let (op, a, b) = if positive {
            (op, a, b)
        } else {
            match op {
                CmpOp::Ult => (CmpOp::Ule, b, a),
                CmpOp::Ule => (CmpOp::Ult, b, a),
                CmpOp::Slt | CmpOp::Sle => return,
            }
        };
        let w = ctx.width(a);
        let mut top = AbsBv::top(w);
        match op {
            CmpOp::Ult => {
                if let Some(vb) = ctx.const_value(b) {
                    top.hi = vb.saturating_sub(1);
                    if vb == 0 {
                        top.lo = 1; // empty: a < 0 is unsatisfiable
                    }
                    self.constrain_bv(a, origin, level, top.normalize());
                } else if let Some(va) = ctx.const_value(a) {
                    let mut tb = AbsBv::top(w);
                    tb.lo = va.saturating_add(1).min(mask(w));
                    if va == mask(w) {
                        tb.hi = 0;
                        tb.lo = 1; // empty: max < b is unsatisfiable
                    }
                    self.constrain_bv(b, origin, level, tb.normalize());
                }
            }
            CmpOp::Ule => {
                if let Some(vb) = ctx.const_value(b) {
                    top.hi = vb;
                    self.constrain_bv(a, origin, level, top.normalize());
                } else if let Some(va) = ctx.const_value(a) {
                    let mut tb = AbsBv::top(w);
                    tb.lo = va;
                    self.constrain_bv(b, origin, level, tb.normalize());
                }
            }
            CmpOp::Slt | CmpOp::Sle => {}
        }
    }
}

/// One analysis run: abstract values for every visited term under a
/// fixed seed set and view.
#[derive(Debug)]
pub struct Analysis<'s> {
    seeds: &'s Seeds,
    view: SeedView,
    values: HashMap<TermId, Abs>,
    /// A term's abstraction became empty, or a seed clashed with a
    /// computed value: the visible fact set is unsatisfiable.
    pub contradiction: bool,
    /// Terms visited by this run.
    pub visited: u64,
}

impl<'s> Analysis<'s> {
    /// Creates an analysis over the given seeds, restricted to `view`.
    pub fn new(seeds: &'s Seeds, view: SeedView) -> Analysis<'s> {
        Analysis {
            seeds,
            view,
            values: HashMap::new(),
            contradiction: false,
            visited: 0,
        }
    }

    /// The abstract value of `t`, computing it (and its cone) on first
    /// use.
    pub fn abs(&mut self, ctx: &Ctx, t: TermId) -> Abs {
        if let Some(v) = self.values.get(&t) {
            return *v;
        }
        // Iterative post-order: children before parents, each node once.
        let mut stack = vec![(t, false)];
        while let Some((n, ready)) = stack.pop() {
            if self.values.contains_key(&n) {
                continue;
            }
            if !ready {
                stack.push((n, true));
                for c in crate::bitblast::term_children(ctx, n) {
                    if !self.values.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
                continue;
            }
            let v = self.transfer(ctx, n);
            let v = self.apply_seeds(n, v);
            self.visited += 1;
            self.values.insert(n, v);
        }
        self.values[&t]
    }

    fn apply_seeds(&mut self, t: TermId, v: Abs) -> Abs {
        match v {
            Abs::Bv(a) => {
                let mut a = a;
                if let Some(e) = self.seeds.bv.get(&t) {
                    if self.view.admits(e.origin, e.level) {
                        a = a.meet(&e.abs);
                    }
                }
                if a.is_empty() {
                    self.contradiction = true;
                }
                Abs::Bv(a)
            }
            Abs::Bool(b) => {
                let seed = self.seeds.bools.get(&t).and_then(|e| {
                    if self.view.admits(e.origin, e.level) {
                        Some(e.value)
                    } else {
                        None
                    }
                });
                match (b, seed) {
                    (Some(x), Some(y)) if x != y => {
                        self.contradiction = true;
                        Abs::Bool(Some(x))
                    }
                    (None, Some(y)) => Abs::Bool(Some(y)),
                    _ => Abs::Bool(b),
                }
            }
        }
    }

    fn bv(&self, t: TermId) -> AbsBv {
        match self.values[&t] {
            Abs::Bv(a) => a,
            Abs::Bool(_) => unreachable!("bool term where bv expected"),
        }
    }

    fn boolean(&self, t: TermId) -> Option<bool> {
        match self.values[&t] {
            Abs::Bool(b) => b,
            Abs::Bv(_) => unreachable!("bv term where bool expected"),
        }
    }

    fn transfer(&mut self, ctx: &Ctx, t: TermId) -> Abs {
        match ctx.data(t) {
            TermData::True => Abs::Bool(Some(true)),
            TermData::False => Abs::Bool(Some(false)),
            TermData::BvConst { width, value } => Abs::Bv(AbsBv::exact(*width, *value)),
            TermData::Var(_) | TermData::Apply(..) => match ctx.sort(t) {
                Sort::Bool => Abs::Bool(None),
                Sort::Bv(w) => Abs::Bv(AbsBv::top(w)),
            },
            TermData::Not(a) => Abs::Bool(self.boolean(*a).map(|b| !b)),
            TermData::And(args) => {
                let mut all = Some(true);
                for &a in args.iter() {
                    match self.boolean(a) {
                        Some(false) => return Abs::Bool(Some(false)),
                        Some(true) => {}
                        None => all = None,
                    }
                }
                Abs::Bool(all)
            }
            TermData::Or(args) => {
                let mut all = Some(false);
                for &a in args.iter() {
                    match self.boolean(a) {
                        Some(true) => return Abs::Bool(Some(true)),
                        Some(false) => {}
                        None => all = None,
                    }
                }
                Abs::Bool(all)
            }
            TermData::Eq(a, b) => match ctx.sort(*a) {
                Sort::Bool => match (self.boolean(*a), self.boolean(*b)) {
                    (Some(x), Some(y)) => Abs::Bool(Some(x == y)),
                    _ => Abs::Bool(None),
                },
                Sort::Bv(_) => Abs::Bool(tf_eq_bv(&self.bv(*a), &self.bv(*b))),
            },
            TermData::Ite(c, th, el) => {
                let cond = self.boolean(*c);
                match ctx.sort(t) {
                    Sort::Bool => match cond {
                        Some(true) => Abs::Bool(self.boolean(*th)),
                        Some(false) => Abs::Bool(self.boolean(*el)),
                        None => match (self.boolean(*th), self.boolean(*el)) {
                            (Some(x), Some(y)) if x == y => Abs::Bool(Some(x)),
                            _ => Abs::Bool(None),
                        },
                    },
                    Sort::Bv(_) => match cond {
                        Some(true) => Abs::Bv(self.bv(*th)),
                        Some(false) => Abs::Bv(self.bv(*el)),
                        None => Abs::Bv(self.bv(*th).join(&self.bv(*el))),
                    },
                }
            }
            TermData::BvNot(a) => Abs::Bv(tf_bv_not(&self.bv(*a))),
            TermData::BvBin(op, a, b) => Abs::Bv(tf_bv_bin(*op, &self.bv(*a), &self.bv(*b))),
            TermData::Cmp(op, a, b) => Abs::Bool(tf_cmp(*op, &self.bv(*a), &self.bv(*b))),
            TermData::ZExt(a, w) => Abs::Bv(tf_zext(&self.bv(*a), *w)),
            TermData::SExt(a, w) => Abs::Bv(tf_sext(&self.bv(*a), *w)),
            TermData::Extract(a, hi, lo) => Abs::Bv(tf_extract(&self.bv(*a), *hi, *lo)),
            TermData::Concat(a, b) => Abs::Bv(tf_concat(&self.bv(*a), &self.bv(*b))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_roundtrip() {
        let a = AbsBv::exact(8, 0xa5);
        assert_eq!(a.as_const(), Some(0xa5));
        assert!(!a.is_empty());
        assert_eq!(a.known_bits(), 8);
    }

    #[test]
    fn normalize_links_bits_and_range() {
        // hi < 16 pins the four high bits of an 8-bit value to zero.
        let a = AbsBv {
            width: 8,
            ones: 0,
            zeros: 0,
            lo: 0,
            hi: 15,
        }
        .normalize();
        assert_eq!(a.zeros & 0xf0, 0xf0);
        // Known high zeros tighten the range.
        let b = AbsBv {
            width: 8,
            ones: 0,
            zeros: 0xc0,
            lo: 0,
            hi: 255,
        }
        .normalize();
        assert_eq!(b.hi, 0x3f);
    }

    #[test]
    fn meet_contradiction() {
        let lt5 = AbsBv {
            width: 16,
            ones: 0,
            zeros: 0,
            lo: 0,
            hi: 4,
        };
        let gt10 = AbsBv {
            width: 16,
            ones: 0,
            zeros: 0,
            lo: 11,
            hi: mask(16),
        };
        assert!(lt5.meet(&gt10).is_empty());
    }

    #[test]
    fn add_interval_and_bits() {
        let a = AbsBv::exact(8, 3);
        let b = AbsBv {
            width: 8,
            ones: 0,
            zeros: 0,
            lo: 0,
            hi: 10,
        }
        .normalize();
        let s = tf_bv_bin(BvBinOp::Add, &a, &b);
        assert_eq!(s.lo, 3);
        assert_eq!(s.hi, 13);
        // Wrap risk kills the range.
        let big = AbsBv::top(8);
        let s2 = tf_bv_bin(BvBinOp::Add, &big, &big);
        assert_eq!((s2.lo, s2.hi), (0, 255));
    }

    #[test]
    fn shift_and_extract_bits() {
        let a = AbsBv::exact(8, 0b1010_0001);
        let sh = AbsBv::exact(8, 4);
        let r = tf_bv_bin(BvBinOp::Lshr, &a, &sh);
        assert_eq!(r.as_const(), Some(0b1010));
        let e = tf_extract(&a, 3, 0);
        assert_eq!(e.as_const(), Some(0b0001));
        let c = tf_concat(&AbsBv::exact(4, 0xa), &AbsBv::exact(4, 0x1));
        assert_eq!(c.as_const(), Some(0xa1));
    }

    #[test]
    fn cmp_decided_by_intervals() {
        let small = AbsBv {
            width: 8,
            ones: 0,
            zeros: 0,
            lo: 0,
            hi: 3,
        };
        let big = AbsBv {
            width: 8,
            ones: 0,
            zeros: 0,
            lo: 10,
            hi: 20,
        };
        assert_eq!(tf_cmp(CmpOp::Ult, &small, &big), Some(true));
        assert_eq!(tf_cmp(CmpOp::Ult, &big, &small), Some(false));
        assert_eq!(tf_eq_bv(&small, &big), Some(false));
    }
}
