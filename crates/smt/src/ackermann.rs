//! Ackermann reduction: eliminating uninterpreted functions.
//!
//! Each distinct application `f(args)` is replaced by a fresh variable,
//! and for every pair of applications of the same function a congruence
//! constraint `args1 = args2 => v1 = v2` is added. Constraints whose
//! antecedent simplifies to `false` (e.g. two applications at distinct
//! constant indices, the common case for finitely-instantiated kernel
//! maps) are dropped by the smart constructors for free.
//!
//! The instance table is kept so that a SAT model over the fresh variables
//! can be lifted back to a function interpretation (see [`crate::model`]).

use std::collections::HashMap;

use crate::bitblast::term_children;
use crate::term::{Ctx, FuncId, TermData, TermId};

/// One eliminated application: the rewritten argument terms and the fresh
/// variable standing for the result.
#[derive(Debug, Clone)]
pub struct AppInstance {
    /// Arguments after rewriting (UF-free).
    pub args: Vec<TermId>,
    /// The fresh variable replacing the application.
    pub var: TermId,
}

/// Result of the reduction.
#[derive(Debug, Default)]
pub struct Ackermann {
    /// Memoized rewriting of every visited term.
    rewritten: HashMap<TermId, TermId>,
    /// Fresh variable for each distinct (function, rewritten args) pair.
    app_vars: HashMap<(FuncId, Vec<TermId>), TermId>,
    /// All instances per function, for congruence and model lifting.
    pub instances: HashMap<FuncId, Vec<AppInstance>>,
    /// Congruence constraints accumulated so far.
    pub constraints: Vec<TermId>,
    /// Constraints already handed out by [`Ackermann::take_new_constraints`].
    drained: usize,
}

impl Ackermann {
    /// Creates an empty reduction state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Incremental drain: congruence constraints generated since the
    /// previous `take_new_constraints` call (initially, all of them).
    /// The reduction state stays usable and strictly grows, so one
    /// `Ackermann` can serve a whole incremental solver lifetime: new
    /// applications only ever *add* congruence constraints against the
    /// instances already seen.
    pub fn take_new_constraints(&mut self) -> Vec<TermId> {
        let new = self.constraints[self.drained..].to_vec();
        self.drained = self.constraints.len();
        new
    }

    /// Rewrites a term bottom-up, eliminating `Apply` nodes.
    pub fn rewrite(&mut self, ctx: &mut Ctx, root: TermId) -> TermId {
        let mut stack: Vec<(TermId, bool)> = vec![(root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if self.rewritten.contains_key(&t) {
                continue;
            }
            if !expanded {
                stack.push((t, true));
                for c in term_children(ctx, t) {
                    if !self.rewritten.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
                continue;
            }
            let new = self.rewrite_node(ctx, t);
            self.rewritten.insert(t, new);
        }
        self.rewritten[&root]
    }

    fn rewrite_node(&mut self, ctx: &mut Ctx, t: TermId) -> TermId {
        let r = |m: &HashMap<TermId, TermId>, id: &TermId| m[id];
        match ctx.data(t).clone() {
            TermData::True | TermData::False | TermData::BvConst { .. } | TermData::Var(_) => t,
            TermData::Not(a) => {
                let a = r(&self.rewritten, &a);
                ctx.not(a)
            }
            TermData::And(args) => {
                let args: Vec<TermId> = args.iter().map(|a| r(&self.rewritten, a)).collect();
                ctx.and(&args)
            }
            TermData::Or(args) => {
                let args: Vec<TermId> = args.iter().map(|a| r(&self.rewritten, a)).collect();
                ctx.or(&args)
            }
            TermData::Eq(a, b) => {
                let (a, b) = (r(&self.rewritten, &a), r(&self.rewritten, &b));
                ctx.eq(a, b)
            }
            TermData::Ite(c, a, b) => {
                let (c, a, b) = (
                    r(&self.rewritten, &c),
                    r(&self.rewritten, &a),
                    r(&self.rewritten, &b),
                );
                ctx.ite(c, a, b)
            }
            TermData::BvNot(a) => {
                let a = r(&self.rewritten, &a);
                ctx.bv_not(a)
            }
            TermData::BvBin(op, a, b) => {
                let (a, b) = (r(&self.rewritten, &a), r(&self.rewritten, &b));
                ctx.bv_bin(op, a, b)
            }
            TermData::Cmp(op, a, b) => {
                let (a, b) = (r(&self.rewritten, &a), r(&self.rewritten, &b));
                ctx.cmp(op, a, b)
            }
            TermData::ZExt(a, w) => {
                let a = r(&self.rewritten, &a);
                ctx.zext(a, w)
            }
            TermData::SExt(a, w) => {
                let a = r(&self.rewritten, &a);
                ctx.sext(a, w)
            }
            TermData::Extract(a, hi, lo) => {
                let a = r(&self.rewritten, &a);
                ctx.extract(a, hi, lo)
            }
            TermData::Concat(a, b) => {
                let (a, b) = (r(&self.rewritten, &a), r(&self.rewritten, &b));
                ctx.concat(a, b)
            }
            TermData::Apply(f, args) => {
                let args: Vec<TermId> = args.iter().map(|a| r(&self.rewritten, a)).collect();
                self.apply_var(ctx, f, args)
            }
        }
    }

    /// Variable standing for `f(args)`, creating it (and the congruence
    /// constraints against earlier instances) on first sight.
    fn apply_var(&mut self, ctx: &mut Ctx, f: FuncId, args: Vec<TermId>) -> TermId {
        if let Some(&v) = self.app_vars.get(&(f, args.clone())) {
            return v;
        }
        let decl = ctx.func_decl(f);
        let name = format!("{}!{}", decl.name, self.app_vars.len());
        let range = decl.range;
        let v = ctx.var(name, range);
        // Congruence with every earlier instance of the same function.
        let earlier = self.instances.entry(f).or_default().clone();
        for inst in &earlier {
            let mut antecedent = Vec::with_capacity(args.len());
            for (&a, &b) in args.iter().zip(inst.args.iter()) {
                antecedent.push(ctx.eq(a, b));
            }
            let ante = ctx.and(&antecedent);
            if ctx.const_bool(ante) == Some(false) {
                continue; // arguments provably distinct
            }
            let consequent = ctx.eq(v, inst.var);
            let c = ctx.implies(ante, consequent);
            if ctx.const_bool(c) != Some(true) {
                self.constraints.push(c);
            }
        }
        self.instances.entry(f).or_default().push(AppInstance {
            args: args.clone(),
            var: v,
        });
        self.app_vars.insert((f, args), v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn distinct_const_args_make_no_constraints() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let mut ack = Ackermann::new();
        let c0 = ctx.bv_const(64, 0);
        let c1 = ctx.bv_const(64, 1);
        let a0 = ctx.apply(f, &[c0]);
        let a1 = ctx.apply(f, &[c1]);
        let e = ctx.ne(a0, a1);
        ack.rewrite(&mut ctx, e);
        assert!(ack.constraints.is_empty());
        assert_eq!(ack.instances[&f].len(), 2);
    }

    #[test]
    fn same_args_shares_the_variable() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let mut ack = Ackermann::new();
        let a1 = ctx.apply(f, &[x]);
        let a2 = ctx.apply(f, &[x]);
        assert_eq!(a1, a2); // hash-consing already shares
        let e = ctx.eq(a1, a2);
        let rewritten = ack.rewrite(&mut ctx, e);
        assert_eq!(ctx.const_bool(rewritten), Some(true));
        assert!(ack.constraints.is_empty());
    }

    #[test]
    fn symbolic_args_make_congruence() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let c0 = ctx.bv_const(64, 0);
        let mut ack = Ackermann::new();
        let ax = ctx.apply(f, &[x]);
        let a0 = ctx.apply(f, &[c0]);
        let e = ctx.ne(ax, a0);
        ack.rewrite(&mut ctx, e);
        // One pair: (f(x), f(0)) with x possibly equal to 0.
        assert_eq!(ack.constraints.len(), 1);
    }

    #[test]
    fn take_new_constraints_drains_incrementally() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let y = ctx.var("y", Sort::Bv(64));
        let mut ack = Ackermann::new();
        let ax = ctx.apply(f, &[x]);
        let ay = ctx.apply(f, &[y]);
        let e1 = ctx.ne(ax, ay);
        ack.rewrite(&mut ctx, e1);
        let first = ack.take_new_constraints();
        assert_eq!(first.len(), 1); // f(x) ~ f(y)
        assert!(ack.take_new_constraints().is_empty());
        // A third application congruence-pairs with both earlier ones.
        let z = ctx.var("z", Sort::Bv(64));
        let az = ctx.apply(f, &[z]);
        let e2 = ctx.ne(az, ax);
        ack.rewrite(&mut ctx, e2);
        let second = ack.take_new_constraints();
        assert_eq!(second.len(), 2);
        assert_eq!(ack.constraints.len(), 3);
    }

    #[test]
    fn nested_applications_rewrite() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let inner = ctx.apply(f, &[x]);
        let outer = ctx.apply(f, &[inner]);
        let e = ctx.eq(outer, x);
        let mut ack = Ackermann::new();
        let rewritten = ack.rewrite(&mut ctx, e);
        // No Apply nodes should remain in the rewritten term.
        fn has_apply(ctx: &Ctx, t: TermId) -> bool {
            if matches!(ctx.data(t), TermData::Apply(..)) {
                return true;
            }
            term_children(ctx, t).iter().any(|&c| has_apply(ctx, c))
        }
        assert!(!has_apply(&ctx, rewritten));
        assert_eq!(ack.instances[&f].len(), 2);
    }
}
