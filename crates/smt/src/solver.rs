//! The solver front door: Ackermannize, bit-blast, SAT-solve, lift the
//! model, and validate it against the original assertions.
//!
//! Every `Sat` answer is re-checked with the ground evaluator before being
//! returned, so a bug anywhere in the pipeline surfaces as a loud failure
//! rather than a bogus counterexample.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::ackermann::Ackermann;
use crate::bitblast::BitBlaster;
use crate::cache::{self, CachedVerdict, QueryCache};
use crate::eval::{eval_bool, Value};
use crate::model::Model;
use crate::sat::{SatConfig, SatOutcome, SatSolver};
use crate::term::{Ctx, Sort, TermId};

/// Solver configuration; wraps the SAT heuristics.
#[derive(Debug, Clone, Default)]
pub struct SolverConfig {
    /// Heuristics of the CDCL core.
    pub sat: SatConfig,
    /// Skip the model-validation pass (only for benchmarking the raw
    /// pipeline; never in the verifier).
    pub skip_validation: bool,
    /// Content-addressed verdict cache shared across solver instances
    /// (and worker threads). `None` disables caching.
    pub cache: Option<Arc<QueryCache>>,
}

/// Result of a `check` call.
#[derive(Debug)]
pub enum SatResult {
    /// The assertions are unsatisfiable.
    Unsat,
    /// A validated model of the assertions.
    Sat(Box<Model>),
    /// The conflict budget was exhausted.
    Unknown,
}

impl SatResult {
    /// True if the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// True if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Pipeline statistics from the last `check` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Assertions checked.
    pub assertions: usize,
    /// Congruence constraints added by Ackermann reduction.
    pub ackermann_constraints: usize,
    /// CNF variables.
    pub cnf_vars: u32,
    /// CNF clauses.
    pub cnf_clauses: usize,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// SAT propagations.
    pub propagations: u64,
    /// Time spent encoding (Ackermann + bit-blasting).
    pub encode_time: Duration,
    /// Time spent in Ackermann reduction alone.
    pub ack_time: Duration,
    /// Time spent bit-blasting to CNF alone.
    pub bitblast_time: Duration,
    /// Time spent in the SAT core.
    pub solve_time: Duration,
    /// Query-cache hits in the last `check` (0 or 1).
    pub cache_hits: u64,
    /// Query-cache misses in the last `check` (0 or 1).
    pub cache_misses: u64,
}

/// An SMT solver instance holding a set of assertions.
#[derive(Debug, Default)]
pub struct Solver {
    config: SolverConfig,
    assertions: Vec<TermId>,
    trivially_false: bool,
    /// Statistics from the most recent `check`.
    pub stats: SolverStats,
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            ..Self::default()
        }
    }

    /// Adds an assertion.
    pub fn assert(&mut self, ctx: &mut Ctx, t: TermId) {
        assert_eq!(ctx.sort(t), Sort::Bool, "assertion must be boolean");
        match ctx.const_bool(t) {
            Some(true) => {}
            Some(false) => self.trivially_false = true,
            None => self.assertions.push(t),
        }
    }

    /// The current assertions.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Decides satisfiability of the conjunction of all assertions.
    pub fn check(&mut self, ctx: &mut Ctx) -> SatResult {
        self.stats.cache_hits = 0;
        self.stats.cache_misses = 0;
        if self.trivially_false {
            return SatResult::Unsat;
        }
        if self.assertions.is_empty() {
            return SatResult::Sat(Box::default());
        }
        // 0. Query cache: key the full VC by its canonical content hash.
        let fp = self
            .config
            .cache
            .as_ref()
            .map(|_| cache::fingerprint(ctx, &self.assertions));
        if let (Some(c), Some(fp)) = (self.config.cache.clone(), fp.as_ref()) {
            match c.lookup(&fp.key) {
                Some(CachedVerdict::Unsat) => {
                    self.stats.cache_hits = 1;
                    return SatResult::Unsat;
                }
                Some(CachedVerdict::Sat(cm)) => {
                    // Rehydrate into this context and re-validate before
                    // trusting the entry: a collision or stale snapshot
                    // must never produce a bogus counterexample.
                    let model = cache::rehydrate(fp, &cm).filter(|m| {
                        self.assertions
                            .iter()
                            .all(|&t| eval_bool(ctx, t, &m.assignment))
                    });
                    match model {
                        Some(m) => {
                            self.stats.cache_hits = 1;
                            return SatResult::Sat(Box::new(m));
                        }
                        None => {
                            c.invalidate(&fp.key);
                            self.stats.cache_misses = 1;
                        }
                    }
                }
                None => self.stats.cache_misses = 1,
            }
        }
        let store = |verdict: CachedVerdict, stats_cache: &Option<Arc<QueryCache>>| {
            if let (Some(c), Some(fp)) = (stats_cache.as_ref(), fp.as_ref()) {
                c.insert(fp.key, verdict);
            }
        };
        let encode_start = Instant::now();
        // 1. Ackermann reduction.
        let mut ack = Ackermann::new();
        let rewritten: Vec<TermId> = self
            .assertions
            .clone()
            .into_iter()
            .map(|t| ack.rewrite(ctx, t))
            .collect();
        let constraints = ack.constraints.clone();
        self.stats.ackermann_constraints = constraints.len();
        self.stats.assertions = self.assertions.len();
        self.stats.ack_time = encode_start.elapsed();
        // 2. Bit-blast.
        let mut bb = BitBlaster::new();
        let mut trivially_false = false;
        for &t in rewritten.iter().chain(constraints.iter()) {
            if ctx.const_bool(t) == Some(false) {
                trivially_false = true;
                break;
            }
            if ctx.const_bool(t) == Some(true) {
                continue;
            }
            bb.assert_term(ctx, t);
        }
        if trivially_false {
            store(CachedVerdict::Unsat, &self.config.cache);
            return SatResult::Unsat;
        }
        let var_bv = bb.var_bv.clone();
        let var_bool = bb.var_bool.clone();
        let (num_vars, clauses) = bb.builder.finish();
        self.stats.cnf_vars = num_vars;
        self.stats.cnf_clauses = clauses.len();
        self.stats.encode_time = encode_start.elapsed();
        self.stats.bitblast_time = self.stats.encode_time.saturating_sub(self.stats.ack_time);
        if std::env::var("HK_SMT_TRACE").is_ok() {
            eprintln!(
                "[smt] encoded: {} vars, {} clauses, {} assertions, {} congruence ({:.1}s)",
                num_vars,
                clauses.len(),
                self.stats.assertions,
                self.stats.ackermann_constraints,
                self.stats.encode_time.as_secs_f64()
            );
        }
        // 3. SAT.
        let solve_start = Instant::now();
        let mut sat = SatSolver::with_config(self.config.sat.clone());
        sat.reserve_vars(num_vars);
        let mut ok = true;
        for c in &clauses {
            if !sat.add_clause(c) {
                ok = false;
                break;
            }
        }
        let outcome = if ok { sat.solve() } else { SatOutcome::Unsat };
        self.stats.solve_time = solve_start.elapsed();
        self.stats.conflicts = sat.stats.conflicts;
        self.stats.decisions = sat.stats.decisions;
        self.stats.propagations = sat.stats.propagations;
        match outcome {
            SatOutcome::Unsat => {
                store(CachedVerdict::Unsat, &self.config.cache);
                SatResult::Unsat
            }
            SatOutcome::Unknown => SatResult::Unknown,
            SatOutcome::Sat => {
                // 4. Lift the model.
                let mut model = Model::default();
                let lit_val = |l: crate::cnf::Lit| -> bool {
                    if l > 0 {
                        sat.model_value(l as u32)
                    } else {
                        !sat.model_value((-l) as u32)
                    }
                };
                for (v, bits) in &var_bv {
                    let mut val = 0u64;
                    for (i, &l) in bits.iter().enumerate() {
                        if lit_val(l) {
                            val |= 1 << i;
                        }
                    }
                    model.assignment.set_var(*v, Value::Bv(val));
                }
                for (v, &l) in &var_bool {
                    model.assignment.set_var(*v, Value::Bool(lit_val(l)));
                }
                // 5. Lift UF interpretations through the instance table.
                for (f, instances) in &ack.instances {
                    for inst in instances {
                        let args: Vec<u64> = inst
                            .args
                            .iter()
                            .map(|&a| match model.eval(ctx, a) {
                                Value::Bv(v) => v,
                                Value::Bool(b) => b as u64,
                            })
                            .collect();
                        let val = match model.eval(ctx, inst.var) {
                            Value::Bv(v) => v,
                            Value::Bool(b) => b as u64,
                        };
                        model.assignment.func_mut(*f).set(args, val);
                    }
                }
                // 6. Validate against the original assertions.
                if !self.config.skip_validation {
                    for &t in &self.assertions {
                        assert!(
                            eval_bool(ctx, t, &model.assignment),
                            "model validation failed for assertion: {}",
                            ctx.display(t)
                        );
                    }
                }
                if let Some(fp) = fp.as_ref() {
                    store(
                        CachedVerdict::Sat(cache::dehydrate(fp, &model)),
                        &self.config.cache,
                    );
                }
                SatResult::Sat(Box::new(model))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_with_model() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(32));
        let y = ctx.var("y", Sort::Bv(32));
        let sum = ctx.bv_add(x, y);
        let c100 = ctx.bv_const(32, 100);
        let c10 = ctx.bv_const(32, 10);
        let e1 = ctx.eq(sum, c100);
        let e2 = ctx.eq(x, c10);
        let mut s = Solver::new();
        s.assert(&mut ctx, e1);
        s.assert(&mut ctx, e2);
        match s.check(&mut ctx) {
            SatResult::Sat(m) => {
                assert_eq!(m.eval_bv(&ctx, x), Some(10));
                assert_eq!(m.eval_bv(&ctx, y), Some(90));
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn unsat_bv_facts() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        // x < 5 && x > 10 is unsat.
        let c5 = ctx.bv_const(16, 5);
        let c10 = ctx.bv_const(16, 10);
        let lt = ctx.ult(x, c5);
        let gt = ctx.ult(c10, x);
        let mut s = Solver::new();
        s.assert(&mut ctx, lt);
        s.assert(&mut ctx, gt);
        assert!(s.check(&mut ctx).is_unsat());
    }

    #[test]
    fn uf_congruence_unsat() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let y = ctx.var("y", Sort::Bv(64));
        // x == y && f(x) != f(y) is unsat.
        let e = ctx.eq(x, y);
        let fx = ctx.apply(f, &[x]);
        let fy = ctx.apply(f, &[y]);
        let ne = ctx.ne(fx, fy);
        let mut s = Solver::new();
        s.assert(&mut ctx, e);
        s.assert(&mut ctx, ne);
        assert!(s.check(&mut ctx).is_unsat());
    }

    #[test]
    fn uf_model_lifting() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let c1 = ctx.bv_const(64, 1);
        let c2 = ctx.bv_const(64, 2);
        let f1 = ctx.apply(f, &[c1]);
        let f2 = ctx.apply(f, &[c2]);
        let c10 = ctx.bv_const(64, 10);
        let c20 = ctx.bv_const(64, 20);
        let e1 = ctx.eq(f1, c10);
        let e2 = ctx.eq(f2, c20);
        let mut s = Solver::new();
        s.assert(&mut ctx, e1);
        s.assert(&mut ctx, e2);
        match s.check(&mut ctx) {
            SatResult::Sat(m) => {
                let fi = m.func_interp(f).expect("f interpreted");
                assert_eq!(fi.get(&[1]), 10);
                assert_eq!(fi.get(&[2]), 20);
                // Re-evaluating the applications agrees.
                assert_eq!(m.eval_bv(&ctx, f1), Some(10));
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn empty_is_sat() {
        let mut ctx = Ctx::new();
        let mut s = Solver::new();
        assert!(s.check(&mut ctx).is_sat());
    }

    #[test]
    fn trivially_false_assertion() {
        let mut ctx = Ctx::new();
        let f = ctx.fls();
        let mut s = Solver::new();
        s.assert(&mut ctx, f);
        assert!(s.check(&mut ctx).is_unsat());
    }

    fn cached_config(cache: &Arc<QueryCache>) -> SolverConfig {
        SolverConfig {
            cache: Some(cache.clone()),
            ..SolverConfig::default()
        }
    }

    /// Builds `x < 5 && 10 < x` (unsat) in any context.
    fn unsat_vc(ctx: &mut Ctx) -> Vec<TermId> {
        let x = ctx.var("x", Sort::Bv(16));
        let c5 = ctx.bv_const(16, 5);
        let c10 = ctx.bv_const(16, 10);
        vec![ctx.ult(x, c5), ctx.ult(c10, x)]
    }

    #[test]
    fn cache_hits_unsat_across_contexts() {
        let cache = Arc::new(QueryCache::new(64));
        let mut ctx1 = Ctx::new();
        let mut s1 = Solver::with_config(cached_config(&cache));
        for t in unsat_vc(&mut ctx1) {
            s1.assert(&mut ctx1, t);
        }
        assert!(s1.check(&mut ctx1).is_unsat());
        assert_eq!(s1.stats.cache_misses, 1);
        assert_eq!(s1.stats.cache_hits, 0);
        // Same VC, brand-new context: must hit without solving.
        let mut ctx2 = Ctx::new();
        let mut s2 = Solver::with_config(cached_config(&cache));
        for t in unsat_vc(&mut ctx2) {
            s2.assert(&mut ctx2, t);
        }
        assert!(s2.check(&mut ctx2).is_unsat());
        assert_eq!(s2.stats.cache_hits, 1);
        assert_eq!(s2.stats.cache_misses, 0);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cache_hits_sat_with_valid_model() {
        let cache = Arc::new(QueryCache::new(64));
        let build = |ctx: &mut Ctx| {
            let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
            let x = ctx.var("x", Sort::Bv(64));
            let fx = ctx.apply(f, &[x]);
            let c7 = ctx.bv_const(64, 7);
            let c3 = ctx.bv_const(64, 3);
            let e1 = ctx.eq(fx, c7);
            let e2 = ctx.eq(x, c3);
            (vec![e1, e2], x, fx)
        };
        let mut ctx1 = Ctx::new();
        let (vc1, _, _) = build(&mut ctx1);
        let mut s1 = Solver::with_config(cached_config(&cache));
        for t in vc1 {
            s1.assert(&mut ctx1, t);
        }
        assert!(s1.check(&mut ctx1).is_sat());
        // Fresh context: the rehydrated model must satisfy the VC.
        let mut ctx2 = Ctx::new();
        let (vc2, x2, fx2) = build(&mut ctx2);
        let mut s2 = Solver::with_config(cached_config(&cache));
        for t in vc2 {
            s2.assert(&mut ctx2, t);
        }
        match s2.check(&mut ctx2) {
            SatResult::Sat(m) => {
                assert_eq!(m.eval_bv(&ctx2, x2), Some(3));
                assert_eq!(m.eval_bv(&ctx2, fx2), Some(7));
            }
            r => panic!("expected sat, got {r:?}"),
        }
        assert_eq!(s2.stats.cache_hits, 1);
    }

    #[test]
    fn cache_does_not_cross_different_vcs() {
        let cache = Arc::new(QueryCache::new(64));
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let c5 = ctx.bv_const(16, 5);
        let c10 = ctx.bv_const(16, 10);
        let lt = ctx.ult(x, c5);
        let gt = ctx.ult(c10, x);
        let mut s1 = Solver::with_config(cached_config(&cache));
        s1.assert(&mut ctx, lt);
        s1.assert(&mut ctx, gt);
        assert!(s1.check(&mut ctx).is_unsat());
        // The one-sided query is satisfiable and must not be served the
        // cached Unsat of the conjunction.
        let mut s2 = Solver::with_config(cached_config(&cache));
        s2.assert(&mut ctx, lt);
        assert!(s2.check(&mut ctx).is_sat());
        assert_eq!(s2.stats.cache_hits, 0);
    }
}
