//! The solver front door: Ackermannize, bit-blast, SAT-solve, lift the
//! model, and validate it against the original assertions.
//!
//! Every `Sat` answer is re-checked with the ground evaluator before being
//! returned, so a bug anywhere in the pipeline surfaces as a loud failure
//! rather than a bogus counterexample.

use std::time::{Duration, Instant};

use crate::ackermann::Ackermann;
use crate::bitblast::BitBlaster;
use crate::eval::{eval_bool, Value};
use crate::model::Model;
use crate::sat::{SatConfig, SatOutcome, SatSolver};
use crate::term::{Ctx, Sort, TermId};

/// Solver configuration; wraps the SAT heuristics.
#[derive(Debug, Clone, Default)]
pub struct SolverConfig {
    /// Heuristics of the CDCL core.
    pub sat: SatConfig,
    /// Skip the model-validation pass (only for benchmarking the raw
    /// pipeline; never in the verifier).
    pub skip_validation: bool,
}

/// Result of a `check` call.
#[derive(Debug)]
pub enum SatResult {
    /// The assertions are unsatisfiable.
    Unsat,
    /// A validated model of the assertions.
    Sat(Box<Model>),
    /// The conflict budget was exhausted.
    Unknown,
}

impl SatResult {
    /// True if the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// True if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Pipeline statistics from the last `check` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Assertions checked.
    pub assertions: usize,
    /// Congruence constraints added by Ackermann reduction.
    pub ackermann_constraints: usize,
    /// CNF variables.
    pub cnf_vars: u32,
    /// CNF clauses.
    pub cnf_clauses: usize,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// SAT propagations.
    pub propagations: u64,
    /// Time spent encoding (Ackermann + bit-blasting).
    pub encode_time: Duration,
    /// Time spent in the SAT core.
    pub solve_time: Duration,
}

/// An SMT solver instance holding a set of assertions.
#[derive(Debug, Default)]
pub struct Solver {
    config: SolverConfig,
    assertions: Vec<TermId>,
    trivially_false: bool,
    /// Statistics from the most recent `check`.
    pub stats: SolverStats,
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            ..Self::default()
        }
    }

    /// Adds an assertion.
    pub fn assert(&mut self, ctx: &mut Ctx, t: TermId) {
        assert_eq!(ctx.sort(t), Sort::Bool, "assertion must be boolean");
        match ctx.const_bool(t) {
            Some(true) => {}
            Some(false) => self.trivially_false = true,
            None => self.assertions.push(t),
        }
    }

    /// The current assertions.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Decides satisfiability of the conjunction of all assertions.
    pub fn check(&mut self, ctx: &mut Ctx) -> SatResult {
        if self.trivially_false {
            return SatResult::Unsat;
        }
        if self.assertions.is_empty() {
            return SatResult::Sat(Box::new(Model::default()));
        }
        let encode_start = Instant::now();
        // 1. Ackermann reduction.
        let mut ack = Ackermann::new();
        let rewritten: Vec<TermId> = self
            .assertions
            .clone()
            .into_iter()
            .map(|t| ack.rewrite(ctx, t))
            .collect();
        let constraints = ack.constraints.clone();
        self.stats.ackermann_constraints = constraints.len();
        self.stats.assertions = self.assertions.len();
        // 2. Bit-blast.
        let mut bb = BitBlaster::new();
        let mut trivially_false = false;
        for &t in rewritten.iter().chain(constraints.iter()) {
            if ctx.const_bool(t) == Some(false) {
                trivially_false = true;
                break;
            }
            if ctx.const_bool(t) == Some(true) {
                continue;
            }
            bb.assert_term(ctx, t);
        }
        if trivially_false {
            return SatResult::Unsat;
        }
        let var_bv = bb.var_bv.clone();
        let var_bool = bb.var_bool.clone();
        let (num_vars, clauses) = bb.builder.finish();
        self.stats.cnf_vars = num_vars;
        self.stats.cnf_clauses = clauses.len();
        self.stats.encode_time = encode_start.elapsed();
        if std::env::var("HK_SMT_TRACE").is_ok() {
            eprintln!(
                "[smt] encoded: {} vars, {} clauses, {} assertions, {} congruence ({:.1}s)",
                num_vars,
                clauses.len(),
                self.stats.assertions,
                self.stats.ackermann_constraints,
                self.stats.encode_time.as_secs_f64()
            );
        }
        // 3. SAT.
        let solve_start = Instant::now();
        let mut sat = SatSolver::with_config(self.config.sat.clone());
        sat.reserve_vars(num_vars);
        let mut ok = true;
        for c in &clauses {
            if !sat.add_clause(c) {
                ok = false;
                break;
            }
        }
        let outcome = if ok { sat.solve() } else { SatOutcome::Unsat };
        self.stats.solve_time = solve_start.elapsed();
        self.stats.conflicts = sat.stats.conflicts;
        self.stats.decisions = sat.stats.decisions;
        self.stats.propagations = sat.stats.propagations;
        match outcome {
            SatOutcome::Unsat => SatResult::Unsat,
            SatOutcome::Unknown => SatResult::Unknown,
            SatOutcome::Sat => {
                // 4. Lift the model.
                let mut model = Model::default();
                let lit_val = |l: crate::cnf::Lit| -> bool {
                    if l > 0 {
                        sat.model_value(l as u32)
                    } else {
                        !sat.model_value((-l) as u32)
                    }
                };
                for (v, bits) in &var_bv {
                    let mut val = 0u64;
                    for (i, &l) in bits.iter().enumerate() {
                        if lit_val(l) {
                            val |= 1 << i;
                        }
                    }
                    model.assignment.set_var(*v, Value::Bv(val));
                }
                for (v, &l) in &var_bool {
                    model.assignment.set_var(*v, Value::Bool(lit_val(l)));
                }
                // 5. Lift UF interpretations through the instance table.
                for (f, instances) in &ack.instances {
                    for inst in instances {
                        let args: Vec<u64> = inst
                            .args
                            .iter()
                            .map(|&a| match model.eval(ctx, a) {
                                Value::Bv(v) => v,
                                Value::Bool(b) => b as u64,
                            })
                            .collect();
                        let val = match model.eval(ctx, inst.var) {
                            Value::Bv(v) => v,
                            Value::Bool(b) => b as u64,
                        };
                        model.assignment.func_mut(*f).set(args, val);
                    }
                }
                // 6. Validate against the original assertions.
                if !self.config.skip_validation {
                    for &t in &self.assertions {
                        assert!(
                            eval_bool(ctx, t, &model.assignment),
                            "model validation failed for assertion: {}",
                            ctx.display(t)
                        );
                    }
                }
                SatResult::Sat(Box::new(model))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_with_model() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(32));
        let y = ctx.var("y", Sort::Bv(32));
        let sum = ctx.bv_add(x, y);
        let c100 = ctx.bv_const(32, 100);
        let c10 = ctx.bv_const(32, 10);
        let e1 = ctx.eq(sum, c100);
        let e2 = ctx.eq(x, c10);
        let mut s = Solver::new();
        s.assert(&mut ctx, e1);
        s.assert(&mut ctx, e2);
        match s.check(&mut ctx) {
            SatResult::Sat(m) => {
                assert_eq!(m.eval_bv(&ctx, x), Some(10));
                assert_eq!(m.eval_bv(&ctx, y), Some(90));
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn unsat_bv_facts() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        // x < 5 && x > 10 is unsat.
        let c5 = ctx.bv_const(16, 5);
        let c10 = ctx.bv_const(16, 10);
        let lt = ctx.ult(x, c5);
        let gt = ctx.ult(c10, x);
        let mut s = Solver::new();
        s.assert(&mut ctx, lt);
        s.assert(&mut ctx, gt);
        assert!(s.check(&mut ctx).is_unsat());
    }

    #[test]
    fn uf_congruence_unsat() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let y = ctx.var("y", Sort::Bv(64));
        // x == y && f(x) != f(y) is unsat.
        let e = ctx.eq(x, y);
        let fx = ctx.apply(f, &[x]);
        let fy = ctx.apply(f, &[y]);
        let ne = ctx.ne(fx, fy);
        let mut s = Solver::new();
        s.assert(&mut ctx, e);
        s.assert(&mut ctx, ne);
        assert!(s.check(&mut ctx).is_unsat());
    }

    #[test]
    fn uf_model_lifting() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let c1 = ctx.bv_const(64, 1);
        let c2 = ctx.bv_const(64, 2);
        let f1 = ctx.apply(f, &[c1]);
        let f2 = ctx.apply(f, &[c2]);
        let c10 = ctx.bv_const(64, 10);
        let c20 = ctx.bv_const(64, 20);
        let e1 = ctx.eq(f1, c10);
        let e2 = ctx.eq(f2, c20);
        let mut s = Solver::new();
        s.assert(&mut ctx, e1);
        s.assert(&mut ctx, e2);
        match s.check(&mut ctx) {
            SatResult::Sat(m) => {
                let fi = m.func_interp(f).expect("f interpreted");
                assert_eq!(fi.get(&[1]), 10);
                assert_eq!(fi.get(&[2]), 20);
                // Re-evaluating the applications agrees.
                assert_eq!(m.eval_bv(&ctx, f1), Some(10));
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn empty_is_sat() {
        let mut ctx = Ctx::new();
        let mut s = Solver::new();
        assert!(s.check(&mut ctx).is_sat());
    }

    #[test]
    fn trivially_false_assertion() {
        let mut ctx = Ctx::new();
        let f = ctx.fls();
        let mut s = Solver::new();
        s.assert(&mut ctx, f);
        assert!(s.check(&mut ctx).is_unsat());
    }
}
