//! The solver front door: Ackermannize, bit-blast, SAT-solve, lift the
//! model, and validate it against the original assertions.
//!
//! Every `Sat` answer is re-checked with the ground evaluator before being
//! returned, so a bug anywhere in the pipeline surfaces as a loud failure
//! rather than a bogus counterexample.
//!
//! # Incremental solving
//!
//! By default ([`SolverConfig::incremental`]) a `Solver` keeps **one**
//! persistent encoding pipeline for its whole lifetime: the Ackermann
//! reduction, the bit-blaster's term→literal cache, and the CDCL core
//! (with its learnt clauses, VSIDS activities, and saved phases) all
//! survive across [`Solver::check`] calls. Assertions made between checks
//! are encoded once, monotonically. Retractable assertions go through
//! scopes: [`Solver::push`] opens a scope whose assertions are guarded by
//! a fresh activation literal `a` (each encoded as the clause `¬a ∨ t`),
//! `check` solves under the assumption set of all open scopes' activation
//! literals, and [`Solver::pop`] retires the scope with the single unit
//! clause `¬a`. Learnt clauses derived while one scope was active remain
//! valid for every later query, which is what lets refinement batch *i*
//! prune batch *i+1*.
//!
//! With `incremental` disabled the solver re-runs the full pipeline on
//! the active assertion set at every `check` — the fresh-solver baseline
//! the benchmarks compare against.
//!
//! Either way, each `check` first consults the content-addressed
//! [`QueryCache`] (when configured) keyed by the *active* assertions, so
//! warm reruns short-circuit before any encoding happens.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::ackermann::{Ackermann, AppInstance};
use crate::analysis::{self, DeltaGroup, SimplifyOutcome};
use crate::bitblast::BitBlaster;
use crate::cache::{self, CachedVerdict, QueryCache};
use crate::cnf::Lit;
use crate::eval::{eval_bool, Value};
use crate::model::Model;
use crate::parallel::{self, ParallelConfig, RaceReport, STRATEGY_NAMES};
use crate::sat::{SatConfig, SatOutcome, SatSolver, SatStats};
use crate::term::{Ctx, FuncId, Sort, TermId, VarId};

/// Solver configuration; wraps the SAT heuristics.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Heuristics of the CDCL core.
    pub sat: SatConfig,
    /// Skip the model-validation pass (only for benchmarking the raw
    /// pipeline; never in the verifier).
    pub skip_validation: bool,
    /// Content-addressed verdict cache shared across solver instances
    /// (and worker threads). `None` disables caching.
    pub cache: Option<Arc<QueryCache>>,
    /// Keep one persistent encoding + SAT core across `check` calls
    /// (assumption-based scopes, learnt-clause reuse). Disable to get
    /// the fresh-pipeline-per-check baseline.
    pub incremental: bool,
    /// Garbage-collect the SAT core on every `pop`: after the scope's
    /// activation literal is retired, clauses guarded by it are satisfied
    /// at the root and reclaimed, so dead scopes never slow later
    /// queries. Only meaningful in incremental mode.
    pub scope_gc: bool,
    /// On an `Unknown` caused by the conflict budget, retry the query
    /// once with a 4x budget before reporting `Unknown`.
    pub escalate_unknown: bool,
    /// Log a binary-DRAT proof stream in the CDCL core (implied by
    /// `certify`). On its own this only pays the logging cost and fills
    /// the `proof_steps`/`proof_bytes` stats.
    pub proof_log: bool,
    /// Re-check every `Unsat` answer with the independent proof checker
    /// in `hk-proof` before returning it. A rejected proof panics, the
    /// same way a bogus model fails validation on the `Sat` side. Certify
    /// bypasses the query cache: a cached verdict has no proof to check.
    pub certify: bool,
    /// Intra-query parallelism: portfolio racing, learnt-clause sharing
    /// and cube-and-conquer for queries that outlast the probe
    /// threshold. Inert unless a shared [`crate::parallel::CoreBudget`]
    /// is installed (the driver does this when it has spare threads).
    pub parallel: ParallelConfig,
    /// Word-level static analysis before bit-blasting: known-bits +
    /// interval abstract interpretation, fact-directed rewriting, and
    /// (oneshot only) cone-of-influence reduction. Can return
    /// [`SatResult::StaticallyDischarged`] when the abstraction alone
    /// proves Unsat; under `certify` such queries are re-run through the
    /// SAT path so every shipped Unsat stays DRAT-certified.
    pub simplify: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            sat: SatConfig::default(),
            skip_validation: false,
            cache: None,
            incremental: true,
            scope_gc: true,
            escalate_unknown: true,
            proof_log: false,
            certify: false,
            parallel: ParallelConfig::default(),
            simplify: false,
        }
    }
}

/// Result of a `check` call.
#[derive(Debug)]
pub enum SatResult {
    /// The assertions are unsatisfiable.
    Unsat,
    /// A validated model of the assertions.
    Sat(Box<Model>),
    /// The conflict budget was exhausted.
    Unknown,
    /// Unsatisfiable, proven by the word-level static analysis alone —
    /// no SAT search ran ([`SolverConfig::simplify`]). Never returned
    /// under `certify`: certified runs re-derive the verdict through
    /// the SAT path so a DRAT proof exists.
    StaticallyDischarged,
}

impl SatResult {
    /// True if the result is `Unsat` (including a static discharge,
    /// which is an Unsat answer with an abstract-domain argument in
    /// place of a SAT refutation).
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat | SatResult::StaticallyDischarged)
    }

    /// True if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Pipeline statistics for one `check` call (a per-call **delta**: every
/// field counts only work done by that call, so accumulating them over a
/// long-lived incremental solver never double-counts; lifetime sums live
/// in [`SolverTotals`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Active assertions at the time of the call.
    pub assertions: usize,
    /// Congruence constraints added by Ackermann reduction in this call.
    pub ackermann_constraints: usize,
    /// CNF variables known after this call.
    pub cnf_vars: u32,
    /// CNF clauses encoded by this call (in incremental mode, only the
    /// newly added delta).
    pub cnf_clauses: usize,
    /// SAT conflicts during this call.
    pub conflicts: u64,
    /// SAT decisions during this call.
    pub decisions: u64,
    /// Literals propagated during this call.
    pub propagations: u64,
    /// SAT restarts during this call.
    pub restarts: u64,
    /// Learnt-database reductions during this call.
    pub db_reductions: u64,
    /// Learnt clauses deleted by reductions during this call.
    pub learnts_removed: u64,
    /// Clauses reclaimed by root-level GC attributed to this call
    /// (includes scope-pop GC run since the previous call).
    pub scope_gc_clauses: u64,
    /// Unit facts learnt by failed-literal probing.
    pub probe_units: u64,
    /// Clauses removed by inprocessing subsumption.
    pub subsumed: u64,
    /// Clauses strengthened by self-subsuming resolution.
    pub strengthened: u64,
    /// Budget escalations (0 or 1: one retry with 4x conflicts).
    pub escalations: u64,
    /// Portfolio races run by this call (0 unless the query outlasted
    /// the probe threshold with spare cores available; escalation can
    /// race the retry too, so 2 is possible).
    pub races: u64,
    /// Workers across this call's races (including the caller's core).
    pub race_workers: u64,
    /// Race wins per strategy, indexed like
    /// [`crate::parallel::STRATEGY_NAMES`].
    pub race_wins: [u64; STRATEGY_NAMES.len()],
    /// Learnt clauses exported to the exchange during this call's races.
    pub clauses_exported: u64,
    /// Learnt clauses imported from the exchange during this call's races.
    pub clauses_imported: u64,
    /// Cube jobs generated by cube-and-conquer teams in this call.
    pub cubes_total: u64,
    /// Cube jobs that reached a verdict.
    pub cubes_solved: u64,
    /// Time spent encoding (Ackermann + bit-blasting) in this call.
    pub encode_time: Duration,
    /// Time spent in Ackermann reduction alone.
    pub ack_time: Duration,
    /// Time spent bit-blasting to CNF alone.
    pub bitblast_time: Duration,
    /// Time spent in the SAT core.
    pub solve_time: Duration,
    /// Query-cache hits in this call (0 or 1: one logical query).
    pub cache_hits: u64,
    /// Query-cache misses in this call (0 or 1).
    pub cache_misses: u64,
    /// Unsat answers in this call (0 or 1).
    pub unsat_queries: u64,
    /// Unsat answers certified by the independent checker (0 or 1; a
    /// trivially-false assertion set counts as vacuously certified).
    pub certified_unsat: u64,
    /// Proof steps emitted by this call (with proof logging on).
    pub proof_steps: u64,
    /// Proof bytes emitted by this call.
    pub proof_bytes: u64,
    /// Proof-checker runs in this call (0 or 1).
    pub proofs_checked: u64,
    /// Lemmas the checker saw in this call's check run.
    pub proof_lemmas: u64,
    /// Lemmas on the trimmed core of this call's check run.
    pub proof_core_steps: u64,
    /// Time spent in the independent proof checker.
    pub proof_check_time: Duration,
    /// Time spent in the word-level static analysis pass.
    pub simplify_time: Duration,
    /// Terms visited by the abstract analyses in this call.
    pub simplify_terms: u64,
    /// Term rewrites applied by the simplifier in this call.
    pub simplify_rewrites: u64,
    /// Bit-vector bits pinned to constants by the abstraction.
    pub simplify_bits_pinned: u64,
    /// Conjuncts entering the simplifier (after `And` flattening).
    pub simplify_conjuncts_before: u64,
    /// Conjuncts surviving rewriting and reduction.
    pub simplify_conjuncts_after: u64,
    /// Conjuncts dropped by cone-of-influence reduction.
    pub simplify_coi_dropped: u64,
    /// The abstraction alone proved this call's query Unsat (0 or 1;
    /// set even under `certify`, where the SAT path re-derives it).
    pub statically_discharged: u64,
}

/// Lifetime totals over every `check` on one solver, the cumulative
/// counterpart of the per-call [`SolverStats`] delta.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverTotals {
    /// `check` calls made.
    pub checks: u64,
    /// Query-cache hits.
    pub cache_hits: u64,
    /// Query-cache misses.
    pub cache_misses: u64,
    /// High-water mark of CNF variables.
    pub cnf_vars: u32,
    /// CNF clauses ever handed to a SAT core (re-encodes included, so
    /// the oneshot/incremental difference is visible here).
    pub cnf_clauses: usize,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// SAT restarts.
    pub restarts: u64,
    /// Learnt-database reductions.
    pub db_reductions: u64,
    /// Learnt clauses deleted by reductions.
    pub learnts_removed: u64,
    /// Clauses reclaimed by root-level GC (scope pops included).
    pub scope_gc_clauses: u64,
    /// Unit facts learnt by failed-literal probing.
    pub probe_units: u64,
    /// Clauses removed by inprocessing subsumption.
    pub subsumed: u64,
    /// Clauses strengthened by self-subsuming resolution.
    pub strengthened: u64,
    /// Conflict-budget escalations.
    pub escalations: u64,
    /// Portfolio races run.
    pub races: u64,
    /// Workers across all races.
    pub race_workers: u64,
    /// Race wins per strategy, indexed like
    /// [`crate::parallel::STRATEGY_NAMES`].
    pub race_wins: [u64; STRATEGY_NAMES.len()],
    /// Learnt clauses exported to exchanges.
    pub clauses_exported: u64,
    /// Learnt clauses imported from exchanges.
    pub clauses_imported: u64,
    /// Cube jobs generated.
    pub cubes_total: u64,
    /// Cube jobs that reached a verdict.
    pub cubes_solved: u64,
    /// Total encoding time.
    pub encode_time: Duration,
    /// Ackermann share of `encode_time`.
    pub ack_time: Duration,
    /// Bit-blasting share of `encode_time`.
    pub bitblast_time: Duration,
    /// Total SAT time.
    pub solve_time: Duration,
    /// Unsat answers.
    pub unsat_queries: u64,
    /// Unsat answers certified by the independent checker.
    pub certified_unsat: u64,
    /// Proof steps emitted.
    pub proof_steps: u64,
    /// Proof bytes emitted.
    pub proof_bytes: u64,
    /// Proof-checker runs.
    pub proofs_checked: u64,
    /// Lemmas seen across check runs.
    pub proof_lemmas: u64,
    /// Lemmas on trimmed cores across check runs.
    pub proof_core_steps: u64,
    /// Total proof-checking time.
    pub proof_check_time: Duration,
    /// Total static-analysis time.
    pub simplify_time: Duration,
    /// Terms visited by the abstract analyses.
    pub simplify_terms: u64,
    /// Term rewrites applied by the simplifier.
    pub simplify_rewrites: u64,
    /// Bit-vector bits pinned to constants.
    pub simplify_bits_pinned: u64,
    /// Conjuncts entering the simplifier.
    pub simplify_conjuncts_before: u64,
    /// Conjuncts surviving rewriting and reduction.
    pub simplify_conjuncts_after: u64,
    /// Conjuncts dropped by cone-of-influence reduction.
    pub simplify_coi_dropped: u64,
    /// Queries proven Unsat by the abstraction alone.
    pub statically_discharged: u64,
}

impl SolverTotals {
    fn absorb(&mut self, s: &SolverStats) {
        self.checks += 1;
        self.cache_hits += s.cache_hits;
        self.cache_misses += s.cache_misses;
        self.cnf_vars = self.cnf_vars.max(s.cnf_vars);
        self.cnf_clauses += s.cnf_clauses;
        self.conflicts += s.conflicts;
        self.decisions += s.decisions;
        self.propagations += s.propagations;
        self.restarts += s.restarts;
        self.db_reductions += s.db_reductions;
        self.learnts_removed += s.learnts_removed;
        self.scope_gc_clauses += s.scope_gc_clauses;
        self.probe_units += s.probe_units;
        self.subsumed += s.subsumed;
        self.strengthened += s.strengthened;
        self.escalations += s.escalations;
        self.races += s.races;
        self.race_workers += s.race_workers;
        for (t, w) in self.race_wins.iter_mut().zip(s.race_wins.iter()) {
            *t += w;
        }
        self.clauses_exported += s.clauses_exported;
        self.clauses_imported += s.clauses_imported;
        self.cubes_total += s.cubes_total;
        self.cubes_solved += s.cubes_solved;
        self.encode_time += s.encode_time;
        self.ack_time += s.ack_time;
        self.bitblast_time += s.bitblast_time;
        self.solve_time += s.solve_time;
        self.unsat_queries += s.unsat_queries;
        self.certified_unsat += s.certified_unsat;
        self.proof_steps += s.proof_steps;
        self.proof_bytes += s.proof_bytes;
        self.proofs_checked += s.proofs_checked;
        self.proof_lemmas += s.proof_lemmas;
        self.proof_core_steps += s.proof_core_steps;
        self.proof_check_time += s.proof_check_time;
        self.simplify_time += s.simplify_time;
        self.simplify_terms += s.simplify_terms;
        self.simplify_rewrites += s.simplify_rewrites;
        self.simplify_bits_pinned += s.simplify_bits_pinned;
        self.simplify_conjuncts_before += s.simplify_conjuncts_before;
        self.simplify_conjuncts_after += s.simplify_conjuncts_after;
        self.simplify_coi_dropped += s.simplify_coi_dropped;
        self.statically_discharged += s.statically_discharged;
    }
}

/// One retractable assertion scope.
#[derive(Debug, Default)]
struct Scope {
    /// Assertions made while this scope was the innermost one.
    assertions: Vec<TermId>,
    /// A constant-false assertion landed here.
    trivially_false: bool,
    /// Activation literal guarding the scope's encoded clauses
    /// (allocated lazily on first encode).
    act: Option<Lit>,
    /// How many of `assertions` are already encoded.
    encoded: usize,
}

/// The persistent incremental pipeline: encode once, extend monotonically.
#[derive(Debug)]
struct Engine {
    ack: Ackermann,
    bb: BitBlaster,
    sat: SatSolver,
    /// Base-level assertions already encoded.
    encoded_base: usize,
    /// SAT-core counters as of the **end** of the previous `check`. The
    /// per-call delta is `sat.stats - snap`, so work done *between*
    /// checks — clause-loading propagation, the unit clause a `pop`
    /// plants — is attributed to exactly one call (the next one), never
    /// dropped and never double-counted.
    snap: SatStats,
    /// Proof steps emitted as of the end of the previous `check`.
    proof_steps_snap: u64,
    /// Proof bytes emitted as of the end of the previous `check`.
    proof_bytes_snap: u64,
}

/// An SMT solver instance holding a set of assertions.
#[derive(Debug, Default)]
pub struct Solver {
    config: SolverConfig,
    /// Base-level (permanent) assertions.
    assertions: Vec<TermId>,
    trivially_false: bool,
    scopes: Vec<Scope>,
    engine: Option<Engine>,
    /// Statistics from the most recent `check` (per-call delta).
    pub stats: SolverStats,
    /// Cumulative statistics over every `check` on this solver.
    pub totals: SolverTotals,
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            ..Self::default()
        }
    }

    /// Adds an assertion to the innermost open scope (or permanently, if
    /// no scope is open).
    pub fn assert(&mut self, ctx: &mut Ctx, t: TermId) {
        assert_eq!(ctx.sort(t), Sort::Bool, "assertion must be boolean");
        match ctx.const_bool(t) {
            Some(true) => {}
            Some(false) => match self.scopes.last_mut() {
                Some(s) => s.trivially_false = true,
                None => self.trivially_false = true,
            },
            None => match self.scopes.last_mut() {
                Some(s) => s.assertions.push(t),
                None => self.assertions.push(t),
            },
        }
    }

    /// Opens a retractable assertion scope.
    pub fn push(&mut self) {
        self.scopes.push(Scope::default());
    }

    /// Closes the innermost scope, retracting its assertions. Already
    /// encoded clauses are permanently disabled via the scope's
    /// activation literal and — with [`SolverConfig::scope_gc`] on —
    /// physically reclaimed right away, together with every learnt clause
    /// derived from them (all such clauses contain the retired `¬act` and
    /// are now satisfied at the root). Learnt clauses that do not mention
    /// the scope survive.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let s = self.scopes.pop().expect("pop without matching push");
        if let (Some(engine), Some(act)) = (self.engine.as_mut(), s.act) {
            engine.sat.add_clause(&[-act]);
            if self.config.scope_gc {
                engine.sat.simplify();
            }
        }
    }

    /// Open scopes.
    pub fn num_scopes(&self) -> usize {
        self.scopes.len()
    }

    /// The persistent SAT core's cumulative lifetime counters (`None`
    /// before the first incremental `check`, and always in oneshot
    /// mode). Every unit of core work shows up in exactly one per-call
    /// [`SolverStats`] delta, so these equal the field-wise sum of the
    /// deltas — the invariant the stats tests pin down.
    pub fn sat_lifetime_stats(&self) -> Option<SatStats> {
        self.engine.as_ref().map(|e| e.sat.stats)
    }

    /// The base-level (permanent) assertions.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// The assertions currently in force: base level plus every open
    /// scope, in assertion order.
    pub fn active_assertions(&self) -> Vec<TermId> {
        let mut out = self.assertions.clone();
        for s in &self.scopes {
            out.extend_from_slice(&s.assertions);
        }
        out
    }

    /// Decides satisfiability of the conjunction of the active
    /// assertions.
    pub fn check(&mut self, ctx: &mut Ctx) -> SatResult {
        #[cfg(debug_assertions)]
        if let Err(e) = ctx.validate() {
            panic!("term store failed validation at query entry: {e}");
        }
        self.stats = SolverStats::default();
        let result = self.check_inner(ctx);
        if result.is_unsat() {
            self.stats.unsat_queries = 1;
        }
        self.totals.absorb(&self.stats);
        result
    }

    fn check_inner(&mut self, ctx: &mut Ctx) -> SatResult {
        if self.trivially_false || self.scopes.iter().any(|s| s.trivially_false) {
            // A syntactically false assertion needs no refutation proof:
            // the claim is its own certificate.
            if self.config.certify {
                self.stats.certified_unsat = 1;
            }
            return SatResult::Unsat;
        }
        let active = self.active_assertions();
        self.stats.assertions = active.len();
        if active.is_empty() {
            return SatResult::Sat(Box::default());
        }
        // 0. Query cache: key the active VC by its canonical content
        // hash, *before* any encoding work. Certified runs skip the
        // cache entirely — a cached Unsat has no proof to re-check.
        let cache_cfg = if self.config.certify {
            None
        } else {
            self.config.cache.clone()
        };
        let fp = cache_cfg.as_ref().map(|_| cache::fingerprint(ctx, &active));
        if let (Some(c), Some(fp)) = (cache_cfg.clone(), fp.as_ref()) {
            match c.lookup(&fp.key) {
                Some(CachedVerdict::Unsat) => {
                    self.stats.cache_hits = 1;
                    return SatResult::Unsat;
                }
                Some(CachedVerdict::Sat(cm)) => {
                    // Rehydrate into this context and re-validate before
                    // trusting the entry: a collision or stale snapshot
                    // must never produce a bogus counterexample.
                    let model = cache::rehydrate(fp, &cm)
                        .filter(|m| active.iter().all(|&t| eval_bool(ctx, t, &m.assignment)));
                    match model {
                        Some(m) => {
                            self.stats.cache_hits = 1;
                            return SatResult::Sat(Box::new(m));
                        }
                        None => {
                            c.invalidate(&fp.key);
                            self.stats.cache_misses = 1;
                        }
                    }
                }
                None => self.stats.cache_misses = 1,
            }
        }
        let mut result = if self.config.incremental {
            self.check_incremental(ctx, &active)
        } else if self.config.simplify {
            self.check_oneshot_simplified(ctx, &active)
        } else {
            self.check_oneshot(ctx, &active)
        };
        // Budget escalation: an `Unknown` under a conflict budget gets
        // one retry at 4x before being reported. In incremental mode the
        // retry resumes the same core (learnt clauses from the first
        // attempt included); in oneshot mode the pipeline re-runs.
        if matches!(result, SatResult::Unknown) && self.config.escalate_unknown {
            if let Some(base) = self.config.sat.max_conflicts {
                let boosted = base.saturating_mul(4);
                self.stats.escalations = 1;
                if self.config.incremental {
                    if let Some(e) = self.engine.as_mut() {
                        e.sat.set_max_conflicts(Some(boosted));
                    }
                    result = self.check_incremental(ctx, &active);
                    if let Some(e) = self.engine.as_mut() {
                        e.sat.set_max_conflicts(Some(base));
                    }
                } else {
                    self.config.sat.max_conflicts = Some(boosted);
                    result = if self.config.simplify {
                        self.check_oneshot_simplified(ctx, &active)
                    } else {
                        self.check_oneshot(ctx, &active)
                    };
                    self.config.sat.max_conflicts = Some(base);
                }
            }
        }
        if let (Some(c), Some(fp)) = (cache_cfg.as_ref(), fp.as_ref()) {
            match &result {
                // A static discharge is an Unsat verdict for the
                // original assertion set (the fingerprint is computed on
                // the originals, never the simplified form).
                SatResult::Unsat | SatResult::StaticallyDischarged => {
                    c.insert(fp.key, CachedVerdict::Unsat);
                }
                SatResult::Sat(m) => c.insert(fp.key, CachedVerdict::Sat(cache::dehydrate(fp, m))),
                SatResult::Unknown => {}
            }
        }
        result
    }

    /// Runs the independent checker over the proof stream, validates
    /// that it concludes what this `Unsat` answer claims (`expected` =
    /// the negated failed-assumption set, or empty for an unconditional
    /// refutation; the empty clause is always acceptable as stronger),
    /// and fills the proof-checking stats. Panics on a rejected or
    /// off-target proof — the Unsat twin of failed model validation.
    fn certify_unsat(stats: &mut SolverStats, proof_bytes: &[u8], expected: &[i32]) {
        let check_start = Instant::now();
        let out = hk_proof::check_proof(proof_bytes).unwrap_or_else(|e| {
            panic!("certified-unsat check failed: independent checker rejected the proof: {e}")
        });
        stats.proof_check_time = check_start.elapsed();
        stats.proofs_checked = 1;
        stats.proof_lemmas = out.lemmas as u64;
        stats.proof_core_steps = out.core_lemmas as u64;
        let mut want = expected.to_vec();
        want.sort_unstable();
        want.dedup();
        assert!(
            out.final_clause.is_empty() || out.final_clause == want,
            "certified-unsat check failed: proof concludes {:?}, answer claims {:?}",
            out.final_clause,
            want
        );
        stats.certified_unsat = 1;
    }

    /// Folds a race report into the per-call stats.
    fn absorb_race(stats: &mut SolverStats, race: &RaceReport) {
        if !race.raced {
            return;
        }
        stats.races += 1;
        stats.race_workers += race.workers;
        if let Some(s) = race.winner {
            stats.race_wins[s] += 1;
        }
        stats.clauses_exported += race.clauses_exported;
        stats.clauses_imported += race.clauses_imported;
        stats.cubes_total += race.cubes_total;
        stats.cubes_solved += race.cubes_solved;
    }

    /// Certifies an `Unsat` produced by a cube-and-conquer team. The
    /// refutation is stitched from per-cube proofs: each cube's
    /// conclusion lemma sits at a recorded prefix of its worker's
    /// append-only stream, and that prefix is itself a complete DRAT
    /// stream (inputs are axioms at any position), so it is checked
    /// independently. The stitching argument:
    ///
    /// * each checked prefix proves `inputs ⊨ ¬failed_i`, with
    ///   `failed_i ⊆ assumptions ∪ cube_i` (asserted below);
    /// * the cube set is the full `2^k` sign expansion over one
    ///   variable set (asserted via distinctness + count), so the cubes
    ///   are exhaustive: any assignment satisfying the inputs and the
    ///   assumptions falsifies some `¬failed_i` — contradiction;
    /// * alternatively a single cube proof concluding the empty clause
    ///   refutes the inputs outright and no cover argument is needed.
    ///
    /// Panics when any prefix fails to check, concludes the wrong
    /// clause, or the cover is incomplete.
    fn certify_cubes(stats: &mut SolverStats, race: &RaceReport, assumptions: &[i32]) {
        let check_start = Instant::now();
        assert!(!race.cube_certs.is_empty(), "cube certify without certs");
        let mut globally_refuted = false;
        for cert in &race.cube_certs {
            assert!(
                cert.prefix <= cert.proof.len(),
                "cube proof prefix out of range"
            );
            let out = hk_proof::check_proof(&cert.proof[..cert.prefix]).unwrap_or_else(|e| {
                panic!("cube certify failed: independent checker rejected the proof: {e}")
            });
            stats.proofs_checked += 1;
            stats.proof_lemmas += out.lemmas as u64;
            stats.proof_core_steps += out.core_lemmas as u64;
            assert!(
                cert.failed
                    .iter()
                    .all(|l| assumptions.contains(l) || cert.cube.contains(l)),
                "cube certify failed: failed set {:?} escapes assumptions {:?} + cube {:?}",
                cert.failed,
                assumptions,
                cert.cube
            );
            let mut want: Vec<i32> = cert.failed.iter().map(|&l| -l).collect();
            want.sort_unstable();
            want.dedup();
            if out.final_clause.is_empty() {
                globally_refuted = true;
            } else {
                assert!(
                    out.final_clause == want,
                    "cube certify failed: proof concludes {:?}, cube claims {:?}",
                    out.final_clause,
                    want
                );
            }
        }
        if !globally_refuted {
            // Exhaustive cover: the certs must name every one of the
            // 2^k distinct cubes over a single variable set.
            let mut cube_vars: Vec<Vec<i32>> = race
                .cube_certs
                .iter()
                .map(|c| {
                    let mut vs: Vec<i32> = c.cube.iter().map(|l| l.abs()).collect();
                    vs.sort_unstable();
                    vs
                })
                .collect();
            cube_vars.dedup();
            assert!(
                cube_vars.windows(2).all(|w| w[0] == w[1]),
                "cube certify failed: cubes split on differing variable sets"
            );
            let k = cube_vars.first().map(|v| v.len()).unwrap_or(0);
            let mut distinct: Vec<Vec<i32>> = race
                .cube_certs
                .iter()
                .map(|c| {
                    let mut cu = c.cube.clone();
                    cu.sort_unstable_by_key(|l| l.abs());
                    cu
                })
                .collect();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(
                k > 0
                    && distinct.len() == (1usize << k)
                    && race.cubes_total == distinct.len() as u64,
                "cube certify failed: cover incomplete ({} of {} cubes certified)",
                distinct.len(),
                race.cubes_total
            );
        }
        stats.proof_check_time += check_start.elapsed();
        stats.certified_unsat = 1;
    }

    // ------------------------------------------------------------------
    // Incremental path: persistent Ackermann + bit-blaster + CDCL core.
    // ------------------------------------------------------------------

    fn check_incremental(&mut self, ctx: &mut Ctx, active: &[TermId]) -> SatResult {
        if self.engine.is_none() {
            let mut sat = SatSolver::with_config(self.config.sat.clone());
            if self.config.proof_log || self.config.certify {
                // Before any clause exists, so the stream is complete.
                sat.start_proof();
            }
            self.engine = Some(Engine {
                ack: Ackermann::new(),
                bb: BitBlaster::new(),
                sat,
                encoded_base: 0,
                snap: SatStats::default(),
                proof_steps_snap: 0,
                proof_bytes_snap: 0,
            });
        }
        // 0. Word-level static analysis over the pending deltas. Each
        // not-yet-encoded assertion is rewritten under facts from its own
        // and outer levels only — outer scopes outlive inner ones, so
        // those facts are active whenever the rewritten clause's
        // activation literal is assumed. A discharge returns early with
        // the watermarks untouched: the pendings stay pending and are
        // encoded verbatim by a later (certified or analysis-off) check.
        let mut simplified_pending: Option<Vec<Vec<TermId>>> = None;
        if self.config.simplify {
            let encoded_base = self.engine.as_ref().map_or(0, |e| e.encoded_base);
            let mut groups = vec![DeltaGroup {
                level: 0,
                encoded: self.assertions[..encoded_base].to_vec(),
                pending: self.assertions[encoded_base..].to_vec(),
            }];
            for (si, s) in self.scopes.iter().enumerate() {
                groups.push(DeltaGroup {
                    level: (si + 1) as u32,
                    encoded: s.assertions[..s.encoded].to_vec(),
                    pending: s.assertions[s.encoded..].to_vec(),
                });
            }
            let simp_start = Instant::now();
            let out = analysis::simplify_deltas(ctx, &groups);
            self.stats.simplify_time += simp_start.elapsed();
            Self::absorb_simplify(&mut self.stats, &out.stats);
            if out.discharged {
                self.stats.statically_discharged += 1;
                if !self.config.certify {
                    return SatResult::StaticallyDischarged;
                }
                // Certify: fall through and solve the original pendings
                // so the Unsat carries a checked proof.
            } else {
                simplified_pending = Some(out.rewritten);
            }
        }
        let encode_start = Instant::now();
        // 1. Ackermann-rewrite the assertions not yet encoded.
        let engine = self.engine.as_mut().expect("engine just installed");
        let base_new: Vec<TermId> = match &simplified_pending {
            Some(groups) => groups[0].clone(),
            None => self.assertions[engine.encoded_base..].to_vec(),
        };
        engine.encoded_base = self.assertions.len();
        let rewritten_base: Vec<TermId> = base_new
            .into_iter()
            .map(|t| engine.ack.rewrite(ctx, t))
            .collect();
        let mut rewritten_scoped: Vec<(usize, TermId)> = Vec::new();
        for si in 0..self.scopes.len() {
            let pending: Vec<TermId> = match &simplified_pending {
                Some(groups) => groups[si + 1].clone(),
                None => self.scopes[si].assertions[self.scopes[si].encoded..].to_vec(),
            };
            self.scopes[si].encoded = self.scopes[si].assertions.len();
            for t in pending {
                let r = engine.ack.rewrite(ctx, t);
                rewritten_scoped.push((si, r));
            }
        }
        // Congruence constraints are consequences of the UF semantics
        // alone, so they are always asserted at the base level.
        let new_constraints = engine.ack.take_new_constraints();
        // Stats fields accumulate (`+=`) rather than assign: an escalated
        // retry re-enters this function within the same `check`, and both
        // attempts' work belongs to that one call.
        self.stats.ackermann_constraints += new_constraints.len();
        let ack_elapsed = encode_start.elapsed();
        self.stats.ack_time += ack_elapsed;
        // 2. Bit-blast the delta. Constant-false terms blast to the
        // reserved false literal, so no special-casing is needed: a base
        // falsity yields the unit clause ¬⊤ and the solver goes
        // permanently unsat; a scoped one yields ¬act ∨ ¬⊤, forcing the
        // activation literal off.
        for &t in rewritten_base.iter().chain(new_constraints.iter()) {
            engine.bb.assert_term(ctx, t);
        }
        for &(si, t) in &rewritten_scoped {
            let act = *self.scopes[si]
                .act
                .get_or_insert_with(|| engine.bb.builder.new_var());
            engine.bb.assert_term_under(ctx, act, t);
        }
        // 3. Feed the CNF delta to the persistent SAT core.
        let (num_vars, new_clauses) = engine.bb.builder.take_new();
        engine.sat.reserve_vars(num_vars);
        for c in &new_clauses {
            if !engine.sat.add_clause(c) {
                break;
            }
        }
        self.stats.cnf_vars = num_vars;
        self.stats.cnf_clauses += new_clauses.len();
        let encode_elapsed = encode_start.elapsed();
        self.stats.encode_time += encode_elapsed;
        self.stats.bitblast_time += encode_elapsed.saturating_sub(ack_elapsed);
        if std::env::var("HK_SMT_TRACE").is_ok() {
            eprintln!(
                "[smt] incremental delta: {} vars, +{} clauses, {} active assertions, +{} congruence ({:.1}s)",
                num_vars,
                new_clauses.len(),
                active.len(),
                self.stats.ackermann_constraints,
                self.stats.encode_time.as_secs_f64()
            );
        }
        // 4. Solve under the open scopes' activation literals.
        let assumptions: Vec<Lit> = self.scopes.iter().filter_map(|s| s.act).collect();
        let solve_start = Instant::now();
        let (outcome, race) =
            parallel::solve_maybe_racing(&mut engine.sat, &assumptions, &self.config.parallel);
        self.stats.solve_time += solve_start.elapsed();
        Self::absorb_race(&mut self.stats, &race);
        // Per-call deltas are taken against the end-of-previous-check
        // snapshot, not a start-of-solve one: clause-loading and
        // `pop`-planted units (with their scope GC) that ran between
        // checks land here, once.
        self.stats.conflicts += engine.sat.stats.conflicts - engine.snap.conflicts;
        self.stats.decisions += engine.sat.stats.decisions - engine.snap.decisions;
        self.stats.propagations += engine.sat.stats.propagations - engine.snap.propagations;
        self.stats.restarts += engine.sat.stats.restarts - engine.snap.restarts;
        self.stats.db_reductions += engine.sat.stats.db_reductions - engine.snap.db_reductions;
        self.stats.learnts_removed +=
            engine.sat.stats.learnts_removed - engine.snap.learnts_removed;
        self.stats.scope_gc_clauses += engine.sat.stats.gc_clauses - engine.snap.gc_clauses;
        self.stats.probe_units += engine.sat.stats.probe_units - engine.snap.probe_units;
        self.stats.subsumed += engine.sat.stats.subsumed - engine.snap.subsumed;
        self.stats.strengthened += engine.sat.stats.strengthened - engine.snap.strengthened;
        engine.snap = engine.sat.stats;
        if let Some(pr) = engine.sat.proof() {
            self.stats.proof_steps += pr.num_steps() - engine.proof_steps_snap;
            self.stats.proof_bytes += pr.byte_len() as u64 - engine.proof_bytes_snap;
            engine.proof_steps_snap = pr.num_steps();
            engine.proof_bytes_snap = pr.byte_len() as u64;
        }
        match outcome {
            SatOutcome::Unsat => {
                if self.config.certify {
                    if !race.cube_certs.is_empty() {
                        // A cube team won: the refutation is distributed
                        // over per-cube proof-stream prefixes.
                        Self::certify_cubes(&mut self.stats, &race, &assumptions);
                    } else {
                        // The claim being certified: the failed-assumption
                        // set is refutable (or, with no failed assumptions,
                        // the clauses themselves are).
                        let expected: Vec<i32> = if engine.sat.is_ok() {
                            engine
                                .sat
                                .failed_assumptions()
                                .iter()
                                .map(|&l| -l)
                                .collect()
                        } else {
                            Vec::new()
                        };
                        let proof = engine
                            .sat
                            .proof()
                            .expect("certify implies proof logging")
                            .bytes()
                            .to_vec();
                        Self::certify_unsat(&mut self.stats, &proof, &expected);
                    }
                }
                SatResult::Unsat
            }
            SatOutcome::Unknown => SatResult::Unknown,
            SatOutcome::Sat => {
                let engine = self.engine.as_ref().expect("engine exists");
                let model = lift_model(
                    ctx,
                    &engine.sat,
                    &engine.bb.var_bv,
                    &engine.bb.var_bool,
                    &engine.ack.instances,
                );
                if !self.config.skip_validation {
                    for &t in active {
                        assert!(
                            eval_bool(ctx, t, &model.assignment),
                            "model validation failed for assertion: {}",
                            ctx.display(t)
                        );
                    }
                }
                SatResult::Sat(Box::new(model))
            }
        }
    }

    // ------------------------------------------------------------------
    // One-shot path: the fresh-pipeline-per-check baseline.
    // ------------------------------------------------------------------

    fn check_oneshot(&mut self, ctx: &mut Ctx, active: &[TermId]) -> SatResult {
        let encode_start = Instant::now();
        // 1. Ackermann reduction.
        let mut ack = Ackermann::new();
        let rewritten: Vec<TermId> = active.iter().map(|&t| ack.rewrite(ctx, t)).collect();
        let constraints = ack.constraints.clone();
        // `+=` like the incremental path: an escalated retry re-runs the
        // whole pipeline inside the same `check`.
        self.stats.ackermann_constraints += constraints.len();
        let ack_elapsed = encode_start.elapsed();
        self.stats.ack_time += ack_elapsed;
        // 2. Bit-blast.
        let mut bb = BitBlaster::new();
        let mut trivially_false = false;
        for &t in rewritten.iter().chain(constraints.iter()) {
            if ctx.const_bool(t) == Some(false) {
                trivially_false = true;
                break;
            }
            if ctx.const_bool(t) == Some(true) {
                continue;
            }
            bb.assert_term(ctx, t);
        }
        if trivially_false {
            // Syntactic falsity, nothing was encoded: vacuously certified.
            if self.config.certify {
                self.stats.certified_unsat = 1;
            }
            return SatResult::Unsat;
        }
        let var_bv = bb.var_bv.clone();
        let var_bool = bb.var_bool.clone();
        let (num_vars, clauses) = bb.builder.finish();
        self.stats.cnf_vars = num_vars;
        self.stats.cnf_clauses += clauses.len();
        // 3. Feed the CNF to a fresh SAT core. Clause loading scales with
        // formula size, not search difficulty, so it counts toward
        // encode_time — mirroring the incremental path, where the delta
        // is loaded inside the encode window.
        let mut sat = SatSolver::with_config(self.config.sat.clone());
        if self.config.proof_log || self.config.certify {
            sat.start_proof();
        }
        sat.reserve_vars(num_vars);
        let mut ok = true;
        for c in &clauses {
            if !sat.add_clause(c) {
                ok = false;
                break;
            }
        }
        let encode_elapsed = encode_start.elapsed();
        self.stats.encode_time += encode_elapsed;
        self.stats.bitblast_time += encode_elapsed.saturating_sub(ack_elapsed);
        if std::env::var("HK_SMT_TRACE").is_ok() {
            eprintln!(
                "[smt] encoded: {} vars, {} clauses, {} assertions, {} congruence ({:.1}s)",
                num_vars,
                clauses.len(),
                self.stats.assertions,
                self.stats.ackermann_constraints,
                self.stats.encode_time.as_secs_f64()
            );
        }
        // 4. SAT.
        let solve_start = Instant::now();
        let mut race = RaceReport::default();
        let outcome = if ok {
            let (outcome, r) = parallel::solve_maybe_racing(&mut sat, &[], &self.config.parallel);
            race = r;
            outcome
        } else {
            SatOutcome::Unsat
        };
        self.stats.solve_time += solve_start.elapsed();
        Self::absorb_race(&mut self.stats, &race);
        self.stats.conflicts += sat.stats.conflicts;
        self.stats.decisions += sat.stats.decisions;
        self.stats.propagations += sat.stats.propagations;
        self.stats.restarts += sat.stats.restarts;
        self.stats.db_reductions += sat.stats.db_reductions;
        self.stats.learnts_removed += sat.stats.learnts_removed;
        self.stats.scope_gc_clauses += sat.stats.gc_clauses;
        self.stats.probe_units += sat.stats.probe_units;
        self.stats.subsumed += sat.stats.subsumed;
        self.stats.strengthened += sat.stats.strengthened;
        if let Some(pr) = sat.proof() {
            self.stats.proof_steps += pr.num_steps();
            self.stats.proof_bytes += pr.byte_len() as u64;
        }
        match outcome {
            SatOutcome::Unsat => {
                if self.config.certify {
                    if !race.cube_certs.is_empty() {
                        Self::certify_cubes(&mut self.stats, &race, &[]);
                    } else {
                        // An unassumed refutation always concludes the
                        // empty clause.
                        let proof = sat.proof().expect("certify implies proof logging").bytes();
                        Self::certify_unsat(&mut self.stats, proof, &[]);
                    }
                }
                SatResult::Unsat
            }
            SatOutcome::Unknown => SatResult::Unknown,
            SatOutcome::Sat => {
                let model = lift_model(ctx, &sat, &var_bv, &var_bool, &ack.instances);
                if !self.config.skip_validation {
                    for &t in active {
                        assert!(
                            eval_bool(ctx, t, &model.assignment),
                            "model validation failed for assertion: {}",
                            ctx.display(t)
                        );
                    }
                }
                SatResult::Sat(Box::new(model))
            }
        }
    }

    /// Folds a static-analysis run's counters into the per-call stats.
    fn absorb_simplify(stats: &mut SolverStats, st: &analysis::SimplifyStats) {
        stats.simplify_terms += st.terms_visited;
        stats.simplify_rewrites += st.rewrites;
        stats.simplify_bits_pinned += st.bits_pinned;
        stats.simplify_conjuncts_before += st.conjuncts_before;
        stats.simplify_conjuncts_after += st.conjuncts_after;
        stats.simplify_coi_dropped += st.coi_dropped;
    }

    /// One-shot check with the word-level static analysis pass in front:
    /// abstract interpretation + fact-directed rewriting +
    /// cone-of-influence reduction, then the ordinary pipeline on the
    /// surviving conjuncts.
    ///
    /// Goal anchoring for COI: scoped assertions (everything past the
    /// base-level prefix) are the negated proof obligation; base-level
    /// assertions are background facts eligible for dropping.
    fn check_oneshot_simplified(&mut self, ctx: &mut Ctx, active: &[TermId]) -> SatResult {
        let simp_start = Instant::now();
        let goal_start = self.assertions.len().min(active.len());
        let outcome = analysis::simplify_query(ctx, active, goal_start, true);
        self.stats.simplify_time += simp_start.elapsed();
        match outcome {
            SimplifyOutcome::Discharged(st) => {
                Self::absorb_simplify(&mut self.stats, &st);
                self.stats.statically_discharged += 1;
                if self.config.certify {
                    // Certified runs promise a checked DRAT refutation for
                    // every Unsat, which the abstraction cannot produce.
                    // Re-run the SAT path on the originals; the discharge
                    // still counts in the stats, and a Sat answer here
                    // would mean the analysis is unsound — fail loudly.
                    let r = self.check_oneshot(ctx, active);
                    assert!(
                        !matches!(r, SatResult::Sat(_)),
                        "statically discharged query found satisfiable by the SAT path"
                    );
                    r
                } else {
                    SatResult::StaticallyDischarged
                }
            }
            SimplifyOutcome::Simplified {
                assertions,
                coi_dropped_any,
                stats: st,
            } => {
                Self::absorb_simplify(&mut self.stats, &st);
                let result = self.check_oneshot(ctx, &assertions);
                match result {
                    SatResult::Sat(m) => {
                        // The simplified set is equisatisfiable except for
                        // COI drops, where Sat-on-the-cone needs the full
                        // original set to confirm (the dropped components
                        // are independently satisfiable or not).
                        let holds = active.iter().all(|&t| eval_bool(ctx, t, &m.assignment));
                        if holds {
                            SatResult::Sat(m)
                        } else {
                            debug_assert!(
                                coi_dropped_any,
                                "model of the simplified set falsifies an original \
                                 assertion without any COI drop — rewrite unsound"
                            );
                            self.check_oneshot(ctx, active)
                        }
                    }
                    other => other,
                }
            }
        }
    }
}

/// Lifts a SAT model back to term variables and UF interpretations.
fn lift_model(
    ctx: &Ctx,
    sat: &SatSolver,
    var_bv: &HashMap<VarId, Vec<Lit>>,
    var_bool: &HashMap<VarId, Lit>,
    instances: &HashMap<FuncId, Vec<AppInstance>>,
) -> Model {
    let mut model = Model::default();
    let lit_val = |l: Lit| -> bool {
        if l > 0 {
            sat.model_value(l as u32)
        } else {
            !sat.model_value((-l) as u32)
        }
    };
    for (v, bits) in var_bv {
        let mut val = 0u64;
        for (i, &l) in bits.iter().enumerate() {
            if lit_val(l) {
                val |= 1 << i;
            }
        }
        model.assignment.set_var(*v, Value::Bv(val));
    }
    for (v, &l) in var_bool {
        model.assignment.set_var(*v, Value::Bool(lit_val(l)));
    }
    // Lift UF interpretations through the instance table.
    for (f, insts) in instances {
        for inst in insts {
            let args: Vec<u64> = inst
                .args
                .iter()
                .map(|&a| match model.eval(ctx, a) {
                    Value::Bv(v) => v,
                    Value::Bool(b) => b as u64,
                })
                .collect();
            let val = match model.eval(ctx, inst.var) {
                Value::Bv(v) => v,
                Value::Bool(b) => b as u64,
            };
            model.assignment.func_mut(*f).set(args, val);
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_with_model() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(32));
        let y = ctx.var("y", Sort::Bv(32));
        let sum = ctx.bv_add(x, y);
        let c100 = ctx.bv_const(32, 100);
        let c10 = ctx.bv_const(32, 10);
        let e1 = ctx.eq(sum, c100);
        let e2 = ctx.eq(x, c10);
        let mut s = Solver::new();
        s.assert(&mut ctx, e1);
        s.assert(&mut ctx, e2);
        match s.check(&mut ctx) {
            SatResult::Sat(m) => {
                assert_eq!(m.eval_bv(&ctx, x), Some(10));
                assert_eq!(m.eval_bv(&ctx, y), Some(90));
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn unsat_bv_facts() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        // x < 5 && x > 10 is unsat.
        let c5 = ctx.bv_const(16, 5);
        let c10 = ctx.bv_const(16, 10);
        let lt = ctx.ult(x, c5);
        let gt = ctx.ult(c10, x);
        let mut s = Solver::new();
        s.assert(&mut ctx, lt);
        s.assert(&mut ctx, gt);
        assert!(s.check(&mut ctx).is_unsat());
    }

    #[test]
    fn uf_congruence_unsat() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let y = ctx.var("y", Sort::Bv(64));
        // x == y && f(x) != f(y) is unsat.
        let e = ctx.eq(x, y);
        let fx = ctx.apply(f, &[x]);
        let fy = ctx.apply(f, &[y]);
        let ne = ctx.ne(fx, fy);
        let mut s = Solver::new();
        s.assert(&mut ctx, e);
        s.assert(&mut ctx, ne);
        assert!(s.check(&mut ctx).is_unsat());
    }

    #[test]
    fn uf_model_lifting() {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let c1 = ctx.bv_const(64, 1);
        let c2 = ctx.bv_const(64, 2);
        let f1 = ctx.apply(f, &[c1]);
        let f2 = ctx.apply(f, &[c2]);
        let c10 = ctx.bv_const(64, 10);
        let c20 = ctx.bv_const(64, 20);
        let e1 = ctx.eq(f1, c10);
        let e2 = ctx.eq(f2, c20);
        let mut s = Solver::new();
        s.assert(&mut ctx, e1);
        s.assert(&mut ctx, e2);
        match s.check(&mut ctx) {
            SatResult::Sat(m) => {
                let fi = m.func_interp(f).expect("f interpreted");
                assert_eq!(fi.get(&[1]), 10);
                assert_eq!(fi.get(&[2]), 20);
                // Re-evaluating the applications agrees.
                assert_eq!(m.eval_bv(&ctx, f1), Some(10));
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn empty_is_sat() {
        let mut ctx = Ctx::new();
        let mut s = Solver::new();
        assert!(s.check(&mut ctx).is_sat());
    }

    #[test]
    fn trivially_false_assertion() {
        let mut ctx = Ctx::new();
        let f = ctx.fls();
        let mut s = Solver::new();
        s.assert(&mut ctx, f);
        assert!(s.check(&mut ctx).is_unsat());
    }

    fn cached_config(cache: &Arc<QueryCache>) -> SolverConfig {
        SolverConfig {
            cache: Some(cache.clone()),
            ..SolverConfig::default()
        }
    }

    /// Builds `x < 5 && 10 < x` (unsat) in any context.
    fn unsat_vc(ctx: &mut Ctx) -> Vec<TermId> {
        let x = ctx.var("x", Sort::Bv(16));
        let c5 = ctx.bv_const(16, 5);
        let c10 = ctx.bv_const(16, 10);
        vec![ctx.ult(x, c5), ctx.ult(c10, x)]
    }

    #[test]
    fn cache_hits_unsat_across_contexts() {
        let cache = Arc::new(QueryCache::new(64));
        let mut ctx1 = Ctx::new();
        let mut s1 = Solver::with_config(cached_config(&cache));
        for t in unsat_vc(&mut ctx1) {
            s1.assert(&mut ctx1, t);
        }
        assert!(s1.check(&mut ctx1).is_unsat());
        assert_eq!(s1.stats.cache_misses, 1);
        assert_eq!(s1.stats.cache_hits, 0);
        // Same VC, brand-new context: must hit without solving.
        let mut ctx2 = Ctx::new();
        let mut s2 = Solver::with_config(cached_config(&cache));
        for t in unsat_vc(&mut ctx2) {
            s2.assert(&mut ctx2, t);
        }
        assert!(s2.check(&mut ctx2).is_unsat());
        assert_eq!(s2.stats.cache_hits, 1);
        assert_eq!(s2.stats.cache_misses, 0);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cache_hits_sat_with_valid_model() {
        let cache = Arc::new(QueryCache::new(64));
        let build = |ctx: &mut Ctx| {
            let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
            let x = ctx.var("x", Sort::Bv(64));
            let fx = ctx.apply(f, &[x]);
            let c7 = ctx.bv_const(64, 7);
            let c3 = ctx.bv_const(64, 3);
            let e1 = ctx.eq(fx, c7);
            let e2 = ctx.eq(x, c3);
            (vec![e1, e2], x, fx)
        };
        let mut ctx1 = Ctx::new();
        let (vc1, _, _) = build(&mut ctx1);
        let mut s1 = Solver::with_config(cached_config(&cache));
        for t in vc1 {
            s1.assert(&mut ctx1, t);
        }
        assert!(s1.check(&mut ctx1).is_sat());
        // Fresh context: the rehydrated model must satisfy the VC.
        let mut ctx2 = Ctx::new();
        let (vc2, x2, fx2) = build(&mut ctx2);
        let mut s2 = Solver::with_config(cached_config(&cache));
        for t in vc2 {
            s2.assert(&mut ctx2, t);
        }
        match s2.check(&mut ctx2) {
            SatResult::Sat(m) => {
                assert_eq!(m.eval_bv(&ctx2, x2), Some(3));
                assert_eq!(m.eval_bv(&ctx2, fx2), Some(7));
            }
            r => panic!("expected sat, got {r:?}"),
        }
        assert_eq!(s2.stats.cache_hits, 1);
    }

    #[test]
    fn cache_does_not_cross_different_vcs() {
        let cache = Arc::new(QueryCache::new(64));
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let c5 = ctx.bv_const(16, 5);
        let c10 = ctx.bv_const(16, 10);
        let lt = ctx.ult(x, c5);
        let gt = ctx.ult(c10, x);
        let mut s1 = Solver::with_config(cached_config(&cache));
        s1.assert(&mut ctx, lt);
        s1.assert(&mut ctx, gt);
        assert!(s1.check(&mut ctx).is_unsat());
        // The one-sided query is satisfiable and must not be served the
        // cached Unsat of the conjunction.
        let mut s2 = Solver::with_config(cached_config(&cache));
        s2.assert(&mut ctx, lt);
        assert!(s2.check(&mut ctx).is_sat());
        assert_eq!(s2.stats.cache_hits, 0);
    }

    // ------------------------------------------------------------------
    // Incremental scopes.
    // ------------------------------------------------------------------

    #[test]
    fn push_pop_retracts_assertions() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let c5 = ctx.bv_const(16, 5);
        let c10 = ctx.bv_const(16, 10);
        let lt = ctx.ult(x, c5);
        let gt = ctx.ult(c10, x);
        let mut s = Solver::new();
        s.assert(&mut ctx, lt);
        // Scope 1: the contradiction.
        s.push();
        s.assert(&mut ctx, gt);
        assert!(s.check(&mut ctx).is_unsat());
        s.pop();
        // Retracted: satisfiable again, and the model respects the base
        // assertion.
        match s.check(&mut ctx) {
            SatResult::Sat(m) => assert!(m.eval_bv(&ctx, x).expect("x assigned") < 5),
            r => panic!("expected sat after pop, got {r:?}"),
        }
    }

    #[test]
    fn scopes_nest_and_base_grows_between_checks() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(8));
        let y = ctx.var("y", Sort::Bv(8));
        let mut s = Solver::new();
        let c3 = ctx.bv_const(8, 3);
        let e1 = ctx.ult(x, c3);
        s.assert(&mut ctx, e1); // x < 3
        assert!(s.check(&mut ctx).is_sat());
        // Grow the base after a check: y == x + 1.
        let one = ctx.bv_const(8, 1);
        let xp1 = ctx.bv_add(x, one);
        let e2 = ctx.eq(y, xp1);
        s.assert(&mut ctx, e2);
        s.push();
        let c2 = ctx.bv_const(8, 2);
        let e3 = ctx.eq(x, c2);
        s.assert(&mut ctx, e3); // x == 2
        s.push();
        let c9 = ctx.bv_const(8, 9);
        let e4 = ctx.eq(y, c9);
        s.assert(&mut ctx, e4); // y == 9, contradicts y == x+1 == 3
        assert!(s.check(&mut ctx).is_unsat());
        s.pop();
        match s.check(&mut ctx) {
            SatResult::Sat(m) => {
                assert_eq!(m.eval_bv(&ctx, x), Some(2));
                assert_eq!(m.eval_bv(&ctx, y), Some(3));
            }
            r => panic!("expected sat, got {r:?}"),
        }
        s.pop();
        assert_eq!(s.num_scopes(), 0);
        assert!(s.check(&mut ctx).is_sat());
    }

    #[test]
    fn trivially_false_scope_recovers_after_pop() {
        let mut ctx = Ctx::new();
        let mut s = Solver::new();
        let x = ctx.var("x", Sort::Bool);
        s.assert(&mut ctx, x);
        s.push();
        let f = ctx.fls();
        s.assert(&mut ctx, f);
        assert!(s.check(&mut ctx).is_unsat());
        s.pop();
        assert!(s.check(&mut ctx).is_sat());
    }

    #[test]
    fn uf_congruence_across_scopes() {
        // Congruence constraints must hold between an application asserted
        // in the base and one asserted inside a scope.
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let y = ctx.var("y", Sort::Bv(64));
        let fx = ctx.apply(f, &[x]);
        let fy = ctx.apply(f, &[y]);
        let mut s = Solver::new();
        let exy = ctx.eq(x, y);
        s.assert(&mut ctx, exy);
        let c1 = ctx.bv_const(64, 1);
        let e1 = ctx.eq(fx, c1);
        s.assert(&mut ctx, e1); // f(x) == 1
        assert!(s.check(&mut ctx).is_sat());
        s.push();
        let c2 = ctx.bv_const(64, 2);
        let e2 = ctx.eq(fy, c2); // f(y) == 2, but x == y forces f(x) == f(y)
        s.assert(&mut ctx, e2);
        assert!(s.check(&mut ctx).is_unsat());
        s.pop();
        assert!(s.check(&mut ctx).is_sat());
    }

    #[test]
    fn per_call_stats_are_deltas_and_totals_accumulate() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(32));
        let y = ctx.var("y", Sort::Bv(32));
        let prod = ctx.bv_mul(x, y);
        let c91 = ctx.bv_const(32, 91);
        let e = ctx.eq(prod, c91);
        let mut s = Solver::new();
        s.assert(&mut ctx, e);
        assert!(s.check(&mut ctx).is_sat());
        let first_clauses = s.stats.cnf_clauses;
        assert!(first_clauses > 0);
        // Second check with a tiny scoped addition: the encode delta must
        // be far smaller than the initial encoding.
        s.push();
        let two = ctx.bv_const(32, 2);
        let ex = ctx.ult(two, x);
        s.assert(&mut ctx, ex);
        assert!(s.check(&mut ctx).is_sat());
        assert!(
            s.stats.cnf_clauses < first_clauses / 4,
            "delta {} vs initial {}",
            s.stats.cnf_clauses,
            first_clauses
        );
        assert_eq!(s.totals.checks, 2);
        assert_eq!(
            s.totals.cnf_clauses,
            first_clauses + s.stats.cnf_clauses,
            "totals must be the sum of per-call deltas"
        );
        s.pop();
    }

    #[test]
    fn oneshot_config_still_answers_correctly() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let c5 = ctx.bv_const(16, 5);
        let lt = ctx.ult(x, c5);
        let mut s = Solver::with_config(SolverConfig {
            incremental: false,
            ..SolverConfig::default()
        });
        s.assert(&mut ctx, lt);
        s.push();
        let c3 = ctx.bv_const(16, 3);
        let gt = ctx.ult(c3, x);
        s.assert(&mut ctx, gt);
        match s.check(&mut ctx) {
            SatResult::Sat(m) => assert_eq!(m.eval_bv(&ctx, x), Some(4)),
            r => panic!("expected sat, got {r:?}"),
        }
        s.pop();
        s.push();
        let gt5 = {
            let c = ctx.bv_const(16, 5);
            ctx.ule(c, x)
        };
        s.assert(&mut ctx, gt5);
        assert!(s.check(&mut ctx).is_unsat());
        s.pop();
    }

    /// A contradiction the interval domain sees is discharged without
    /// touching the SAT core, in both pipeline shapes.
    #[test]
    fn simplify_discharges_interval_contradiction() {
        for incremental in [false, true] {
            let mut ctx = Ctx::new();
            let x = ctx.var("x", Sort::Bv(16));
            let c5 = ctx.bv_const(16, 5);
            let c10 = ctx.bv_const(16, 10);
            let lt = ctx.ult(x, c5);
            let gt = ctx.ult(c10, x);
            let mut s = Solver::with_config(SolverConfig {
                incremental,
                simplify: true,
                ..SolverConfig::default()
            });
            s.assert(&mut ctx, lt);
            s.assert(&mut ctx, gt);
            let r = s.check(&mut ctx);
            assert!(
                matches!(r, SatResult::StaticallyDischarged),
                "incremental={incremental}: expected discharge, got {r:?}"
            );
            assert!(r.is_unsat());
            assert_eq!(s.stats.statically_discharged, 1);
            assert_eq!(s.stats.conflicts, 0, "SAT core must not have run");
            assert_eq!(s.totals.statically_discharged, 1);
        }
    }

    /// Under `certify` a discharge is re-proved through the SAT path so
    /// the answer carries a checked DRAT refutation; the plain variant
    /// is never returned.
    #[test]
    fn certify_reruns_discharged_queries() {
        for incremental in [false, true] {
            let mut ctx = Ctx::new();
            let x = ctx.var("x", Sort::Bv(16));
            let c5 = ctx.bv_const(16, 5);
            let c10 = ctx.bv_const(16, 10);
            let lt = ctx.ult(x, c5);
            let gt = ctx.ult(c10, x);
            let mut s = Solver::with_config(SolverConfig {
                incremental,
                simplify: true,
                certify: true,
                ..SolverConfig::default()
            });
            s.assert(&mut ctx, lt);
            s.assert(&mut ctx, gt);
            let r = s.check(&mut ctx);
            assert!(
                matches!(r, SatResult::Unsat),
                "incremental={incremental}: expected certified Unsat, got {r:?}"
            );
            assert_eq!(s.stats.statically_discharged, 1);
            assert_eq!(
                s.stats.certified_unsat, 1,
                "incremental={incremental}: discharge shipped without a checked proof"
            );
        }
    }

    /// Satisfiable queries still come back Sat with a valid model when
    /// the pass rewrites (and COI-drops) conjuncts.
    #[test]
    fn simplify_preserves_sat_models() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(32));
        let y = ctx.var("y", Sort::Bv(32));
        let z = ctx.var("z", Sort::Bv(32));
        let c10 = ctx.bv_const(32, 10);
        let ex = ctx.eq(x, c10);
        let sum = ctx.bv_add(x, y);
        let c100 = ctx.bv_const(32, 100);
        let goal = ctx.eq(sum, c100);
        // An unrelated background fact COI can drop.
        let c7 = ctx.bv_const(32, 7);
        let unrelated = ctx.ult(z, c7);
        let mut s = Solver::with_config(SolverConfig {
            incremental: false,
            simplify: true,
            ..SolverConfig::default()
        });
        s.assert(&mut ctx, ex);
        s.assert(&mut ctx, unrelated);
        s.push();
        s.assert(&mut ctx, goal);
        match s.check(&mut ctx) {
            SatResult::Sat(m) => {
                assert_eq!(m.eval_bv(&ctx, x), Some(10));
                assert_eq!(m.eval_bv(&ctx, y), Some(90));
                assert!(m.eval_bv(&ctx, z).unwrap_or(0) < 7);
            }
            r => panic!("expected sat, got {r:?}"),
        }
        s.pop();
    }

    /// Incremental sessions keep answering correctly across scopes with
    /// the pass enabled; a scoped contradiction discharges without
    /// advancing the encode watermarks, and popping it recovers Sat.
    #[test]
    fn incremental_simplify_across_scopes() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(16));
        let c5 = ctx.bv_const(16, 5);
        let lt = ctx.ult(x, c5);
        let mut s = Solver::with_config(SolverConfig {
            simplify: true,
            ..SolverConfig::default()
        });
        s.assert(&mut ctx, lt);
        assert!(s.check(&mut ctx).is_sat());
        s.push();
        let ge5 = ctx.ule(c5, x);
        s.assert(&mut ctx, ge5);
        let r = s.check(&mut ctx);
        assert!(
            matches!(r, SatResult::StaticallyDischarged),
            "expected scoped discharge, got {r:?}"
        );
        s.pop();
        // The discharged pending assertion died with its scope; the
        // session continues as if it was never encoded.
        match s.check(&mut ctx) {
            SatResult::Sat(m) => assert!(m.eval_bv(&ctx, x).unwrap_or(99) < 5),
            r => panic!("expected sat after pop, got {r:?}"),
        }
    }
}
