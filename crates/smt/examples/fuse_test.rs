use hk_smt::term::{BvBinOp, Ctx, Sort};
fn main() {
    let mut ctx = Ctx::new();
    let x = ctx.var("x", Sort::Bv(64));
    let c5 = ctx.bv_const(64, 5);
    let c9 = ctx.bv_const(64, 9);
    let c1 = ctx.sle(c5, x);
    let c2 = ctx.slt(x, c9);
    let one = ctx.bv_const(64, 1);
    let zero = ctx.bv_const(64, 0);
    let w1 = ctx.ite(c1, one, zero);
    let w2 = ctx.ite(c2, one, zero);
    let seed = ctx.bv_const(64, 1);
    let a1 = ctx.bv_bin(BvBinOp::And, seed, w1);
    println!("a1 = {}", ctx.display(a1));
    let a2 = ctx.bv_bin(BvBinOp::And, a1, w2);
    println!("a2 = {}", ctx.display(a2));
    let eq = ctx.eq(one, a2);
    println!("eq = {}", ctx.display(eq));
}
