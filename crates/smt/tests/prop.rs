//! Randomized property tests for the SMT pipeline, driven by the
//! vendored PRNG (offline, no external crates).
//!
//! Two oracles anchor the whole solver:
//!
//! 1. Random term generators + the ground evaluator check that whatever
//!    the full pipeline (Ackermann → bit-blast → CDCL) claims `Sat` is a
//!    genuine model, and that formulas with a known witness are never
//!    reported `Unsat`.
//! 2. Random small CNFs are solved both by the CDCL core and by brute
//!    force, and the sat/unsat verdicts must agree.

mod common;

use common::XorShift64;
use hk_smt::eval::{Assignment, Value};
use hk_smt::sat::{SatOutcome, SatSolver};
use hk_smt::term::TermData;
use hk_smt::{BvBinOp, CmpOp, Ctx, SatResult, Solver, Sort};

// ---------------------------------------------------------------------
// CDCL vs brute force on random CNFs.
// ---------------------------------------------------------------------

fn brute_force_sat(num_vars: u32, clauses: &[Vec<i32>]) -> bool {
    'outer: for bits in 0..(1u64 << num_vars) {
        for c in clauses {
            let sat = c.iter().any(|&l| {
                let v = l.unsigned_abs() as u64;
                let val = bits >> (v - 1) & 1 == 1;
                (l > 0) == val
            });
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

#[test]
fn cdcl_agrees_with_brute_force() {
    let mut rng = XorShift64::new(0xc0ffee);
    for _case in 0..256 {
        let n_clauses = 1 + rng.below(23) as usize;
        let clauses: Vec<Vec<i32>> = (0..n_clauses)
            .map(|_| {
                let len = 1 + rng.below(3) as usize;
                (0..len)
                    .map(|_| {
                        let v = 1 + rng.below(8) as i32;
                        if rng.chance(1, 2) {
                            -v
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        let expected = brute_force_sat(8, &clauses);
        let mut s = SatSolver::new();
        s.reserve_vars(8);
        let mut ok = true;
        for c in &clauses {
            if !s.add_clause(c) {
                ok = false;
                break;
            }
        }
        let outcome = if ok { s.solve() } else { SatOutcome::Unsat };
        match outcome {
            SatOutcome::Sat => {
                assert!(
                    expected,
                    "CDCL said sat, brute force says unsat: {clauses:?}"
                )
            }
            SatOutcome::Unsat => {
                assert!(
                    !expected,
                    "CDCL said unsat, brute force says sat: {clauses:?}"
                )
            }
            SatOutcome::Unknown => panic!("unexpected unknown on {clauses:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Bit-blasted operations vs the ground evaluator.
// ---------------------------------------------------------------------

/// Checks that asserting `op(a, b) == expected` (computed by the
/// evaluator) is satisfiable, and that asserting a disagreement is not.
fn check_binop(width: u32, op: BvBinOp, a: u64, b: u64) {
    let mut ctx = Ctx::new();
    let x = ctx.var("x", Sort::Bv(width));
    let y = ctx.var("y", Sort::Bv(width));
    let r = ctx.bv_bin(op, x, y);
    let ca = ctx.bv_const(width, a);
    let cb = ctx.bv_const(width, b);
    let expected = op.apply(
        width,
        a & hk_smt::term::mask(width),
        b & hk_smt::term::mask(width),
    );
    let cexp = ctx.bv_const(width, expected);
    let ex = ctx.eq(x, ca);
    let ey = ctx.eq(y, cb);
    let er = ctx.ne(r, cexp);
    // x == a && y == b && op(x,y) != expected must be UNSAT.
    let mut s = Solver::new();
    s.assert(&mut ctx, ex);
    s.assert(&mut ctx, ey);
    s.assert(&mut ctx, er);
    match s.check(&mut ctx) {
        SatResult::Unsat => {}
        SatResult::Sat(m) => panic!(
            "circuit for {op:?} w{width} disagrees with evaluator on ({a}, {b}): circuit gave {:?}, expected {expected}",
            m.eval_bv(&ctx, r)
        ),
        SatResult::Unknown => panic!("unknown"),
        SatResult::StaticallyDischarged => panic!("static discharge with simplify off"),
    }
}

fn check_cmp(width: u32, op: CmpOp, a: u64, b: u64) {
    let mut ctx = Ctx::new();
    let x = ctx.var("x", Sort::Bv(width));
    let y = ctx.var("y", Sort::Bv(width));
    let r = ctx.cmp(op, x, y);
    let ca = ctx.bv_const(width, a);
    let cb = ctx.bv_const(width, b);
    let m = hk_smt::term::mask(width);
    let expected = op.apply(width, a & m, b & m);
    let ex = ctx.eq(x, ca);
    let ey = ctx.eq(y, cb);
    let target = ctx.bool_const(!expected);
    let er = ctx.eq(r, target);
    let mut s = Solver::new();
    s.assert(&mut ctx, ex);
    s.assert(&mut ctx, ey);
    s.assert(&mut ctx, er);
    assert!(
        s.check(&mut ctx).is_unsat(),
        "comparison {op:?} w{width} disagrees with evaluator on ({a}, {b})"
    );
}

const BIN_OPS: [BvBinOp; 11] = [
    BvBinOp::Add,
    BvBinOp::Sub,
    BvBinOp::Mul,
    BvBinOp::Udiv,
    BvBinOp::Urem,
    BvBinOp::And,
    BvBinOp::Or,
    BvBinOp::Xor,
    BvBinOp::Shl,
    BvBinOp::Lshr,
    BvBinOp::Ashr,
];

#[test]
fn binop_circuits_match_evaluator() {
    let widths = [8u32, 13, 64];
    let mut rng = XorShift64::new(1);
    for _case in 0..48 {
        let op = BIN_OPS[rng.below(BIN_OPS.len() as u64) as usize];
        let w = widths[rng.below(3) as usize];
        check_binop(w, op, rng.next_u64(), rng.next_u64());
    }
}

#[test]
fn cmp_circuits_match_evaluator() {
    let ops = [CmpOp::Ult, CmpOp::Ule, CmpOp::Slt, CmpOp::Sle];
    let widths = [8u32, 13, 64];
    let mut rng = XorShift64::new(2);
    for _case in 0..48 {
        let op = ops[rng.below(4) as usize];
        let w = widths[rng.below(3) as usize];
        check_cmp(w, op, rng.next_u64(), rng.next_u64());
    }
}

#[test]
fn shift_amounts_including_oversize() {
    let ops = [BvBinOp::Shl, BvBinOp::Lshr, BvBinOp::Ashr];
    let mut rng = XorShift64::new(3);
    for _case in 0..48 {
        let op = ops[rng.below(3) as usize];
        let a = rng.next_u64();
        let amt = rng.below(130);
        check_binop(64, op, a, amt);
        check_binop(8, op, a, amt);
    }
}

// ---------------------------------------------------------------------
// Models returned by the solver always satisfy the assertions (the
// solver validates internally; this exercises that path end to end with
// UFs in the mix).
// ---------------------------------------------------------------------

#[test]
fn uf_formulas_model_or_unsat() {
    let mut rng = XorShift64::new(4);
    for _case in 0..32 {
        let k1 = rng.below(4);
        let k2 = rng.below(4);
        let v1 = rng.below(256) as u8;
        let v2 = rng.below(256) as u8;
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(8));
        let i1 = ctx.bv_const(64, k1);
        let i2 = ctx.bv_const(64, k2);
        let a1 = ctx.apply(f, &[i1]);
        let a2 = ctx.apply(f, &[i2]);
        let c1 = ctx.bv_const(8, v1 as u64);
        let c2 = ctx.bv_const(8, v2 as u64);
        let e1 = ctx.eq(a1, c1);
        let e2 = ctx.eq(a2, c2);
        let mut s = Solver::new();
        s.assert(&mut ctx, e1);
        s.assert(&mut ctx, e2);
        let result = s.check(&mut ctx);
        // Satisfiable unless the same index is constrained to two values.
        let should_be_sat = k1 != k2 || v1 == v2;
        assert_eq!(result.is_sat(), should_be_sat);
        if let SatResult::Sat(m) = result {
            assert_eq!(m.eval_bv(&ctx, a1), Some(v1 as u64));
        }
    }
}

#[test]
fn ite_chains_evaluate_consistently() {
    let mut rng = XorShift64::new(5);
    for _case in 0..32 {
        let sel = rng.below(8);
        let vals: Vec<u8> = (0..8).map(|_| rng.below(256) as u8).collect();
        // read(sel) over an 8-entry ite chain equals vals[sel].
        let mut ctx = Ctx::new();
        let idx = ctx.var("idx", Sort::Bv(64));
        let mut read = ctx.bv_const(8, 0);
        for i in (0..8).rev() {
            let ci = ctx.bv_const(64, i as u64);
            let cond = ctx.eq(idx, ci);
            let v = ctx.bv_const(8, vals[i] as u64);
            read = ctx.ite(cond, v, read);
        }
        let csel = ctx.bv_const(64, sel);
        let esel = ctx.eq(idx, csel);
        let cval = ctx.bv_const(8, vals[sel as usize] as u64);
        let ne = ctx.ne(read, cval);
        let mut s = Solver::new();
        s.assert(&mut ctx, esel);
        s.assert(&mut ctx, ne);
        assert!(s.check(&mut ctx).is_unsat());
        // And the evaluator agrees.
        let mut asg = Assignment::new();
        if let TermData::Var(v) = ctx.data(idx) {
            asg.set_var(*v, Value::Bv(sel));
        }
        assert_eq!(
            hk_smt::eval::eval_bv(&ctx, read, &asg),
            vals[sel as usize] as u64
        );
    }
}
