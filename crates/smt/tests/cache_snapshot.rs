//! Concurrency tests for the query-cache disk snapshot: multiple
//! writers hammering one snapshot path must *merge* (advisory lock +
//! merge-on-save + atomic rename) instead of clobbering each other, and
//! a reader must never observe a torn file.
//!
//! The two-process test re-executes this test binary (the
//! `two_process_snapshot_helper` "test" doubles as the child entry
//! point, gated on an environment variable) so the advisory lock is
//! exercised across real process boundaries, not just between threads.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use hk_smt::cache::{CachedModel, CachedVerdict, QueryCache, QueryKey};

fn key(i: u64) -> QueryKey {
    QueryKey([i, i.wrapping_mul(3), i ^ 0xabcd, 4])
}

fn verdict(i: u64) -> CachedVerdict {
    if i.is_multiple_of(2) {
        CachedVerdict::Unsat
    } else {
        CachedVerdict::Sat(CachedModel::default())
    }
}

/// Inserts keys `[base, base + count)` in `rounds` chunks, snapshotting
/// after every chunk so writers interleave heavily.
fn write_range(path: &std::path::Path, base: u64, count: u64, rounds: u64) {
    let cache = QueryCache::new(usize::MAX);
    let chunk = count.div_ceil(rounds).max(1);
    let mut i = base;
    while i < base + count {
        for j in i..(i + chunk).min(base + count) {
            cache.insert(key(j), verdict(j));
        }
        i += chunk;
        cache
            .save_snapshot(path)
            .expect("snapshot save must succeed under contention");
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hk-cache-snap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_union(path: &std::path::Path, total: u64) {
    let merged = QueryCache::new(usize::MAX);
    let loaded = merged.load_snapshot(path).expect("snapshot must parse");
    assert_eq!(loaded as u64, total, "snapshot lost entries");
    for i in 0..total {
        assert_eq!(
            merged.lookup(&key(i)),
            Some(verdict(i)),
            "entry {i} missing or wrong after merge"
        );
    }
}

/// Child entry point for the two-process test: does nothing unless the
/// parent set `HK_SNAPSHOT_HELPER`, in which case it writes its range
/// and exits.
#[test]
fn two_process_snapshot_helper() {
    let Ok(path) = std::env::var("HK_SNAPSHOT_HELPER") else {
        return;
    };
    let base: u64 = std::env::var("HK_SNAPSHOT_BASE").unwrap().parse().unwrap();
    let count: u64 = std::env::var("HK_SNAPSHOT_COUNT").unwrap().parse().unwrap();
    write_range(std::path::Path::new(&path), base, count, 8);
}

/// Two separate processes snapshotting to the same path concurrently:
/// the surviving file holds the union of both ranges.
#[test]
fn two_processes_merge_into_one_snapshot() {
    let dir = scratch_dir("proc");
    let path = dir.join("qcache.snap");
    let exe = std::env::current_exe().unwrap();

    let spawn = |base: u64, count: u64| {
        Command::new(&exe)
            .args([
                "--exact",
                "two_process_snapshot_helper",
                "--test-threads",
                "1",
            ])
            .env("HK_SNAPSHOT_HELPER", &path)
            .env("HK_SNAPSHOT_BASE", base.to_string())
            .env("HK_SNAPSHOT_COUNT", count.to_string())
            .spawn()
            .expect("failed to spawn helper process")
    };
    let mut a = spawn(0, 40);
    let mut b = spawn(40, 40);
    assert!(a.wait().unwrap().success(), "helper process A failed");
    assert!(b.wait().unwrap().success(), "helper process B failed");

    assert_union(&path, 80);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Four threads (distinct cache instances, so distinct lock-file
/// descriptors) snapshotting the same path: same union guarantee, with
/// far more interleavings per run than the process test can afford.
#[test]
fn concurrent_snapshotters_union_under_contention() {
    let dir = scratch_dir("thread");
    let path = Arc::new(dir.join("qcache.snap"));

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let path = Arc::clone(&path);
            scope.spawn(move || write_range(&path, t * 25, 25, 5));
        }
    });

    assert_union(&path, 100);
    let _ = std::fs::remove_dir_all(&dir);
}
