//! Budget-escalation behavior: a query that exhausts its conflict
//! budget is retried once with 4x the budget before `Unknown` is
//! reported (the fix for `sys_alloc_pdpt` going `UNKNOWN` in the
//! BENCH_PR2 table). The escalated retry must stay inside the per-call
//! stats delta, and the knob must actually gate the behavior.

use hk_smt::{Ctx, SatResult, Solver, SolverConfig, Sort, TermId};

/// A conflict-heavy Unsat instance: n-pigeons / m-holes over Bools.
fn assert_pigeonhole(ctx: &mut Ctx, s: &mut Solver, n: u32, m: u32) {
    let p: Vec<Vec<TermId>> = (0..n)
        .map(|i| {
            (0..m)
                .map(|j| ctx.var(format!("e_p{i}_{j}"), Sort::Bool))
                .collect()
        })
        .collect();
    for row in &p {
        let some_hole = ctx.or(row);
        s.assert(ctx, some_hole);
    }
    for (a, row_a) in p.iter().enumerate() {
        for row_b in &p[a + 1..] {
            for (&pa, &pb) in row_a.iter().zip(row_b) {
                let both = ctx.and(&[pa, pb]);
                let not_both = ctx.not(both);
                s.assert(ctx, not_both);
            }
        }
    }
}

fn config(incremental: bool, escalate: bool, budget: Option<u64>) -> SolverConfig {
    let mut c = SolverConfig {
        incremental,
        escalate_unknown: escalate,
        ..SolverConfig::default()
    };
    c.sat.max_conflicts = budget;
    c
}

/// Conflicts the instance actually needs under the given pipeline.
fn conflicts_needed(incremental: bool) -> u64 {
    let mut ctx = Ctx::new();
    let mut s = Solver::with_config(config(incremental, false, None));
    assert_pigeonhole(&mut ctx, &mut s, 7, 6);
    assert!(s.check(&mut ctx).is_unsat());
    s.stats.conflicts
}

#[test]
fn unknown_escalates_once_and_resolves() {
    for incremental in [false, true] {
        let needed = conflicts_needed(incremental);
        assert!(
            needed > 4,
            "instance too easy to starve ({needed} conflicts)"
        );
        // Starve the first attempt, leave the 4x retry plenty of room.
        let budget = needed / 2 + 1;
        let mut ctx = Ctx::new();
        let mut s = Solver::with_config(config(incremental, true, Some(budget)));
        assert_pigeonhole(&mut ctx, &mut s, 7, 6);
        assert!(
            s.check(&mut ctx).is_unsat(),
            "incremental={incremental}: escalated retry failed to resolve"
        );
        assert_eq!(
            s.stats.escalations, 1,
            "incremental={incremental}: escalation not recorded"
        );
        // The delta invariant: both attempts' work lands in this call's
        // stats, so the conflict count exceeds the starved budget.
        assert!(
            s.stats.conflicts > budget,
            "incremental={incremental}: stats dropped the first attempt"
        );
    }
}

#[test]
fn escalation_disabled_reports_unknown() {
    for incremental in [false, true] {
        let needed = conflicts_needed(incremental);
        let budget = needed / 2 + 1;
        let mut ctx = Ctx::new();
        let mut s = Solver::with_config(config(incremental, false, Some(budget)));
        assert_pigeonhole(&mut ctx, &mut s, 7, 6);
        assert!(
            matches!(s.check(&mut ctx), SatResult::Unknown),
            "incremental={incremental}: starved query did not report Unknown"
        );
        assert_eq!(s.stats.escalations, 0);
    }
}

#[test]
fn satisfiable_queries_never_escalate() {
    let mut ctx = Ctx::new();
    let mut s = Solver::with_config(config(true, true, Some(100_000)));
    let x = ctx.var("x", Sort::Bv(8));
    let c1 = ctx.bv_const(8, 1);
    let gt = ctx.ult(c1, x);
    s.assert(&mut ctx, gt);
    assert!(s.check(&mut ctx).is_sat());
    assert_eq!(s.stats.escalations, 0);
}
