//! Certified-Unsat integration: the CDCL core logs binary-DRAT proofs
//! and the independent checker in `hk-proof` must accept every Unsat,
//! in oneshot and incremental (assumption-driven) configurations alike.

use hk_proof::check_proof;
use hk_smt::sat::{SatOutcome, SatSolver};

/// Checks the solver's proof stream and asserts the refutation target.
/// `expected` is the concluding clause the Unsat answer claims: empty
/// for an unconditional Unsat, the negated failed-assumption set for an
/// assumption-driven one (the checker may also conclude the stronger
/// empty clause).
fn assert_proof_checks(s: &SatSolver, expected: &[i32]) -> hk_proof::CheckOutcome {
    let proof = s.proof().expect("proof logging was started");
    let out = check_proof(proof.bytes())
        .unwrap_or_else(|e| panic!("proof rejected by independent checker: {e}"));
    let mut want = expected.to_vec();
    want.sort_unstable();
    want.dedup();
    assert!(
        out.final_clause.is_empty() || out.final_clause == want,
        "final clause {:?} proves neither the empty clause nor {:?}",
        out.final_clause,
        want
    );
    out
}

fn pigeonhole(n: i32, m: i32) -> Vec<Vec<i32>> {
    let v = |i: i32, j: i32| i * m + j + 1;
    let mut clauses: Vec<Vec<i32>> = Vec::new();
    for i in 0..n {
        clauses.push((0..m).map(|j| v(i, j)).collect());
    }
    for j in 0..m {
        for a in 0..n {
            for b in (a + 1)..n {
                clauses.push(vec![-v(a, j), -v(b, j)]);
            }
        }
    }
    clauses
}

#[test]
fn pigeonhole_refutation_is_certified() {
    let mut s = SatSolver::new();
    s.start_proof();
    for c in pigeonhole(5, 4) {
        if !s.add_clause(&c) {
            break;
        }
    }
    assert_eq!(s.solve(), SatOutcome::Unsat);
    let out = assert_proof_checks(&s, &[]);
    assert!(out.final_clause.is_empty());
    assert!(out.lemmas > 0, "a real refutation learns clauses");
}

#[test]
fn trivially_false_clause_is_certified() {
    let mut s = SatSolver::new();
    s.start_proof();
    assert!(s.add_clause(&[1, 2]));
    assert!(s.add_clause(&[-1]));
    assert!(!s.add_clause(&[-2])); // empties at level 0
    assert_eq!(s.solve(), SatOutcome::Unsat);
    assert_proof_checks(&s, &[]);
}

#[test]
fn assumption_conflict_lemma_is_certified() {
    let mut s = SatSolver::new();
    s.start_proof();
    assert!(s.add_clause(&[1, 2]));
    assert!(s.add_clause(&[-1, 3]));
    assert_eq!(s.solve_with_assumptions(&[1, -3]), SatOutcome::Unsat);
    let expected: Vec<i32> = s.failed_assumptions().iter().map(|&l| -l).collect();
    assert_proof_checks(&s, &expected);
}

#[test]
fn duplicate_contradictory_assumptions_yield_a_tautology_lemma() {
    let mut s = SatSolver::new();
    s.start_proof();
    assert!(s.add_clause(&[1, 2, 3]));
    assert_eq!(s.solve_with_assumptions(&[2, -2]), SatOutcome::Unsat);
    let expected: Vec<i32> = s.failed_assumptions().iter().map(|&l| -l).collect();
    assert_proof_checks(&s, &expected);
}

#[test]
fn incremental_session_with_deletions_is_certified_at_each_unsat() {
    // Activation-literal driven session over a pigeonhole instance large
    // enough to trigger learnt-clause database reductions, interleaving
    // Sat and Unsat calls. Each Unsat's proof must check over the whole
    // stream logged so far — the exact shape the certified solver uses.
    let n = 6i32;
    let m = 5i32;
    let act = n * m + 1;
    let v = |i: i32, j: i32| i * m + j + 1;
    let mut s = SatSolver::new();
    s.start_proof();
    for i in 0..n {
        let mut c: Vec<i32> = (0..m).map(|j| v(i, j)).collect();
        c.push(-act);
        s.add_clause(&c);
    }
    for j in 0..m {
        for a in 0..n {
            for b in (a + 1)..n {
                s.add_clause(&[-v(a, j), -v(b, j), -act]);
            }
        }
    }
    assert_eq!(s.solve_with_assumptions(&[act]), SatOutcome::Unsat);
    let expected: Vec<i32> = s.failed_assumptions().iter().map(|&l| -l).collect();
    let first = assert_proof_checks(&s, &expected);

    // A Sat interlude (deactivated scope) must not corrupt the stream.
    assert_eq!(s.solve_with_assumptions(&[-act]), SatOutcome::Sat);

    // Re-query the unsat scope: learnt clauses are reused, the stream
    // now holds two concluding lemmas, and the last one is the target.
    assert_eq!(s.solve_with_assumptions(&[act]), SatOutcome::Unsat);
    let expected: Vec<i32> = s.failed_assumptions().iter().map(|&l| -l).collect();
    let second = assert_proof_checks(&s, &expected);
    assert!(second.steps >= first.steps);

    // Permanently close the scope and pin the contradiction: the stream
    // ends in the empty clause.
    s.add_clause(&[act]);
    assert_eq!(s.solve(), SatOutcome::Unsat);
    let last = assert_proof_checks(&s, &[]);
    assert!(last.final_clause.is_empty());
}

#[test]
fn proof_trimming_reports_a_core() {
    // Refute pigeonhole(4, 3) alongside an irrelevant satisfiable
    // subformula: the trimmed core must not need every lemma learnt
    // while the solver wandered the irrelevant part.
    let mut s = SatSolver::new();
    s.start_proof();
    let base = 100;
    for i in 0..8 {
        s.add_clause(&[base + i, base + i + 1]);
    }
    for c in pigeonhole(4, 3) {
        if !s.add_clause(&c) {
            break;
        }
    }
    assert_eq!(s.solve(), SatOutcome::Unsat);
    let out = assert_proof_checks(&s, &[]);
    assert!(out.core_lemmas <= out.lemmas);
    assert!(out.trim_ratio() <= 1.0);
}

#[test]
fn disabled_logging_emits_nothing() {
    let mut s = SatSolver::new();
    for c in pigeonhole(3, 2) {
        s.add_clause(&c);
    }
    assert_eq!(s.solve(), SatOutcome::Unsat);
    assert!(s.proof().is_none());
}

// ----------------------------------------------------------------------
// Solver-level certification: the full Ackermann + bit-blast pipeline.
// ----------------------------------------------------------------------

use hk_smt::{Ctx, SolverConfig, Sort, TermId};
use std::sync::Arc;

fn certified(incremental: bool) -> SolverConfig {
    SolverConfig {
        incremental,
        certify: true,
        ..SolverConfig::default()
    }
}

/// `x < 5 && 10 < x` — unsat through the whole pipeline.
fn unsat_vc(ctx: &mut Ctx) -> Vec<TermId> {
    let x = ctx.var("x", Sort::Bv(16));
    let c5 = ctx.bv_const(16, 5);
    let c10 = ctx.bv_const(16, 10);
    vec![ctx.ult(x, c5), ctx.ult(c10, x)]
}

#[test]
fn solver_certifies_unsat_oneshot_and_incremental() {
    for incremental in [false, true] {
        let mut ctx = Ctx::new();
        let mut s = hk_smt::Solver::with_config(certified(incremental));
        for t in unsat_vc(&mut ctx) {
            s.assert(&mut ctx, t);
        }
        assert!(s.check(&mut ctx).is_unsat());
        assert_eq!(s.stats.unsat_queries, 1, "incremental={incremental}");
        assert_eq!(s.stats.certified_unsat, 1, "incremental={incremental}");
        assert_eq!(s.stats.proofs_checked, 1);
        assert!(s.stats.proof_steps > 0, "a refutation emits proof steps");
        assert!(s.stats.proof_bytes > 0);
    }
}

#[test]
fn certified_incremental_session_across_push_pop() {
    // The shape the verifier drives: one persistent solver, scoped
    // queries, Sat and Unsat interleaved, every Unsat certified against
    // a proof stream that spans the entire session.
    let mut ctx = Ctx::new();
    let mut s = hk_smt::Solver::with_config(certified(true));
    let x = ctx.var("x", Sort::Bv(16));
    let c5 = ctx.bv_const(16, 5);
    let lt = ctx.ult(x, c5);
    s.assert(&mut ctx, lt);

    s.push();
    let c10 = ctx.bv_const(16, 10);
    let gt = ctx.ult(c10, x);
    s.assert(&mut ctx, gt);
    assert!(s.check(&mut ctx).is_unsat());
    assert_eq!(s.stats.certified_unsat, 1);
    s.pop();

    // Retracted: Sat again; the Sat path must not disturb the stream.
    assert!(s.check(&mut ctx).is_sat());
    assert_eq!(s.stats.certified_unsat, 0);

    // A second scoped contradiction over grown state.
    s.push();
    let c4 = ctx.bv_const(16, 4);
    let ge4 = ctx.ule(c4, x);
    s.assert(&mut ctx, ge4);
    let c3 = ctx.bv_const(16, 3);
    let le3 = ctx.ule(x, c3);
    s.assert(&mut ctx, le3);
    assert!(s.check(&mut ctx).is_unsat());
    assert_eq!(s.stats.certified_unsat, 1);
    s.pop();

    assert_eq!(s.totals.unsat_queries, 2);
    assert_eq!(s.totals.certified_unsat, 2);
    assert_eq!(s.totals.proofs_checked, 2);
}

#[test]
fn trivially_false_assertions_are_vacuously_certified() {
    for incremental in [false, true] {
        let mut ctx = Ctx::new();
        let mut s = hk_smt::Solver::with_config(certified(incremental));
        let f = ctx.fls();
        s.assert(&mut ctx, f);
        assert!(s.check(&mut ctx).is_unsat());
        assert_eq!(s.stats.unsat_queries, 1);
        assert_eq!(s.stats.certified_unsat, 1);
        assert_eq!(s.stats.proofs_checked, 0, "nothing was encoded");
    }
}

#[test]
fn certify_bypasses_the_query_cache() {
    // Seed a cache with an Unsat verdict, then certify the same VC: the
    // solver must re-solve and re-check rather than trust the entry.
    let cache = Arc::new(hk_smt::QueryCache::new(64));
    let mut ctx = Ctx::new();
    let mut warm = hk_smt::Solver::with_config(SolverConfig {
        cache: Some(cache.clone()),
        ..SolverConfig::default()
    });
    for t in unsat_vc(&mut ctx) {
        warm.assert(&mut ctx, t);
    }
    assert!(warm.check(&mut ctx).is_unsat());
    assert_eq!(warm.stats.cache_misses, 1);

    let mut ctx2 = Ctx::new();
    let mut s = hk_smt::Solver::with_config(SolverConfig {
        cache: Some(cache.clone()),
        certify: true,
        ..SolverConfig::default()
    });
    for t in unsat_vc(&mut ctx2) {
        s.assert(&mut ctx2, t);
    }
    assert!(s.check(&mut ctx2).is_unsat());
    assert_eq!(
        s.stats.cache_hits, 0,
        "certify must not consume cached verdicts"
    );
    assert_eq!(
        s.stats.cache_misses, 0,
        "certify must not touch the cache at all"
    );
    assert_eq!(s.stats.certified_unsat, 1);
    assert_eq!(cache.stats().hits, 0);
}

#[test]
fn proof_log_without_certify_fills_counters_but_checks_nothing() {
    let mut ctx = Ctx::new();
    let mut s = hk_smt::Solver::with_config(SolverConfig {
        proof_log: true,
        ..SolverConfig::default()
    });
    for t in unsat_vc(&mut ctx) {
        s.assert(&mut ctx, t);
    }
    assert!(s.check(&mut ctx).is_unsat());
    assert!(s.stats.proof_steps > 0);
    assert!(s.stats.proof_bytes > 0);
    assert_eq!(s.stats.proofs_checked, 0);
    assert_eq!(s.stats.certified_unsat, 0);
}

#[test]
fn per_call_deltas_sum_to_sat_lifetime_totals_across_pop_without_solve() {
    // The attribution regression: scope churn between checks (pops that
    // plant unit clauses, encodes that load the delta) does SAT-core
    // work outside any `solve` call. Every such unit must land in
    // exactly one per-call delta, so the field-wise sum of the deltas —
    // `totals` — equals the core's own lifetime counters.
    let mut ctx = Ctx::new();
    let mut s = hk_smt::Solver::with_config(certified(true));
    let x = ctx.var("x", Sort::Bv(16));
    let y = ctx.var("y", Sort::Bv(16));
    let sum = ctx.bv_add(x, y);
    let c50 = ctx.bv_const(16, 50);
    let base = ctx.eq(sum, c50);
    s.assert(&mut ctx, base);
    assert!(s.check(&mut ctx).is_sat());

    // Two scopes popped back-to-back with no solve in between: both
    // activation-literal units propagate between checks.
    for k in [7u64, 9u64] {
        s.push();
        let ck = ctx.bv_const(16, k);
        let ek = ctx.eq(x, ck);
        s.assert(&mut ctx, ek);
        assert!(s.check(&mut ctx).is_sat());
        s.pop();
    }
    s.push();
    let c99 = ctx.bv_const(16, 99);
    let gt = ctx.ult(c99, x);
    let c10 = ctx.bv_const(16, 10);
    let lt = ctx.ult(x, c10);
    s.assert(&mut ctx, gt);
    s.assert(&mut ctx, lt);
    assert!(s.check(&mut ctx).is_unsat());
    assert_eq!(s.stats.certified_unsat, 1);
    s.pop();
    // Final check after the last pop so no between-check work is still
    // pending attribution.
    assert!(s.check(&mut ctx).is_sat());

    let sat = s.sat_lifetime_stats().expect("incremental engine exists");
    assert_eq!(s.totals.conflicts, sat.conflicts, "conflicts attribution");
    assert_eq!(s.totals.decisions, sat.decisions, "decisions attribution");
    assert_eq!(
        s.totals.propagations, sat.propagations,
        "propagations attribution (pop-without-solve work must not be dropped)"
    );
    assert_eq!(s.totals.checks, 5);
}
