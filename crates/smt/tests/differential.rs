//! Differential testing of the full solver pipeline against two
//! independent oracles, on randomly generated QF_BV / EUF term DAGs:
//!
//! * **Sat direction**: any model the solver returns must satisfy every
//!   assertion under the ground evaluator.
//! * **Unsat direction**: for UF-free formulas over tiny domains
//!   (≤ 12 assignment bits), exhaustive enumeration of every variable
//!   assignment must agree that no witness exists — and when a witness
//!   does exist, the solver must find one.
//!
//! Formulas with uninterpreted functions cannot be enumerated cheaply,
//! so there the Unsat direction is cross-checked by sampling random
//! concrete function tables: a sampled witness refutes an `Unsat` claim.
//!
//! Everything runs on the vendored PRNG — no network, no external
//! crates.

mod common;

use common::XorShift64;
use hk_smt::eval::{eval_bool, Assignment, Value};
use hk_smt::term::TermData;
use hk_smt::{BvBinOp, CmpOp, Ctx, FuncId, SatResult, Solver, SolverConfig, Sort, TermId, VarId};

/// Re-runs an Unsat verdict under certified mode, in both pipeline
/// configurations: the verdicts must agree, and the certified solver
/// itself panics if the independent checker rejects its proof.
fn assert_certified_rerun_agrees(ctx: &mut Ctx, assertions: &[TermId], case: u64) {
    for incremental in [false, true] {
        let mut s = Solver::with_config(SolverConfig {
            certify: true,
            incremental,
            ..SolverConfig::default()
        });
        for &t in assertions {
            s.assert(ctx, t);
        }
        assert!(
            s.check(ctx).is_unsat(),
            "case {case}: certified re-run (incremental={incremental}) disagrees with Unsat"
        );
        assert_eq!(
            s.stats.certified_unsat, s.stats.unsat_queries,
            "case {case}: Unsat answer left uncertified (incremental={incremental})"
        );
    }
}

const WIDTH: u32 = 4;

/// The generator's vocabulary: two bit-vector variables, one boolean
/// variable, and (optionally) a unary uninterpreted function.
struct Vocab {
    bv_vars: Vec<(TermId, VarId)>,
    bool_var: (TermId, VarId),
    func: Option<FuncId>,
}

fn vocab(ctx: &mut Ctx, with_func: bool) -> Vocab {
    let var_id = |ctx: &Ctx, t: TermId| match ctx.data(t) {
        TermData::Var(v) => *v,
        _ => unreachable!("fresh var"),
    };
    let x = ctx.var("x", Sort::Bv(WIDTH));
    let y = ctx.var("y", Sort::Bv(WIDTH));
    let b = ctx.var("b", Sort::Bool);
    Vocab {
        bv_vars: vec![(x, var_id(ctx, x)), (y, var_id(ctx, y))],
        bool_var: (b, var_id(ctx, b)),
        func: with_func.then(|| ctx.func("f", vec![Sort::Bv(WIDTH)], Sort::Bv(WIDTH))),
    }
}

const BIN_OPS: [BvBinOp; 11] = [
    BvBinOp::Add,
    BvBinOp::Sub,
    BvBinOp::Mul,
    BvBinOp::Udiv,
    BvBinOp::Urem,
    BvBinOp::And,
    BvBinOp::Or,
    BvBinOp::Xor,
    BvBinOp::Shl,
    BvBinOp::Lshr,
    BvBinOp::Ashr,
];

fn gen_bv(ctx: &mut Ctx, rng: &mut XorShift64, v: &Vocab, depth: u32) -> TermId {
    if depth == 0 {
        return if rng.chance(1, 2) {
            v.bv_vars[rng.below(v.bv_vars.len() as u64) as usize].0
        } else {
            let c = rng.below(1 << WIDTH);
            ctx.bv_const(WIDTH, c)
        };
    }
    match rng.below(if v.func.is_some() { 5 } else { 4 }) {
        0 => {
            let c = rng.below(1 << WIDTH);
            ctx.bv_const(WIDTH, c)
        }
        1 => v.bv_vars[rng.below(v.bv_vars.len() as u64) as usize].0,
        2 => {
            let op = BIN_OPS[rng.below(BIN_OPS.len() as u64) as usize];
            let a = gen_bv(ctx, rng, v, depth - 1);
            let b = gen_bv(ctx, rng, v, depth - 1);
            ctx.bv_bin(op, a, b)
        }
        3 => {
            let c = gen_bool(ctx, rng, v, depth - 1);
            let t = gen_bv(ctx, rng, v, depth - 1);
            let e = gen_bv(ctx, rng, v, depth - 1);
            ctx.ite(c, t, e)
        }
        _ => {
            let a = gen_bv(ctx, rng, v, depth - 1);
            ctx.apply(v.func.unwrap(), &[a])
        }
    }
}

fn gen_bool(ctx: &mut Ctx, rng: &mut XorShift64, v: &Vocab, depth: u32) -> TermId {
    if depth == 0 {
        return if rng.chance(1, 2) {
            v.bool_var.0
        } else {
            let b = rng.chance(1, 2);
            ctx.bool_const(b)
        };
    }
    match rng.below(6) {
        0 => {
            let ops = [CmpOp::Ult, CmpOp::Ule, CmpOp::Slt, CmpOp::Sle];
            let op = ops[rng.below(4) as usize];
            let a = gen_bv(ctx, rng, v, depth - 1);
            let b = gen_bv(ctx, rng, v, depth - 1);
            ctx.cmp(op, a, b)
        }
        1 => {
            let a = gen_bv(ctx, rng, v, depth - 1);
            let b = gen_bv(ctx, rng, v, depth - 1);
            if rng.chance(1, 2) {
                ctx.eq(a, b)
            } else {
                ctx.ne(a, b)
            }
        }
        2 => {
            let a = gen_bool(ctx, rng, v, depth - 1);
            let b = gen_bool(ctx, rng, v, depth - 1);
            ctx.and(&[a, b])
        }
        3 => {
            let a = gen_bool(ctx, rng, v, depth - 1);
            let b = gen_bool(ctx, rng, v, depth - 1);
            ctx.or(&[a, b])
        }
        4 => {
            let a = gen_bool(ctx, rng, v, depth - 1);
            ctx.not(a)
        }
        _ => v.bool_var.0,
    }
}

/// Builds the assignment `{x, y := bits, b := bit}` for one point of the
/// 2^9 domain.
fn assignment_at(v: &Vocab, point: u64) -> Assignment {
    let mut asg = Assignment::new();
    for (i, &(_, var)) in v.bv_vars.iter().enumerate() {
        asg.set_var(
            var,
            Value::Bv(point >> (i as u32 * WIDTH) & ((1 << WIDTH) - 1)),
        );
    }
    asg.set_var(
        v.bool_var.1,
        Value::Bool(point >> (v.bv_vars.len() as u32 * WIDTH) & 1 == 1),
    );
    asg
}

/// Exhaustively searches the (tiny) assignment space for a witness.
fn enumerate_witness(ctx: &Ctx, v: &Vocab, assertions: &[TermId]) -> Option<u64> {
    let points = 1u64 << (v.bv_vars.len() as u32 * WIDTH + 1);
    (0..points).find(|&p| {
        let asg = assignment_at(v, p);
        assertions.iter().all(|&t| eval_bool(ctx, t, &asg))
    })
}

#[test]
fn random_bv_formulas_agree_with_enumeration() {
    let mut rng = XorShift64::new(0xd1f0);
    for case in 0..96 {
        let mut ctx = Ctx::new();
        let v = vocab(&mut ctx, false);
        let n = 1 + rng.below(3);
        let assertions: Vec<TermId> = (0..n)
            .map(|_| gen_bool(&mut ctx, &mut rng, &v, 4))
            .collect();
        let mut s = Solver::new();
        for &t in &assertions {
            s.assert(&mut ctx, t);
        }
        let witness = enumerate_witness(&ctx, &v, &assertions);
        match s.check(&mut ctx) {
            SatResult::Sat(m) => {
                assert!(
                    assertions
                        .iter()
                        .all(|&t| eval_bool(&ctx, t, &m.assignment)),
                    "case {case}: solver model fails the evaluator"
                );
                assert!(
                    witness.is_some(),
                    "case {case}: solver said sat, enumeration found no witness"
                );
            }
            SatResult::Unsat => {
                assert!(
                    witness.is_none(),
                    "case {case}: solver said unsat, enumeration found witness at {witness:?}"
                );
                assert_certified_rerun_agrees(&mut ctx, &assertions, case);
            }
            SatResult::Unknown => panic!("case {case}: unexpected unknown"),
            SatResult::StaticallyDischarged => {
                panic!("case {case}: static discharge with simplify off")
            }
        }
    }
}

#[test]
fn random_uf_formulas_validate_against_sampling() {
    let mut rng = XorShift64::new(0xef03);
    for case in 0..64 {
        let mut ctx = Ctx::new();
        let v = vocab(&mut ctx, true);
        let n = 1 + rng.below(3);
        let assertions: Vec<TermId> = (0..n)
            .map(|_| gen_bool(&mut ctx, &mut rng, &v, 4))
            .collect();
        let mut s = Solver::new();
        for &t in &assertions {
            s.assert(&mut ctx, t);
        }
        let result = s.check(&mut ctx);
        // Sat direction: the model must satisfy every assertion.
        if let SatResult::Sat(m) = &result {
            assert!(
                assertions
                    .iter()
                    .all(|&t| eval_bool(&ctx, t, &m.assignment)),
                "case {case}: solver model fails the evaluator"
            );
        }
        // Unsat direction: a sampled concrete witness (variables plus a
        // full random table for `f`) refutes an unsat claim.
        if result.is_unsat() {
            let f = v.func.unwrap();
            for _ in 0..200 {
                let mut asg = assignment_at(&v, rng.below(1 << 9));
                let fi = asg.func_mut(f);
                for arg in 0..1u64 << WIDTH {
                    fi.set(vec![arg], rng.below(1 << WIDTH));
                }
                assert!(
                    !assertions.iter().all(|&t| eval_bool(&ctx, t, &asg)),
                    "case {case}: solver said unsat but sampling found a witness"
                );
            }
            assert_certified_rerun_agrees(&mut ctx, &assertions, case);
        }
    }
}
