//! Differential testing of incremental solving against the one-shot
//! baseline, on randomized query sequences over QF_BV / EUF term DAGs.
//!
//! Each case drives ONE long-lived incremental solver through a random
//! interleaving of base-level assertions, `push`/`pop` scopes, scoped
//! assertions, and `check` calls. At every `check` the same active
//! assertion set is also handed to a brand-new one-shot solver
//! (`incremental: false`); the two must agree Sat/Unsat, and every model
//! the incremental solver returns must satisfy the active assertions
//! under the ground evaluator.
//!
//! This exercises exactly the machinery the verifier relies on: the
//! persistent Ackermann table, the monotone CNF encoding, activation
//! literals for retracted scopes, and learnt clauses surviving pops.
//!
//! Everything runs on the vendored PRNG — no network, no external
//! crates.

mod common;

use common::XorShift64;
use hk_smt::eval::eval_bool;
use hk_smt::{BvBinOp, CmpOp, Ctx, FuncId, SatResult, Solver, SolverConfig, Sort, TermId};

const WIDTH: u32 = 4;

struct Vocab {
    bv_vars: Vec<TermId>,
    bool_var: TermId,
    func: Option<FuncId>,
}

fn vocab(ctx: &mut Ctx, with_func: bool) -> Vocab {
    let x = ctx.var("x", Sort::Bv(WIDTH));
    let y = ctx.var("y", Sort::Bv(WIDTH));
    let b = ctx.var("b", Sort::Bool);
    Vocab {
        bv_vars: vec![x, y],
        bool_var: b,
        func: with_func.then(|| ctx.func("f", vec![Sort::Bv(WIDTH)], Sort::Bv(WIDTH))),
    }
}

const BIN_OPS: [BvBinOp; 11] = [
    BvBinOp::Add,
    BvBinOp::Sub,
    BvBinOp::Mul,
    BvBinOp::Udiv,
    BvBinOp::Urem,
    BvBinOp::And,
    BvBinOp::Or,
    BvBinOp::Xor,
    BvBinOp::Shl,
    BvBinOp::Lshr,
    BvBinOp::Ashr,
];

fn gen_bv(ctx: &mut Ctx, rng: &mut XorShift64, v: &Vocab, depth: u32) -> TermId {
    if depth == 0 {
        return if rng.chance(1, 2) {
            v.bv_vars[rng.below(v.bv_vars.len() as u64) as usize]
        } else {
            let c = rng.below(1 << WIDTH);
            ctx.bv_const(WIDTH, c)
        };
    }
    match rng.below(if v.func.is_some() { 5 } else { 4 }) {
        0 => {
            let c = rng.below(1 << WIDTH);
            ctx.bv_const(WIDTH, c)
        }
        1 => v.bv_vars[rng.below(v.bv_vars.len() as u64) as usize],
        2 => {
            let op = BIN_OPS[rng.below(BIN_OPS.len() as u64) as usize];
            let a = gen_bv(ctx, rng, v, depth - 1);
            let b = gen_bv(ctx, rng, v, depth - 1);
            ctx.bv_bin(op, a, b)
        }
        3 => {
            let c = gen_bool(ctx, rng, v, depth - 1);
            let t = gen_bv(ctx, rng, v, depth - 1);
            let e = gen_bv(ctx, rng, v, depth - 1);
            ctx.ite(c, t, e)
        }
        _ => {
            let a = gen_bv(ctx, rng, v, depth - 1);
            ctx.apply(v.func.unwrap(), &[a])
        }
    }
}

fn gen_bool(ctx: &mut Ctx, rng: &mut XorShift64, v: &Vocab, depth: u32) -> TermId {
    if depth == 0 {
        return if rng.chance(1, 2) {
            v.bool_var
        } else {
            let b = rng.chance(1, 2);
            ctx.bool_const(b)
        };
    }
    match rng.below(6) {
        0 => {
            let ops = [CmpOp::Ult, CmpOp::Ule, CmpOp::Slt, CmpOp::Sle];
            let op = ops[rng.below(4) as usize];
            let a = gen_bv(ctx, rng, v, depth - 1);
            let b = gen_bv(ctx, rng, v, depth - 1);
            ctx.cmp(op, a, b)
        }
        1 => {
            let a = gen_bv(ctx, rng, v, depth - 1);
            let b = gen_bv(ctx, rng, v, depth - 1);
            if rng.chance(1, 2) {
                ctx.eq(a, b)
            } else {
                ctx.ne(a, b)
            }
        }
        2 => {
            let a = gen_bool(ctx, rng, v, depth - 1);
            let b = gen_bool(ctx, rng, v, depth - 1);
            ctx.and(&[a, b])
        }
        3 => {
            let a = gen_bool(ctx, rng, v, depth - 1);
            let b = gen_bool(ctx, rng, v, depth - 1);
            ctx.or(&[a, b])
        }
        4 => {
            let a = gen_bool(ctx, rng, v, depth - 1);
            ctx.not(a)
        }
        _ => v.bool_var,
    }
}

/// Decides the same active assertion set with a fresh one-shot solver.
fn oneshot_verdict(ctx: &mut Ctx, active: &[TermId]) -> bool {
    let mut s = Solver::with_config(SolverConfig {
        incremental: false,
        ..SolverConfig::default()
    });
    for &t in active {
        s.assert(ctx, t);
    }
    match s.check(ctx) {
        SatResult::Sat(_) => true,
        SatResult::Unsat => false,
        SatResult::Unknown => panic!("oneshot baseline ran out of budget"),
        SatResult::StaticallyDischarged => {
            panic!("oneshot baseline discharged statically with simplify off")
        }
    }
}

/// One randomized session: a shared context, one incremental solver, and
/// a mirror of its assertion frames for replaying into the baseline.
/// With `certify` the incremental solver re-checks every Unsat against
/// its session-spanning proof stream (scope pops, deletions and all).
fn run_session(case: u64, with_func: bool, certify: bool) {
    let mut rng = XorShift64::new(0xbeef ^ (case.wrapping_mul(0x9e37_79b9)));
    let mut ctx = Ctx::new();
    let v = vocab(&mut ctx, with_func);
    let mut inc = Solver::with_config(SolverConfig {
        certify,
        ..SolverConfig::default()
    });
    // frames[0] is the base level; frames[1..] mirror open scopes.
    let mut frames: Vec<Vec<TermId>> = vec![Vec::new()];
    let mut checks = 0u32;
    let ops = 24 + rng.below(16);
    for _ in 0..ops {
        match rng.below(10) {
            // Assert into the innermost frame (base or scope).
            0..=3 => {
                let t = gen_bool(&mut ctx, &mut rng, &v, 3);
                inc.assert(&mut ctx, t);
                if ctx.const_bool(t) != Some(true) {
                    frames.last_mut().unwrap().push(t);
                }
            }
            4..=5 => {
                inc.push();
                frames.push(Vec::new());
            }
            6 => {
                if inc.num_scopes() > 0 {
                    inc.pop();
                    frames.pop();
                }
            }
            // Check and compare against the baseline.
            _ => {
                checks += 1;
                let active: Vec<TermId> = frames.iter().flatten().copied().collect();
                let trivially_unsat = active.iter().any(|&t| ctx.const_bool(t) == Some(false));
                let expect_sat = !trivially_unsat && oneshot_verdict(&mut ctx, &active);
                match inc.check(&mut ctx) {
                    SatResult::Sat(m) => {
                        assert!(
                            expect_sat,
                            "case {case}: incremental said sat, baseline said unsat \
                             ({} active assertions, {} scopes)",
                            active.len(),
                            inc.num_scopes()
                        );
                        for &t in &active {
                            assert!(
                                eval_bool(&ctx, t, &m.assignment),
                                "case {case}: incremental model fails assertion {}",
                                ctx.display(t)
                            );
                        }
                    }
                    SatResult::Unsat => {
                        assert!(
                            !expect_sat,
                            "case {case}: incremental said unsat, baseline found a model \
                             ({} active assertions, {} scopes)",
                            active.len(),
                            inc.num_scopes()
                        );
                        assert_eq!(
                            inc.stats.certified_unsat,
                            u64::from(certify),
                            "case {case}: Unsat left uncertified"
                        );
                    }
                    SatResult::Unknown => panic!("case {case}: unexpected unknown"),
                    SatResult::StaticallyDischarged => {
                        panic!("case {case}: static discharge with simplify off")
                    }
                }
            }
        }
        // Once the base level is unsatisfiable every later verdict is
        // Unsat by monotonicity; end the session early to keep the
        // generator exploring interesting (satisfiable) prefixes.
        if frames[0].iter().any(|&t| ctx.const_bool(t) == Some(false)) {
            break;
        }
    }
    // Every session must actually have compared something, unless it was
    // cut short by a trivially-false base assertion.
    let _ = checks;
}

#[test]
fn incremental_matches_oneshot_on_bv_sequences() {
    for case in 0..48 {
        run_session(case, false, false);
    }
}

#[test]
fn incremental_matches_oneshot_on_uf_sequences() {
    for case in 0..32 {
        run_session(case, true, false);
    }
}

#[test]
fn certified_incremental_matches_oneshot_on_bv_sequences() {
    for case in 0..24 {
        run_session(case, false, true);
    }
}

#[test]
fn certified_incremental_matches_oneshot_on_uf_sequences() {
    for case in 0..16 {
        run_session(case, true, true);
    }
}

/// Regression shape from the verifier: a fixed satisfiable base (the
/// "invariant") probed by many unsatisfiable scoped queries in a row —
/// the exact pattern of refinement batches, where learnt clauses and the
/// base encoding must survive every pop. Run certified, so each of the
/// 20 refutations is independently re-derived from the proof stream.
#[test]
fn repeated_probe_batches_stay_sound_and_certified() {
    let mut ctx = Ctx::new();
    let x = ctx.var("x", Sort::Bv(8));
    let y = ctx.var("y", Sort::Bv(8));
    let mut s = Solver::with_config(SolverConfig {
        certify: true,
        ..SolverConfig::default()
    });
    // Base: y == x + 1, x < 100.
    let one = ctx.bv_const(8, 1);
    let xp1 = ctx.bv_add(x, one);
    let e = ctx.eq(y, xp1);
    s.assert(&mut ctx, e);
    let c100 = ctx.bv_const(8, 100);
    let lt = ctx.ult(x, c100);
    s.assert(&mut ctx, lt);
    for k in 0..20u64 {
        // Probe: x == k && y != k + 1 — refuted by the base every time.
        s.push();
        let ck = ctx.bv_const(8, k);
        let ek = ctx.eq(x, ck);
        s.assert(&mut ctx, ek);
        let ck1 = ctx.bv_const(8, k + 1);
        let nk = ctx.ne(y, ck1);
        s.assert(&mut ctx, nk);
        assert!(s.check(&mut ctx).is_unsat(), "probe {k} wrongly sat");
        s.pop();
        // And the base stays satisfiable between probes.
        match s.check(&mut ctx) {
            SatResult::Sat(m) => {
                let xv = m.eval_bv(&ctx, x).expect("x assigned");
                let yv = m.eval_bv(&ctx, y).expect("y assigned");
                assert_eq!(yv, (xv + 1) & 0xff);
            }
            r => panic!("base became {r:?} after probe {k}"),
        }
    }
    assert_eq!(s.totals.checks, 40);
    assert_eq!(s.totals.unsat_queries, 20);
    assert_eq!(s.totals.certified_unsat, 20);
    assert_eq!(s.totals.proofs_checked, 20);
    assert!(s.totals.proof_steps > 0);
}

/// Asserts an n-pigeons / m-holes instance over fresh Bool variables —
/// conflict-heavy for the SAT core when n > m, so a scope that carries
/// one leaves behind a large learnt-clause database.
fn assert_pigeonhole(ctx: &mut Ctx, s: &mut Solver, tag: &str, n: u32, m: u32) {
    let p: Vec<Vec<TermId>> = (0..n)
        .map(|i| {
            (0..m)
                .map(|j| ctx.var(format!("{tag}_p{i}_{j}"), Sort::Bool))
                .collect()
        })
        .collect();
    for row in &p {
        let some_hole = ctx.or(row);
        s.assert(ctx, some_hole);
    }
    for (a, row_a) in p.iter().enumerate() {
        for row_b in &p[a + 1..] {
            for (&pa, &pb) in row_a.iter().zip(row_b) {
                let both = ctx.and(&[pa, pb]);
                let not_both = ctx.not(both);
                s.assert(ctx, not_both);
            }
        }
    }
}

/// The regression test for the PR 2 incremental slowdown: a scope that
/// learns a large clause database is popped, and scope-local GC must
/// actually reclaim it so later queries in the session don't pay for
/// retired garbage. With `scope_gc` disabled the counter stays zero —
/// the knob, not luck, is what reclaims the clauses.
#[test]
fn popped_scopes_are_garbage_collected() {
    for scope_gc in [true, false] {
        let mut ctx = Ctx::new();
        let mut s = Solver::with_config(SolverConfig {
            incremental: true,
            scope_gc,
            ..SolverConfig::default()
        });
        let x = ctx.var("x", Sort::Bv(8));
        let c5 = ctx.bv_const(8, 5);
        let base = ctx.ult(x, c5);
        s.assert(&mut ctx, base);

        // Conflict-heavy scope: refuting PHP(7,6) learns many clauses.
        s.push();
        assert_pigeonhole(&mut ctx, &mut s, "a", 7, 6);
        assert!(s.check(&mut ctx).is_unsat());
        let scope_conflicts = s.stats.conflicts;
        assert!(
            scope_conflicts > 50,
            "pigeonhole scope was not conflict-heavy ({scope_conflicts} conflicts)"
        );
        s.pop();

        // The pop retires the scope's activation literal; the next check
        // absorbs the GC delta. Everything the scope asserted — guarded
        // problem clauses and learnt clauses alike — is now dead.
        assert!(s.check(&mut ctx).is_sat());
        if scope_gc {
            assert!(
                s.stats.scope_gc_clauses > 100,
                "scope GC reclaimed only {} clauses",
                s.stats.scope_gc_clauses
            );
        } else {
            assert_eq!(s.stats.scope_gc_clauses, 0, "GC fired with scope_gc off");
        }

        // Hygiene: a later trivial scoped query must not pay for the
        // popped scope. This is the assertion that would have caught
        // the PR 2 regression (retained learnt clauses poisoning
        // subsequent solves).
        s.push();
        let c3 = ctx.bv_const(8, 3);
        let probe = ctx.eq(x, c3);
        s.assert(&mut ctx, probe);
        assert!(s.check(&mut ctx).is_sat());
        if scope_gc {
            assert!(
                s.stats.conflicts < scope_conflicts / 2,
                "post-pop probe still paid {} conflicts (scope had {})",
                s.stats.conflicts,
                scope_conflicts
            );
        }
        s.pop();
    }
}
