#[test]
fn mutual_rewrite_loses_x_constraint() {
    use smt::term::{Ctx, Sort};
    use smt::analysis::{simplify_query, SimplifyOutcome};
    let mut ctx = Ctx::new();
    let y = ctx.var("y", Sort::Bv(8));
    let x = ctx.var("x", Sort::Bv(8)); // x has the higher TermId
    let c5 = ctx.bv_const(8, 5);
    let exy = ctx.eq(x, y);
    let exc = ctx.eq(x, c5);
    match simplify_query(&mut ctx, &[exy, exc], 2, false) {
        SimplifyOutcome::Simplified { assertions, .. } => {
            println!("rewritten assertions:");
            for a in &assertions {
                println!("  {}", ctx.display(*a));
            }
            // soundness requires some surviving constraint on x
            let mentions_x = assertions.iter().any(|&a| {
                fn has(ctx: &Ctx, t: smt::term::TermId, x: smt::term::TermId) -> bool {
                    if t == x { return true; }
                    smt::bitblast::term_children(ctx, t).into_iter().any(|c| has(ctx, c, x))
                }
                has(&ctx, a, x)
            });
            assert!(mentions_x, "UNSOUND: x dropped from the conjunction");
        }
        other => panic!("unexpected: {other:?}"),
    }
}
