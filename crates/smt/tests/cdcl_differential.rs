//! Differential and fuzz testing of the modernized CDCL core, at the
//! `SatSolver` level, on randomized CNF instances (vendored PRNG, fully
//! offline):
//!
//! * **Verdict agreement**: every instance is solved under the full
//!   configuration matrix {activity, LBD reduction} x {restarts on/off}
//!   x {oneshot, incremental push/pop via an activation literal}, and
//!   all verdicts must agree with a reference run. Sat answers are
//!   validated against the clause set; Unsat answers must certify via
//!   the independent `hk_proof::check_proof`.
//! * **Proof integrity under deletion**: randomized incremental
//!   sessions with aggressively scheduled clause-DB reduction, scope
//!   GC, and inprocessing exercise every DRAT `delete` path; the
//!   checker must accept 100% of the generated proofs, and corrupting a
//!   single deletion record must be rejected.

mod common;

use common::XorShift64;
use hk_proof::{check_proof, parse_proof, ProofWriter, StepKind};
use hk_smt::sat::SatOutcome;
use hk_smt::{ReduceStrategy, SatConfig, SatSolver};

/// A random CNF instance over `nvars` variables: mostly ternary clauses
/// with some binaries mixed in, around the 3-SAT hardness ratio so both
/// verdicts occur across seeds.
fn random_cnf(rng: &mut XorShift64, nvars: u64, nclauses: u64) -> Vec<Vec<i32>> {
    let mut clauses = Vec::with_capacity(nclauses as usize);
    for _ in 0..nclauses {
        let len = if rng.chance(1, 4) { 2 } else { 3 };
        let mut clause = Vec::with_capacity(len);
        while clause.len() < len {
            let v = rng.below(nvars) as i32 + 1;
            let lit = if rng.chance(1, 2) { v } else { -v };
            if !clause.contains(&lit) && !clause.contains(&-lit) {
                clause.push(lit);
            }
        }
        clauses.push(clause);
    }
    clauses
}

fn model_satisfies(s: &SatSolver, clauses: &[Vec<i32>]) -> bool {
    clauses.iter().all(|c| {
        c.iter()
            .any(|&l| s.model_value(l.unsigned_abs()) == (l > 0))
    })
}

/// Solves `clauses` oneshot under `config`, certifying any Unsat.
fn solve_oneshot(clauses: &[Vec<i32>], config: SatConfig, case: u64) -> SatOutcome {
    let mut s = SatSolver::with_config(config);
    s.start_proof();
    for c in clauses {
        if !s.add_clause(c) {
            break;
        }
    }
    let out = s.solve();
    match out {
        SatOutcome::Sat => assert!(
            model_satisfies(&s, clauses),
            "case {case}: model does not satisfy the instance"
        ),
        SatOutcome::Unsat => {
            let proof = s.proof().expect("proof logging was started");
            let chk = check_proof(proof.bytes())
                .unwrap_or_else(|e| panic!("case {case}: oneshot proof rejected: {e}"));
            assert!(
                chk.final_clause.is_empty(),
                "case {case}: refutation did not conclude the empty clause"
            );
        }
        SatOutcome::Unknown => panic!("case {case}: unexpected Unknown without a budget"),
    }
    out
}

/// Solves `clauses` inside an activation-guarded scope (the shape the
/// incremental SMT layer produces), then retires the scope with a unit
/// and root-level GC. A prelude scope is opened and popped first so the
/// solve under test runs on a solver that already did scope GC.
fn solve_incremental(clauses: &[Vec<i32>], nvars: u64, config: SatConfig, case: u64) -> SatOutcome {
    let mut s = SatSolver::with_config(config);
    s.start_proof();
    let act0 = nvars as i32 + 1;
    let act1 = nvars as i32 + 2;
    // Prelude scope: half the instance, solved and retired.
    for c in clauses.iter().take(clauses.len() / 2) {
        let mut guarded = vec![-act0];
        guarded.extend_from_slice(c);
        if !s.add_clause(&guarded) {
            break;
        }
    }
    s.solve_with_assumptions(&[act0]);
    s.add_clause(&[-act0]);
    s.simplify();
    // Scope under test: the full instance under a fresh activation var.
    for c in clauses {
        let mut guarded = vec![-act1];
        guarded.extend_from_slice(c);
        if !s.add_clause(&guarded) {
            break;
        }
    }
    let out = s.solve_with_assumptions(&[act1]);
    match out {
        SatOutcome::Sat => assert!(
            model_satisfies(&s, clauses),
            "case {case}: incremental model does not satisfy the instance"
        ),
        SatOutcome::Unsat => {
            let proof = s.proof().expect("proof logging was started");
            let chk = check_proof(proof.bytes())
                .unwrap_or_else(|e| panic!("case {case}: incremental proof rejected: {e}"));
            assert!(
                chk.final_clause.is_empty() || chk.final_clause == vec![-act1],
                "case {case}: final clause {:?} proves neither [] nor [{}]",
                chk.final_clause,
                -act1
            );
        }
        SatOutcome::Unknown => panic!("case {case}: unexpected Unknown without a budget"),
    }
    out
}

fn matrix_configs() -> Vec<SatConfig> {
    let mut configs = Vec::new();
    for strategy in [ReduceStrategy::Activity, ReduceStrategy::Lbd] {
        for restarts in [true, false] {
            configs.push(SatConfig {
                reduce_strategy: strategy,
                restarts,
                // Aggressive schedule so reduction actually fires on
                // instances this small.
                reduce_base: 50,
                reduce_incr: 25,
                ..SatConfig::default()
            });
        }
    }
    configs
}

#[test]
fn cdcl_config_matrix_agrees_on_random_cnf() {
    let mut rng = XorShift64::new(0x5eed_cdc1);
    let (mut sats, mut unsats) = (0u32, 0u32);
    for case in 0..40u64 {
        let nvars = 15 + rng.below(20);
        let nclauses = (nvars as f64 * 4.2) as u64 + rng.below(10);
        let clauses = random_cnf(&mut rng, nvars, nclauses);
        let reference = solve_oneshot(&clauses, SatConfig::default(), case);
        match reference {
            SatOutcome::Sat => sats += 1,
            SatOutcome::Unsat => unsats += 1,
            SatOutcome::Unknown => unreachable!(),
        }
        for (ci, config) in matrix_configs().into_iter().enumerate() {
            let one = solve_oneshot(&clauses, config.clone(), case);
            assert_eq!(
                one, reference,
                "case {case} config {ci}: oneshot verdict disagrees"
            );
            let inc = solve_incremental(&clauses, nvars, config, case);
            assert_eq!(
                inc, reference,
                "case {case} config {ci}: incremental verdict disagrees"
            );
        }
    }
    // The generator straddles the phase transition; both verdicts must
    // actually be exercised or the matrix proves nothing.
    assert!(sats > 0, "corpus produced no Sat instance");
    assert!(unsats > 0, "corpus produced no Unsat instance");
}

/// One randomized incremental session: several scopes of random CNF,
/// each solved under its activation literal and then retired with scope
/// GC, with DB reduction and inprocessing forced on tiny schedules.
/// Returns the solver (for stats and the accumulated proof stream).
fn random_session(seed: u64) -> SatSolver {
    let mut rng = XorShift64::new(seed);
    let mut s = SatSolver::with_config(SatConfig {
        reduce_base: 10,
        reduce_incr: 5,
        ..SatConfig::default()
    });
    s.start_proof();
    let nvars = 20 + rng.below(15);
    let scopes = 3 + rng.below(3);
    for scope in 0..scopes {
        let act = (nvars + 1 + scope) as i32;
        let nclauses = (nvars as f64 * 4.0) as u64 + rng.below(20);
        for c in random_cnf(&mut rng, nvars, nclauses) {
            let mut guarded = vec![-act];
            guarded.extend_from_slice(&c);
            if !s.add_clause(&guarded) {
                return s;
            }
        }
        let out = s.solve_with_assumptions(&[act]);
        if out == SatOutcome::Unsat && !s.is_ok() {
            return s; // globally unsat: the stream ends in the empty clause
        }
        s.add_clause(&[-act]);
        s.simplify();
    }
    s
}

#[test]
fn fuzzed_incremental_sessions_produce_checkable_proofs() {
    let mut reductions = 0u64;
    let mut gc = 0u64;
    let mut deletions = 0u64;
    for seed in 1..=25u64 {
        let s = random_session(seed);
        let proof = s.proof().expect("proof logging was started");
        check_proof(proof.bytes())
            .unwrap_or_else(|e| panic!("seed {seed}: checker rejected the session proof: {e}"));
        reductions += s.stats.db_reductions;
        gc += s.stats.gc_clauses;
        let steps = parse_proof(proof.bytes()).expect("stream parses");
        deletions += steps.iter().filter(|t| t.kind == StepKind::Delete).count() as u64;
    }
    // The schedule is tuned so the fuzz corpus actually exercises every
    // deletion path; a silent zero here would make the test vacuous.
    assert!(reductions > 0, "no DB reduction fired across the corpus");
    assert!(gc > 0, "no scope GC fired across the corpus");
    assert!(deletions > 0, "no deletion records were logged");
}

#[test]
fn corrupted_deletion_record_is_rejected() {
    // Find a session whose proof checks and contains a deletion.
    let mut found = None;
    for seed in 1..=25u64 {
        let s = random_session(seed);
        let bytes = s
            .proof()
            .expect("proof logging was started")
            .bytes()
            .to_vec();
        if check_proof(&bytes).is_ok() {
            let steps = parse_proof(&bytes).expect("stream parses");
            if steps.iter().any(|t| t.kind == StepKind::Delete) {
                found = Some(steps);
                break;
            }
        }
    }
    let steps = found.expect("fuzz corpus contains a checkable proof with deletions");
    // Rebuild the stream, retargeting the first deletion at a clause
    // that was never added: the checker must reject the stream rather
    // than silently ignore a deletion it cannot resolve.
    let mut w = ProofWriter::new();
    let mut corrupted = false;
    for step in &steps {
        match step.kind {
            StepKind::Input => w.add_input(&step.lits),
            StepKind::Add => w.add_lemma(&step.lits),
            StepKind::Delete => {
                if corrupted {
                    w.delete(&step.lits);
                } else {
                    corrupted = true;
                    w.delete(&[9001, -9002]);
                }
            }
        }
    }
    assert!(corrupted, "stream lost its deletion records");
    assert!(
        check_proof(w.bytes()).is_err(),
        "checker accepted a deletion of a clause that was never added"
    );
}
