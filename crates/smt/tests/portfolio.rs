//! Tests for intra-query parallel solving: portfolio racing,
//! cube-and-conquer, learnt-clause sharing, cancellation hygiene, and
//! stats attribution under races.
//!
//! * **Race-vs-sequential differential**: randomized CNF instances are
//!   solved sequentially and by a forced 4-way race (conflict threshold
//!   zero, spare budget); verdicts must agree, Sat models must satisfy
//!   the instance, and every Unsat must certify — whole winning stream
//!   for config winners, per-cube stream prefixes with an exhaustive
//!   sign-cover check for cube winners.
//! * **Cancellation hygiene**: a solver with a pre-set cancel flag
//!   returns `Unknown` without burning the conflict budget; a flag
//!   raised mid-solve on a hard pigeonhole instance stops the solver
//!   promptly; detaching the flag restores normal solving.
//! * **Stats hygiene**: on the term-level `Solver`, lifetime totals
//!   absorb each raced check exactly once — `checks` counts `check`
//!   calls and the race counters in `totals` equal the sum of the
//!   per-call deltas, so no worker's counters are merged twice.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::XorShift64;
use hk_proof::check_proof;
use hk_smt::parallel::{solve_maybe_racing, CubeCert, ParallelConfig, RaceReport};
use hk_smt::sat::SatOutcome;
use hk_smt::{
    CmpOp, CoreBudget, Ctx, SatConfig, SatResult, SatSolver, Solver, SolverConfig, Sort,
    STRATEGY_NAMES,
};

/// A random CNF instance around the 3-SAT hardness ratio (same shape as
/// the CDCL differential suite) so both verdicts occur across seeds.
fn random_cnf(rng: &mut XorShift64, nvars: u64, nclauses: u64) -> Vec<Vec<i32>> {
    let mut clauses = Vec::with_capacity(nclauses as usize);
    for _ in 0..nclauses {
        let len = if rng.chance(1, 4) { 2 } else { 3 };
        let mut clause = Vec::with_capacity(len);
        while clause.len() < len {
            let v = rng.below(nvars) as i32 + 1;
            let lit = if rng.chance(1, 2) { v } else { -v };
            if !clause.contains(&lit) && !clause.contains(&-lit) {
                clause.push(lit);
            }
        }
        clauses.push(clause);
    }
    clauses
}

fn model_satisfies(s: &SatSolver, clauses: &[Vec<i32>]) -> bool {
    clauses.iter().all(|c| {
        c.iter()
            .any(|&l| s.model_value(l.unsigned_abs()) == (l > 0))
    })
}

/// The pigeonhole principle PHP(pigeons, holes): unsatisfiable when
/// `pigeons > holes`, and exponentially hard for resolution/CDCL, which
/// makes it a reliable "will not finish in milliseconds" instance.
fn pigeonhole(pigeons: i32, holes: i32) -> (u32, Vec<Vec<i32>>) {
    let p = |i: i32, j: i32| i * holes + j + 1;
    let mut clauses = Vec::new();
    for i in 0..pigeons {
        clauses.push((0..holes).map(|j| p(i, j)).collect());
    }
    for j in 0..holes {
        for i in 0..pigeons {
            for i2 in (i + 1)..pigeons {
                clauses.push(vec![-p(i, j), -p(i2, j)]);
            }
        }
    }
    ((pigeons * holes) as u32, clauses)
}

fn load(clauses: &[Vec<i32>], proof: bool) -> SatSolver {
    let mut s = SatSolver::with_config(SatConfig::default());
    if proof {
        s.start_proof();
    }
    for c in clauses {
        if !s.add_clause(c) {
            break;
        }
    }
    s
}

/// A parallel config that forces a race on every query: no probe
/// threshold and a budget with spare cores.
fn forced_race(cores: usize) -> ParallelConfig {
    ParallelConfig {
        workers: 4,
        conflict_threshold: 0,
        cube_split_vars: 2,
        budget: Some(Arc::new(CoreBudget::new(cores))),
        ..ParallelConfig::default()
    }
}

/// Checks the per-cube certification payload of a cube-team Unsat win:
/// every recorded conclusion must be a checkable DRAT stream prefix
/// whose final clause negates the failed assumptions, and unless some
/// cube refuted the inputs outright, the solved cubes must exhaustively
/// cover all `2^k` sign combinations of one variable set.
fn verify_cube_certs(certs: &[CubeCert], report: &RaceReport, case: u64) {
    assert!(!certs.is_empty(), "case {case}: cube win without certs");
    let mut globally_refuted = false;
    let mut cube_vars: Vec<Vec<i32>> = Vec::new();
    let mut distinct: Vec<Vec<i32>> = Vec::new();
    for cert in certs {
        let out = check_proof(&cert.proof[..cert.prefix])
            .unwrap_or_else(|e| panic!("case {case}: cube proof prefix rejected: {e}"));
        for &f in &cert.failed {
            assert!(
                cert.cube.contains(&f),
                "case {case}: failed literal {f} is not a cube literal"
            );
        }
        let mut want: Vec<i32> = cert.failed.iter().map(|&l| -l).collect();
        want.sort_unstable();
        want.dedup();
        if out.final_clause.is_empty() {
            globally_refuted = true;
        } else {
            assert_eq!(
                out.final_clause, want,
                "case {case}: cube conclusion does not negate its failed assumptions"
            );
        }
        let mut vars: Vec<i32> = cert.cube.iter().map(|l| l.abs()).collect();
        vars.sort_unstable();
        cube_vars.push(vars);
        let mut cube = cert.cube.clone();
        cube.sort_unstable();
        if !distinct.contains(&cube) {
            distinct.push(cube);
        }
    }
    if !globally_refuted {
        // Exhaustive cover: one split-variable set, all 2^k cubes.
        assert!(
            cube_vars.windows(2).all(|w| w[0] == w[1]),
            "case {case}: cubes split on different variable sets"
        );
        assert_eq!(
            distinct.len() as u64,
            report.cubes_total,
            "case {case}: solved cubes do not cover the full sign expansion"
        );
        assert_eq!(
            1u64 << cube_vars[0].len(),
            report.cubes_total,
            "case {case}: cube count is not 2^k"
        );
    }
}

/// Certifies a raced Unsat: per-cube prefixes for a cube-team win, the
/// winner's whole stream otherwise.
fn certify_raced_unsat(sat: &SatSolver, report: &RaceReport, case: u64) {
    if report.cube_certs.is_empty() {
        let proof = sat.proof().expect("proof logging was started");
        let out = check_proof(proof.bytes())
            .unwrap_or_else(|e| panic!("case {case}: winner proof rejected: {e}"));
        assert!(
            out.final_clause.is_empty(),
            "case {case}: refutation did not conclude the empty clause"
        );
    } else {
        verify_cube_certs(&report.cube_certs, report, case);
    }
}

/// Forced races must agree with the sequential verdict on randomized
/// instances, and every raced Unsat must certify via the independent
/// proof checker — whichever strategy wins.
#[test]
fn racing_agrees_with_sequential_and_certifies() {
    let mut rng = XorShift64::new(0x007a_11e7);
    let mut raced_at_least_once = false;
    let mut cube_wins = 0u64;
    for case in 0..12 {
        let nvars = 24 + rng.below(16);
        let nclauses = nvars * 4 + rng.below(nvars);
        let clauses = random_cnf(&mut rng, nvars, nclauses);

        let mut seq = load(&clauses, false);
        let want = seq.solve();
        assert_ne!(want, SatOutcome::Unknown, "case {case}: baseline Unknown");

        let mut sat = load(&clauses, true);
        let cfg = forced_race(8);
        let (got, report) = solve_maybe_racing(&mut sat, &[], &cfg);
        assert_eq!(got, want, "case {case}: raced verdict disagrees");
        assert!(report.raced, "case {case}: race did not start");
        assert!(report.workers >= 2, "case {case}: race ran solo");
        raced_at_least_once = true;
        match got {
            SatOutcome::Sat => assert!(
                model_satisfies(&sat, &clauses),
                "case {case}: raced model does not satisfy the instance"
            ),
            SatOutcome::Unsat => {
                certify_raced_unsat(&sat, &report, case);
                if report.winner == Some(STRATEGY_NAMES.len() - 1) {
                    cube_wins += 1;
                }
            }
            SatOutcome::Unknown => unreachable!(),
        }

        // The winner was written back with its parallel hooks detached:
        // a repeat solve on the same solver must reproduce the verdict
        // instead of tripping a stale cancel flag.
        assert_eq!(sat.solve(), want, "case {case}: post-race re-solve broke");
    }
    assert!(raced_at_least_once);
    let _ = cube_wins; // timing-dependent; any split of wins is fine
}

/// Same differential with proof logging off and clause sharing on: the
/// exchange path (export at learn, import at restart) must not change
/// verdicts.
#[test]
fn racing_with_clause_sharing_agrees() {
    let mut rng = XorShift64::new(0x005e_a50f);
    for case in 0..12 {
        let nvars = 24 + rng.below(16);
        let nclauses = nvars * 4 + rng.below(nvars);
        let clauses = random_cnf(&mut rng, nvars, nclauses);

        let mut seq = load(&clauses, false);
        let want = seq.solve();

        let mut sat = load(&clauses, false);
        let cfg = ParallelConfig {
            share_glue_max: 6,
            cube_split_vars: 0, // config racers only: all share
            ..forced_race(8)
        };
        let (got, report) = solve_maybe_racing(&mut sat, &[], &cfg);
        assert_eq!(got, want, "case {case}: shared-clause race disagrees");
        assert!(report.raced, "case {case}: race did not start");
        assert_eq!(sat.solve(), want, "case {case}: post-race re-solve broke");
    }
}

/// The cube-only diagnostic mode must refute an unsatisfiable instance
/// through the cube team and produce a full per-cube certification
/// payload (exhaustive sign cover or an outright refutation).
#[test]
fn cube_only_unsat_race_is_certified() {
    let (_, clauses) = pigeonhole(6, 5);
    let mut sat = load(&clauses, true);
    let cfg = ParallelConfig {
        cube_only: true,
        cube_split_vars: 2,
        workers: 3,
        ..forced_race(4)
    };
    let (got, report) = solve_maybe_racing(&mut sat, &[], &cfg);
    assert_eq!(got, SatOutcome::Unsat);
    assert!(report.raced);
    assert_eq!(
        report.winner,
        Some(STRATEGY_NAMES.len() - 1),
        "cube-only race must be won by the cube strategy"
    );
    assert!(report.cubes_total >= 1);
    assert!(report.cubes_solved >= 1);
    verify_cube_certs(&report.cube_certs, &report, 0);
}

/// A solver whose cancel flag is already set answers `Unknown` within
/// its first restart interval (the flag is polled once per CDCL round),
/// and a lowered or detached flag restores normal solving.
#[test]
fn preset_cancel_flag_stops_within_first_round() {
    // Far beyond the solver's reach, so search cannot finish before the
    // first cancel poll.
    let (_, hard) = pigeonhole(12, 11);
    let mut s = load(&hard, false);
    let flag = Arc::new(AtomicBool::new(true));
    s.set_cancel(Some(flag.clone()));
    let start = Instant::now();
    assert_eq!(s.solve(), SatOutcome::Unknown);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "preset cancel took {:?}",
        start.elapsed()
    );

    // A lowered flag never trips; detaching works the same way.
    let mut rng = XorShift64::new(0xc0ffee);
    let clauses = random_cnf(&mut rng, 30, 126);
    let mut s = load(&clauses, false);
    s.set_cancel(Some(flag.clone()));
    flag.store(false, Ordering::SeqCst);
    let first = s.solve();
    assert_ne!(first, SatOutcome::Unknown);
    s.set_cancel(None);
    assert_eq!(s.solve(), first);
}

/// A cancel flag raised mid-solve stops a worker within one CDCL round:
/// on a pigeonhole instance far beyond the solver's reach, the verdict
/// is `Unknown` long before the instance could possibly be solved.
#[test]
fn cancellation_mid_solve_is_prompt() {
    let (_, clauses) = pigeonhole(12, 11);
    let mut s = load(&clauses, false);
    let flag = Arc::new(AtomicBool::new(false));
    s.set_cancel(Some(flag.clone()));

    let start = Instant::now();
    let canceller = {
        let flag = flag.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            flag.store(true, Ordering::SeqCst);
        })
    };
    let out = s.solve();
    canceller.join().unwrap();
    assert_eq!(
        out,
        SatOutcome::Unknown,
        "cancelled solve must answer Unknown"
    );
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "solver ignored the cancel flag for {:?}",
        start.elapsed()
    );
}

/// Term-level stats hygiene under racing: every `check` is absorbed
/// into the lifetime totals exactly once — `totals.checks` counts the
/// calls, and the race counters in the totals equal the sum of the
/// per-call deltas, so no losing worker's counters leak in twice.
#[test]
fn raced_checks_keep_stats_hygiene() {
    let mut ctx = Ctx::new();
    let x = ctx.var("x", Sort::Bv(8));
    let y = ctx.var("y", Sort::Bv(8));

    let config = SolverConfig {
        certify: true,
        parallel: forced_race(4),
        ..SolverConfig::default()
    };
    let mut s = Solver::with_config(config);
    let mut seq = Solver::with_config(SolverConfig {
        certify: true,
        ..SolverConfig::default()
    });

    let ne = ctx.ne(x, y);
    let eq = ctx.eq(x, y);
    let xy = ctx.cmp(CmpOp::Ult, x, y);
    let yx = ctx.cmp(CmpOp::Ult, y, x);

    let mut checks = 0u64;
    let mut races = 0u64;
    let mut race_workers = 0u64;
    let mut wins = 0u64;
    let mut cubes_solved = 0u64;
    let mut run = |s: &mut Solver, seq: &mut Solver, ctx: &mut Ctx, sat: bool| {
        let got = s.check(ctx);
        let want = seq.check(ctx);
        match (&got, &want, sat) {
            (SatResult::Sat(_), SatResult::Sat(_), true) => {}
            (SatResult::Unsat, SatResult::Unsat, false) => {}
            _ => panic!("raced check disagrees with sequential (expected sat={sat})"),
        }
        checks += 1;
        races += s.stats.races;
        race_workers += s.stats.race_workers;
        wins += s.stats.race_wins.iter().sum::<u64>();
        cubes_solved += s.stats.cubes_solved;
    };

    s.assert(&mut ctx, ne);
    seq.assert(&mut ctx, ne);
    run(&mut s, &mut seq, &mut ctx, true);

    s.push();
    seq.push();
    s.assert(&mut ctx, eq);
    seq.assert(&mut ctx, eq);
    run(&mut s, &mut seq, &mut ctx, false);
    s.pop();
    seq.pop();

    s.push();
    seq.push();
    s.assert(&mut ctx, xy);
    seq.assert(&mut ctx, xy);
    s.assert(&mut ctx, yx);
    seq.assert(&mut ctx, yx);
    run(&mut s, &mut seq, &mut ctx, false);
    s.pop();
    seq.pop();

    assert_eq!(
        s.totals.checks, checks,
        "totals.checks must count check calls"
    );
    assert_eq!(
        s.totals.races, races,
        "race totals != sum of per-call deltas"
    );
    assert_eq!(s.totals.race_workers, race_workers);
    assert_eq!(s.totals.race_wins.iter().sum::<u64>(), wins);
    assert_eq!(s.totals.cubes_solved, cubes_solved);
    assert!(races >= 1, "forced-race config never raced");
    assert!(wins <= races, "more race wins than races");
    assert!(
        race_workers >= 2 * races,
        "every race must involve at least two workers"
    );
    // Sequential mirror never races.
    assert_eq!(seq.totals.races, 0);
}
