//! Differential testing of the word-level static-analysis pass.
//!
//! Two obligations, checked on randomly generated term DAGs biased
//! toward the constructs the pass reasons hardest about (`Ite`,
//! `Extract`, `Concat`, shifts):
//!
//! * **Eval agreement**: `analysis::simplify_query` only rewrites a
//!   conjunct using facts implied by the *other* conjuncts, so on any
//!   assignment satisfying the whole original set, every rewritten
//!   conjunct must evaluate exactly like its original. (On assignments
//!   falsifying some original the sets may legitimately differ — the
//!   guarantee is conjunction-level equivalence, not term-level.)
//! * **Verdict equality**: the full solver must answer identically with
//!   the pass on and off, across oneshot/incremental pipelines and 1/2
//!   worker configurations, and every Unsat under `certify` must come
//!   back with a checked DRAT proof (`StaticallyDischarged` never
//!   escapes a certified run).
//!
//! Everything runs on the vendored PRNG — no network, no external
//! crates.

mod common;

use std::sync::Arc;

use common::XorShift64;
use hk_smt::analysis::{self, SimplifyOutcome};
use hk_smt::eval::{eval_bool, Assignment, Value};
use hk_smt::term::TermData;
use hk_smt::{
    BvBinOp, CmpOp, CoreBudget, Ctx, ParallelConfig, SatResult, Solver, SolverConfig, Sort, TermId,
    VarId,
};

const WIDTH: u32 = 8;

struct Vocab {
    bv_vars: Vec<(TermId, VarId)>,
    bool_var: (TermId, VarId),
}

fn vocab(ctx: &mut Ctx) -> Vocab {
    let var_id = |ctx: &Ctx, t: TermId| match ctx.data(t) {
        TermData::Var(v) => *v,
        _ => unreachable!("fresh var"),
    };
    let x = ctx.var("x", Sort::Bv(WIDTH));
    let y = ctx.var("y", Sort::Bv(WIDTH));
    let b = ctx.var("b", Sort::Bool);
    Vocab {
        bv_vars: vec![(x, var_id(ctx, x)), (y, var_id(ctx, y))],
        bool_var: (b, var_id(ctx, b)),
    }
}

const BIN_OPS: [BvBinOp; 11] = [
    BvBinOp::Add,
    BvBinOp::Sub,
    BvBinOp::Mul,
    BvBinOp::Udiv,
    BvBinOp::Urem,
    BvBinOp::And,
    BvBinOp::Or,
    BvBinOp::Xor,
    BvBinOp::Shl,
    BvBinOp::Lshr,
    BvBinOp::Ashr,
];

/// Bit-vector generator biased (cases 4–6) toward the width-changing
/// and branching operators the abstract domains track through.
fn gen_bv(ctx: &mut Ctx, rng: &mut XorShift64, v: &Vocab, depth: u32) -> TermId {
    if depth == 0 {
        return if rng.chance(1, 2) {
            v.bv_vars[rng.below(v.bv_vars.len() as u64) as usize].0
        } else {
            let c = rng.below(1 << WIDTH);
            ctx.bv_const(WIDTH, c)
        };
    }
    match rng.below(8) {
        0 => {
            let c = rng.below(1 << WIDTH);
            ctx.bv_const(WIDTH, c)
        }
        1 => v.bv_vars[rng.below(v.bv_vars.len() as u64) as usize].0,
        2 | 3 => {
            let op = BIN_OPS[rng.below(BIN_OPS.len() as u64) as usize];
            let a = gen_bv(ctx, rng, v, depth - 1);
            let b = gen_bv(ctx, rng, v, depth - 1);
            ctx.bv_bin(op, a, b)
        }
        4 => {
            let c = gen_bool(ctx, rng, v, depth - 1);
            let t = gen_bv(ctx, rng, v, depth - 1);
            let e = gen_bv(ctx, rng, v, depth - 1);
            ctx.ite(c, t, e)
        }
        5 => {
            // Extract a random proper sub-range, then pad back to WIDTH
            // so the vocabulary stays single-width.
            let a = gen_bv(ctx, rng, v, depth - 1);
            let lo = rng.below(u64::from(WIDTH) - 1) as u32;
            let hi = lo + rng.below(u64::from(WIDTH - 1 - lo)) as u32;
            let ex = ctx.extract(a, hi, lo);
            if rng.chance(1, 2) {
                ctx.zext(ex, WIDTH)
            } else {
                ctx.sext(ex, WIDTH)
            }
        }
        6 => {
            // Concat two halves back to WIDTH bits.
            let a = gen_bv(ctx, rng, v, depth - 1);
            let b = gen_bv(ctx, rng, v, depth - 1);
            let hi = ctx.extract(a, WIDTH - 1, WIDTH / 2);
            let lo = ctx.extract(b, WIDTH / 2 - 1, 0);
            ctx.concat(hi, lo)
        }
        _ => {
            let a = gen_bv(ctx, rng, v, depth - 1);
            ctx.bv_not(a)
        }
    }
}

fn gen_bool(ctx: &mut Ctx, rng: &mut XorShift64, v: &Vocab, depth: u32) -> TermId {
    if depth == 0 {
        return if rng.chance(1, 2) {
            v.bool_var.0
        } else {
            let b = rng.chance(1, 2);
            ctx.bool_const(b)
        };
    }
    match rng.below(6) {
        0 => {
            let ops = [CmpOp::Ult, CmpOp::Ule, CmpOp::Slt, CmpOp::Sle];
            let op = ops[rng.below(4) as usize];
            let a = gen_bv(ctx, rng, v, depth - 1);
            let b = gen_bv(ctx, rng, v, depth - 1);
            ctx.cmp(op, a, b)
        }
        1 => {
            let a = gen_bv(ctx, rng, v, depth - 1);
            let b = gen_bv(ctx, rng, v, depth - 1);
            if rng.chance(1, 2) {
                ctx.eq(a, b)
            } else {
                ctx.ne(a, b)
            }
        }
        2 => {
            let a = gen_bool(ctx, rng, v, depth - 1);
            let b = gen_bool(ctx, rng, v, depth - 1);
            ctx.and(&[a, b])
        }
        3 => {
            let a = gen_bool(ctx, rng, v, depth - 1);
            let b = gen_bool(ctx, rng, v, depth - 1);
            ctx.or(&[a, b])
        }
        4 => {
            let a = gen_bool(ctx, rng, v, depth - 1);
            ctx.not(a)
        }
        _ => v.bool_var.0,
    }
}

/// The assignment `{x, y := bits, b := bit}` for one point of the
/// 2^17 domain.
fn assignment_at(v: &Vocab, point: u64) -> Assignment {
    let mut asg = Assignment::new();
    for (i, &(_, var)) in v.bv_vars.iter().enumerate() {
        asg.set_var(
            var,
            Value::Bv(point >> (i as u32 * WIDTH) & ((1 << WIDTH) - 1)),
        );
    }
    asg.set_var(
        v.bool_var.1,
        Value::Bool(point >> (v.bv_vars.len() as u32 * WIDTH) & 1 == 1),
    );
    asg
}

/// On every sampled assignment, the original conjunction and the
/// simplified conjunction must agree; a `Discharged` outcome must mean
/// no sampled assignment satisfies the originals.
#[test]
fn simplify_preserves_conjunction_semantics() {
    let mut rng = XorShift64::new(0x51a7);
    for case in 0..192u64 {
        let mut ctx = Ctx::new();
        let v = vocab(&mut ctx);
        let n = 1 + rng.below(4);
        let assertions: Vec<TermId> = (0..n)
            .map(|_| gen_bool(&mut ctx, &mut rng, &v, 4))
            .collect();
        // COI off: dropped conjuncts would (soundly) weaken the
        // conjunction, which is exactly the case this oracle can't
        // score. The solver-level test below covers COI.
        let outcome = analysis::simplify_query(&mut ctx, &assertions, assertions.len(), false);
        let simplified: Option<Vec<TermId>> = match outcome {
            SimplifyOutcome::Discharged(_) => None,
            SimplifyOutcome::Simplified { assertions, .. } => Some(assertions),
        };
        for _ in 0..256 {
            let point = rng.below(1 << (v.bv_vars.len() as u32 * WIDTH + 1));
            let asg = assignment_at(&v, point);
            let orig = assertions.iter().all(|&t| eval_bool(&ctx, t, &asg));
            match &simplified {
                None => assert!(
                    !orig,
                    "case {case}: discharged as Unsat but assignment {point:#x} satisfies \
                     the originals"
                ),
                Some(s) => {
                    let simp = s.iter().all(|&t| eval_bool(&ctx, t, &asg));
                    assert_eq!(
                        orig, simp,
                        "case {case}: original and simplified conjunctions disagree on \
                         assignment {point:#x}"
                    );
                }
            }
        }
    }
}

/// The full solver answers identically with the pass on and off, across
/// pipeline shapes and worker counts; every Unsat under `certify`
/// carries a checked proof.
#[test]
fn verdicts_agree_with_simplify_on_and_off() {
    let mut rng = XorShift64::new(0xc01e);
    for case in 0..48u64 {
        let mut ctx = Ctx::new();
        let v = vocab(&mut ctx);
        let n = 1 + rng.below(3);
        let assertions: Vec<TermId> = (0..n)
            .map(|_| gen_bool(&mut ctx, &mut rng, &v, 4))
            .collect();
        let mut baseline: Option<bool> = None;
        for workers in [1usize, 2] {
            for incremental in [false, true] {
                for simplify in [false, true] {
                    for certify in [false, true] {
                        let parallel = ParallelConfig {
                            workers,
                            conflict_threshold: 0,
                            budget: (workers > 1).then(|| Arc::new(CoreBudget::new(workers))),
                            ..ParallelConfig::default()
                        };
                        let mut s = Solver::with_config(SolverConfig {
                            incremental,
                            simplify,
                            certify,
                            parallel,
                            ..SolverConfig::default()
                        });
                        for &t in &assertions {
                            s.assert(&mut ctx, t);
                        }
                        let r = s.check(&mut ctx);
                        if certify {
                            assert!(
                                !matches!(r, SatResult::StaticallyDischarged),
                                "case {case}: StaticallyDischarged escaped a certified run"
                            );
                            assert_eq!(
                                s.stats.certified_unsat, s.stats.unsat_queries,
                                "case {case}: Unsat left uncertified \
                                 (incremental={incremental} simplify={simplify})"
                            );
                        }
                        let sat = match r {
                            SatResult::Sat(m) => {
                                for &t in &assertions {
                                    assert!(
                                        eval_bool(&ctx, t, &m.assignment),
                                        "case {case}: model fails an original assertion \
                                         (incremental={incremental} simplify={simplify})"
                                    );
                                }
                                true
                            }
                            SatResult::Unsat | SatResult::StaticallyDischarged => false,
                            SatResult::Unknown => panic!("case {case}: unexpected unknown"),
                        };
                        match baseline {
                            None => baseline = Some(sat),
                            Some(b) => assert_eq!(
                                b, sat,
                                "case {case}: verdict flipped (workers={workers} \
                                 incremental={incremental} simplify={simplify} \
                                 certify={certify})"
                            ),
                        }
                    }
                }
            }
        }
    }
}

/// Incremental sessions with scopes: push/pop sequences answer the same
/// with the pass on and off, including checks that discharge statically.
#[test]
fn scoped_sessions_agree_with_simplify_on_and_off() {
    let mut rng = XorShift64::new(0x5c0e);
    for case in 0..24u64 {
        let mut ctx = Ctx::new();
        let v = vocab(&mut ctx);
        let mut plain = Solver::with_config(SolverConfig {
            simplify: false,
            ..SolverConfig::default()
        });
        let mut simp = Solver::with_config(SolverConfig {
            simplify: true,
            ..SolverConfig::default()
        });
        let ops = 12 + rng.below(8);
        let mut depth = 0u32;
        for _ in 0..ops {
            match rng.below(8) {
                0..=3 => {
                    let t = gen_bool(&mut ctx, &mut rng, &v, 3);
                    plain.assert(&mut ctx, t);
                    simp.assert(&mut ctx, t);
                }
                4 => {
                    plain.push();
                    simp.push();
                    depth += 1;
                }
                5 => {
                    if depth > 0 {
                        plain.pop();
                        simp.pop();
                        depth -= 1;
                    }
                }
                _ => {
                    let a = plain.check(&mut ctx);
                    let b = simp.check(&mut ctx);
                    assert_eq!(
                        a.is_sat(),
                        b.is_sat(),
                        "case {case}: scoped verdicts diverge (plain {a:?} vs simplified {b:?})"
                    );
                    if let SatResult::Sat(m) = &b {
                        for &t in &plain.active_assertions() {
                            assert!(
                                eval_bool(&ctx, t, &m.assignment),
                                "case {case}: simplified model fails an active assertion"
                            );
                        }
                    }
                }
            }
        }
    }
}
