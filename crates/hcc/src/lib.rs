//! The HyperC compiler: a small C-like frontend lowering to HIR.
//!
//! HyperC plays the role of C + Clang in the paper's toolchain (Figure 3):
//! the kernel's 50 trap handlers are written in it, compiled to HIR, and
//! the HIR is what gets verified and executed. Like the paper's frontend,
//! the compiler is *untrusted* — but unlike the paper, the repository
//! differentially tests its output against the executable specification.
//!
//! The language, by design, can only express finite-interface kernels:
//!
//! * the only type is `i64` (the kernel's native word);
//! * there are no pointers — memory is reached exclusively through the
//!   declared global arrays-of-structs (`procs[pid].ofile[fd]`), which is
//!   what lets the verifier model memory as uninterpreted functions;
//! * loops (`for`/`while`) are allowed but must be bounded; recursion is
//!   rejected outright by the HIR module verifier;
//! * `&&`/`||` short-circuit, comparisons yield 0/1, and arithmetic has C
//!   semantics (signed overflow is UB, caught at verification time).
//!
//! # Examples
//!
//! ```
//! use hk_hir::{Interp, Module, VecMem};
//! use hk_hcc::Compiler;
//!
//! let mut module = Module::new();
//! let mut c = Compiler::new(&mut module);
//! c.define_const("LIMIT", 10);
//! c.compile("i64 clamp(i64 x) { if (x > LIMIT) { return LIMIT; } return x; }")
//!     .unwrap();
//! let f = module.func("clamp").unwrap();
//! let interp = Interp::new(&module);
//! let mut mem = VecMem::new(&module);
//! assert_eq!(interp.call(&mut mem, f, &[42], 1000).unwrap(), 10);
//! ```

pub mod ast;
pub mod lex;
pub mod lower;
pub mod parse;

pub use lower::{CompileError, Compiler};
