//! Recursive-descent parser for HyperC, with precedence-climbing for
//! expressions. `for` loops are desugared to `while` here so the lowering
//! pass handles a single loop form.

use crate::ast::{BinOp, Expr, ExprKind, FuncDef, Item, LValue, Stmt, StmtKind, UnOp};
use crate::lex::{lex, Tok, Token};

/// Parse error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a translation unit.
pub fn parse(src: &str) -> Result<Vec<Item>, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        line: e.line,
        msg: e.msg,
    })?;
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at(&Tok::Eof) {
        items.push(p.item()?);
    }
    Ok(items)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn col(&self) -> u32 {
        self.tokens[self.pos].col
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, msg: String) -> ParseError {
        ParseError {
            line: self.line(),
            msg,
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        if self.eat(&Tok::KwConst) {
            let name = self.ident("constant name")?;
            self.expect(&Tok::Assign, "'='")?;
            let e = self.expr()?;
            self.expect(&Tok::Semi, "';'")?;
            return Ok(Item::Const(name, e));
        }
        let line = self.line();
        let col = self.col();
        self.expect(&Tok::KwI64, "'i64' (function return type)")?;
        let name = self.ident("function name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                self.expect(&Tok::KwI64, "'i64' (parameter type)")?;
                params.push(self.ident("parameter name")?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        let body = self.block()?;
        Ok(Item::Func(FuncDef {
            line,
            col,
            name,
            params,
            body,
        }))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return Err(self.err("unexpected end of input inside block".into()));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let col = self.col();
        let kind = match self.peek().clone() {
            Tok::KwI64 => {
                self.bump();
                let name = self.ident("variable name")?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi, "';'")?;
                StmtKind::Decl(name, init)
            }
            Tok::KwReturn => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::Semi, "';'")?;
                StmtKind::Return(e)
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi, "';'")?;
                StmtKind::Break
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi, "';'")?;
                StmtKind::Continue
            }
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                let then_b = self.block()?;
                let else_b = if self.eat(&Tok::KwElse) {
                    if self.at(&Tok::KwIf) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                StmtKind::If(cond, then_b, else_b)
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                let body = self.block()?;
                StmtKind::While(cond, body)
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let init = self.simple_assign()?;
                self.expect(&Tok::Semi, "';'")?;
                let cond = self.expr()?;
                self.expect(&Tok::Semi, "';'")?;
                let step = self.simple_assign()?;
                self.expect(&Tok::RParen, "')'")?;
                let body = self.block()?;
                StmtKind::For(Box::new(init), cond, Box::new(step), body)
            }
            _ => {
                // Assignment or expression statement.
                let e = self.expr()?;
                if self.eat(&Tok::Assign) {
                    let lv = expr_to_lvalue(e).map_err(|msg| ParseError { line, msg })?;
                    let rhs = self.expr()?;
                    self.expect(&Tok::Semi, "';'")?;
                    StmtKind::Assign(lv, rhs)
                } else {
                    self.expect(&Tok::Semi, "';'")?;
                    StmtKind::Expr(e)
                }
            }
        };
        Ok(Stmt { line, col, kind })
    }

    /// `x = e` or `place = e` without the trailing semicolon (for `for`).
    fn simple_assign(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let col = self.col();
        let e = self.expr()?;
        self.expect(&Tok::Assign, "'='")?;
        let lv = expr_to_lvalue(e).map_err(|msg| ParseError { line, msg })?;
        let rhs = self.expr()?;
        Ok(Stmt {
            line,
            col,
            kind: StmtKind::Assign(lv, rhs),
        })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (BinOp::LogOr, 1),
                Tok::AndAnd => (BinOp::LogAnd, 2),
                Tok::Pipe => (BinOp::BitOr, 3),
                Tok::Caret => (BinOp::BitXor, 4),
                Tok::Amp => (BinOp::BitAnd, 5),
                Tok::Eq => (BinOp::Eq, 6),
                Tok::Ne => (BinOp::Ne, 6),
                Tok::Lt => (BinOp::Lt, 7),
                Tok::Le => (BinOp::Le, 7),
                Tok::Gt => (BinOp::Gt, 7),
                Tok::Ge => (BinOp::Ge, 7),
                Tok::Shl => (BinOp::Shl, 8),
                Tok::Shr => (BinOp::Shr, 8),
                Tok::Plus => (BinOp::Add, 9),
                Tok::Minus => (BinOp::Sub, 9),
                Tok::Star => (BinOp::Mul, 10),
                Tok::Slash => (BinOp::Div, 10),
                Tok::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            let col = self.col();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr {
                line,
                col,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        let col = self.col();
        let op = match self.peek() {
            Tok::Minus => Some(UnOp::Neg),
            Tok::Bang => Some(UnOp::Not),
            Tok::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr {
                line,
                col,
                kind: ExprKind::Unary(op, Box::new(e)),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        let col = self.col();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    line,
                    col,
                    kind: ExprKind::Int(v),
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                // Call?
                if matches!(self.peek2(), Tok::LParen) {
                    self.bump();
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "')'")?;
                    return Ok(Expr {
                        line,
                        col,
                        kind: ExprKind::Call(name, args),
                    });
                }
                self.bump();
                // Global place: name[expr](.field([expr])? | [expr])?
                if self.at(&Tok::LBracket) {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(&Tok::RBracket, "']'")?;
                    let mut field = None;
                    let mut sub = None;
                    if self.eat(&Tok::Dot) {
                        field = Some(self.ident("field name")?);
                        if self.eat(&Tok::LBracket) {
                            sub = Some(Box::new(self.expr()?));
                            self.expect(&Tok::RBracket, "']'")?;
                        }
                    } else if self.eat(&Tok::LBracket) {
                        sub = Some(Box::new(self.expr()?));
                        self.expect(&Tok::RBracket, "']'")?;
                    }
                    return Ok(Expr {
                        line,
                        col,
                        kind: ExprKind::Place(LValue::Global {
                            name,
                            index: Some(Box::new(index)),
                            field,
                            sub,
                        }),
                    });
                }
                Ok(Expr {
                    line,
                    col,
                    kind: ExprKind::Name(name),
                })
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Reinterprets a parsed expression as an assignment target.
fn expr_to_lvalue(e: Expr) -> Result<LValue, String> {
    match e.kind {
        ExprKind::Name(n) => Ok(LValue::Var(n)),
        ExprKind::Place(lv) => Ok(lv),
        _ => Err("invalid assignment target".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_function() {
        let items = parse("i64 f(i64 a, i64 b) { return a + b * 2; }").unwrap();
        assert_eq!(items.len(), 1);
        match &items[0] {
            Item::Func(f) => {
                assert_eq!(f.name, "f");
                assert_eq!(f.params, vec!["a", "b"]);
                assert_eq!(f.body.len(), 1);
            }
            _ => panic!("expected function"),
        }
    }

    #[test]
    fn precedence() {
        // a + b * c parses as a + (b * c).
        let items = parse("i64 f(i64 a, i64 b, i64 c) { return a + b * c; }").unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let StmtKind::Return(e) = &f.body[0].kind else {
            panic!()
        };
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
            panic!("expected Add at top: {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn parse_global_places() {
        let items = parse(
            "i64 f(i64 pid, i64 fd) { procs[pid].ofile[fd] = 3; pages[pid][fd] = 4; current = 1; return procs[pid].state; }",
        )
        .unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        assert!(matches!(
            &f.body[0].kind,
            StmtKind::Assign(
                LValue::Global {
                    name,
                    field: Some(fieldname),
                    sub: Some(_),
                    ..
                },
                _
            ) if name == "procs" && fieldname == "ofile"
        ));
        assert!(matches!(
            &f.body[1].kind,
            StmtKind::Assign(
                LValue::Global {
                    name,
                    field: None,
                    sub: Some(_),
                    ..
                },
                _
            ) if name == "pages"
        ));
        assert!(matches!(
            &f.body[2].kind,
            StmtKind::Assign(LValue::Var(n), _) if n == "current"
        ));
    }

    #[test]
    fn parse_if_else_chain() {
        let src = "i64 f(i64 x) { if (x == 0) { return 1; } else if (x == 1) { return 2; } else { return 3; } }";
        let items = parse(src).unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let StmtKind::If(_, _, else_b) = &f.body[0].kind else {
            panic!()
        };
        assert_eq!(else_b.len(), 1);
        assert!(matches!(&else_b[0].kind, StmtKind::If(..)));
    }

    #[test]
    fn parse_for_statement() {
        let items =
            parse("i64 f() { i64 i; i64 s; s = 0; for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }")
                .unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let StmtKind::For(init, _, step, body) = &f.body[3].kind else {
            panic!("expected for, got {:?}", f.body[3])
        };
        assert!(matches!(&init.kind, StmtKind::Assign(..)));
        assert!(matches!(&step.kind, StmtKind::Assign(..)));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parse_const_item() {
        let items = parse("const N = 8; i64 f() { return N; }").unwrap();
        assert!(matches!(&items[0], Item::Const(n, _) if n == "N"));
    }

    #[test]
    fn spans_carry_columns() {
        let items = parse("i64 f(i64 x) {\n  return x / 2;\n}").unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        assert_eq!((f.line, f.col), (1, 1));
        let stmt = &f.body[0];
        assert_eq!((stmt.line, stmt.col), (2, 3));
        let StmtKind::Return(e) = &stmt.kind else {
            panic!()
        };
        // Binary expressions are anchored at their operator token.
        assert_eq!((e.line, e.col), (2, 12));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("i64 f() {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
