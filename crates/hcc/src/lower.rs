//! Lowering HyperC AST to HIR, with name resolution, constant folding,
//! short-circuit control flow, and scope handling.

use std::collections::HashMap;

use hk_hir::{BinOp as HBin, CmpKind, FuncBuilder, Gep, Module, Operand, Reg, Span};

use crate::ast::{BinOp, Expr, ExprKind, FuncDef, Item, LValue, Stmt, StmtKind, UnOp};
use crate::parse::parse;

/// Compile error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line (0 for file-level errors).
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

/// The HyperC compiler. Globals must be declared in the module before
/// compiling code that references them; constants may be injected with
/// [`Compiler::define_const`] (the kernel injects `NR_PROCS` etc. from
/// [`hk_abi::KernelParams`]).
#[derive(Debug)]
pub struct Compiler<'m> {
    module: &'m mut Module,
    consts: HashMap<String, i64>,
}

impl<'m> Compiler<'m> {
    /// Creates a compiler targeting `module`.
    pub fn new(module: &'m mut Module) -> Self {
        Compiler {
            module,
            consts: HashMap::new(),
        }
    }

    /// Defines a named compile-time constant.
    pub fn define_const(&mut self, name: impl Into<String>, value: i64) {
        self.consts.insert(name.into(), value);
    }

    /// Compiles a translation unit, appending its functions to the module.
    /// Functions may call functions compiled earlier (including in
    /// previous `compile` calls); recursion is rejected later by the HIR
    /// module verifier.
    pub fn compile(&mut self, src: &str) -> Result<Vec<hk_hir::FuncId>, CompileError> {
        self.compile_inner(u32::MAX, src)
    }

    /// Like [`Compiler::compile`], but records `file` as the source file
    /// name so every lowered instruction carries a full `file:line:col`
    /// span for diagnostics.
    pub fn compile_named(
        &mut self,
        file: &str,
        src: &str,
    ) -> Result<Vec<hk_hir::FuncId>, CompileError> {
        let fid = self.module.intern_file(file);
        self.compile_inner(fid, src)
    }

    fn compile_inner(&mut self, file: u32, src: &str) -> Result<Vec<hk_hir::FuncId>, CompileError> {
        let items = parse(src).map_err(|e| CompileError {
            line: e.line,
            msg: e.msg,
        })?;
        let mut ids = Vec::new();
        for item in items {
            match item {
                Item::Const(name, expr) => {
                    let v = self.eval_const(&expr)?;
                    self.consts.insert(name, v);
                }
                Item::Func(def) => {
                    ids.push(self.lower_func(&def, file)?);
                }
            }
        }
        Ok(ids)
    }

    /// Evaluates a constant expression (constants and literals only).
    fn eval_const(&self, e: &Expr) -> Result<i64, CompileError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(*v),
            ExprKind::Name(n) => self.consts.get(n).copied().ok_or_else(|| CompileError {
                line: e.line,
                msg: format!("unknown constant `{n}`"),
            }),
            ExprKind::Unary(op, a) => {
                let a = self.eval_const(a)?;
                fold_unary(*op, a).map_err(|msg| CompileError { line: e.line, msg })
            }
            ExprKind::Binary(op, a, b) => {
                let a = self.eval_const(a)?;
                let b = self.eval_const(b)?;
                fold_binary(*op, a, b).map_err(|msg| CompileError { line: e.line, msg })
            }
            _ => Err(CompileError {
                line: e.line,
                msg: "not a constant expression".into(),
            }),
        }
    }

    fn lower_func(&mut self, def: &FuncDef, file: u32) -> Result<hk_hir::FuncId, CompileError> {
        if self.module.func(&def.name).is_some() {
            return Err(CompileError {
                line: def.line,
                msg: format!("duplicate function `{}`", def.name),
            });
        }
        let mut lo = FuncLower {
            consts: &self.consts,
            module: self.module,
            fb: FuncBuilder::new(def.name.clone(), def.params.len() as u32),
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            file,
        };
        lo.mark(def.line, def.col);
        for (i, p) in def.params.iter().enumerate() {
            if lo.scopes[0].insert(p.clone(), Reg(i as u32)).is_some() {
                return Err(CompileError {
                    line: def.line,
                    msg: format!("duplicate parameter `{p}`"),
                });
            }
        }
        let fell_through = lo.stmts(&def.body)?;
        if fell_through {
            lo.fb.ret(Operand::Const(0));
        }
        let func = lo.fb.finish();
        Ok(self.module.add_func(func))
    }
}

struct FuncLower<'a, 'm> {
    consts: &'a HashMap<String, i64>,
    module: &'m Module,
    fb: FuncBuilder,
    scopes: Vec<HashMap<String, Reg>>,
    /// (continue target, break target) stack.
    loops: Vec<(hk_hir::BlockId, hk_hir::BlockId)>,
    /// Interned source-file id for spans (`u32::MAX` when unnamed).
    file: u32,
}

impl FuncLower<'_, '_> {
    fn err<T>(&self, line: u32, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError {
            line,
            msg: msg.into(),
        })
    }

    /// Sets the span applied to subsequently emitted instructions.
    /// Called per statement and again per consuming expression node, so
    /// an instruction's span is the node that emitted it even after
    /// sub-expressions (possibly constant-folded away) moved the cursor.
    fn mark(&mut self, line: u32, col: u32) {
        self.fb.set_span(Span::new(self.file, line, col));
    }

    fn lookup_var(&self, name: &str) -> Option<Reg> {
        for scope in self.scopes.iter().rev() {
            if let Some(&r) = scope.get(name) {
                return Some(r);
            }
        }
        None
    }

    /// Lowers a statement list; returns true if control can fall through.
    fn stmts(&mut self, stmts: &[Stmt]) -> Result<bool, CompileError> {
        for (i, s) in stmts.iter().enumerate() {
            if !self.stmt(s)? {
                // Terminated: anything after is dead code.
                if i + 1 < stmts.len() {
                    return self.err(
                        stmts[i + 1].line,
                        "unreachable code after return/break/continue",
                    );
                }
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Lowers one statement; returns true if control falls through.
    fn stmt(&mut self, s: &Stmt) -> Result<bool, CompileError> {
        self.mark(s.line, s.col);
        match &s.kind {
            StmtKind::Decl(name, init) => {
                if self.scopes.last().unwrap().contains_key(name) {
                    return self.err(s.line, format!("redeclaration of `{name}`"));
                }
                let r = self.fb.new_reg();
                if let Some(e) = init {
                    let v = self.expr(e)?;
                    self.mark(s.line, s.col);
                    self.fb.copy_to(r, v);
                }
                self.scopes.last_mut().unwrap().insert(name.clone(), r);
                Ok(true)
            }
            StmtKind::Assign(lv, e) => {
                let v = self.expr(e)?;
                match lv {
                    LValue::Var(name) => {
                        if let Some(r) = self.lookup_var(name) {
                            self.mark(s.line, s.col);
                            self.fb.copy_to(r, v);
                        } else if let Some(gep) = self.scalar_global(name) {
                            self.mark(s.line, s.col);
                            self.fb.store(gep, v);
                        } else {
                            return self
                                .err(s.line, format!("assignment to unknown variable `{name}`"));
                        }
                    }
                    LValue::Global { .. } => {
                        let gep = self.place(s.line, lv)?;
                        self.mark(s.line, s.col);
                        self.fb.store(gep, v);
                    }
                }
                Ok(true)
            }
            StmtKind::Expr(e) => {
                self.expr(e)?;
                Ok(true)
            }
            StmtKind::Return(e) => {
                let v = self.expr(e)?;
                self.mark(s.line, s.col);
                self.fb.ret(v);
                Ok(false)
            }
            StmtKind::Break => match self.loops.last() {
                Some(&(_, brk)) => {
                    self.fb.jmp(brk);
                    Ok(false)
                }
                None => self.err(s.line, "break outside loop"),
            },
            StmtKind::Continue => match self.loops.last() {
                Some(&(cont, _)) => {
                    self.fb.jmp(cont);
                    Ok(false)
                }
                None => self.err(s.line, "continue outside loop"),
            },
            StmtKind::If(cond, then_s, else_s) => {
                let c = self.expr(cond)?;
                if let Operand::Const(v) = c {
                    // Statically-known branch (common after const folding).
                    self.scopes.push(HashMap::new());
                    let fell = if v != 0 {
                        self.stmts(then_s)?
                    } else {
                        self.stmts(else_s)?
                    };
                    self.scopes.pop();
                    return Ok(fell);
                }
                let then_b = self.fb.new_block();
                let merge_b = self.fb.new_block();
                let else_b = if else_s.is_empty() {
                    merge_b
                } else {
                    self.fb.new_block()
                };
                self.mark(cond.line, cond.col);
                self.fb.br(c, then_b, else_b);
                self.fb.switch_to(then_b);
                self.scopes.push(HashMap::new());
                let then_fell = self.stmts(then_s)?;
                self.scopes.pop();
                if then_fell {
                    self.fb.jmp(merge_b);
                }
                let mut merge_reachable = then_fell || else_s.is_empty();
                if !else_s.is_empty() {
                    self.fb.switch_to(else_b);
                    self.scopes.push(HashMap::new());
                    let else_fell = self.stmts(else_s)?;
                    self.scopes.pop();
                    if else_fell {
                        self.fb.jmp(merge_b);
                        merge_reachable = true;
                    }
                }
                self.fb.switch_to(merge_b);
                if !merge_reachable {
                    // Dead merge block; seal it and report termination.
                    self.fb.ret(Operand::Const(0));
                    return Ok(false);
                }
                Ok(true)
            }
            StmtKind::While(cond, body) => {
                let header = self.fb.new_block();
                let body_b = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.jmp(header);
                self.fb.switch_to(header);
                let c = self.expr(cond)?;
                self.mark(cond.line, cond.col);
                self.fb.br(c, body_b, exit);
                self.fb.switch_to(body_b);
                self.scopes.push(HashMap::new());
                self.loops.push((header, exit));
                let fell = self.stmts(body)?;
                self.loops.pop();
                self.scopes.pop();
                if fell {
                    self.fb.jmp(header);
                }
                self.fb.switch_to(exit);
                Ok(true)
            }
            StmtKind::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                if !self.stmt(init)? {
                    return self.err(s.line, "for-loop initializer cannot terminate");
                }
                let header = self.fb.new_block();
                let body_b = self.fb.new_block();
                let step_b = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.jmp(header);
                self.fb.switch_to(header);
                let c = self.expr(cond)?;
                self.mark(cond.line, cond.col);
                self.fb.br(c, body_b, exit);
                self.fb.switch_to(body_b);
                self.scopes.push(HashMap::new());
                // `continue` runs the step, then re-tests the condition.
                self.loops.push((step_b, exit));
                let fell = self.stmts(body)?;
                self.loops.pop();
                self.scopes.pop();
                if fell {
                    self.fb.jmp(step_b);
                }
                self.fb.switch_to(step_b);
                if !self.stmt(step)? {
                    return self.err(s.line, "for-loop step cannot terminate");
                }
                self.fb.jmp(header);
                self.fb.switch_to(exit);
                self.scopes.pop();
                Ok(true)
            }
        }
    }

    /// Gep for a scalar global referenced by bare name.
    fn scalar_global(&self, name: &str) -> Option<Gep> {
        let g = self.module.global(name)?;
        let decl = self.module.global_decl(g);
        if decl.elems == 1 && decl.fields.len() == 1 && decl.fields[0].elems == 1 {
            Some(Gep {
                global: g,
                index: Operand::Const(0),
                field: hk_hir::FieldId(0),
                sub: Operand::Const(0),
            })
        } else {
            None
        }
    }

    /// Resolves a global place to a Gep.
    fn place(&mut self, line: u32, lv: &LValue) -> Result<Gep, CompileError> {
        let LValue::Global {
            name,
            index,
            field,
            sub,
        } = lv
        else {
            return self.err(line, "internal: place() on var");
        };
        let Some(g) = self.module.global(name) else {
            return self.err(line, format!("unknown global `{name}`"));
        };
        let decl = self.module.global_decl(g).clone();
        let index_op = match index {
            Some(e) => self.expr(e)?,
            None => Operand::Const(0),
        };
        let (field_id, field_decl) = match field {
            Some(fname) => {
                let Some(fid) = decl.field(fname) else {
                    return self.err(line, format!("global `{name}` has no field `{fname}`"));
                };
                (fid, &decl.fields[fid.0 as usize])
            }
            None => {
                if decl.fields.len() != 1 {
                    return self.err(
                        line,
                        format!("global `{name}` requires an explicit field name"),
                    );
                }
                (hk_hir::FieldId(0), &decl.fields[0])
            }
        };
        let sub_op = match sub {
            Some(e) => {
                if field_decl.elems == 1 {
                    return self.err(
                        line,
                        format!("field `{}` of `{name}` is scalar", field_decl.name),
                    );
                }
                self.expr(e)?
            }
            None => {
                if field_decl.elems != 1 {
                    return self.err(
                        line,
                        format!("field `{}` of `{name}` needs an index", field_decl.name),
                    );
                }
                Operand::Const(0)
            }
        };
        Ok(Gep {
            global: g,
            index: index_op,
            field: field_id,
            sub: sub_op,
        })
    }

    /// Lowers an expression to an operand, constant-folding when possible.
    fn expr(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(Operand::Const(*v)),
            ExprKind::Name(name) => {
                if let Some(r) = self.lookup_var(name) {
                    return Ok(Operand::Reg(r));
                }
                if let Some(&v) = self.consts.get(name) {
                    return Ok(Operand::Const(v));
                }
                if let Some(gep) = self.scalar_global(name) {
                    self.mark(e.line, e.col);
                    return Ok(Operand::Reg(self.fb.load(gep)));
                }
                self.err(e.line, format!("unknown name `{name}`"))
            }
            ExprKind::Place(lv) => {
                let gep = self.place(e.line, lv)?;
                self.mark(e.line, e.col);
                Ok(Operand::Reg(self.fb.load(gep)))
            }
            ExprKind::Unary(op, a) => {
                let a = self.expr(a)?;
                if let Operand::Const(v) = a {
                    return fold_unary(*op, v)
                        .map(Operand::Const)
                        .map_err(|msg| CompileError { line: e.line, msg });
                }
                self.mark(e.line, e.col);
                Ok(Operand::Reg(match op {
                    UnOp::Neg => self.fb.bin(HBin::Sub, Operand::Const(0), a),
                    UnOp::Not => self.fb.cmp(CmpKind::Eq, a, Operand::Const(0)),
                    UnOp::BitNot => self.fb.bin(HBin::Xor, a, Operand::Const(-1)),
                }))
            }
            ExprKind::Binary(op, a, b) => self.binary(e.line, e.col, *op, a, b),
            ExprKind::Call(name, args) => {
                let Some(f) = self.module.func(name) else {
                    return self.err(e.line, format!("unknown function `{name}`"));
                };
                let expected = self.module.func_def(f).num_params as usize;
                if args.len() != expected {
                    return self.err(
                        e.line,
                        format!("`{name}` expects {expected} arguments, got {}", args.len()),
                    );
                }
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.expr(a)?);
                }
                self.mark(e.line, e.col);
                Ok(Operand::Reg(self.fb.call(f, ops)))
            }
        }
    }

    fn binary(
        &mut self,
        line: u32,
        col: u32,
        op: BinOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<Operand, CompileError> {
        // Short-circuit operators get control flow.
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            return self.short_circuit(line, col, op, a, b);
        }
        let av = self.expr(a)?;
        let bv = self.expr(b)?;
        if let (Operand::Const(x), Operand::Const(y)) = (av, bv) {
            return fold_binary(op, x, y)
                .map(Operand::Const)
                .map_err(|msg| CompileError { line, msg });
        }
        self.mark(line, col);
        Ok(Operand::Reg(match op {
            BinOp::Add => self.fb.bin(HBin::Add, av, bv),
            BinOp::Sub => self.fb.bin(HBin::Sub, av, bv),
            BinOp::Mul => self.fb.bin(HBin::Mul, av, bv),
            BinOp::Div => self.fb.bin(HBin::UDiv, av, bv),
            BinOp::Rem => self.fb.bin(HBin::URem, av, bv),
            BinOp::BitAnd => self.fb.bin(HBin::And, av, bv),
            BinOp::BitOr => self.fb.bin(HBin::Or, av, bv),
            BinOp::BitXor => self.fb.bin(HBin::Xor, av, bv),
            BinOp::Shl => self.fb.bin(HBin::Shl, av, bv),
            BinOp::Shr => self.fb.bin(HBin::AShr, av, bv),
            BinOp::Eq => self.fb.cmp(CmpKind::Eq, av, bv),
            BinOp::Ne => self.fb.cmp(CmpKind::Ne, av, bv),
            BinOp::Lt => self.fb.cmp(CmpKind::Slt, av, bv),
            BinOp::Le => self.fb.cmp(CmpKind::Sle, av, bv),
            BinOp::Gt => self.fb.cmp(CmpKind::Slt, bv, av),
            BinOp::Ge => self.fb.cmp(CmpKind::Sle, bv, av),
            BinOp::LogAnd | BinOp::LogOr => unreachable!(),
        }))
    }

    fn short_circuit(
        &mut self,
        line: u32,
        col: u32,
        op: BinOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<Operand, CompileError> {
        let av = self.expr(a)?;
        // Constant left operand decides statically.
        if let Operand::Const(x) = av {
            let taken = x != 0;
            match (op, taken) {
                (BinOp::LogAnd, false) => return Ok(Operand::Const(0)),
                (BinOp::LogOr, true) => return Ok(Operand::Const(1)),
                _ => {
                    let bv = self.expr(b)?;
                    if let Operand::Const(y) = bv {
                        return Ok(Operand::Const((y != 0) as i64));
                    }
                    self.mark(line, col);
                    return Ok(Operand::Reg(self.fb.cmp(
                        CmpKind::Ne,
                        bv,
                        Operand::Const(0),
                    )));
                }
            }
        }
        self.mark(line, col);
        let result = self.fb.new_reg();
        let default = if op == BinOp::LogAnd { 0 } else { 1 };
        self.fb.copy_to(result, Operand::Const(default));
        let rhs_b = self.fb.new_block();
        let merge_b = self.fb.new_block();
        match op {
            BinOp::LogAnd => self.fb.br(av, rhs_b, merge_b),
            BinOp::LogOr => self.fb.br(av, merge_b, rhs_b),
            _ => unreachable!(),
        }
        self.fb.switch_to(rhs_b);
        let bv = self.expr(b)?;
        let norm = self.fb.cmp(CmpKind::Ne, bv, Operand::Const(0));
        self.fb.copy_to(result, Operand::Reg(norm));
        self.fb.jmp(merge_b);
        self.fb.switch_to(merge_b);
        Ok(Operand::Reg(result))
    }
}

fn fold_unary(op: UnOp, a: i64) -> Result<i64, String> {
    match op {
        UnOp::Neg => Ok(a.wrapping_neg()),
        UnOp::Not => Ok((a == 0) as i64),
        UnOp::BitNot => Ok(!a),
    }
}

fn fold_binary(op: BinOp, a: i64, b: i64) -> Result<i64, String> {
    let ub = |r: Result<i64, hk_hir::UbKind>| {
        r.map_err(|k| format!("constant expression has undefined behavior: {k:?}"))
    };
    match op {
        BinOp::Add => ub(hk_hir::interp::eval_bin(hk_hir::BinOp::Add, a, b)),
        BinOp::Sub => ub(hk_hir::interp::eval_bin(hk_hir::BinOp::Sub, a, b)),
        BinOp::Mul => ub(hk_hir::interp::eval_bin(hk_hir::BinOp::Mul, a, b)),
        BinOp::Div => ub(hk_hir::interp::eval_bin(hk_hir::BinOp::UDiv, a, b)),
        BinOp::Rem => ub(hk_hir::interp::eval_bin(hk_hir::BinOp::URem, a, b)),
        BinOp::BitAnd => Ok(a & b),
        BinOp::BitOr => Ok(a | b),
        BinOp::BitXor => Ok(a ^ b),
        BinOp::Shl => ub(hk_hir::interp::eval_bin(hk_hir::BinOp::Shl, a, b)),
        BinOp::Shr => ub(hk_hir::interp::eval_bin(hk_hir::BinOp::AShr, a, b)),
        BinOp::Eq => Ok((a == b) as i64),
        BinOp::Ne => Ok((a != b) as i64),
        BinOp::Lt => Ok((a < b) as i64),
        BinOp::Le => Ok((a <= b) as i64),
        BinOp::Gt => Ok((a > b) as i64),
        BinOp::Ge => Ok((a >= b) as i64),
        BinOp::LogAnd => Ok((a != 0 && b != 0) as i64),
        BinOp::LogOr => Ok((a != 0 || b != 0) as i64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_hir::{Interp, VecMem};

    fn run(src: &str, func: &str, args: &[i64]) -> Result<i64, hk_hir::ExecError> {
        let mut module = Module::new();
        let mut c = Compiler::new(&mut module);
        c.compile(src).expect("compile");
        let errors = hk_hir::verify::check_module(&module);
        assert!(errors.is_empty(), "{errors:?}");
        let f = module.func(func).expect("function");
        let interp = Interp::new(&module);
        let mut mem = VecMem::new(&module);
        interp.call(&mut mem, f, args, 1_000_000)
    }

    #[test]
    fn arithmetic_and_comparisons() {
        let src = "i64 f(i64 a, i64 b) { return (a + b) * 2 - (a < b); }";
        assert_eq!(run(src, "f", &[3, 4]).unwrap(), 13);
        assert_eq!(run(src, "f", &[4, 3]).unwrap(), 14);
    }

    #[test]
    fn if_else_chains() {
        let src = r#"
            i64 sign(i64 x) {
                if (x > 0) { return 1; }
                else if (x < 0) { return 0 - 1; }
                else { return 0; }
            }
        "#;
        assert_eq!(run(src, "sign", &[42]).unwrap(), 1);
        assert_eq!(run(src, "sign", &[-42]).unwrap(), -1);
        assert_eq!(run(src, "sign", &[0]).unwrap(), 0);
    }

    #[test]
    fn while_and_for_loops() {
        let src = r#"
            i64 sum_to(i64 n) {
                i64 s = 0;
                i64 i;
                for (i = 1; i <= n; i = i + 1) { s = s + i; }
                return s;
            }
            i64 count_bits(i64 x) {
                i64 n = 0;
                while (x != 0) { n = n + (x & 1); x = x >> 1; }
                return n;
            }
        "#;
        assert_eq!(run(src, "sum_to", &[10]).unwrap(), 55);
        assert_eq!(run(src, "count_bits", &[0xff]).unwrap(), 8);
    }

    #[test]
    fn break_and_continue() {
        let src = r#"
            i64 first_even_ge(i64 n) {
                i64 i = n;
                while (1) {
                    if (i % 2 == 0) { break; }
                    i = i + 1;
                }
                return i;
            }
            i64 sum_odds(i64 n) {
                i64 s = 0;
                i64 i;
                for (i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { continue; }
                    s = s + i;
                }
                return s;
            }
        "#;
        assert_eq!(run(src, "first_even_ge", &[7]).unwrap(), 8);
        assert_eq!(run(src, "first_even_ge", &[8]).unwrap(), 8);
        // continue in a desugared for-loop still runs the step.
        assert_eq!(run(src, "sum_odds", &[6]).unwrap(), 9);
    }

    #[test]
    fn short_circuit_avoids_side_effects() {
        let src = r#"
            i64 bump() { counter = counter + 1; return 1; }
            i64 test(i64 x) {
                if (x != 0 && bump() == 1) { return counter; }
                return counter;
            }
        "#;
        let mut module = Module::new();
        module.declare_scalar("counter");
        let mut c = Compiler::new(&mut module);
        c.compile(src).unwrap();
        let f = module.func("test").unwrap();
        let interp = Interp::new(&module);
        let mut mem = VecMem::new(&module);
        // x == 0: bump must not run.
        assert_eq!(interp.call(&mut mem, f, &[0], 10_000).unwrap(), 0);
        // x != 0: bump runs once.
        assert_eq!(interp.call(&mut mem, f, &[1], 10_000).unwrap(), 1);
    }

    #[test]
    fn global_struct_access() {
        let src = r#"
            i64 set(i64 pid, i64 fd, i64 val) {
                procs[pid].ofile[fd] = val;
                procs[pid].nr_fds = procs[pid].nr_fds + 1;
                return 0;
            }
            i64 get(i64 pid, i64 fd) { return procs[pid].ofile[fd]; }
            i64 nr(i64 pid) { return procs[pid].nr_fds; }
        "#;
        let mut module = Module::new();
        module.declare_global(hk_hir::GlobalDecl {
            name: "procs".into(),
            elems: 4,
            fields: vec![
                hk_hir::FieldDecl {
                    name: "nr_fds".into(),
                    elems: 1,
                    volatile: false,
                },
                hk_hir::FieldDecl {
                    name: "ofile".into(),
                    elems: 8,
                    volatile: false,
                },
            ],
        });
        let mut c = Compiler::new(&mut module);
        c.compile(src).unwrap();
        let interp = Interp::new(&module);
        let mut mem = VecMem::new(&module);
        let set = module.func("set").unwrap();
        let get = module.func("get").unwrap();
        let nr = module.func("nr").unwrap();
        interp.call(&mut mem, set, &[2, 3, 77], 10_000).unwrap();
        assert_eq!(interp.call(&mut mem, get, &[2, 3], 10_000).unwrap(), 77);
        assert_eq!(interp.call(&mut mem, nr, &[2], 10_000).unwrap(), 1);
        assert_eq!(interp.call(&mut mem, nr, &[1], 10_000).unwrap(), 0);
        // Out of bounds is UB at runtime.
        assert!(interp.call(&mut mem, get, &[4, 0], 10_000).is_err());
    }

    #[test]
    fn constants_fold() {
        let src = r#"
            const N = 4;
            const MASK = (1 << N) - 1;
            i64 f(i64 x) { return x & MASK; }
        "#;
        assert_eq!(run(src, "f", &[0x1234]).unwrap(), 4);
    }

    #[test]
    fn calls_between_functions() {
        let src = r#"
            i64 helper(i64 x) { return x * 3; }
            i64 main_fn(i64 x) { return helper(x) + helper(x + 1); }
        "#;
        assert_eq!(run(src, "main_fn", &[2]).unwrap(), 15);
    }

    #[test]
    fn errors_unknown_name() {
        let mut module = Module::new();
        let mut c = Compiler::new(&mut module);
        let err = c.compile("i64 f() { return mystery; }").unwrap_err();
        assert!(err.msg.contains("mystery"), "{err}");
    }

    #[test]
    fn errors_arity_mismatch() {
        let mut module = Module::new();
        let mut c = Compiler::new(&mut module);
        let err = c
            .compile("i64 g(i64 a) { return a; } i64 f() { return g(1, 2); }")
            .unwrap_err();
        assert!(err.msg.contains("expects 1"), "{err}");
    }

    #[test]
    fn errors_unreachable_code() {
        let mut module = Module::new();
        let mut c = Compiler::new(&mut module);
        let err = c.compile("i64 f() { return 1; return 2; }").unwrap_err();
        assert!(err.msg.contains("unreachable"), "{err}");
    }

    #[test]
    fn implicit_return_zero() {
        assert_eq!(
            run("i64 f() { i64 x = 5; x = x + 1; }", "f", &[]).unwrap(),
            0
        );
    }

    #[test]
    fn both_branches_return() {
        let src = "i64 f(i64 x) { if (x > 0) { return 1; } else { return 2; } }";
        assert_eq!(run(src, "f", &[5]).unwrap(), 1);
        assert_eq!(run(src, "f", &[-5]).unwrap(), 2);
    }

    #[test]
    fn scoping_and_shadowing() {
        let src = r#"
            i64 f(i64 x) {
                i64 y = 1;
                if (x > 0) {
                    i64 y = 2;
                    x = x + y;
                }
                return x + y;
            }
        "#;
        assert_eq!(run(src, "f", &[10]).unwrap(), 13);
    }

    #[test]
    fn compile_named_threads_spans_through_folding() {
        // `(N - 4 + 2)` folds to the constant 2; the UDiv must still be
        // anchored at the `/` operator, not lose its span to the fold.
        let src = "const N = 4;\ni64 f(i64 x) {\n  i64 y = x / (N - 4 + 2);\n  return y;\n}\n";
        let mut module = Module::new();
        let mut c = Compiler::new(&mut module);
        let ids = c.compile_named("fix.hc", src).unwrap();
        let f = module.func_def(ids[0]);
        let block = &f.blocks[0];
        let (i, _) = block
            .insts
            .iter()
            .enumerate()
            .find(|(_, inst)| matches!(inst, hk_hir::Inst::Bin { op: HBin::UDiv, .. }))
            .expect("udiv instruction");
        let span = block.inst_span(i);
        assert!(span.is_known());
        assert_eq!(module.file_name(span.file), Some("fix.hc"));
        assert_eq!((span.line, span.col), (3, 13));
        // The statement's copy into `y` is anchored at the statement.
        let copy_span = block.inst_span(i + 1);
        assert_eq!((copy_span.line, copy_span.col), (3, 3));
    }

    #[test]
    fn redeclaration_in_same_scope_errors() {
        let mut module = Module::new();
        let mut c = Compiler::new(&mut module);
        let err = c
            .compile("i64 f() { i64 x = 1; i64 x = 2; return x; }")
            .unwrap_err();
        assert!(err.msg.contains("redeclaration"), "{err}");
    }
}
