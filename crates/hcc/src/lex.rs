//! Lexer for HyperC.

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword-candidate.
    Ident(String),
    /// Integer literal (decimal or 0x hex).
    Int(i64),
    /// `i64` keyword.
    KwI64,
    /// `if` keyword.
    KwIf,
    /// `else` keyword.
    KwElse,
    /// `for` keyword.
    KwFor,
    /// `while` keyword.
    KwWhile,
    /// `return` keyword.
    KwReturn,
    /// `const` keyword.
    KwConst,
    /// `break` keyword.
    KwBreak,
    /// `continue` keyword.
    KwContinue,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `=`.
    Assign,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `^`.
    Caret,
    /// `~`.
    Tilde,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// End of input.
    Eof,
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub msg: String,
}

/// Tokenizes HyperC source.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut line_start = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        let col = (i - line_start + 1) as u32;
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            line,
                            msg: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                let value: i64 = if c == '0'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X')
                {
                    i += 2;
                    let hs = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hs {
                        return Err(LexError {
                            line,
                            msg: "empty hex literal".into(),
                        });
                    }
                    u64::from_str_radix(&src[hs..i], 16).map_err(|e| LexError {
                        line,
                        msg: format!("bad hex literal: {e}"),
                    })? as i64
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    src[start..i].parse().map_err(|e| LexError {
                        line,
                        msg: format!("bad integer literal: {e}"),
                    })?
                };
                out.push(Token {
                    tok: Tok::Int(value),
                    line,
                    col,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "i64" => Tok::KwI64,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "for" => Tok::KwFor,
                    "while" => Tok::KwWhile,
                    "return" => Tok::KwReturn,
                    "const" => Tok::KwConst,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Token { tok, line, col });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (tok, len) = match two {
                    "==" => (Tok::Eq, 2),
                    "!=" => (Tok::Ne, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    _ => match c {
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        '[' => (Tok::LBracket, 1),
                        ']' => (Tok::RBracket, 1),
                        ';' => (Tok::Semi, 1),
                        ',' => (Tok::Comma, 1),
                        '.' => (Tok::Dot, 1),
                        '=' => (Tok::Assign, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        '!' => (Tok::Bang, 1),
                        '&' => (Tok::Amp, 1),
                        '|' => (Tok::Pipe, 1),
                        '^' => (Tok::Caret, 1),
                        '~' => (Tok::Tilde, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '*' => (Tok::Star, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        _ => {
                            return Err(LexError {
                                line,
                                msg: format!("unexpected character {c:?}"),
                            })
                        }
                    },
                };
                out.push(Token { tok, line, col });
                i += len;
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col: (bytes.len() - line_start + 1) as u32,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basic_tokens() {
        let toks = lex("i64 f(i64 x) { return x + 0x10; }").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::KwI64));
        assert!(matches!(kinds[1], Tok::Ident(s) if s == "f"));
        assert!(kinds.iter().any(|t| matches!(t, Tok::Int(16))));
        assert!(matches!(kinds.last().unwrap(), Tok::Eof));
    }

    #[test]
    fn lex_comments_and_lines() {
        let toks = lex("// line one\nx /* multi\nline */ y").unwrap();
        assert_eq!(toks.len(), 3); // x, y, eof
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[1].line, 3);
        assert_eq!(toks[1].col, 9);
    }

    #[test]
    fn lex_two_char_operators() {
        let toks = lex("a <= b << c && d").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[1], Tok::Le));
        assert!(matches!(kinds[3], Tok::Shl));
        assert!(matches!(kinds[5], Tok::AndAnd));
        assert_eq!(toks[1].col, 3);
        assert_eq!(toks[5].col, 13);
    }

    #[test]
    fn lex_error_on_bad_char() {
        assert!(lex("a @ b").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
