//! Abstract syntax tree for HyperC.

/// Binary operators (source level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (unsigned; kernel values are non-negative)
    Div,
    /// `%` (unsigned)
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (signed)
    Lt,
    /// `<=` (signed)
    Le,
    /// `>` (signed)
    Gt,
    /// `>=` (signed)
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

/// An lvalue: a local variable or a global place.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Named local variable or parameter.
    Var(String),
    /// Global place `name[index]...field...[sub]`. `indices` holds the
    /// bracketed expressions in order; `field` the optional `.field` name.
    Global {
        /// Global symbol name.
        name: String,
        /// Element index, if any (`name[i]`).
        index: Option<Box<Expr>>,
        /// Field name, if any (`name[i].f`).
        field: Option<String>,
        /// Sub-index, if any (`name[i].f[j]` or `name[i][j]`).
        sub: Option<Box<Expr>>,
    },
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Source line for diagnostics.
    pub line: u32,
    /// Source column for diagnostics (1-based).
    pub col: u32,
    /// Node kind.
    pub kind: ExprKind,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Named value: local, constant, or scalar global.
    Name(String),
    /// Global place read (array element / field).
    Place(LValue),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Source line for diagnostics.
    pub line: u32,
    /// Source column for diagnostics (1-based).
    pub col: u32,
    /// Node kind.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `i64 x;` or `i64 x = e;`
    Decl(String, Option<Expr>),
    /// `lvalue = e;`
    Assign(LValue, Expr),
    /// Expression statement (calls).
    Expr(Expr),
    /// `if (c) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { .. }`
    While(Expr, Vec<Stmt>),
    /// `for (x = a; c; x = b) { .. }`. Kept as a distinct form so that
    /// `continue` correctly runs the step statement.
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>),
    /// `return e;`
    Return(Expr),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Source line of the definition.
    pub line: u32,
    /// Source column of the definition (1-based).
    pub col: u32,
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `const NAME = <const expr>;`
    Const(String, Expr),
    /// A function definition.
    Func(FuncDef),
}
