//! Differential testing: the executable specification against the
//! interpreted kernel.
//!
//! For random sequences of trap invocations starting from the booted
//! state, the state-machine specification — evaluated concretely through
//! the ground evaluator — must agree with the HIR implementation on the
//! return value and on *every* cell of the kernel state. This is the
//! testing analogue of the refinement theorem, and it validates both
//! directions: spec bugs and frontend/lowering bugs show up as diffs.
//! The random sequences are driven by the vendored PRNG so the suite
//! runs fully offline.

mod common;

use common::XorShift64;
use hk_abi::{KernelParams, Sysno, PTE_P, PTE_U, PTE_W};
use hk_kernel::{boot::boot, Kernel};
use hk_smt::eval::Assignment;
use hk_smt::Ctx;
use hk_spec::{shapes_of, spec_transition, SpecState};
use hk_vm::CostModel;

/// Reads the entire kernel state into a UF assignment for the spec's
/// base functions.
fn snapshot_assignment(
    kernel: &Kernel,
    machine: &hk_vm::Machine,
    ctx: &Ctx,
    st: &SpecState,
) -> Assignment {
    let mut asg = Assignment::new();
    let _ = ctx;
    for (g, f, idx) in st.all_cells() {
        let (i, s) = match idx.len() {
            0 => (0, 0),
            1 => (idx[0], 0),
            _ => (idx[0], idx[1]),
        };
        let val = kernel.read_global(machine, &g, i, &f, s) as u64;
        let base = st.map(&g, &f).base;
        asg.func_mut(base).set(idx.to_vec(), val);
    }
    asg
}

/// Applies one syscall to both sides and compares exhaustively.
fn step_and_compare(kernel: &Kernel, machine: &mut hk_vm::Machine, sysno: Sysno, args: &[i64]) {
    // Spec side: fresh symbolic state + concrete snapshot assignment.
    let mut ctx = Ctx::new();
    let shapes = shapes_of(&kernel.image.module);
    let st = SpecState::fresh(&mut ctx, &shapes, kernel.image.params);
    let asg = snapshot_assignment(kernel, machine, &ctx, &st);
    let arg_terms: Vec<_> = args.iter().map(|&a| ctx.i64_const(a)).collect();
    let mut post = st.clone();
    let spec_ret = spec_transition(&mut ctx, &mut post, sysno, &arg_terms);
    let spec_ret_val = hk_smt::eval::eval_bv(&ctx, spec_ret, &asg) as i64;
    // Implementation side.
    let impl_ret = kernel
        .trap(machine, sysno, args)
        .unwrap_or_else(|e| panic!("{sysno}{args:?}: kernel UB: {e}"));
    assert_eq!(
        spec_ret_val,
        impl_ret,
        "return mismatch for {}{:?}: spec={} impl={}",
        sysno,
        args,
        hk_abi::errno_name(spec_ret_val),
        hk_abi::errno_name(impl_ret)
    );
    // Full state comparison.
    for (g, f, idx) in st.all_cells() {
        let idx_terms: Vec<_> = idx.iter().map(|&v| ctx.i64_const(v as i64)).collect();
        let term = post.read(&mut ctx, &g, &f, &idx_terms);
        let spec_val = hk_smt::eval::eval_bv(&ctx, term, &asg) as i64;
        let (i, s) = match idx.len() {
            0 => (0, 0),
            1 => (idx[0], 0),
            _ => (idx[0], idx[1]),
        };
        let impl_val = kernel.read_global(machine, &g, i, &f, s);
        assert_eq!(
            spec_val, impl_val,
            "state mismatch at {g}.{f}{idx:?} after {sysno}{args:?} (ret {impl_ret})"
        );
    }
}

/// A biased argument generator: mostly-valid small resource indices,
/// sometimes sentinels, PTE permission masks, or wild values — the same
/// mix the old proptest strategy produced.
fn gen_arg(rng: &mut XorShift64) -> i64 {
    match rng.below(14) {
        0..=7 => rng.below(12) as i64,
        8 | 9 => -1,
        10 => KernelParams::verification().nr_files as i64,
        11 | 12 => {
            let ptes = [PTE_P, PTE_P | PTE_W, PTE_P | PTE_W | PTE_U, PTE_W, 0x7f];
            ptes[rng.below(5) as usize]
        }
        _ => rng.next_u64() as i64,
    }
}

#[test]
fn spec_matches_implementation() {
    let params = KernelParams::verification();
    let mut rng = XorShift64::new(0xd1ff);
    for _case in 0..24 {
        let kernel = Kernel::new(params).unwrap();
        let mut machine = kernel.new_machine(CostModel::default_model());
        boot(&kernel, &mut machine);
        let steps = 1 + rng.below(24);
        for _ in 0..steps {
            let sysno = Sysno::ALL[rng.below(Sysno::COUNT as u64) as usize];
            let args: Vec<i64> = (0..sysno.arg_count()).map(|_| gen_arg(&mut rng)).collect();
            step_and_compare(&kernel, &mut machine, sysno, &args);
        }
    }
}

/// A directed scenario: a full process lifecycle compared cell-by-cell.
#[test]
fn directed_lifecycle_differential() {
    let params = KernelParams::verification();
    let kernel = Kernel::new(params).unwrap();
    let mut machine = kernel.new_machine(CostModel::default_model());
    boot(&kernel, &mut machine);
    let all = PTE_P | PTE_W | PTE_U;
    let script: Vec<(Sysno, Vec<i64>)> = vec![
        (Sysno::CloneProc, vec![2, 3, 4, 5]),
        (Sysno::TransferFd, vec![2, 0, 0]), // fails: fd 0 closed
        (Sysno::SetRunnable, vec![2]),
        (Sysno::AllocPdpt, vec![1, 0, 1, 9, all]),
        (Sysno::AllocPd, vec![1, 9, 2, 10, all]),
        (Sysno::AllocPt, vec![1, 10, 3, 11, all]),
        (Sysno::AllocFrame, vec![1, 11, 4, 12, all]),
        (Sysno::Pipe, vec![0, 0, 1, 1, 2]),
        (Sysno::PipeWrite, vec![1, 12, 0, 3]),
        (Sysno::PipeRead, vec![0, 12, 4, 2]),
        (Sysno::Dup, vec![0, 3]),
        (Sysno::Dup2, vec![1, 3]),
        (Sysno::Close, vec![3]),
        (Sysno::Switch, vec![2]),
        (Sysno::Recv, vec![0, -1, -1]),
        (Sysno::Send, vec![2, 42, -1, 0, -1]),
        (Sysno::Yield, vec![]),
        (Sysno::TrapTimer, vec![]),
        (Sysno::AllocIommuRoot, vec![0, 13]),
        (Sysno::AllocIommuPdpt, vec![13, 0, 14, PTE_P | PTE_W]),
        (Sysno::AllocVector, vec![3]),
        (Sysno::AllocIntremap, vec![0, 0, 3]),
        (Sysno::TrapIrq, vec![3]),
        (Sysno::AckIntr, vec![3]),
        (Sysno::ReclaimIntremap, vec![0]),
        (Sysno::ReclaimVector, vec![3]),
        (Sysno::FreeIommuRoot, vec![0, 13]),
        (Sysno::FreeFrame, vec![11, 4, 12]),
        (Sysno::FreePt, vec![10, 3, 11]),
        (Sysno::Uptime, vec![]),
        (Sysno::TrapDebugPrint, vec![65]),
        (Sysno::TrapInvalid, vec![]),
    ];
    for (sysno, args) in script {
        step_and_compare(&kernel, &mut machine, sysno, &args);
        assert!(
            kernel.check_invariant(&mut machine).unwrap(),
            "invariant after {sysno}"
        );
    }
}
