//! State-machine specifications for IPC (mirrors `ipc.hc`).

use hk_abi::{
    page_type, proc_state, EAGAIN, EBADF, EBUSY, EINVAL, EPERM, ESRCH, INIT_PID, PARENT_NONE,
};
use hk_smt::TermId;

use crate::helpers::*;
use crate::run::SpecRun;

/// Mirror of `pick_successor()`.
fn pick_successor(r: &mut SpecRun) -> TermId {
    let current = r.scalar("current");
    let cand = r.rd("procs", "ready_next", &[current]);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let ge1 = r.ctx.sle(one, cand);
    let lt = r.ctx.slt(cand, n);
    let ne_cur = r.ctx.ne(cand, current);
    let rng = r.ctx.and(&[ge1, lt, ne_cur]);
    let cstate = r.rd("procs", "state", &[cand]);
    let runnable = r.c(proc_state::RUNNABLE);
    let c_run = r.ctx.eq(cstate, runnable);
    let cand_ok = r.ctx.and2(rng, c_run);
    let init = r.c(INIT_PID);
    let istate = r.rd("procs", "state", &[init]);
    let i_run = r.ctx.eq(istate, runnable);
    let minus1 = r.c(-1);
    let fallback = r.ctx.ite(i_run, init, minus1);
    r.ctx.ite(cand_ok, cand, fallback)
}

/// `sys_recv(from, pn, fd_slot)`.
pub fn recv(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (from, pn, fd_slot) = (args[0], args[1], args[2]);
    let zero = r.c(0);
    let none = r.c(PARENT_NONE);
    let from_any = r.ctx.eq(from, zero);
    let fv = pid_valid(&mut r, from);
    let from_ok = r.ctx.or2(from_any, fv);
    r.check(from_ok, ESRCH);
    let pn_none = r.ctx.eq(pn, none);
    let pv = page_valid(&mut r, pn);
    let c1 = r.ctx.or2(pn_none, pv);
    r.check(c1, EINVAL);
    let pty = r.rd("page_desc", "ty", &[pn]);
    let frame = r.c(page_type::FRAME);
    let fty = r.ctx.eq(pty, frame);
    let c2 = r.ctx.or2(pn_none, fty);
    r.check(c2, EINVAL);
    let powner = r.rd("page_desc", "owner", &[pn]);
    let current = r.scalar("current");
    let owns = r.ctx.eq(powner, current);
    let c3 = r.ctx.or2(pn_none, owns);
    r.check(c3, EPERM);
    let fd_none = r.ctx.eq(fd_slot, none);
    let fdv = fd_valid(&mut r, fd_slot);
    let c4 = r.ctx.or2(fd_none, fdv);
    r.check(c4, EBADF);
    let slot = r.rd("procs", "ofile", &[current, fd_slot]);
    let nr_files = r.c(r.st.params.nr_files as i64);
    let empty = r.ctx.eq(slot, nr_files);
    let c5 = r.ctx.or2(fd_none, empty);
    r.check(c5, EBUSY);
    let succ = pick_successor(&mut r);
    let minus1 = r.c(-1);
    let has_succ = r.ctx.ne(succ, minus1);
    r.check(has_succ, EAGAIN);
    // Effects.
    r.wr("procs", "ipc_from", &[current], from);
    r.wr("procs", "ipc_page", &[current], pn);
    r.wr("procs", "ipc_fd", &[current], fd_slot);
    r.wr("procs", "ipc_val", &[current], zero);
    r.wr("procs", "ipc_size", &[current], zero);
    ready_remove(&mut r, current);
    let sleeping = r.c(proc_state::SLEEPING);
    r.wr("procs", "state", &[current], sleeping);
    let running = r.c(proc_state::RUNNING);
    r.wr("procs", "state", &[succ], running);
    r.wr_scalar("current", succ);
    r.finish_const(0)
}

/// Mirror of `check_send` (validation only).
fn check_send(r: &mut SpecRun, pid: TermId, pn: TermId, size: TermId, fd: TermId) {
    let pv = pid_valid(r, pid);
    r.check(pv, ESRCH);
    let current = r.scalar("current");
    let not_self = r.ctx.ne(pid, current);
    r.check(not_self, EINVAL);
    let state = r.rd("procs", "state", &[pid]);
    let sleeping = r.c(proc_state::SLEEPING);
    let asleep = r.ctx.eq(state, sleeping);
    r.check(asleep, EAGAIN);
    let zero = r.c(0);
    let ipc_from = r.rd("procs", "ipc_from", &[pid]);
    let any = r.ctx.eq(ipc_from, zero);
    let me = r.ctx.eq(ipc_from, current);
    let from_ok = r.ctx.or2(any, me);
    r.check(from_ok, EAGAIN);
    let page_words = r.c(r.st.params.page_words as i64);
    let s1 = r.ctx.sle(zero, size);
    let s2 = r.ctx.sle(size, page_words);
    let size_ok = r.ctx.and2(s1, s2);
    r.check(size_ok, EINVAL);
    let no_data = r.ctx.sle(size, zero);
    let pv2 = page_valid(r, pn);
    let c1 = r.ctx.or2(no_data, pv2);
    r.check(c1, EINVAL);
    let pty = r.rd("page_desc", "ty", &[pn]);
    let frame = r.c(page_type::FRAME);
    let f_ok = r.ctx.eq(pty, frame);
    let c2 = r.ctx.or2(no_data, f_ok);
    r.check(c2, EINVAL);
    let powner = r.rd("page_desc", "owner", &[pn]);
    let own_ok = r.ctx.eq(powner, current);
    let c3 = r.ctx.or2(no_data, own_ok);
    r.check(c3, EPERM);
    let none = r.c(PARENT_NONE);
    let rp = r.rd("procs", "ipc_page", &[pid]);
    let rp_some = r.ctx.ne(rp, none);
    let c4 = r.ctx.or2(no_data, rp_some);
    r.check(c4, EINVAL);
    let rpv = page_valid(r, rp);
    let c5 = r.ctx.or2(no_data, rpv);
    r.check(c5, EINVAL);
    let rpty = r.rd("page_desc", "ty", &[rp]);
    let rp_f = r.ctx.eq(rpty, frame);
    let c6 = r.ctx.or2(no_data, rp_f);
    r.check(c6, EINVAL);
    let rpo = r.rd("page_desc", "owner", &[rp]);
    let rpo_ok = r.ctx.eq(rpo, pid);
    let c7 = r.ctx.or2(no_data, rpo_ok);
    r.check(c7, EINVAL);
    // FD grant validation.
    let no_fd = r.ctx.eq(fd, none);
    let fdv = fd_valid(r, fd);
    let c8 = r.ctx.or2(no_fd, fdv);
    r.check(c8, EBADF);
    let f = r.rd("procs", "ofile", &[current, fd]);
    let nr_files = r.c(r.st.params.nr_files as i64);
    let open = r.ctx.ne(f, nr_files);
    let c9 = r.ctx.or2(no_fd, open);
    r.check(c9, EBADF);
    let rfd = r.rd("procs", "ipc_fd", &[pid]);
    let rfd_some = r.ctx.ne(rfd, none);
    let c10 = r.ctx.or2(no_fd, rfd_some);
    r.check(c10, EINVAL);
    let rslot = r.rd("procs", "ofile", &[pid, rfd]);
    let rempty = r.ctx.eq(rslot, nr_files);
    let c11 = r.ctx.or2(no_fd, rempty);
    r.check(c11, EBUSY);
}

/// Mirror of `do_deliver` (effects only; run under the check guard).
fn do_deliver(r: &mut SpecRun, pid: TermId, val: TermId, pn: TermId, size: TermId, fd: TermId) {
    let zero = r.c(0);
    let none = r.c(PARENT_NONE);
    let has_data = r.ctx.slt(zero, size);
    let rp = r.rd("procs", "ipc_page", &[pid]);
    for i in 0..r.st.params.page_words {
        let ci = r.c(i as i64);
        let in_size = r.ctx.slt(ci, size);
        let g = r.ctx.and2(has_data, in_size);
        let v = r.rd("pages", "word", &[pn, ci]);
        r.wr_if(g, "pages", "word", &[rp, ci], v);
    }
    let has_fd = r.ctx.ne(fd, none);
    let current = r.scalar("current");
    let f = r.rd("procs", "ofile", &[current, fd]);
    let rfd = r.rd("procs", "ipc_fd", &[pid]);
    r.wr_if(has_fd, "procs", "ofile", &[pid, rfd], f);
    r.bump_if(has_fd, "files", "refcnt", &[f], 1);
    r.bump_if(has_fd, "procs", "nr_fds", &[pid], 1);
    let one = r.c(1);
    let got_fd = r.ctx.ite(has_fd, one, zero);
    r.wr("procs", "ipc_val", &[pid], val);
    r.wr("procs", "ipc_size", &[pid], size);
    r.wr("procs", "ipc_from", &[pid], current);
    let rhvm = r.rd("procs", "hvm", &[pid]);
    let c0 = r.c(0);
    let c1 = r.c(1);
    let c2 = r.c(2);
    let c3 = r.c(3);
    r.wr("pages", "word", &[rhvm, c0], val);
    r.wr("pages", "word", &[rhvm, c1], size);
    r.wr("pages", "word", &[rhvm, c2], current);
    r.wr("pages", "word", &[rhvm, c3], got_fd);
}

/// `sys_send(pid, val, pn, size, fd)`.
pub fn send(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (pid, val, pn, size, fd) = (args[0], args[1], args[2], args[3], args[4]);
    check_send(&mut r, pid, pn, size, fd);
    do_deliver(&mut r, pid, val, pn, size, fd);
    let runnable = r.c(proc_state::RUNNABLE);
    r.wr("procs", "state", &[pid], runnable);
    ready_insert(&mut r, pid);
    r.finish_const(0)
}

/// `sys_reply_wait(pid, val, pn, size, fd)`.
pub fn reply_wait(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (pid, val, pn, size, fd) = (args[0], args[1], args[2], args[3], args[4]);
    check_send(&mut r, pid, pn, size, fd);
    // Receive-buffer validation for the wait half.
    let none = r.c(PARENT_NONE);
    let pn_none = r.ctx.eq(pn, none);
    let pv = page_valid(&mut r, pn);
    let c1 = r.ctx.or2(pn_none, pv);
    r.check(c1, EINVAL);
    let pty = r.rd("page_desc", "ty", &[pn]);
    let frame = r.c(page_type::FRAME);
    let f_ok = r.ctx.eq(pty, frame);
    let c2 = r.ctx.or2(pn_none, f_ok);
    r.check(c2, EINVAL);
    let powner = r.rd("page_desc", "owner", &[pn]);
    let current = r.scalar("current");
    let own_ok = r.ctx.eq(powner, current);
    let c3 = r.ctx.or2(pn_none, own_ok);
    r.check(c3, EPERM);
    // Effects.
    do_deliver(&mut r, pid, val, pn, size, fd);
    let runnable = r.c(proc_state::RUNNABLE);
    r.wr("procs", "state", &[pid], runnable);
    ready_insert(&mut r, pid);
    let zero = r.c(0);
    r.wr("procs", "ipc_from", &[current], zero);
    r.wr("procs", "ipc_page", &[current], pn);
    r.wr("procs", "ipc_fd", &[current], none);
    r.wr("procs", "ipc_val", &[current], zero);
    r.wr("procs", "ipc_size", &[current], zero);
    ready_remove(&mut r, current);
    let sleeping = r.c(proc_state::SLEEPING);
    r.wr("procs", "state", &[current], sleeping);
    let running = r.c(proc_state::RUNNING);
    r.wr("procs", "state", &[pid], running);
    r.wr_scalar("current", pid);
    r.finish_const(0)
}

/// `sys_transfer_fd(pid, fd, tofd)`.
pub fn transfer_fd(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (pid, fd, tofd) = (args[0], args[1], args[2]);
    let pv = pid_valid(&mut r, pid);
    r.check(pv, ESRCH);
    let state = r.rd("procs", "state", &[pid]);
    let embryo = r.c(proc_state::EMBRYO);
    let is_embryo = r.ctx.eq(state, embryo);
    r.check(is_embryo, EINVAL);
    let ppid = r.rd("procs", "ppid", &[pid]);
    let current = r.scalar("current");
    let is_child = r.ctx.eq(ppid, current);
    r.check(is_child, EPERM);
    let fv = fd_valid(&mut r, fd);
    r.check(fv, EBADF);
    let f = r.rd("procs", "ofile", &[current, fd]);
    let nr_files = r.c(r.st.params.nr_files as i64);
    let open = r.ctx.ne(f, nr_files);
    r.check(open, EBADF);
    let tv = fd_valid(&mut r, tofd);
    r.check(tv, EBADF);
    let tslot = r.rd("procs", "ofile", &[pid, tofd]);
    let tempty = r.ctx.eq(tslot, nr_files);
    r.check(tempty, EBUSY);
    r.wr("procs", "ofile", &[pid, tofd], f);
    r.bump("files", "refcnt", &[f], 1);
    r.bump("procs", "nr_fds", &[pid], 1);
    r.finish_const(0)
}
