//! State-machine specifications for IOMMU, ports, vectors, and
//! interrupt remapping (mirrors `iommu.hc` and `intr.hc`).

use hk_abi::{
    intremap_state, page_type, proc_state, DEV_ROOT_NONE, EBUSY, EINVAL, ENODEV, ENOMEM, EPERM,
    PARENT_NONE, PID_NONE, PTE_P, PTE_PFN_SHIFT,
};
use hk_smt::{BvBinOp, TermId};

use crate::helpers::*;
use crate::run::SpecRun;

/// `sys_alloc_iommu_root(devid, pn)`.
pub fn alloc_iommu_root(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (devid, pn) = (args[0], args[1]);
    let hi_ = r.st.params.nr_devs as i64;
    let drange = in_range(&mut r, devid, hi_);
    r.check(drange, ENODEV);
    let owner = r.rd("devs", "owner", &[devid]);
    let pid_none = r.c(PID_NONE);
    let unowned = r.ctx.eq(owner, pid_none);
    r.check(unowned, EBUSY);
    let pv = page_valid(&mut r, pn);
    r.check(pv, EINVAL);
    let pf = page_is_free(&mut r, pn);
    r.check(pf, ENOMEM);
    let current = r.scalar("current");
    let none = r.c(PARENT_NONE);
    alloc_page_typed(&mut r, pn, current, page_type::IOMMU_PML4, none, none);
    r.wr("page_desc", "devid", &[pn], devid);
    r.wr("devs", "owner", &[devid], current);
    r.wr("devs", "root", &[devid], pn);
    r.bump("procs", "nr_devs", &[current], 1);
    r.finish_const(0)
}

/// Shared body for the three IOMMU table-extension calls.
fn alloc_iommu_level(mut r: SpecRun, args: &[TermId], parent_ty: i64, child_ty: i64) -> TermId {
    let (parent, index, child, perm) = (args[0], args[1], args[2], args[3]);
    let current = r.scalar("current");
    // check_alloc_table(current, ...) in the implementation.
    let pv = pid_valid(&mut r, current);
    r.check(pv, hk_abi::ESRCH);
    let may = is_current_or_embryo_child(&mut r, current);
    r.check(may, EPERM);
    let pgv = page_valid(&mut r, parent);
    r.check(pgv, EINVAL);
    let pty = r.rd("page_desc", "ty", &[parent]);
    let want = r.c(parent_ty);
    let ty_ok = r.ctx.eq(pty, want);
    r.check(ty_ok, EINVAL);
    let owner = r.rd("page_desc", "owner", &[parent]);
    let own_ok = r.ctx.eq(owner, current);
    r.check(own_ok, EPERM);
    let iv = idx_valid(&mut r, index);
    r.check(iv, EINVAL);
    let entry = r.rd("pages", "word", &[parent, index]);
    let p = r.c(PTE_P);
    let zero = r.c(0);
    let bits = r.ctx.bv_bin(BvBinOp::And, entry, p);
    let empty = r.ctx.eq(bits, zero);
    r.check(empty, EBUSY);
    let cv = page_valid(&mut r, child);
    r.check(cv, EINVAL);
    let cf = page_is_free(&mut r, child);
    r.check(cf, ENOMEM);
    let pm = perm_valid(&mut r, perm);
    r.check(pm, EINVAL);
    alloc_page_typed(&mut r, child, current, child_ty, parent, index);
    let shift = r.c(PTE_PFN_SHIFT);
    let shifted = r.ctx.bv_bin(BvBinOp::Shl, child, shift);
    let new_entry = r.ctx.bv_bin(BvBinOp::Or, shifted, perm);
    r.wr("pages", "word", &[parent, index], new_entry);
    r.finish_const(0)
}

/// `sys_alloc_iommu_pdpt`.
pub fn alloc_iommu_pdpt(r: SpecRun, args: &[TermId]) -> TermId {
    alloc_iommu_level(r, args, page_type::IOMMU_PML4, page_type::IOMMU_PDPT)
}

/// `sys_alloc_iommu_pd`.
pub fn alloc_iommu_pd(r: SpecRun, args: &[TermId]) -> TermId {
    alloc_iommu_level(r, args, page_type::IOMMU_PDPT, page_type::IOMMU_PD)
}

/// `sys_alloc_iommu_pt`.
pub fn alloc_iommu_pt(r: SpecRun, args: &[TermId]) -> TermId {
    alloc_iommu_level(r, args, page_type::IOMMU_PD, page_type::IOMMU_PT)
}

/// `sys_alloc_iommu_frame(pt, index, d, perm)`.
pub fn alloc_iommu_frame(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (pt, index, d, perm) = (args[0], args[1], args[2], args[3]);
    let pgv = page_valid(&mut r, pt);
    r.check(pgv, EINVAL);
    let pty = r.rd("page_desc", "ty", &[pt]);
    let want = r.c(page_type::IOMMU_PT);
    let ty_ok = r.ctx.eq(pty, want);
    r.check(ty_ok, EINVAL);
    let owner = r.rd("page_desc", "owner", &[pt]);
    let current = r.scalar("current");
    let own_ok = r.ctx.eq(owner, current);
    r.check(own_ok, EPERM);
    let iv = idx_valid(&mut r, index);
    r.check(iv, EINVAL);
    let entry = r.rd("pages", "word", &[pt, index]);
    let p = r.c(PTE_P);
    let zero = r.c(0);
    let bits = r.ctx.bv_bin(BvBinOp::And, entry, p);
    let empty = r.ctx.eq(bits, zero);
    r.check(empty, EBUSY);
    let dv = dma_valid(&mut r, d);
    r.check(dv, EINVAL);
    let downer = r.rd("dma_desc", "owner", &[d]);
    let pid_none = r.c(PID_NONE);
    let unowned = r.ctx.eq(downer, pid_none);
    let mine = r.ctx.eq(downer, current);
    let claimable = r.ctx.or2(unowned, mine);
    r.check(claimable, EPERM);
    let iop = r.rd("dma_desc", "io_parent_pn", &[d]);
    let none = r.c(PARENT_NONE);
    let unmapped = r.ctx.eq(iop, none);
    r.check(unmapped, EBUSY);
    let pm = perm_valid(&mut r, perm);
    r.check(pm, EINVAL);
    r.wr_if(unowned, "dma_desc", "owner", &[d], current);
    r.bump_if(unowned, "procs", "nr_dmapages", &[current], 1);
    r.wr("dma_desc", "io_parent_pn", &[d], pt);
    r.wr("dma_desc", "io_parent_idx", &[d], index);
    let nr_pages = r.c(r.st.params.nr_pages as i64);
    let pfn = r.ctx.bv_add(nr_pages, d);
    let shift = r.c(PTE_PFN_SHIFT);
    let shifted = r.ctx.bv_bin(BvBinOp::Shl, pfn, shift);
    let new_entry = r.ctx.bv_bin(BvBinOp::Or, shifted, perm);
    r.wr("pages", "word", &[pt, index], new_entry);
    r.finish_const(0)
}

/// `sys_free_iommu_root(devid, pn)`.
pub fn free_iommu_root(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (devid, pn) = (args[0], args[1]);
    let hi_ = r.st.params.nr_devs as i64;
    let drange = in_range(&mut r, devid, hi_);
    r.check(drange, ENODEV);
    let pv = page_valid(&mut r, pn);
    r.check(pv, EINVAL);
    let root = r.rd("devs", "root", &[devid]);
    let matches = r.ctx.eq(root, pn);
    r.check(matches, EINVAL);
    let o = r.rd("devs", "owner", &[devid]);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let ge1 = r.ctx.sle(one, o);
    let lt = r.ctx.slt(o, n);
    let orng = r.ctx.and2(ge1, lt);
    r.check(orng, EINVAL);
    let current = r.scalar("current");
    let mine = r.ctx.eq(o, current);
    let ostate = r.rd("procs", "state", &[o]);
    let zombie = r.c(proc_state::ZOMBIE);
    let oz = r.ctx.eq(ostate, zombie);
    let may = r.ctx.or2(mine, oz);
    r.check(may, EPERM);
    let refs = r.rd("devs", "intremap_refcnt", &[devid]);
    let zero = r.c(0);
    let no_refs = r.ctx.eq(refs, zero);
    r.check(no_refs, EBUSY);
    let pid_none = r.c(PID_NONE);
    let root_none = r.c(DEV_ROOT_NONE);
    let none = r.c(PARENT_NONE);
    r.wr("devs", "owner", &[devid], pid_none);
    r.wr("devs", "root", &[devid], root_none);
    r.wr("page_desc", "devid", &[pn], none);
    r.bump("procs", "nr_devs", &[o], -1);
    r.finish_const(0)
}

/// `sys_alloc_port(port)`.
pub fn alloc_port(mut r: SpecRun, args: &[TermId]) -> TermId {
    let port = args[0];
    let hi_ = r.st.params.nr_ports as i64;
    let rng = in_range(&mut r, port, hi_);
    r.check(rng, EINVAL);
    let owner = r.rd("io_ports", "owner", &[port]);
    let pid_none = r.c(PID_NONE);
    let unowned = r.ctx.eq(owner, pid_none);
    r.check(unowned, EBUSY);
    let current = r.scalar("current");
    r.wr("io_ports", "owner", &[port], current);
    r.bump("procs", "nr_ports", &[current], 1);
    r.finish_const(0)
}

/// `sys_reclaim_port(port)`.
pub fn reclaim_port(mut r: SpecRun, args: &[TermId]) -> TermId {
    let port = args[0];
    let hi_ = r.st.params.nr_ports as i64;
    let rng = in_range(&mut r, port, hi_);
    r.check(rng, EINVAL);
    let o = r.rd("io_ports", "owner", &[port]);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let ge1 = r.ctx.sle(one, o);
    let lt = r.ctx.slt(o, n);
    let orng = r.ctx.and2(ge1, lt);
    r.check(orng, EINVAL);
    let current = r.scalar("current");
    let mine = r.ctx.eq(o, current);
    let ostate = r.rd("procs", "state", &[o]);
    let zombie = r.c(proc_state::ZOMBIE);
    let oz = r.ctx.eq(ostate, zombie);
    let may = r.ctx.or2(mine, oz);
    r.check(may, EPERM);
    let pid_none = r.c(PID_NONE);
    r.wr("io_ports", "owner", &[port], pid_none);
    r.bump("procs", "nr_ports", &[o], -1);
    r.finish_const(0)
}

/// `sys_alloc_vector(v)`.
pub fn alloc_vector(mut r: SpecRun, args: &[TermId]) -> TermId {
    let v = args[0];
    let hi_ = r.st.params.nr_vectors as i64;
    let rng = in_range(&mut r, v, hi_);
    r.check(rng, EINVAL);
    let owner = r.rd("vectors", "owner", &[v]);
    let pid_none = r.c(PID_NONE);
    let unowned = r.ctx.eq(owner, pid_none);
    r.check(unowned, EBUSY);
    let current = r.scalar("current");
    r.wr("vectors", "owner", &[v], current);
    r.bump("procs", "nr_vectors", &[current], 1);
    r.finish_const(0)
}

/// `sys_reclaim_vector(v)`.
pub fn reclaim_vector(mut r: SpecRun, args: &[TermId]) -> TermId {
    let v = args[0];
    let hi_ = r.st.params.nr_vectors as i64;
    let rng = in_range(&mut r, v, hi_);
    r.check(rng, EINVAL);
    let o = r.rd("vectors", "owner", &[v]);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let ge1 = r.ctx.sle(one, o);
    let lt = r.ctx.slt(o, n);
    let orng = r.ctx.and2(ge1, lt);
    r.check(orng, EINVAL);
    let current = r.scalar("current");
    let mine = r.ctx.eq(o, current);
    let ostate = r.rd("procs", "state", &[o]);
    let zombie = r.c(proc_state::ZOMBIE);
    let oz = r.ctx.eq(ostate, zombie);
    let may = r.ctx.or2(mine, oz);
    r.check(may, EPERM);
    let refs = r.rd("vectors", "intremap_refcnt", &[v]);
    let zero = r.c(0);
    let no_refs = r.ctx.eq(refs, zero);
    r.check(no_refs, EBUSY);
    let pid_none = r.c(PID_NONE);
    r.wr("vectors", "owner", &[v], pid_none);
    r.bump("procs", "nr_vectors", &[o], -1);
    let pending = r.rd("procs", "intr_pending", &[o]);
    let bit = r.ctx.bv_bin(BvBinOp::Shl, one, v);
    let nbit = r.ctx.bv_not(bit);
    let cleared = r.ctx.bv_bin(BvBinOp::And, pending, nbit);
    r.wr("procs", "intr_pending", &[o], cleared);
    r.finish_const(0)
}

/// `sys_alloc_intremap(idx, devid, vector)`.
pub fn alloc_intremap(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (idx, devid, vector) = (args[0], args[1], args[2]);
    let hi_ = r.st.params.nr_intremaps as i64;
    let rng = in_range(&mut r, idx, hi_);
    r.check(rng, EINVAL);
    let state = r.rd("intremaps", "state", &[idx]);
    let free = r.c(intremap_state::FREE);
    let is_free = r.ctx.eq(state, free);
    r.check(is_free, EBUSY);
    let hi_ = r.st.params.nr_devs as i64;
    let drange = in_range(&mut r, devid, hi_);
    r.check(drange, ENODEV);
    let downer = r.rd("devs", "owner", &[devid]);
    let current = r.scalar("current");
    let dmine = r.ctx.eq(downer, current);
    r.check(dmine, EPERM);
    let hi_ = r.st.params.nr_vectors as i64;
    let vrange = in_range(&mut r, vector, hi_);
    r.check(vrange, EINVAL);
    let vowner = r.rd("vectors", "owner", &[vector]);
    let vmine = r.ctx.eq(vowner, current);
    r.check(vmine, EPERM);
    let active = r.c(intremap_state::ACTIVE);
    r.wr("intremaps", "state", &[idx], active);
    r.wr("intremaps", "devid", &[idx], devid);
    r.wr("intremaps", "vector", &[idx], vector);
    r.wr("intremaps", "owner", &[idx], current);
    r.bump("devs", "intremap_refcnt", &[devid], 1);
    r.bump("vectors", "intremap_refcnt", &[vector], 1);
    r.bump("procs", "nr_intremaps", &[current], 1);
    r.finish_const(0)
}

/// `sys_reclaim_intremap(idx)`.
pub fn reclaim_intremap(mut r: SpecRun, args: &[TermId]) -> TermId {
    let idx = args[0];
    let hi_ = r.st.params.nr_intremaps as i64;
    let rng = in_range(&mut r, idx, hi_);
    r.check(rng, EINVAL);
    let state = r.rd("intremaps", "state", &[idx]);
    let active = r.c(intremap_state::ACTIVE);
    let is_active = r.ctx.eq(state, active);
    r.check(is_active, EINVAL);
    let o = r.rd("intremaps", "owner", &[idx]);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let ge1 = r.ctx.sle(one, o);
    let lt = r.ctx.slt(o, n);
    let orng = r.ctx.and2(ge1, lt);
    r.check(orng, EINVAL);
    let current = r.scalar("current");
    let mine = r.ctx.eq(o, current);
    let ostate = r.rd("procs", "state", &[o]);
    let zombie = r.c(proc_state::ZOMBIE);
    let oz = r.ctx.eq(ostate, zombie);
    let may = r.ctx.or2(mine, oz);
    r.check(may, EPERM);
    let d = r.rd("intremaps", "devid", &[idx]);
    let v = r.rd("intremaps", "vector", &[idx]);
    r.bump("devs", "intremap_refcnt", &[d], -1);
    r.bump("vectors", "intremap_refcnt", &[v], -1);
    let free = r.c(intremap_state::FREE);
    let none = r.c(PARENT_NONE);
    let pid_none = r.c(PID_NONE);
    r.wr("intremaps", "state", &[idx], free);
    r.wr("intremaps", "devid", &[idx], none);
    r.wr("intremaps", "vector", &[idx], none);
    r.wr("intremaps", "owner", &[idx], pid_none);
    r.bump("procs", "nr_intremaps", &[o], -1);
    r.finish_const(0)
}
