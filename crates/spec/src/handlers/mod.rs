//! The state-machine specification of every trap handler.
//!
//! [`spec_transition`] is the specification analogue of the kernel's
//! dispatch table: given an abstract state and symbolic arguments, it
//! applies the handler's specified transition and returns the result
//! term. Each sub-module mirrors one HyperC source file.

pub mod fd;
pub mod iommu;
pub mod ipc;
pub mod misc;
pub mod proc;
pub mod vm;

use hk_abi::Sysno;
use hk_smt::{Ctx, TermId};

use crate::run::SpecRun;
use crate::state::SpecState;

/// Applies the specification of `sysno` to `st` (in place) and returns
/// the specified result value.
pub fn spec_transition(ctx: &mut Ctx, st: &mut SpecState, sysno: Sysno, args: &[TermId]) -> TermId {
    assert_eq!(args.len(), sysno.arg_count(), "{sysno} spec arity");
    let r = SpecRun::new(ctx, st);
    match sysno {
        Sysno::Nop => proc::nop(r, args),
        Sysno::AckIntr => proc::ack_intr(r, args),
        Sysno::CloneProc => proc::clone_proc(r, args),
        Sysno::SetRunnable => proc::set_runnable(r, args),
        Sysno::Switch => proc::switch(r, args),
        Sysno::Kill => proc::kill(r, args),
        Sysno::Reap => proc::reap(r, args),
        Sysno::Reparent => proc::reparent(r, args),
        Sysno::AllocPdpt => vm::alloc_pdpt(r, args),
        Sysno::AllocPd => vm::alloc_pd(r, args),
        Sysno::AllocPt => vm::alloc_pt(r, args),
        Sysno::AllocFrame => vm::alloc_frame(r, args),
        Sysno::CopyFrame => vm::copy_frame(r, args),
        Sysno::ProtectFrame => vm::protect_frame(r, args),
        Sysno::FreePdpt => vm::free_pdpt(r, args),
        Sysno::FreePd => vm::free_pd(r, args),
        Sysno::FreePt => vm::free_pt(r, args),
        Sysno::FreeFrame => vm::free_frame(r, args),
        Sysno::ReclaimPage => vm::reclaim_page(r, args),
        Sysno::MapDmaPage => vm::map_dmapage(r, args),
        Sysno::CreateFile => fd::create_file(r, args),
        Sysno::Close => fd::close(r, args),
        Sysno::Dup => fd::dup(r, args),
        Sysno::Dup2 => fd::dup2(r, args),
        Sysno::Pipe => fd::pipe(r, args),
        Sysno::PipeRead => fd::pipe_read(r, args),
        Sysno::PipeWrite => fd::pipe_write(r, args),
        Sysno::Send => ipc::send(r, args),
        Sysno::Recv => ipc::recv(r, args),
        Sysno::ReplyWait => ipc::reply_wait(r, args),
        Sysno::TransferFd => ipc::transfer_fd(r, args),
        Sysno::Yield => misc::yield_(r, args),
        Sysno::Uptime => misc::uptime(r, args),
        Sysno::AllocIommuRoot => iommu::alloc_iommu_root(r, args),
        Sysno::AllocIommuPdpt => iommu::alloc_iommu_pdpt(r, args),
        Sysno::AllocIommuPd => iommu::alloc_iommu_pd(r, args),
        Sysno::AllocIommuPt => iommu::alloc_iommu_pt(r, args),
        Sysno::AllocIommuFrame => iommu::alloc_iommu_frame(r, args),
        Sysno::FreeIommuRoot => iommu::free_iommu_root(r, args),
        Sysno::AllocPort => iommu::alloc_port(r, args),
        Sysno::ReclaimPort => iommu::reclaim_port(r, args),
        Sysno::AllocVector => iommu::alloc_vector(r, args),
        Sysno::ReclaimVector => iommu::reclaim_vector(r, args),
        Sysno::AllocIntremap => iommu::alloc_intremap(r, args),
        Sysno::ReclaimIntremap => iommu::reclaim_intremap(r, args),
        Sysno::TrapTimer => misc::trap_timer(r, args),
        Sysno::TrapIrq => misc::trap_irq(r, args),
        Sysno::TrapTripleFault => misc::trap_triple_fault(r, args),
        Sysno::TrapDebugPrint => misc::trap_debug_print(r, args),
        Sysno::TrapInvalid => misc::trap_invalid(r, args),
    }
}
