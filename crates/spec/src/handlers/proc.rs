//! State-machine specifications for the process-management handlers
//! (mirrors `proc.hc`).

use hk_abi::{
    page_type, proc_state, EAGAIN, EBUSY, EINVAL, ENOMEM, EPERM, ESRCH, INIT_PID, PARENT_NONE,
    PID_NONE,
};
use hk_smt::{BvBinOp, TermId};

use crate::helpers::*;
use crate::run::SpecRun;

/// `sys_nop()`.
pub fn nop(r: SpecRun, _args: &[TermId]) -> TermId {
    r.finish_const(0)
}

/// `sys_ack_intr(v)`.
pub fn ack_intr(mut r: SpecRun, args: &[TermId]) -> TermId {
    let v = args[0];
    let hi_ = r.st.params.nr_vectors as i64;
    let vrange = in_range(&mut r, v, hi_);
    r.check(vrange, EINVAL);
    let owner = r.rd("vectors", "owner", &[v]);
    let current = r.scalar("current");
    let owns = r.ctx.eq(owner, current);
    r.check(owns, EPERM);
    let one = r.c(1);
    let mask = r.ctx.bv_bin(BvBinOp::Shl, one, v);
    let pending = r.rd("procs", "intr_pending", &[current]);
    let hit = r.ctx.bv_bin(BvBinOp::And, pending, mask);
    let zero = r.c(0);
    let was_pending = r.ctx.ne(hit, zero);
    let not_mask = r.ctx.bv_not(mask);
    let cleared = r.ctx.bv_bin(BvBinOp::And, pending, not_mask);
    r.wr_if(was_pending, "procs", "intr_pending", &[current], cleared);
    let ret = r.ctx.ite(was_pending, one, zero);
    r.finish(ret)
}

/// `sys_clone_proc(pid, pml4, hvm, stack)`.
pub fn clone_proc(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (pid, pml4, hvm, stack) = (args[0], args[1], args[2], args[3]);
    let pv = pid_valid(&mut r, pid);
    r.check(pv, ESRCH);
    let state = r.rd("procs", "state", &[pid]);
    let free = r.c(proc_state::FREE);
    let is_free = r.ctx.eq(state, free);
    r.check(is_free, EBUSY);
    let v1 = page_valid(&mut r, pml4);
    let v2 = page_valid(&mut r, hvm);
    let v3 = page_valid(&mut r, stack);
    let all_valid = r.ctx.and(&[v1, v2, v3]);
    r.check(all_valid, EINVAL);
    let d1 = r.ctx.ne(pml4, hvm);
    let d2 = r.ctx.ne(pml4, stack);
    let d3 = r.ctx.ne(hvm, stack);
    let distinct = r.ctx.and(&[d1, d2, d3]);
    r.check(distinct, EINVAL);
    let f1 = page_is_free(&mut r, pml4);
    let f2 = page_is_free(&mut r, hvm);
    let f3 = page_is_free(&mut r, stack);
    let all_free = r.ctx.and(&[f1, f2, f3]);
    r.check(all_free, ENOMEM);
    // Effects.
    let none = r.c(PARENT_NONE);
    alloc_page_typed(&mut r, pml4, pid, page_type::PML4, none, none);
    alloc_page_typed(&mut r, hvm, pid, page_type::HVM, none, none);
    alloc_page_typed(&mut r, stack, pid, page_type::STACK, none, none);
    let current = r.scalar("current");
    let cur_hvm = r.rd("procs", "hvm", &[current]);
    page_copy(&mut r, hvm, cur_hvm);
    let cur_stack = r.rd("procs", "stack_pn", &[current]);
    page_copy(&mut r, stack, cur_stack);
    let zero = r.c(0);
    r.wr("pages", "word", &[hvm, zero], zero);
    let embryo = r.c(proc_state::EMBRYO);
    r.wr("procs", "state", &[pid], embryo);
    r.wr("procs", "ppid", &[pid], current);
    r.wr("procs", "pml4", &[pid], pml4);
    r.wr("procs", "hvm", &[pid], hvm);
    r.wr("procs", "stack_pn", &[pid], stack);
    r.wr("procs", "nr_children", &[pid], zero);
    // The child inherits the parent's open files (xv6 fork semantics):
    // copy the table, one reference per open slot (branch-free mirror).
    let nr_files = r.c(r.st.params.nr_files as i64);
    for fd in 0..r.st.params.nr_fds {
        let cfd = r.c(fd as i64);
        let fslot = r.rd("procs", "ofile", &[current, cfd]);
        r.wr("procs", "ofile", &[pid, cfd], fslot);
        let open = r.ctx.ne(fslot, nr_files);
        let is_open = bool_word(&mut r, open);
        let slot = r.ctx.bv_mul(fslot, is_open);
        let rc = r.rd("files", "refcnt", &[slot]);
        let rc2 = r.ctx.bv_add(rc, is_open);
        r.wr("files", "refcnt", &[slot], rc2);
    }
    let parent_fds = r.rd("procs", "nr_fds", &[current]);
    r.wr("procs", "nr_fds", &[pid], parent_fds);
    for field in [
        "nr_dmapages",
        "nr_devs",
        "nr_ports",
        "nr_vectors",
        "nr_intremaps",
        "ipc_from",
        "ipc_val",
        "ipc_size",
        "intr_pending",
    ] {
        r.wr("procs", field, &[pid], zero);
    }
    r.wr("procs", "ipc_page", &[pid], none);
    r.wr("procs", "ipc_fd", &[pid], none);
    r.wr("procs", "ready_next", &[pid], none);
    r.wr("procs", "ready_prev", &[pid], none);
    r.bump("procs", "nr_children", &[current], 1);
    r.finish_const(0)
}

/// `sys_set_runnable(pid)`.
pub fn set_runnable(mut r: SpecRun, args: &[TermId]) -> TermId {
    let pid = args[0];
    let pv = pid_valid(&mut r, pid);
    r.check(pv, ESRCH);
    let state = r.rd("procs", "state", &[pid]);
    let embryo = r.c(proc_state::EMBRYO);
    let is_embryo = r.ctx.eq(state, embryo);
    r.check(is_embryo, EINVAL);
    let ppid = r.rd("procs", "ppid", &[pid]);
    let current = r.scalar("current");
    let is_child = r.ctx.eq(ppid, current);
    r.check(is_child, EPERM);
    let runnable = r.c(proc_state::RUNNABLE);
    r.wr("procs", "state", &[pid], runnable);
    ready_insert(&mut r, pid);
    r.finish_const(0)
}

/// `sys_switch(pid)`.
pub fn switch(mut r: SpecRun, args: &[TermId]) -> TermId {
    let pid = args[0];
    let pv = pid_valid(&mut r, pid);
    r.check(pv, ESRCH);
    let state = r.rd("procs", "state", &[pid]);
    let runnable = r.c(proc_state::RUNNABLE);
    let is_runnable = r.ctx.eq(state, runnable);
    r.check(is_runnable, EINVAL);
    let current = r.scalar("current");
    let cur_state = r.rd("procs", "state", &[current]);
    let running = r.c(proc_state::RUNNING);
    let cur_running = r.ctx.eq(cur_state, running);
    r.wr_if(cur_running, "procs", "state", &[current], runnable);
    r.wr("procs", "state", &[pid], running);
    r.wr_scalar("current", pid);
    r.finish_const(0)
}

/// `sys_kill(pid)`.
pub fn kill(mut r: SpecRun, args: &[TermId]) -> TermId {
    let pid = args[0];
    let pv = pid_valid(&mut r, pid);
    r.check(pv, ESRCH);
    let init = r.c(INIT_PID);
    let not_init = r.ctx.ne(pid, init);
    r.check(not_init, EPERM);
    let current = r.scalar("current");
    let is_self = r.ctx.eq(pid, current);
    let ppid = r.rd("procs", "ppid", &[pid]);
    let is_child = r.ctx.eq(ppid, current);
    let may = r.ctx.or2(is_self, is_child);
    r.check(may, EPERM);
    let t = r.rd("procs", "state", &[pid]);
    let free = r.c(proc_state::FREE);
    let zombie = r.c(proc_state::ZOMBIE);
    let tf = r.ctx.eq(t, free);
    let tz = r.ctx.eq(t, zombie);
    let dead = r.ctx.or2(tf, tz);
    let alive = r.ctx.not(dead);
    r.check(alive, EINVAL);
    // next_cand = ready_next if runnable/running else -1.
    let runnable = r.c(proc_state::RUNNABLE);
    let running = r.c(proc_state::RUNNING);
    let tr = r.ctx.eq(t, runnable);
    let tg = r.ctx.eq(t, running);
    let on_list = r.ctx.or2(tr, tg);
    let ready_next = r.rd("procs", "ready_next", &[pid]);
    let minus1 = r.c(-1);
    let next_cand = r.ctx.ite(on_list, ready_next, minus1);
    // Successor resolution for kill-self.
    let hi_ = r.st.params.nr_procs as i64;
    let cand_in = in_range(&mut r, next_cand, hi_);
    let one = r.c(1);
    let cand_ge1 = r.ctx.sle(one, next_cand);
    let cand_rng = r.ctx.and2(cand_in, cand_ge1);
    let cand_ne = r.ctx.ne(next_cand, pid);
    let cand_state = r.rd("procs", "state", &[next_cand]);
    let cand_runnable = r.ctx.eq(cand_state, runnable);
    let cand_ok = r.ctx.and(&[cand_rng, cand_ne, cand_runnable]);
    let init_state = r.rd("procs", "state", &[init]);
    let init_runnable = r.ctx.eq(init_state, runnable);
    // -EAGAIN when killing self with no successor.
    let not_self = r.ctx.not(is_self);
    let has_succ = r.ctx.or2(cand_ok, init_runnable);
    let ok_cond = r.ctx.or2(not_self, has_succ);
    r.check(ok_cond, EAGAIN);
    let succ = r.ctx.ite(cand_ok, next_cand, init);
    // Effects.
    r.push_guard(on_list);
    ready_remove(&mut r, pid);
    r.pop_guard();
    r.wr("procs", "state", &[pid], zombie);
    r.wr_if(is_self, "procs", "state", &[succ], running);
    r.wr_scalar_if(is_self, "current", succ);
    r.finish_const(0)
}

/// `sys_reap(pid)`.
pub fn reap(mut r: SpecRun, args: &[TermId]) -> TermId {
    let pid = args[0];
    let pv = pid_valid(&mut r, pid);
    r.check(pv, ESRCH);
    let state = r.rd("procs", "state", &[pid]);
    let zombie = r.c(proc_state::ZOMBIE);
    let is_zombie = r.ctx.eq(state, zombie);
    r.check(is_zombie, EINVAL);
    let ppid = r.rd("procs", "ppid", &[pid]);
    let current = r.scalar("current");
    let is_child = r.ctx.eq(ppid, current);
    r.check(is_child, EPERM);
    let zero = r.c(0);
    for field in [
        "nr_children",
        "nr_fds",
        "nr_pages",
        "nr_dmapages",
        "nr_devs",
        "nr_ports",
        "nr_vectors",
        "nr_intremaps",
    ] {
        let v = r.rd("procs", field, &[pid]);
        let is_zero = r.ctx.eq(v, zero);
        r.check(is_zero, EBUSY);
    }
    let free = r.c(proc_state::FREE);
    let none = r.c(PID_NONE);
    r.wr("procs", "state", &[pid], free);
    r.wr("procs", "ppid", &[pid], none);
    r.wr("procs", "pml4", &[pid], zero);
    r.wr("procs", "hvm", &[pid], zero);
    r.wr("procs", "stack_pn", &[pid], zero);
    r.bump("procs", "nr_children", &[current], -1);
    r.finish_const(0)
}

/// `sys_reparent(pid)`.
pub fn reparent(mut r: SpecRun, args: &[TermId]) -> TermId {
    let pid = args[0];
    let pv = pid_valid(&mut r, pid);
    r.check(pv, ESRCH);
    let state = r.rd("procs", "state", &[pid]);
    let free = r.c(proc_state::FREE);
    let not_free = r.ctx.ne(state, free);
    r.check(not_free, EINVAL);
    let parent = r.rd("procs", "ppid", &[pid]);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let ge1 = r.ctx.sle(one, parent);
    let lt = r.ctx.slt(parent, n);
    let prange = r.ctx.and2(ge1, lt);
    r.check(prange, EINVAL);
    let pstate = r.rd("procs", "state", &[parent]);
    let zombie = r.c(proc_state::ZOMBIE);
    let pz = r.ctx.eq(pstate, zombie);
    r.check(pz, EPERM);
    let init = r.c(INIT_PID);
    r.wr("procs", "ppid", &[pid], init);
    r.bump("procs", "nr_children", &[parent], -1);
    r.bump("procs", "nr_children", &[init], 1);
    r.finish_const(0)
}
