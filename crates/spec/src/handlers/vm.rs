//! State-machine specifications for the virtual-memory handlers
//! (mirrors `vm.hc`).

use hk_abi::{
    page_type, proc_state, EBUSY, EINVAL, ENOMEM, EPERM, ESRCH, PARENT_NONE, PID_NONE, PTE_P,
    PTE_PFN_SHIFT,
};
use hk_smt::{BvBinOp, TermId};

use crate::helpers::*;
use crate::run::SpecRun;

/// Mirror of `check_alloc_table` (the checks half).
fn check_alloc_table(
    r: &mut SpecRun,
    pid: TermId,
    parent: TermId,
    index: TermId,
    child: TermId,
    parent_ty: i64,
) -> (TermId, TermId, TermId) {
    let pv = pid_valid(r, pid);
    r.check(pv, ESRCH);
    let may = is_current_or_embryo_child(r, pid);
    r.check(may, EPERM);
    let pgv = page_valid(r, parent);
    r.check(pgv, EINVAL);
    let pty = r.rd("page_desc", "ty", &[parent]);
    let want = r.c(parent_ty);
    let ty_ok = r.ctx.eq(pty, want);
    r.check(ty_ok, EINVAL);
    let owner = r.rd("page_desc", "owner", &[parent]);
    let own_ok = r.ctx.eq(owner, pid);
    r.check(own_ok, EPERM);
    let iv = idx_valid(r, index);
    r.check(iv, EINVAL);
    let entry = r.rd("pages", "word", &[parent, index]);
    let p = r.c(PTE_P);
    let zero = r.c(0);
    let bits = r.ctx.bv_bin(BvBinOp::And, entry, p);
    let empty = r.ctx.eq(bits, zero);
    r.check(empty, EBUSY);
    let cv = page_valid(r, child);
    r.check(cv, EINVAL);
    let cf = page_is_free(r, child);
    r.check(cf, ENOMEM);
    (entry, zero, p)
}

/// Mirror of `do_alloc_table` (the effects half).
fn do_alloc_table(
    r: &mut SpecRun,
    pid: TermId,
    parent: TermId,
    index: TermId,
    child: TermId,
    child_ty: i64,
    perm: TermId,
) {
    alloc_page_typed(r, child, pid, child_ty, parent, index);
    let shift = r.c(PTE_PFN_SHIFT);
    let shifted = r.ctx.bv_bin(BvBinOp::Shl, child, shift);
    let entry = r.ctx.bv_bin(BvBinOp::Or, shifted, perm);
    r.wr("pages", "word", &[parent, index], entry);
}

fn alloc_level(mut r: SpecRun, args: &[TermId], parent_ty: i64, child_ty: i64) -> TermId {
    let (pid, parent, index, child, perm) = (args[0], args[1], args[2], args[3], args[4]);
    check_alloc_table(&mut r, pid, parent, index, child, parent_ty);
    let pm = perm_valid(&mut r, perm);
    r.check(pm, EINVAL);
    do_alloc_table(&mut r, pid, parent, index, child, child_ty, perm);
    r.finish_const(0)
}

/// `sys_alloc_pdpt`.
pub fn alloc_pdpt(r: SpecRun, args: &[TermId]) -> TermId {
    alloc_level(r, args, page_type::PML4, page_type::PDPT)
}

/// `sys_alloc_pd`.
pub fn alloc_pd(r: SpecRun, args: &[TermId]) -> TermId {
    alloc_level(r, args, page_type::PDPT, page_type::PD)
}

/// `sys_alloc_pt`.
pub fn alloc_pt(r: SpecRun, args: &[TermId]) -> TermId {
    alloc_level(r, args, page_type::PD, page_type::PT)
}

/// `sys_alloc_frame`.
pub fn alloc_frame(r: SpecRun, args: &[TermId]) -> TermId {
    alloc_level(r, args, page_type::PT, page_type::FRAME)
}

/// `sys_map_dmapage(pid, pt, index, d, perm)`.
pub fn map_dmapage(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (pid, pt, index, d, perm) = (args[0], args[1], args[2], args[3], args[4]);
    let pv = pid_valid(&mut r, pid);
    r.check(pv, ESRCH);
    let may = is_current_or_embryo_child(&mut r, pid);
    r.check(may, EPERM);
    let ptv = page_valid(&mut r, pt);
    r.check(ptv, EINVAL);
    let ty = r.rd("page_desc", "ty", &[pt]);
    let want = r.c(page_type::PT);
    let ty_ok = r.ctx.eq(ty, want);
    r.check(ty_ok, EINVAL);
    let owner = r.rd("page_desc", "owner", &[pt]);
    let own_ok = r.ctx.eq(owner, pid);
    r.check(own_ok, EPERM);
    let iv = idx_valid(&mut r, index);
    r.check(iv, EINVAL);
    let entry = r.rd("pages", "word", &[pt, index]);
    let p = r.c(PTE_P);
    let zero = r.c(0);
    let bits = r.ctx.bv_bin(BvBinOp::And, entry, p);
    let empty = r.ctx.eq(bits, zero);
    r.check(empty, EBUSY);
    let dv = dma_valid(&mut r, d);
    r.check(dv, EINVAL);
    let downer = r.rd("dma_desc", "owner", &[d]);
    let pid_none = r.c(PID_NONE);
    let unowned = r.ctx.eq(downer, pid_none);
    let owned_by_pid = r.ctx.eq(downer, pid);
    let claimable = r.ctx.or2(unowned, owned_by_pid);
    r.check(claimable, EPERM);
    let cpu_pn = r.rd("dma_desc", "cpu_parent_pn", &[d]);
    let none = r.c(PARENT_NONE);
    let unmapped = r.ctx.eq(cpu_pn, none);
    r.check(unmapped, EBUSY);
    let pm = perm_valid(&mut r, perm);
    r.check(pm, EINVAL);
    // Effects.
    r.wr_if(unowned, "dma_desc", "owner", &[d], pid);
    r.bump_if(unowned, "procs", "nr_dmapages", &[pid], 1);
    r.wr("dma_desc", "cpu_parent_pn", &[d], pt);
    r.wr("dma_desc", "cpu_parent_idx", &[d], index);
    let nr_pages = r.c(r.st.params.nr_pages as i64);
    let pfn = r.ctx.bv_add(nr_pages, d);
    let shift = r.c(PTE_PFN_SHIFT);
    let shifted = r.ctx.bv_bin(BvBinOp::Shl, pfn, shift);
    let new_entry = r.ctx.bv_bin(BvBinOp::Or, shifted, perm);
    r.wr("pages", "word", &[pt, index], new_entry);
    r.finish_const(0)
}

/// `sys_copy_frame(from, to)`.
pub fn copy_frame(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (from, to) = (args[0], args[1]);
    let v1 = page_valid(&mut r, from);
    let v2 = page_valid(&mut r, to);
    let both = r.ctx.and2(v1, v2);
    r.check(both, EINVAL);
    let fty = r.rd("page_desc", "ty", &[from]);
    let frame = r.c(page_type::FRAME);
    let f_ok = r.ctx.eq(fty, frame);
    r.check(f_ok, EINVAL);
    let fowner = r.rd("page_desc", "owner", &[from]);
    let current = r.scalar("current");
    let fo_ok = r.ctx.eq(fowner, current);
    r.check(fo_ok, EPERM);
    let tty = r.rd("page_desc", "ty", &[to]);
    let t_ok = r.ctx.eq(tty, frame);
    r.check(t_ok, EINVAL);
    let towner = r.rd("page_desc", "owner", &[to]);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let ge1 = r.ctx.sle(one, towner);
    let lt = r.ctx.slt(towner, n);
    let range = r.ctx.and2(ge1, lt);
    r.check(range, EPERM);
    let may = is_current_or_embryo_child(&mut r, towner);
    r.check(may, EPERM);
    page_copy(&mut r, to, from);
    r.finish_const(0)
}

/// `sys_protect_frame(pt, index, pfn, perm)`.
pub fn protect_frame(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (pt, index, pfn, perm) = (args[0], args[1], args[2], args[3]);
    let ptv = page_valid(&mut r, pt);
    r.check(ptv, EINVAL);
    let ty = r.rd("page_desc", "ty", &[pt]);
    let want = r.c(page_type::PT);
    let ty_ok = r.ctx.eq(ty, want);
    r.check(ty_ok, EINVAL);
    let owner = r.rd("page_desc", "owner", &[pt]);
    let current = r.scalar("current");
    let own_ok = r.ctx.eq(owner, current);
    r.check(own_ok, EPERM);
    let iv = idx_valid(&mut r, index);
    r.check(iv, EINVAL);
    let entry = r.rd("pages", "word", &[pt, index]);
    let p = r.c(PTE_P);
    let zero = r.c(0);
    let bits = r.ctx.bv_bin(BvBinOp::And, entry, p);
    let present = r.ctx.ne(bits, zero);
    r.check(present, EINVAL);
    let shift = r.c(PTE_PFN_SHIFT);
    let epfn = r.ctx.bv_bin(BvBinOp::Ashr, entry, shift);
    let match_pfn = r.ctx.eq(epfn, pfn);
    r.check(match_pfn, EINVAL);
    let pfv = pfn_valid(&mut r, pfn);
    r.check(pfv, EINVAL);
    // Branch: RAM frame vs DMA page.
    let nr_pages = r.c(r.st.params.nr_pages as i64);
    let is_ram = r.ctx.slt(pfn, nr_pages);
    let is_dma = r.ctx.not(is_ram);
    let frame = r.c(page_type::FRAME);
    let fty = r.rd("page_desc", "ty", &[pfn]);
    let fty_ok = r.ctx.eq(fty, frame);
    let ram_ty_ok = r.ctx.or2(is_dma, fty_ok);
    r.check(ram_ty_ok, EINVAL);
    let fowner = r.rd("page_desc", "owner", &[pfn]);
    let fown_ok = r.ctx.eq(fowner, current);
    let ram_own_ok = r.ctx.or2(is_dma, fown_ok);
    r.check(ram_own_ok, EPERM);
    let d = r.ctx.bv_sub(pfn, nr_pages);
    let downer = r.rd("dma_desc", "owner", &[d]);
    let down_ok = r.ctx.eq(downer, current);
    let dma_own_ok = r.ctx.or2(is_ram, down_ok);
    r.check(dma_own_ok, EPERM);
    let pm = perm_valid(&mut r, perm);
    r.check(pm, EINVAL);
    let shifted = r.ctx.bv_bin(BvBinOp::Shl, pfn, shift);
    let new_entry = r.ctx.bv_bin(BvBinOp::Or, shifted, perm);
    r.wr("pages", "word", &[pt, index], new_entry);
    r.finish_const(0)
}

/// Mirror of `check_free_table` + `do_free_table`.
fn free_level(mut r: SpecRun, args: &[TermId], parent_ty: i64, child_ty: i64) -> TermId {
    let (parent, index, child) = (args[0], args[1], args[2]);
    let pgv = page_valid(&mut r, parent);
    r.check(pgv, EINVAL);
    let pty = r.rd("page_desc", "ty", &[parent]);
    let want = r.c(parent_ty);
    let ty_ok = r.ctx.eq(pty, want);
    r.check(ty_ok, EINVAL);
    let owner = r.rd("page_desc", "owner", &[parent]);
    let current = r.scalar("current");
    let own_ok = r.ctx.eq(owner, current);
    r.check(own_ok, EPERM);
    let iv = idx_valid(&mut r, index);
    r.check(iv, EINVAL);
    let entry = r.rd("pages", "word", &[parent, index]);
    let p = r.c(PTE_P);
    let zero = r.c(0);
    let bits = r.ctx.bv_bin(BvBinOp::And, entry, p);
    let present = r.ctx.ne(bits, zero);
    r.check(present, EINVAL);
    let shift = r.c(PTE_PFN_SHIFT);
    let epfn = r.ctx.bv_bin(BvBinOp::Ashr, entry, shift);
    let matches = r.ctx.eq(epfn, child);
    r.check(matches, EINVAL);
    let cv = page_valid(&mut r, child);
    r.check(cv, EINVAL);
    let cty = r.rd("page_desc", "ty", &[child]);
    let cwant = r.c(child_ty);
    let cty_ok = r.ctx.eq(cty, cwant);
    r.check(cty_ok, EINVAL);
    let cowner = r.rd("page_desc", "owner", &[child]);
    let co_ok = r.ctx.eq(cowner, current);
    r.check(co_ok, EPERM);
    let cpp = r.rd("page_desc", "parent_pn", &[child]);
    let pp_ok = r.ctx.eq(cpp, parent);
    r.check(pp_ok, EINVAL);
    let cpi = r.rd("page_desc", "parent_idx", &[child]);
    let pi_ok = r.ctx.eq(cpi, index);
    r.check(pi_ok, EINVAL);
    r.wr("pages", "word", &[parent, index], zero);
    free_page_owned(&mut r, child);
    r.finish_const(0)
}

/// `sys_free_pdpt`.
pub fn free_pdpt(r: SpecRun, args: &[TermId]) -> TermId {
    free_level(r, args, page_type::PML4, page_type::PDPT)
}

/// `sys_free_pd`.
pub fn free_pd(r: SpecRun, args: &[TermId]) -> TermId {
    free_level(r, args, page_type::PDPT, page_type::PD)
}

/// `sys_free_pt`.
pub fn free_pt(r: SpecRun, args: &[TermId]) -> TermId {
    free_level(r, args, page_type::PD, page_type::PT)
}

/// `sys_free_frame(pt, index, pfn)` — the RAM/DMA dual-path unmap.
pub fn free_frame(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (pt, index, pfn) = (args[0], args[1], args[2]);
    let ptv = page_valid(&mut r, pt);
    r.check(ptv, EINVAL);
    let ty = r.rd("page_desc", "ty", &[pt]);
    let want = r.c(page_type::PT);
    let ty_ok = r.ctx.eq(ty, want);
    r.check(ty_ok, EINVAL);
    let owner = r.rd("page_desc", "owner", &[pt]);
    let current = r.scalar("current");
    let own_ok = r.ctx.eq(owner, current);
    r.check(own_ok, EPERM);
    let iv = idx_valid(&mut r, index);
    r.check(iv, EINVAL);
    let entry = r.rd("pages", "word", &[pt, index]);
    let p = r.c(PTE_P);
    let zero = r.c(0);
    let bits = r.ctx.bv_bin(BvBinOp::And, entry, p);
    let present = r.ctx.ne(bits, zero);
    r.check(present, EINVAL);
    let shift = r.c(PTE_PFN_SHIFT);
    let epfn = r.ctx.bv_bin(BvBinOp::Ashr, entry, shift);
    let matches = r.ctx.eq(epfn, pfn);
    r.check(matches, EINVAL);
    let pfv = pfn_valid(&mut r, pfn);
    r.check(pfv, EINVAL);
    let nr_pages = r.c(r.st.params.nr_pages as i64);
    let is_ram = r.ctx.slt(pfn, nr_pages);
    let is_dma = r.ctx.not(is_ram);
    // RAM path checks.
    let frame = r.c(page_type::FRAME);
    let fty = r.rd("page_desc", "ty", &[pfn]);
    let fty_ok = r.ctx.eq(fty, frame);
    let c1 = r.ctx.or2(is_dma, fty_ok);
    r.check(c1, EINVAL);
    let fowner = r.rd("page_desc", "owner", &[pfn]);
    let fo_ok = r.ctx.eq(fowner, current);
    let c2 = r.ctx.or2(is_dma, fo_ok);
    r.check(c2, EPERM);
    let fpp = r.rd("page_desc", "parent_pn", &[pfn]);
    let pp_ok = r.ctx.eq(fpp, pt);
    let c3 = r.ctx.or2(is_dma, pp_ok);
    r.check(c3, EINVAL);
    let fpi = r.rd("page_desc", "parent_idx", &[pfn]);
    let pi_ok = r.ctx.eq(fpi, index);
    let c4 = r.ctx.or2(is_dma, pi_ok);
    r.check(c4, EINVAL);
    // DMA path checks.
    let d = r.ctx.bv_sub(pfn, nr_pages);
    let downer = r.rd("dma_desc", "owner", &[d]);
    let do_ok = r.ctx.eq(downer, current);
    let c5 = r.ctx.or2(is_ram, do_ok);
    r.check(c5, EPERM);
    let dpp = r.rd("dma_desc", "cpu_parent_pn", &[d]);
    let dpp_ok = r.ctx.eq(dpp, pt);
    let c6 = r.ctx.or2(is_ram, dpp_ok);
    r.check(c6, EINVAL);
    let dpi = r.rd("dma_desc", "cpu_parent_idx", &[d]);
    let dpi_ok = r.ctx.eq(dpi, index);
    let c7 = r.ctx.or2(is_ram, dpi_ok);
    r.check(c7, EINVAL);
    // Effects: both paths clear the PTE.
    r.wr("pages", "word", &[pt, index], zero);
    // RAM: free the page.
    r.push_guard(is_ram);
    free_page_owned(&mut r, pfn);
    r.pop_guard();
    // DMA: clear the CPU mapping, maybe release ownership.
    let none = r.c(PARENT_NONE);
    r.wr_if(is_dma, "dma_desc", "cpu_parent_pn", &[d], none);
    r.wr_if(is_dma, "dma_desc", "cpu_parent_idx", &[d], none);
    let iop = r.rd("dma_desc", "io_parent_pn", &[d]);
    let io_none = r.ctx.eq(iop, none);
    let release = r.ctx.and2(is_dma, io_none);
    let pid_none = r.c(PID_NONE);
    r.wr_if(release, "dma_desc", "owner", &[d], pid_none);
    r.bump_if(release, "procs", "nr_dmapages", &[current], -1);
    r.finish_const(0)
}

/// `sys_reclaim_page(pfn)` — the zombie-reclaim dual path.
pub fn reclaim_page(mut r: SpecRun, args: &[TermId]) -> TermId {
    let pfn = args[0];
    let pfv = pfn_valid(&mut r, pfn);
    r.check(pfv, EINVAL);
    let nr_pages = r.c(r.st.params.nr_pages as i64);
    let is_ram = r.ctx.slt(pfn, nr_pages);
    let is_dma = r.ctx.not(is_ram);
    let zero = r.c(0);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let zombie = r.c(proc_state::ZOMBIE);
    let none = r.c(PARENT_NONE);
    let pid_none = r.c(PID_NONE);
    // RAM checks.
    let ty = r.rd("page_desc", "ty", &[pfn]);
    let free = r.c(page_type::FREE);
    let reserved = r.c(page_type::RESERVED);
    let is_free = r.ctx.eq(ty, free);
    let is_res = r.ctx.eq(ty, reserved);
    let dead_ty = r.ctx.or2(is_free, is_res);
    let ty_ok = r.ctx.not(dead_ty);
    let c1 = r.ctx.or2(is_dma, ty_ok);
    r.check(c1, EINVAL);
    let owner = r.rd("page_desc", "owner", &[pfn]);
    let oge = r.ctx.sle(one, owner);
    let olt = r.ctx.slt(owner, n);
    let orng = r.ctx.and2(oge, olt);
    let c2 = r.ctx.or2(is_dma, orng);
    r.check(c2, EINVAL);
    let ostate = r.rd("procs", "state", &[owner]);
    let oz = r.ctx.eq(ostate, zombie);
    let c3 = r.ctx.or2(is_dma, oz);
    r.check(c3, EPERM);
    // IOMMU root still referenced by the device table?
    let iommu_root = r.c(page_type::IOMMU_PML4);
    let is_root = r.ctx.eq(ty, iommu_root);
    let devid = r.rd("page_desc", "devid", &[pfn]);
    let dev_clear = r.ctx.eq(devid, none);
    let not_root = r.ctx.not(is_root);
    let root_ok = r.ctx.or2(not_root, dev_clear);
    let c4 = r.ctx.or2(is_dma, root_ok);
    r.check(c4, EBUSY);
    // DMA checks.
    let d = r.ctx.bv_sub(pfn, nr_pages);
    let downer = r.rd("dma_desc", "owner", &[d]);
    let dge = r.ctx.sle(one, downer);
    let dlt = r.ctx.slt(downer, n);
    let drng = r.ctx.and2(dge, dlt);
    let c5 = r.ctx.or2(is_ram, drng);
    r.check(c5, EINVAL);
    let dstate = r.rd("procs", "state", &[downer]);
    let dz = r.ctx.eq(dstate, zombie);
    let c6 = r.ctx.or2(is_ram, dz);
    r.check(c6, EPERM);
    let dnr_devs = r.rd("procs", "nr_devs", &[downer]);
    let no_devs = r.ctx.eq(dnr_devs, zero);
    let c7 = r.ctx.or2(is_ram, no_devs);
    r.check(c7, EBUSY);
    // --- RAM effects (branch-free guarded clear, mirroring vm.hc) ---
    let parent = r.rd("page_desc", "parent_pn", &[pfn]);
    let pidx = r.rd("page_desc", "parent_idx", &[pfn]);
    let pty_expect = parent_type_for(&mut r, ty);
    let has_parent = r.ctx.ne(parent, none);
    let has_pty = r.ctx.ne(pty_expect, none);
    let dc0 = r.ctx.and2(has_parent, has_pty);
    let do_clear0 = bool_word(&mut r, dc0);
    let pslot = r.ctx.bv_mul(parent, do_clear0);
    let islot = r.ctx.bv_mul(pidx, do_clear0);
    let pentry = r.rd("pages", "word", &[pslot, islot]);
    let parent_ty = r.rd("page_desc", "ty", &[pslot]);
    let pty_match = r.ctx.eq(parent_ty, pty_expect);
    let shift = r.c(PTE_PFN_SHIFT);
    let pepfn = r.ctx.bv_bin(BvBinOp::Ashr, pentry, shift);
    let points_here = r.ctx.eq(pepfn, pfn);
    let pm = bool_word(&mut r, pty_match);
    let ph = bool_word(&mut r, points_here);
    let dc1 = r.ctx.bv_mul(do_clear0, pm);
    let do_clear = r.ctx.bv_mul(dc1, ph);
    let cleared = blend(&mut r, do_clear, zero, pentry);
    // The whole store happens only on the RAM arm.
    r.push_guard(is_ram);
    r.wr("pages", "word", &[pslot, islot], cleared);
    r.pop_guard();
    r.push_guard(is_ram);
    r.wr("page_desc", "ty", &[pfn], free);
    r.wr("page_desc", "owner", &[pfn], pid_none);
    r.wr("page_desc", "parent_pn", &[pfn], none);
    r.wr("page_desc", "parent_idx", &[pfn], none);
    r.wr("page_desc", "devid", &[pfn], none);
    freelist_push(&mut r, pfn);
    r.bump("procs", "nr_pages", &[owner], -1);
    r.pop_guard();
    // --- DMA effects (branch-free guarded clears, mirroring vm.hc) ---
    let cpp = r.rd("dma_desc", "cpu_parent_pn", &[d]);
    let cpi = r.rd("dma_desc", "cpu_parent_idx", &[d]);
    let cs = r.ctx.ne(cpp, none);
    let cclear0 = bool_word(&mut r, cs);
    let cslot = r.ctx.bv_mul(cpp, cclear0);
    let cislot = r.ctx.bv_mul(cpi, cclear0);
    let centry = r.rd("pages", "word", &[cslot, cislot]);
    let cpt = r.rd("page_desc", "ty", &[cslot]);
    let pt_ty = r.c(page_type::PT);
    let cpt_ok = r.ctx.eq(cpt, pt_ty);
    let cpfn = r.ctx.bv_bin(BvBinOp::Ashr, centry, shift);
    let cpoints = r.ctx.eq(cpfn, pfn);
    let cm = bool_word(&mut r, cpt_ok);
    let cp = bool_word(&mut r, cpoints);
    let cc1 = r.ctx.bv_mul(cclear0, cm);
    let cclear = r.ctx.bv_mul(cc1, cp);
    let ccleared = blend(&mut r, cclear, zero, centry);
    r.push_guard(is_dma);
    r.wr("pages", "word", &[cslot, cislot], ccleared);
    r.pop_guard();
    let iop = r.rd("dma_desc", "io_parent_pn", &[d]);
    let ioi = r.rd("dma_desc", "io_parent_idx", &[d]);
    let ios = r.ctx.ne(iop, none);
    let ioclear0 = bool_word(&mut r, ios);
    let ioslot = r.ctx.bv_mul(iop, ioclear0);
    let ioislot = r.ctx.bv_mul(ioi, ioclear0);
    let ioentry = r.rd("pages", "word", &[ioslot, ioislot]);
    let iot = r.rd("page_desc", "ty", &[ioslot]);
    let io_pt = r.c(page_type::IOMMU_PT);
    let iot_ok = r.ctx.eq(iot, io_pt);
    let iopfn = r.ctx.bv_bin(BvBinOp::Ashr, ioentry, shift);
    let iopoints = r.ctx.eq(iopfn, pfn);
    let iom = bool_word(&mut r, iot_ok);
    let iop_b = bool_word(&mut r, iopoints);
    let io1 = r.ctx.bv_mul(ioclear0, iom);
    let ioclear = r.ctx.bv_mul(io1, iop_b);
    let iocleared = blend(&mut r, ioclear, zero, ioentry);
    r.push_guard(is_dma);
    r.wr("pages", "word", &[ioslot, ioislot], iocleared);
    r.pop_guard();
    r.push_guard(is_dma);
    r.wr("dma_desc", "owner", &[d], pid_none);
    r.wr("dma_desc", "cpu_parent_pn", &[d], none);
    r.wr("dma_desc", "cpu_parent_idx", &[d], none);
    r.wr("dma_desc", "io_parent_pn", &[d], none);
    r.wr("dma_desc", "io_parent_idx", &[d], none);
    r.bump("procs", "nr_dmapages", &[downer], -1);
    r.pop_guard();
    r.finish_const(0)
}
