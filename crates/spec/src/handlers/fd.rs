//! State-machine specifications for file descriptors and pipes
//! (mirrors `fd.hc`), including the paper's `spec_dup` (§2.2).

use hk_abi::{file_type, omode, page_type, EAGAIN, EBADF, EBUSY, EINVAL, ENFILE, EPERM, EPIPE};
use hk_smt::{BvBinOp, TermId};

use crate::helpers::*;
use crate::run::SpecRun;

/// `files[f].refcnt == 0 && files[f].ty == NONE`.
fn file_slot_free(r: &mut SpecRun, f: TermId) -> TermId {
    let refcnt = r.rd("files", "refcnt", &[f]);
    let zero = r.c(0);
    let rc0 = r.ctx.eq(refcnt, zero);
    let ty = r.rd("files", "ty", &[f]);
    let nonef = r.c(file_type::NONE);
    let tn = r.ctx.eq(ty, nonef);
    r.ctx.and2(rc0, tn)
}

/// Mirror of `file_unref(f)`.
fn file_unref(r: &mut SpecRun, f: TermId) {
    let zero = r.c(0);
    let one = r.c(1);
    let refcnt = r.rd("files", "refcnt", &[f]);
    let new_rc = r.ctx.bv_sub(refcnt, one);
    r.wr("files", "refcnt", &[f], new_rc);
    let last = r.ctx.eq(new_rc, zero);
    let ty = r.rd("files", "ty", &[f]);
    let pipe_ty = r.c(file_type::PIPE);
    let is_pipe = r.ctx.eq(ty, pipe_ty);
    let last_pipe = r.ctx.and2(last, is_pipe);
    let p = r.rd("files", "value", &[f]);
    let ends = r.rd("pipes", "nr_ends", &[p]);
    let new_ends = r.ctx.bv_sub(ends, one);
    r.wr_if(last_pipe, "pipes", "nr_ends", &[p], new_ends);
    let ends_zero = r.ctx.eq(new_ends, zero);
    let reset = r.ctx.and2(last_pipe, ends_zero);
    r.wr_if(reset, "pipes", "readp", &[p], zero);
    r.wr_if(reset, "pipes", "count", &[p], zero);
    let nonef = r.c(file_type::NONE);
    r.wr_if(last, "files", "ty", &[f], nonef);
    r.wr_if(last, "files", "value", &[f], zero);
    r.wr_if(last, "files", "offset", &[f], zero);
    r.wr_if(last, "files", "omode", &[f], zero);
}

/// `sys_create_file(fd, fileid, ty, value, omode)`.
pub fn create_file(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (fd, fileid, ty, value, om) = (args[0], args[1], args[2], args[3], args[4]);
    let fv = fd_valid(&mut r, fd);
    r.check(fv, EBADF);
    let current = r.scalar("current");
    let slot = r.rd("procs", "ofile", &[current, fd]);
    let nr_files = r.c(r.st.params.nr_files as i64);
    let empty = r.ctx.eq(slot, nr_files);
    r.check(empty, EBUSY);
    let filev = file_valid(&mut r, fileid);
    r.check(filev, EINVAL);
    let sf = file_slot_free(&mut r, fileid);
    r.check(sf, ENFILE);
    let inode = r.c(file_type::INODE);
    let socket = r.c(file_type::SOCKET);
    let t1 = r.ctx.eq(ty, inode);
    let t2 = r.ctx.eq(ty, socket);
    let ty_ok = r.ctx.or2(t1, t2);
    r.check(ty_ok, EINVAL);
    let rd = r.c(omode::READ);
    let wr = r.c(omode::WRITE);
    let o1 = r.ctx.eq(om, rd);
    let o2 = r.ctx.eq(om, wr);
    let om_ok = r.ctx.or2(o1, o2);
    r.check(om_ok, EINVAL);
    let one = r.c(1);
    let zero = r.c(0);
    r.wr("files", "ty", &[fileid], ty);
    r.wr("files", "refcnt", &[fileid], one);
    r.wr("files", "value", &[fileid], value);
    r.wr("files", "offset", &[fileid], zero);
    r.wr("files", "omode", &[fileid], om);
    r.wr("procs", "ofile", &[current, fd], fileid);
    r.bump("procs", "nr_fds", &[current], 1);
    r.finish_const(0)
}

/// `sys_close(fd)`.
pub fn close(mut r: SpecRun, args: &[TermId]) -> TermId {
    let fd = args[0];
    let fv = fd_valid(&mut r, fd);
    r.check(fv, EBADF);
    let current = r.scalar("current");
    let f = r.rd("procs", "ofile", &[current, fd]);
    let nr_files = r.c(r.st.params.nr_files as i64);
    let open = r.ctx.ne(f, nr_files);
    r.check(open, EBADF);
    r.wr("procs", "ofile", &[current, fd], nr_files);
    r.bump("procs", "nr_fds", &[current], -1);
    file_unref(&mut r, f);
    r.finish_const(0)
}

/// `sys_dup(oldfd, newfd)` — the paper's flagship finite interface.
pub fn dup(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (oldfd, newfd) = (args[0], args[1]);
    let ov = fd_valid(&mut r, oldfd);
    r.check(ov, EBADF);
    let current = r.scalar("current");
    let f = r.rd("procs", "ofile", &[current, oldfd]);
    let nr_files = r.c(r.st.params.nr_files as i64);
    let open = r.ctx.ne(f, nr_files);
    r.check(open, EBADF);
    let nv = fd_valid(&mut r, newfd);
    r.check(nv, EBADF);
    let newslot = r.rd("procs", "ofile", &[current, newfd]);
    let empty = r.ctx.eq(newslot, nr_files);
    r.check(empty, EBUSY);
    r.wr("procs", "ofile", &[current, newfd], f);
    r.bump("procs", "nr_fds", &[current], 1);
    r.bump("files", "refcnt", &[f], 1);
    r.finish_const(0)
}

/// `sys_dup2(oldfd, newfd)`.
pub fn dup2(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (oldfd, newfd) = (args[0], args[1]);
    let ov = fd_valid(&mut r, oldfd);
    r.check(ov, EBADF);
    let current = r.scalar("current");
    let f = r.rd("procs", "ofile", &[current, oldfd]);
    let nr_files = r.c(r.st.params.nr_files as i64);
    let open = r.ctx.ne(f, nr_files);
    r.check(open, EBADF);
    let nv = fd_valid(&mut r, newfd);
    r.check(nv, EBADF);
    // oldfd == newfd: early success, no effects.
    let same = r.ctx.eq(oldfd, newfd);
    let differ = r.ctx.not(same);
    let zero = r.c(0);
    r.early(differ, zero);
    let old_target = r.rd("procs", "ofile", &[current, newfd]);
    let was_open = r.ctx.ne(old_target, nr_files);
    r.wr_if(was_open, "procs", "ofile", &[current, newfd], nr_files);
    r.bump_if(was_open, "procs", "nr_fds", &[current], -1);
    r.push_guard(was_open);
    file_unref(&mut r, old_target);
    r.pop_guard();
    r.wr("procs", "ofile", &[current, newfd], f);
    r.bump("procs", "nr_fds", &[current], 1);
    r.bump("files", "refcnt", &[f], 1);
    r.finish_const(0)
}

/// `sys_pipe(fd0, fileid0, fd1, fileid1, pipeid)`.
pub fn pipe(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (fd0, fileid0, fd1, fileid1, pipeid) = (args[0], args[1], args[2], args[3], args[4]);
    let v0 = fd_valid(&mut r, fd0);
    let v1 = fd_valid(&mut r, fd1);
    let both = r.ctx.and2(v0, v1);
    r.check(both, EBADF);
    let differ = r.ctx.ne(fd0, fd1);
    r.check(differ, EINVAL);
    let current = r.scalar("current");
    let nr_files = r.c(r.st.params.nr_files as i64);
    let s0 = r.rd("procs", "ofile", &[current, fd0]);
    let e0 = r.ctx.eq(s0, nr_files);
    r.check(e0, EBUSY);
    let s1 = r.rd("procs", "ofile", &[current, fd1]);
    let e1 = r.ctx.eq(s1, nr_files);
    r.check(e1, EBUSY);
    let fv0 = file_valid(&mut r, fileid0);
    let fv1 = file_valid(&mut r, fileid1);
    let fboth = r.ctx.and2(fv0, fv1);
    r.check(fboth, EINVAL);
    let fdiffer = r.ctx.ne(fileid0, fileid1);
    r.check(fdiffer, EINVAL);
    let sf0 = file_slot_free(&mut r, fileid0);
    r.check(sf0, ENFILE);
    let sf1 = file_slot_free(&mut r, fileid1);
    r.check(sf1, ENFILE);
    let hi_ = r.st.params.nr_pipes as i64;
    let prange = in_range(&mut r, pipeid, hi_);
    r.check(prange, EINVAL);
    let ends = r.rd("pipes", "nr_ends", &[pipeid]);
    let zero = r.c(0);
    let unused = r.ctx.eq(ends, zero);
    r.check(unused, EBUSY);
    let pipe_ty = r.c(file_type::PIPE);
    let one = r.c(1);
    let two = r.c(2);
    let rd_mode = r.c(omode::READ);
    let wr_mode = r.c(omode::WRITE);
    r.wr("files", "ty", &[fileid0], pipe_ty);
    r.wr("files", "refcnt", &[fileid0], one);
    r.wr("files", "value", &[fileid0], pipeid);
    r.wr("files", "offset", &[fileid0], zero);
    r.wr("files", "omode", &[fileid0], rd_mode);
    r.wr("files", "ty", &[fileid1], pipe_ty);
    r.wr("files", "refcnt", &[fileid1], one);
    r.wr("files", "value", &[fileid1], pipeid);
    r.wr("files", "offset", &[fileid1], zero);
    r.wr("files", "omode", &[fileid1], wr_mode);
    r.wr("procs", "ofile", &[current, fd0], fileid0);
    r.wr("procs", "ofile", &[current, fd1], fileid1);
    r.bump("procs", "nr_fds", &[current], 2);
    r.wr("pipes", "nr_ends", &[pipeid], two);
    r.wr("pipes", "readp", &[pipeid], zero);
    r.wr("pipes", "count", &[pipeid], zero);
    r.finish_const(0)
}

/// Shared validation for pipe_read/pipe_write.
fn pipe_common(
    r: &mut SpecRun,
    fd: TermId,
    pn: TermId,
    offset: TermId,
    len: TermId,
    mode: i64,
) -> TermId {
    let fv = fd_valid(r, fd);
    r.check(fv, EBADF);
    let current = r.scalar("current");
    let f = r.rd("procs", "ofile", &[current, fd]);
    let nr_files = r.c(r.st.params.nr_files as i64);
    let open = r.ctx.ne(f, nr_files);
    r.check(open, EBADF);
    let ty = r.rd("files", "ty", &[f]);
    let pipe_ty = r.c(file_type::PIPE);
    let is_pipe = r.ctx.eq(ty, pipe_ty);
    r.check(is_pipe, EBADF);
    let om = r.rd("files", "omode", &[f]);
    let want = r.c(mode);
    let om_ok = r.ctx.eq(om, want);
    r.check(om_ok, EBADF);
    let pv = page_valid(r, pn);
    r.check(pv, EINVAL);
    let pty = r.rd("page_desc", "ty", &[pn]);
    let frame = r.c(page_type::FRAME);
    let pty_ok = r.ctx.eq(pty, frame);
    r.check(pty_ok, EINVAL);
    let powner = r.rd("page_desc", "owner", &[pn]);
    let pown_ok = r.ctx.eq(powner, current);
    r.check(pown_ok, EPERM);
    let one = r.c(1);
    let pipe_words = r.c(r.st.params.pipe_words as i64);
    let l1 = r.ctx.sle(one, len);
    let l2 = r.ctx.sle(len, pipe_words);
    let len_ok = r.ctx.and2(l1, l2);
    r.check(len_ok, EINVAL);
    let zero = r.c(0);
    let page_words = r.c(r.st.params.page_words as i64);
    let limit = r.ctx.bv_sub(page_words, len);
    let o1 = r.ctx.sle(zero, offset);
    let o2 = r.ctx.sle(offset, limit);
    let off_ok = r.ctx.and2(o1, o2);
    r.check(off_ok, EINVAL);
    r.rd("files", "value", &[f])
}

/// `sys_pipe_read(fd, pn, offset, len)`.
pub fn pipe_read(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (fd, pn, offset, len) = (args[0], args[1], args[2], args[3]);
    let p = pipe_common(&mut r, fd, pn, offset, len, omode::READ);
    let count = r.rd("pipes", "count", &[p]);
    let fits = r.ctx.sle(len, count);
    // EOF: more than buffered and the writer is gone -> return 0.
    let ends = r.rd("pipes", "nr_ends", &[p]);
    let two = r.c(2);
    let writer_gone = r.ctx.slt(ends, two);
    let zero = r.c(0);
    let not_fits = r.ctx.not(fits);
    let eof_fires = r.ctx.and2(not_fits, writer_gone);
    let not_eof = r.ctx.not(eof_fires);
    r.early(not_eof, zero);
    r.check(fits, EAGAIN);
    let rp = r.rd("pipes", "readp", &[p]);
    let mask = r.c(r.st.params.pipe_words as i64 - 1);
    for i in 0..r.st.params.pipe_words {
        let ci = r.c(i as i64);
        let in_len = r.ctx.slt(ci, len);
        let src_raw = r.ctx.bv_add(rp, ci);
        let src = r.ctx.bv_bin(BvBinOp::And, src_raw, mask);
        let val = r.rd("pipes", "data", &[p, src]);
        let dst = r.ctx.bv_add(offset, ci);
        r.wr_if(in_len, "pages", "word", &[pn, dst], val);
    }
    let rp_new_raw = r.ctx.bv_add(rp, len);
    let rp_new = r.ctx.bv_bin(BvBinOp::And, rp_new_raw, mask);
    r.wr("pipes", "readp", &[p], rp_new);
    let count_new = r.ctx.bv_sub(count, len);
    r.wr("pipes", "count", &[p], count_new);
    r.finish(len)
}

/// `sys_pipe_write(fd, pn, offset, len)`.
pub fn pipe_write(mut r: SpecRun, args: &[TermId]) -> TermId {
    let (fd, pn, offset, len) = (args[0], args[1], args[2], args[3]);
    let p = pipe_common(&mut r, fd, pn, offset, len, omode::WRITE);
    let ends = r.rd("pipes", "nr_ends", &[p]);
    let two = r.c(2);
    let has_reader = r.ctx.sle(two, ends);
    r.check(has_reader, EPIPE);
    let count = r.rd("pipes", "count", &[p]);
    let pipe_words = r.c(r.st.params.pipe_words as i64);
    let space = r.ctx.bv_sub(pipe_words, count);
    let fits = r.ctx.sle(len, space);
    r.check(fits, EAGAIN);
    let rp = r.rd("pipes", "readp", &[p]);
    let wp = r.ctx.bv_add(rp, count);
    let mask = r.c(r.st.params.pipe_words as i64 - 1);
    for i in 0..r.st.params.pipe_words {
        let ci = r.c(i as i64);
        let in_len = r.ctx.slt(ci, len);
        let src = r.ctx.bv_add(offset, ci);
        let val = r.rd("pages", "word", &[pn, src]);
        let dst_raw = r.ctx.bv_add(wp, ci);
        let dst = r.ctx.bv_bin(BvBinOp::And, dst_raw, mask);
        r.wr_if(in_len, "pipes", "data", &[p, dst], val);
    }
    let count_new = r.ctx.bv_add(count, len);
    r.wr("pipes", "count", &[p], count_new);
    r.finish(len)
}
