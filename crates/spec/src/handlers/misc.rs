//! State-machine specifications for scheduling, time, and the
//! non-syscall traps (mirrors `sched.hc` and `trap.hc`).

use hk_abi::{proc_state, EINVAL, INIT_PID};
use hk_smt::{BvBinOp, TermId};

use crate::helpers::*;
use crate::run::SpecRun;

/// Shared body of `sys_yield` / `trap_timer`'s round-robin step.
fn round_robin(r: &mut SpecRun) {
    let current = r.scalar("current");
    let cand = r.rd("procs", "ready_next", &[current]);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let ge1 = r.ctx.sle(one, cand);
    let lt = r.ctx.slt(cand, n);
    let ne = r.ctx.ne(cand, current);
    let rng = r.ctx.and(&[ge1, lt, ne]);
    let cstate = r.rd("procs", "state", &[cand]);
    let runnable = r.c(proc_state::RUNNABLE);
    let c_run = r.ctx.eq(cstate, runnable);
    let go = r.ctx.and2(rng, c_run);
    let cur_state = r.rd("procs", "state", &[current]);
    let running = r.c(proc_state::RUNNING);
    let cur_running = r.ctx.eq(cur_state, running);
    let demote = r.ctx.and2(go, cur_running);
    r.wr_if(demote, "procs", "state", &[current], runnable);
    r.wr_if(go, "procs", "state", &[cand], running);
    r.wr_scalar_if(go, "current", cand);
}

/// `sys_yield()`.
pub fn yield_(mut r: SpecRun, _args: &[TermId]) -> TermId {
    round_robin(&mut r);
    r.finish_const(0)
}

/// `sys_uptime()`.
pub fn uptime(mut r: SpecRun, _args: &[TermId]) -> TermId {
    let u = r.scalar("uptime");
    r.finish(u)
}

/// `trap_timer()`.
pub fn trap_timer(mut r: SpecRun, _args: &[TermId]) -> TermId {
    let u = r.scalar("uptime");
    let one = r.c(1);
    let u1 = r.ctx.bv_add(u, one);
    r.wr_scalar("uptime", u1);
    round_robin(&mut r);
    r.finish_const(0)
}

/// `trap_irq(v)`.
pub fn trap_irq(mut r: SpecRun, args: &[TermId]) -> TermId {
    let v = args[0];
    let hi_ = r.st.params.nr_vectors as i64;
    let rng = in_range(&mut r, v, hi_);
    r.check(rng, EINVAL);
    let owner = r.rd("vectors", "owner", &[v]);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let ge1 = r.ctx.sle(one, owner);
    let lt = r.ctx.slt(owner, n);
    let owned = r.ctx.and2(ge1, lt);
    r.check(owned, EINVAL);
    let pending = r.rd("procs", "intr_pending", &[owner]);
    let bit = r.ctx.bv_bin(BvBinOp::Shl, one, v);
    let new = r.ctx.bv_bin(BvBinOp::Or, pending, bit);
    r.wr("procs", "intr_pending", &[owner], new);
    r.finish_const(0)
}

/// `trap_triple_fault()`.
pub fn trap_triple_fault(mut r: SpecRun, _args: &[TermId]) -> TermId {
    let current = r.scalar("current");
    let cand = r.rd("procs", "ready_next", &[current]);
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let ge1 = r.ctx.sle(one, cand);
    let lt = r.ctx.slt(cand, n);
    let ne = r.ctx.ne(cand, current);
    let rng = r.ctx.and(&[ge1, lt, ne]);
    let cstate = r.rd("procs", "state", &[cand]);
    let runnable = r.c(proc_state::RUNNABLE);
    let c_run = r.ctx.eq(cstate, runnable);
    let cand_ok = r.ctx.and2(rng, c_run);
    let init = r.c(INIT_PID);
    let istate = r.rd("procs", "state", &[init]);
    let i_run = r.ctx.eq(istate, runnable);
    let minus1 = r.c(-1);
    let fallback = r.ctx.ite(i_run, init, minus1);
    let succ = r.ctx.ite(cand_ok, cand, fallback);
    let has_succ = r.ctx.ne(succ, minus1);
    let cur_state = r.rd("procs", "state", &[current]);
    let running = r.c(proc_state::RUNNING);
    let cur_running = r.ctx.eq(cur_state, running);
    r.push_guard(cur_running);
    ready_remove(&mut r, current);
    let zombie = r.c(proc_state::ZOMBIE);
    r.wr("procs", "state", &[current], zombie);
    r.pop_guard();
    r.wr_if(has_succ, "procs", "state", &[succ], running);
    r.wr_scalar_if(has_succ, "current", succ);
    r.finish_const(0)
}

/// `trap_debug_print(val)`.
pub fn trap_debug_print(mut r: SpecRun, args: &[TermId]) -> TermId {
    let mask = r.c(255);
    let v = r.ctx.bv_bin(BvBinOp::And, args[0], mask);
    r.finish(v)
}

/// `trap_invalid()`.
pub fn trap_invalid(r: SpecRun, _args: &[TermId]) -> TermId {
    r.finish_const(-EINVAL)
}
