//! The declarative layer: crosscutting properties over the abstract
//! state (paper §2.2, §3.3, §4.2).
//!
//! Each property is a closed boolean term built by finite instantiation
//! over the kernel's resource domains — the "effectively decidable"
//! discipline of §3.3. Theorem 2 checks that the *conjunction* of all
//! properties is preserved by every specified transition (the properties
//! are mutually supporting, exactly as the kernel's invariants are), and
//! the memory-isolation statement (paper Property 5) is proved as a
//! consequence lemma: any state satisfying the conjunction admits no
//! 4-level page walk that escapes the owner's frames.

use hk_abi::{
    file_type, intremap_state, page_type, proc_state, INIT_PID, PARENT_NONE, PID_NONE, PTE_P,
    PTE_PFN_SHIFT,
};
use hk_smt::{BvBinOp, Ctx, Sort, TermId};

use crate::state::SpecState;

/// A named declarative property.
pub struct DeclProperty {
    /// Stable name for reports.
    pub name: &'static str,
    /// Builds the property as a closed term over the state.
    pub build: fn(&mut Ctx, &mut SpecState) -> TermId,
}

/// All declarative properties, in presentation order.
pub fn all_properties() -> Vec<DeclProperty> {
    vec![
        DeclProperty {
            name: "current-valid",
            build: current_valid,
        },
        DeclProperty {
            name: "running-is-current",
            build: running_is_current,
        },
        DeclProperty {
            name: "init-immortal",
            build: init_immortal,
        },
        DeclProperty {
            name: "file-refcount-consistent",
            build: file_refcount_consistent,
        },
        DeclProperty {
            name: "proc-counters-consistent",
            build: proc_counters_consistent,
        },
        DeclProperty {
            name: "pipe-ends-consistent",
            build: pipe_ends_consistent,
        },
        DeclProperty {
            name: "file-none-unreferenced",
            build: file_none_unreferenced,
        },
        DeclProperty {
            name: "proc-pages-exclusive",
            build: proc_pages_exclusive,
        },
        DeclProperty {
            name: "free-page-unowned",
            build: free_page_unowned,
        },
        DeclProperty {
            name: "free-proc-no-children",
            build: free_proc_no_children,
        },
        DeclProperty {
            name: "pte-wellformed",
            build: pte_wellformed,
        },
        DeclProperty {
            name: "iommu-root-wellformed",
            build: iommu_root_wellformed,
        },
        DeclProperty {
            name: "intremap-refcounts",
            build: intremap_refcounts,
        },
    ]
}

/// Conjunction of a set of properties.
pub fn conjunction(ctx: &mut Ctx, st: &mut SpecState, props: &[DeclProperty]) -> TermId {
    let terms: Vec<TermId> = props.iter().map(|p| (p.build)(ctx, st)).collect();
    ctx.and(&terms)
}

fn c(ctx: &mut Ctx, v: i64) -> TermId {
    ctx.i64_const(v)
}

/// Instantiates `body` over `from..n`.
fn forall_range(
    ctx: &mut Ctx,
    from: u64,
    n: u64,
    mut body: impl FnMut(&mut Ctx, TermId, u64) -> TermId,
) -> TermId {
    let mut parts = Vec::with_capacity((n - from) as usize);
    for i in from..n {
        let ci = ctx.i64_const(i as i64);
        parts.push(body(ctx, ci, i));
    }
    ctx.and(&parts)
}

/// `1 <= current < NR_PROCS`.
fn current_valid(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let cur = st.scalar(ctx, "current");
    let one = c(ctx, 1);
    let n = c(ctx, st.params.nr_procs as i64);
    let a = ctx.sle(one, cur);
    let b = ctx.slt(cur, n);
    ctx.and2(a, b)
}

/// Every RUNNING process is `current` (so there is at most one).
fn running_is_current(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let cur = st.scalar(ctx, "current");
    let running = c(ctx, proc_state::RUNNING);
    let nr = st.params.nr_procs;
    let mut stc = st.clone();
    forall_range(ctx, 0, nr, |ctx, p, _| {
        let state = stc.read(ctx, "procs", "state", &[p]);
        let is_running = ctx.eq(state, running);
        let is_cur = ctx.eq(p, cur);
        ctx.implies(is_running, is_cur)
    })
}

/// Init exists forever: never FREE or EMBRYO, and parentless (so it can
/// never be reaped).
fn init_immortal(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let init = c(ctx, INIT_PID);
    let state = st.read(ctx, "procs", "state", &[init]);
    let free = c(ctx, proc_state::FREE);
    let embryo = c(ctx, proc_state::EMBRYO);
    let nf = ctx.ne(state, free);
    let ne = ctx.ne(state, embryo);
    let ppid = st.read(ctx, "procs", "ppid", &[init]);
    let none = c(ctx, PID_NONE);
    let orphan = ctx.eq(ppid, none);
    ctx.and(&[nf, ne, orphan])
}

/// The paper's §2.2 flagship: each file's reference count equals the
/// number of per-process FDs referring to it, and empty slots are typed
/// `NONE` exactly when unreferenced (the §6.1 file-table consistency
/// bug).
fn file_refcount_consistent(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    forall_range(ctx, 0, params.nr_files, |ctx, f, _| {
        let mut count = ctx.i64_const(0);
        for pid in 1..params.nr_procs {
            for fd in 0..params.nr_fds {
                let cp = ctx.i64_const(pid as i64);
                let cf = ctx.i64_const(fd as i64);
                let slot = stc.read(ctx, "procs", "ofile", &[cp, cf]);
                let refs = ctx.eq(slot, f);
                let one = ctx.i64_const(1);
                let zero = ctx.i64_const(0);
                let inc = ctx.ite(refs, one, zero);
                count = ctx.bv_add(count, inc);
            }
        }
        let refcnt = stc.read(ctx, "files", "refcnt", &[f]);
        let consistent = ctx.eq(refcnt, count);
        // ty == NONE <=> refcnt == 0.
        let ty = stc.read(ctx, "files", "ty", &[f]);
        let none = ctx.i64_const(file_type::NONE);
        let is_none = ctx.eq(ty, none);
        let zero = ctx.i64_const(0);
        let rc0 = ctx.eq(refcnt, zero);
        let tied = ctx.eq(is_none, rc0);
        ctx.and2(consistent, tied)
    })
}

/// Paper Property 1 generalized: every per-process resource counter
/// equals the number of resources attributed to that process — children,
/// open FDs, owned pages, DMA pages, devices, ports, vectors, and
/// interrupt-remapping entries. This is what makes the reap-time
/// zero-checks (§4.2) meaningful.
fn proc_counters_consistent(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    forall_range(ctx, 1, params.nr_procs, |ctx, p, _| {
        let mut conds = Vec::new();
        // nr_children: live processes with ppid == p.
        let mut count = ctx.i64_const(0);
        for q in 1..params.nr_procs {
            let cq = ctx.i64_const(q as i64);
            let ppid = stc.read(ctx, "procs", "ppid", &[cq]);
            let is_kid = ctx.eq(ppid, p);
            let state = stc.read(ctx, "procs", "state", &[cq]);
            let free = ctx.i64_const(proc_state::FREE);
            let live = ctx.ne(state, free);
            let both = ctx.and2(is_kid, live);
            let one = ctx.i64_const(1);
            let zero = ctx.i64_const(0);
            let inc = ctx.ite(both, one, zero);
            count = ctx.bv_add(count, inc);
        }
        let nr = stc.read(ctx, "procs", "nr_children", &[p]);
        conds.push(ctx.eq(nr, count));
        // nr_fds: open slots in the FD table.
        let mut count = ctx.i64_const(0);
        let nr_files = ctx.i64_const(params.nr_files as i64);
        for fd in 0..params.nr_fds {
            let cfd = ctx.i64_const(fd as i64);
            let slot = stc.read(ctx, "procs", "ofile", &[p, cfd]);
            let open = ctx.ne(slot, nr_files);
            let one = ctx.i64_const(1);
            let zero = ctx.i64_const(0);
            let inc = ctx.ite(open, one, zero);
            count = ctx.bv_add(count, inc);
        }
        let nr = stc.read(ctx, "procs", "nr_fds", &[p]);
        conds.push(ctx.eq(nr, count));
        // nr_pages: owned, non-free RAM pages.
        let mut count = ctx.i64_const(0);
        for pn in 0..params.nr_pages {
            let cpn = ctx.i64_const(pn as i64);
            let owner = stc.read(ctx, "page_desc", "owner", &[cpn]);
            let mine = ctx.eq(owner, p);
            let ty = stc.read(ctx, "page_desc", "ty", &[cpn]);
            let free = ctx.i64_const(page_type::FREE);
            let reserved = ctx.i64_const(page_type::RESERVED);
            let nf = ctx.ne(ty, free);
            let nr_ = ctx.ne(ty, reserved);
            let counted = ctx.and(&[mine, nf, nr_]);
            let one = ctx.i64_const(1);
            let zero = ctx.i64_const(0);
            let inc = ctx.ite(counted, one, zero);
            count = ctx.bv_add(count, inc);
        }
        let nr = stc.read(ctx, "procs", "nr_pages", &[p]);
        conds.push(ctx.eq(nr, count));
        // Simple ownership counters.
        for (global, field, counter, n) in [
            ("dma_desc", "owner", "nr_dmapages", params.nr_dmapages),
            ("devs", "owner", "nr_devs", params.nr_devs),
            ("io_ports", "owner", "nr_ports", params.nr_ports),
            ("vectors", "owner", "nr_vectors", params.nr_vectors),
        ] {
            let mut count = ctx.i64_const(0);
            for i in 0..n {
                let ci = ctx.i64_const(i as i64);
                let owner = stc.read(ctx, global, field, &[ci]);
                let mine = ctx.eq(owner, p);
                let one = ctx.i64_const(1);
                let zero = ctx.i64_const(0);
                let inc = ctx.ite(mine, one, zero);
                count = ctx.bv_add(count, inc);
            }
            let nr = stc.read(ctx, "procs", counter, &[p]);
            conds.push(ctx.eq(nr, count));
        }
        // nr_intremaps: ACTIVE entries owned by p.
        let mut count = ctx.i64_const(0);
        let active = ctx.i64_const(intremap_state::ACTIVE);
        for i in 0..params.nr_intremaps {
            let ci = ctx.i64_const(i as i64);
            let state = stc.read(ctx, "intremaps", "state", &[ci]);
            let is_active = ctx.eq(state, active);
            let owner = stc.read(ctx, "intremaps", "owner", &[ci]);
            let mine = ctx.eq(owner, p);
            let both = ctx.and2(is_active, mine);
            let one = ctx.i64_const(1);
            let zero = ctx.i64_const(0);
            let inc = ctx.ite(both, one, zero);
            count = ctx.bv_add(count, inc);
        }
        let nr = stc.read(ctx, "procs", "nr_intremaps", &[p]);
        conds.push(ctx.eq(nr, count));
        ctx.and(&conds)
    })
}

/// Pipe end counts equal the number of live pipe handles in the file
/// table (the §6.1 file-table consistency discipline, pipe flavour).
fn pipe_ends_consistent(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    forall_range(ctx, 0, params.nr_pipes, |ctx, p, _| {
        let mut count = ctx.i64_const(0);
        let pipe_ty = ctx.i64_const(file_type::PIPE);
        for f in 0..params.nr_files {
            let cf = ctx.i64_const(f as i64);
            let ty = stc.read(ctx, "files", "ty", &[cf]);
            let is_pipe = ctx.eq(ty, pipe_ty);
            let value = stc.read(ctx, "files", "value", &[cf]);
            let this = ctx.eq(value, p);
            let both = ctx.and2(is_pipe, this);
            let one = ctx.i64_const(1);
            let zero = ctx.i64_const(0);
            let inc = ctx.ite(both, one, zero);
            count = ctx.bv_add(count, inc);
        }
        let ends = stc.read(ctx, "pipes", "nr_ends", &[p]);
        ctx.eq(ends, count)
    })
}

/// If a file's reference count is zero, no FD refers to it (the exact
/// property quoted in paper §2.2).
fn file_none_unreferenced(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    forall_range(ctx, 0, params.nr_files, |ctx, f, _| {
        let refcnt = stc.read(ctx, "files", "refcnt", &[f]);
        let zero = ctx.i64_const(0);
        let rc0 = ctx.eq(refcnt, zero);
        let no_refs = forall_range(ctx, 1, params.nr_procs, |ctx, pid, _| {
            forall_range(ctx, 0, params.nr_fds, |ctx, fd, _| {
                let slot = stc.read(ctx, "procs", "ofile", &[pid, fd]);
                ctx.ne(slot, f)
            })
        });
        ctx.implies(rc0, no_refs)
    })
}

/// Paper Property 3 (and its HVM/stack analogues): a live process's
/// page-table root, HVM page, and stack page carry the right type and
/// are owned by that process — ownership is the paper's inverse
/// function, giving exclusivity for free.
fn proc_pages_exclusive(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    forall_range(ctx, 1, params.nr_procs, |ctx, p, _| {
        let state = stc.read(ctx, "procs", "state", &[p]);
        let mut live_cases = Vec::new();
        for s in [
            proc_state::EMBRYO,
            proc_state::RUNNABLE,
            proc_state::RUNNING,
            proc_state::SLEEPING,
        ] {
            let cs = ctx.i64_const(s);
            live_cases.push(ctx.eq(state, cs));
        }
        let live = ctx.or(&live_cases);
        let mut conds = Vec::new();
        for (field, ty) in [
            ("pml4", page_type::PML4),
            ("hvm", page_type::HVM),
            ("stack_pn", page_type::STACK),
        ] {
            let pn = stc.read(ctx, "procs", field, &[p]);
            let pty = stc.read(ctx, "page_desc", "ty", &[pn]);
            let want = ctx.i64_const(ty);
            conds.push(ctx.eq(pty, want));
            let owner = stc.read(ctx, "page_desc", "owner", &[pn]);
            conds.push(ctx.eq(owner, p));
        }
        let good = ctx.and(&conds);
        ctx.implies(live, good)
    })
}

/// Free pages are unowned and carry no device backref.
fn free_page_unowned(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    forall_range(ctx, 0, params.nr_pages, |ctx, pn, _| {
        let ty = stc.read(ctx, "page_desc", "ty", &[pn]);
        let free = ctx.i64_const(page_type::FREE);
        let is_free = ctx.eq(ty, free);
        let owner = stc.read(ctx, "page_desc", "owner", &[pn]);
        let zero = ctx.i64_const(PID_NONE);
        let unowned = ctx.eq(owner, zero);
        let devid = stc.read(ctx, "page_desc", "devid", &[pn]);
        let none = ctx.i64_const(PARENT_NONE);
        let no_dev = ctx.eq(devid, none);
        let good = ctx.and2(unowned, no_dev);
        ctx.implies(is_free, good)
    })
}

/// Paper Property 2: if a process is free, no live process designates it
/// as its parent.
fn free_proc_no_children(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    forall_range(ctx, 1, params.nr_procs, |ctx, p, _| {
        let state = stc.read(ctx, "procs", "state", &[p]);
        let free = ctx.i64_const(proc_state::FREE);
        let is_free = ctx.eq(state, free);
        let no_kids = forall_range(ctx, 1, params.nr_procs, |ctx, q, _| {
            let qstate = stc.read(ctx, "procs", "state", &[q]);
            let qfree = ctx.i64_const(proc_state::FREE);
            let q_is_free = ctx.eq(qstate, qfree);
            let ppid = stc.read(ctx, "procs", "ppid", &[q]);
            let not_parent = ctx.ne(ppid, p);
            ctx.or2(q_is_free, not_parent)
        });
        ctx.implies(is_free, no_kids)
    })
}

/// Paper Property 4, generalized to every table level and the IOMMU:
/// each present entry in a page-table page refers to a correctly-typed
/// next-level page owned by the same process, whose parent backref names
/// exactly this slot (unique reference); IOMMU leaves name only DMA
/// pages (the kernel half of DMA isolation).
fn pte_wellformed(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    let table_child: &[(i64, i64)] = &[
        (page_type::PML4, page_type::PDPT),
        (page_type::PDPT, page_type::PD),
        (page_type::PD, page_type::PT),
        (page_type::IOMMU_PML4, page_type::IOMMU_PDPT),
        (page_type::IOMMU_PDPT, page_type::IOMMU_PD),
        (page_type::IOMMU_PD, page_type::IOMMU_PT),
    ];
    forall_range(ctx, 0, params.nr_pages, |ctx, pn, _| {
        let ty = stc.read(ctx, "page_desc", "ty", &[pn]);
        let owner = stc.read(ctx, "page_desc", "owner", &[pn]);
        forall_range(ctx, 0, params.page_words, |ctx, idx, _| {
            let entry = stc.read(ctx, "pages", "word", &[pn, idx]);
            let pbit = ctx.i64_const(PTE_P);
            let masked = ctx.bv_bin(BvBinOp::And, entry, pbit);
            let zero = ctx.i64_const(0);
            let present = ctx.ne(masked, zero);
            let shift = ctx.i64_const(PTE_PFN_SHIFT);
            let pfn = ctx.bv_bin(BvBinOp::Ashr, entry, shift);
            let mut cases = Vec::new();
            // Intermediate levels: child is the next table type.
            for &(parent_ty, child_ty) in table_child {
                let pt = ctx.i64_const(parent_ty);
                let is_this = ctx.eq(ty, pt);
                let lo = ctx.i64_const(0);
                let hi = ctx.i64_const(params.nr_pages as i64);
                let ge = ctx.sle(lo, pfn);
                let lt = ctx.slt(pfn, hi);
                let in_ram = ctx.and2(ge, lt);
                let cty = stc.read(ctx, "page_desc", "ty", &[pfn]);
                let want = ctx.i64_const(child_ty);
                let ty_ok = ctx.eq(cty, want);
                let cowner = stc.read(ctx, "page_desc", "owner", &[pfn]);
                let own_ok = ctx.eq(cowner, owner);
                let cpp = stc.read(ctx, "page_desc", "parent_pn", &[pfn]);
                let pp_ok = ctx.eq(cpp, pn);
                let cpi = stc.read(ctx, "page_desc", "parent_idx", &[pfn]);
                let pi_ok = ctx.eq(cpi, idx);
                let good = ctx.and(&[in_ram, ty_ok, own_ok, pp_ok, pi_ok]);
                cases.push(ctx.implies(is_this, good));
            }
            // CPU leaf: RAM frame or DMA page.
            {
                let pt_ty = ctx.i64_const(page_type::PT);
                let is_pt = ctx.eq(ty, pt_ty);
                let nr_pages = ctx.i64_const(params.nr_pages as i64);
                let nr_pfns = ctx.i64_const(params.nr_pfns() as i64);
                let zero = ctx.i64_const(0);
                let ge0 = ctx.sle(zero, pfn);
                let lt_pfns = ctx.slt(pfn, nr_pfns);
                let pfn_ok = ctx.and2(ge0, lt_pfns);
                let is_ram = ctx.slt(pfn, nr_pages);
                let fty = stc.read(ctx, "page_desc", "ty", &[pfn]);
                let frame = ctx.i64_const(page_type::FRAME);
                let f_ok = ctx.eq(fty, frame);
                let fown = stc.read(ctx, "page_desc", "owner", &[pfn]);
                let fo_ok = ctx.eq(fown, owner);
                let fpp = stc.read(ctx, "page_desc", "parent_pn", &[pfn]);
                let fpp_ok = ctx.eq(fpp, pn);
                let fpi = stc.read(ctx, "page_desc", "parent_idx", &[pfn]);
                let fpi_ok = ctx.eq(fpi, idx);
                let ram_good = ctx.and(&[f_ok, fo_ok, fpp_ok, fpi_ok]);
                let d = ctx.bv_sub(pfn, nr_pages);
                let down = stc.read(ctx, "dma_desc", "owner", &[d]);
                let do_ok = ctx.eq(down, owner);
                let dpp = stc.read(ctx, "dma_desc", "cpu_parent_pn", &[d]);
                let dpp_ok = ctx.eq(dpp, pn);
                let dpi = stc.read(ctx, "dma_desc", "cpu_parent_idx", &[d]);
                let dpi_ok = ctx.eq(dpi, idx);
                let dma_good = ctx.and(&[do_ok, dpp_ok, dpi_ok]);
                let leaf_good = ctx.ite(is_ram, ram_good, dma_good);
                let good = ctx.and2(pfn_ok, leaf_good);
                cases.push(ctx.implies(is_pt, good));
            }
            // IOMMU leaf: DMA pages only.
            {
                let io_pt = ctx.i64_const(page_type::IOMMU_PT);
                let is_io = ctx.eq(ty, io_pt);
                let nr_pages = ctx.i64_const(params.nr_pages as i64);
                let nr_pfns = ctx.i64_const(params.nr_pfns() as i64);
                let ge = ctx.sle(nr_pages, pfn);
                let lt = ctx.slt(pfn, nr_pfns);
                let in_dma = ctx.and2(ge, lt);
                let d = ctx.bv_sub(pfn, nr_pages);
                let down = stc.read(ctx, "dma_desc", "owner", &[d]);
                let do_ok = ctx.eq(down, owner);
                let iop = stc.read(ctx, "dma_desc", "io_parent_pn", &[d]);
                let iop_ok = ctx.eq(iop, pn);
                let ioi = stc.read(ctx, "dma_desc", "io_parent_idx", &[d]);
                let ioi_ok = ctx.eq(ioi, idx);
                let good = ctx.and(&[in_dma, do_ok, iop_ok, ioi_ok]);
                cases.push(ctx.implies(is_io, good));
            }
            let all_cases = ctx.and(&cases);
            ctx.implies(present, all_cases)
        })
    })
}

/// The IOMMU device table references only well-formed roots, with the
/// `devid` backref naming exactly the referencing device — the ordering
/// discipline whose absence was the §6.1 IOMMU lifetime bug.
fn iommu_root_wellformed(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    forall_range(ctx, 0, params.nr_devs, |ctx, dev, _| {
        let root = stc.read(ctx, "devs", "root", &[dev]);
        let none = ctx.i64_const(hk_abi::DEV_ROOT_NONE);
        let attached = ctx.ne(root, none);
        let zero = ctx.i64_const(0);
        let hi = ctx.i64_const(params.nr_pages as i64);
        let ge = ctx.sle(zero, root);
        let lt = ctx.slt(root, hi);
        let in_range = ctx.and2(ge, lt);
        let rty = stc.read(ctx, "page_desc", "ty", &[root]);
        let want = ctx.i64_const(page_type::IOMMU_PML4);
        let ty_ok = ctx.eq(rty, want);
        let rowner = stc.read(ctx, "page_desc", "owner", &[root]);
        let downer = stc.read(ctx, "devs", "owner", &[dev]);
        let own_ok = ctx.eq(rowner, downer);
        let backref = stc.read(ctx, "page_desc", "devid", &[root]);
        let back_ok = ctx.eq(backref, dev);
        let good = ctx.and(&[in_range, ty_ok, own_ok, back_ok]);
        ctx.implies(attached, good)
    })
}

/// Interrupt-remapping reference counts are consistent: each device's
/// and each vector's `intremap_refcnt` equals the number of ACTIVE
/// entries routing through it (so the EBUSY reclaim checks really do
/// prevent dangling routes — the second §6.1 bug class).
fn intremap_refcounts(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    let active = ctx.i64_const(intremap_state::ACTIVE);
    let devs_ok = forall_range(ctx, 0, params.nr_devs, |ctx, dev, _| {
        let mut count = ctx.i64_const(0);
        for i in 0..params.nr_intremaps {
            let ci = ctx.i64_const(i as i64);
            let state = stc.read(ctx, "intremaps", "state", &[ci]);
            let is_active = ctx.eq(state, active);
            let d = stc.read(ctx, "intremaps", "devid", &[ci]);
            let matches = ctx.eq(d, dev);
            let both = ctx.and2(is_active, matches);
            let one = ctx.i64_const(1);
            let zero = ctx.i64_const(0);
            let inc = ctx.ite(both, one, zero);
            count = ctx.bv_add(count, inc);
        }
        let refcnt = stc.read(ctx, "devs", "intremap_refcnt", &[dev]);
        ctx.eq(refcnt, count)
    });
    let vecs_ok = forall_range(ctx, 0, params.nr_vectors, |ctx, v, _| {
        let mut count = ctx.i64_const(0);
        for i in 0..params.nr_intremaps {
            let ci = ctx.i64_const(i as i64);
            let state = stc.read(ctx, "intremaps", "state", &[ci]);
            let is_active = ctx.eq(state, active);
            let vv = stc.read(ctx, "intremaps", "vector", &[ci]);
            let matches = ctx.eq(vv, v);
            let both = ctx.and2(is_active, matches);
            let one = ctx.i64_const(1);
            let zero = ctx.i64_const(0);
            let inc = ctx.ite(both, one, zero);
            count = ctx.bv_add(count, inc);
        }
        let refcnt = stc.read(ctx, "vectors", "intremap_refcnt", &[v]);
        ctx.eq(refcnt, count)
    });
    ctx.and2(devs_ok, vecs_ok)
}

/// Paper Property 5, stated as a consequence lemma: in any state
/// satisfying the declarative conjunction, a 4-level page walk from a
/// live process's root through present entries (at arbitrary symbolic
/// indices) resolves to a frame or DMA page exclusively owned by that
/// process. Returns `(assumptions, conclusion)`.
pub fn isolation_lemma(ctx: &mut Ctx, st: &mut SpecState) -> (TermId, TermId) {
    let params = st.params;
    let mut stc = st.clone();
    let p = ctx.var("walk_pid", Sort::Bv(64));
    let idx: Vec<TermId> = (0..4)
        .map(|i| ctx.var(format!("walk_idx{i}"), Sort::Bv(64)))
        .collect();
    let mut assumptions = Vec::new();
    let one = c(ctx, 1);
    let np = c(ctx, params.nr_procs as i64);
    assumptions.push(ctx.sle(one, p));
    assumptions.push(ctx.slt(p, np));
    let state = stc.read(ctx, "procs", "state", &[p]);
    let free = c(ctx, proc_state::FREE);
    let zombie = c(ctx, proc_state::ZOMBIE);
    assumptions.push(ctx.ne(state, free));
    assumptions.push(ctx.ne(state, zombie));
    for &i in &idx {
        let zero = c(ctx, 0);
        let pw = c(ctx, params.page_words as i64);
        assumptions.push(ctx.sle(zero, i));
        assumptions.push(ctx.slt(i, pw));
    }
    let mut table = stc.read(ctx, "procs", "pml4", &[p]);
    let mut leaf_pfn = table;
    for &i in &idx {
        let entry = stc.read(ctx, "pages", "word", &[table, i]);
        let pbit = c(ctx, PTE_P);
        let masked = ctx.bv_bin(BvBinOp::And, entry, pbit);
        let zero = c(ctx, 0);
        assumptions.push(ctx.ne(masked, zero));
        let shift = c(ctx, PTE_PFN_SHIFT);
        leaf_pfn = ctx.bv_bin(BvBinOp::Ashr, entry, shift);
        table = leaf_pfn;
    }
    let assumption = ctx.and(&assumptions);
    let nr_pages = c(ctx, params.nr_pages as i64);
    let is_ram = ctx.slt(leaf_pfn, nr_pages);
    let fty = stc.read(ctx, "page_desc", "ty", &[leaf_pfn]);
    let frame = c(ctx, page_type::FRAME);
    let f_ok = ctx.eq(fty, frame);
    let fown = stc.read(ctx, "page_desc", "owner", &[leaf_pfn]);
    let fo_ok = ctx.eq(fown, p);
    let ram_good = ctx.and2(f_ok, fo_ok);
    let d = ctx.bv_sub(leaf_pfn, nr_pages);
    let down = stc.read(ctx, "dma_desc", "owner", &[d]);
    let dma_good = ctx.eq(down, p);
    let conclusion = ctx.ite(is_ram, ram_good, dma_good);
    (assumption, conclusion)
}
