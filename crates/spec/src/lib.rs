//! Specifications for Hyperkernel: the state-machine layer and the
//! declarative layer (paper §2.2).
//!
//! * [`state`] — abstract kernel state as named maps over SMT terms;
//! * [`run`] — the check/effect framework spec functions are written in;
//! * [`handlers`] — the state-machine specification of all 50 trap
//!   handlers, mirroring the HyperC sources one-to-one;
//! * [`decl`] — the declarative layer: crosscutting properties
//!   (reference-count consistency, exclusive ownership, scheduler
//!   sanity, and the memory-isolation Properties 1-5 of §4.2);
//! * [`encode`] — the §3.3 encodings of exclusive-ownership and
//!   reference-counting properties (naive, inverse-function, and
//!   permutation forms) for the ablation experiment.
//!
//! The specification doubles as an executable oracle: instantiated on a
//! concrete state, the transition terms fold to constants, which is how
//! the differential tests compare the spec against the interpreted
//! kernel.

pub mod decl;
pub mod encode;
pub mod handlers;
pub mod helpers;
pub mod run;
pub mod state;

pub use handlers::spec_transition;
pub use run::SpecRun;
pub use state::{shapes_of, GlobalShape, Map, SpecState};
