//! The spec-writing framework: sequenced validation + guarded effects.
//!
//! The paper's state-machine specifications follow one pattern (§2.2):
//! a validation condition over the current state, a new state if
//! validation passes, and an error result otherwise. Hyperkernel handlers
//! return *distinct* errnos per failed check, so [`SpecRun`] generalizes
//! the pattern to an ordered sequence of checks: the first failed check
//! determines the return value, and every state effect is guarded by
//! "all checks passed so far".

use hk_smt::{Ctx, TermId};

use crate::state::SpecState;

/// An in-progress handler specification.
pub struct SpecRun<'a> {
    /// Term context.
    pub ctx: &'a mut Ctx,
    /// The state being transformed.
    pub st: &'a mut SpecState,
    /// `(exclusive fail condition, return value)`, in check order.
    earlies: Vec<(TermId, TermId)>,
    /// Conjunction of all checks passed so far.
    pub ok: TermId,
    /// Extra effect guards (for conditionally-executed helper bodies).
    guards: Vec<TermId>,
}

impl<'a> SpecRun<'a> {
    /// Starts a run.
    pub fn new(ctx: &'a mut Ctx, st: &'a mut SpecState) -> SpecRun<'a> {
        let ok = ctx.tru();
        SpecRun {
            ctx,
            st,
            earlies: Vec::new(),
            ok,
            guards: Vec::new(),
        }
    }

    /// Pushes an extra effect guard: writes inside the guarded region
    /// only take effect when `extra` holds (mirrors an `if` around a
    /// helper call in the implementation).
    pub fn push_guard(&mut self, extra: TermId) {
        self.guards.push(extra);
    }

    /// Pops the innermost effect guard.
    pub fn pop_guard(&mut self) {
        self.guards.pop().expect("guard underflow");
    }

    /// The full effect guard: checks passed plus pushed guards.
    fn effect_guard(&mut self) -> TermId {
        let mut g = self.ok;
        for &extra in &self.guards.clone() {
            g = self.ctx.and2(g, extra);
        }
        g
    }

    /// Constant helper.
    pub fn c(&mut self, v: i64) -> TermId {
        self.ctx.i64_const(v)
    }

    /// Adds a check: if `cond_ok` fails (and no earlier check failed),
    /// the handler returns `-errno`.
    pub fn check(&mut self, cond_ok: TermId, errno: i64) {
        let ret = self.ctx.i64_const(-errno);
        self.early(cond_ok, ret);
    }

    /// Adds an early return with an arbitrary value when `cond_ok` fails.
    pub fn early(&mut self, cond_ok: TermId, ret: TermId) {
        let not_ok = self.ctx.not(cond_ok);
        let fires = self.ctx.and2(self.ok, not_ok);
        self.earlies.push((fires, ret));
        self.ok = self.ctx.and2(self.ok, cond_ok);
    }

    /// Reads a cell (sees all writes recorded so far).
    pub fn rd(&mut self, global: &str, field: &str, idx: &[TermId]) -> TermId {
        self.st.read(self.ctx, global, field, idx)
    }

    /// Reads a scalar global.
    pub fn scalar(&mut self, global: &str) -> TermId {
        self.st.scalar(self.ctx, global)
    }

    /// Writes a cell, guarded by the checks passed so far (plus any
    /// pushed effect guards).
    pub fn wr(&mut self, global: &str, field: &str, idx: &[TermId], val: TermId) {
        let g = self.effect_guard();
        self.st.write_if(self.ctx, g, global, field, idx, val);
    }

    /// Writes a cell under an extra condition (on top of the guard).
    pub fn wr_if(&mut self, extra: TermId, global: &str, field: &str, idx: &[TermId], val: TermId) {
        let base = self.effect_guard();
        let g = self.ctx.and2(base, extra);
        self.st.write_if(self.ctx, g, global, field, idx, val);
    }

    /// Writes a scalar, guarded.
    pub fn wr_scalar(&mut self, global: &str, val: TermId) {
        self.wr(global, "value", &[], val);
    }

    /// Writes a scalar under an extra condition.
    pub fn wr_scalar_if(&mut self, extra: TermId, global: &str, val: TermId) {
        self.wr_if(extra, global, "value", &[], val);
    }

    /// Adds `delta` to a cell, guarded by `extra` on top of the checks.
    pub fn bump_if(
        &mut self,
        extra: TermId,
        global: &str,
        field: &str,
        idx: &[TermId],
        delta: i64,
    ) {
        let old = self.rd(global, field, idx);
        let d = self.c(delta);
        let new = self.ctx.bv_add(old, d);
        self.wr_if(extra, global, field, idx, new);
    }

    /// Adds `delta` to a cell, guarded.
    pub fn bump(&mut self, global: &str, field: &str, idx: &[TermId], delta: i64) {
        let t = self.ctx.tru();
        self.bump_if(t, global, field, idx, delta);
    }

    /// Finishes the run: the return value is the first firing early
    /// return, or `success` if every check passed.
    pub fn finish(self, success: TermId) -> TermId {
        let mut result = success;
        for (fires, ret) in self.earlies.into_iter().rev() {
            result = self.ctx.ite(fires, ret, result);
        }
        result
    }

    /// Finishes with a constant success value.
    pub fn finish_const(self, success: i64) -> TermId {
        let s = self.ctx.i64_const(success);
        self.finish(s)
    }
}
