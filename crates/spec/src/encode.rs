//! SMT encodings of resource-management properties (paper §3.3).
//!
//! The paper's central encoding claim is that naive formulations of
//! exclusive ownership and reference counting "can easily cause the
//! solver to enumerate the search space", while two reformulations scale:
//! the *inverse function* for exclusive ownership and the *permutation*
//! witness for reference counts. This module provides all the variants
//! over the abstract state so the ablation benchmark can time them
//! against each other on the same queries.
//!
//! With finite instantiation (our quantifier discharge), a third
//! formulation is available that Z3's quantifier engine does not enjoy:
//! the direct *sum* encoding. It is included as the baseline the
//! declarative layer actually uses.

use hk_smt::{Ctx, Sort, TermId};

use crate::state::SpecState;

/// Exclusive ownership, naive pairwise encoding:
/// `forall o != o': own(o) == own(o') => false` whenever both own a real
/// resource — instantiated over all pairs, O(n^2).
///
/// Stated here for the page-table roots of live processes.
pub fn exclusive_pml4_naive(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let n = st.params.nr_procs;
    let mut stc = st.clone();
    let mut parts = Vec::new();
    for a in 1..n {
        for b in (a + 1)..n {
            let ca = ctx.i64_const(a as i64);
            let cb = ctx.i64_const(b as i64);
            let la = live(ctx, &mut stc, ca);
            let lb = live(ctx, &mut stc, cb);
            let ra = stc.read(ctx, "procs", "pml4", &[ca]);
            let rb = stc.read(ctx, "procs", "pml4", &[cb]);
            let same = ctx.eq(ra, rb);
            let both = ctx.and(&[la, lb, same]);
            parts.push(ctx.not(both));
        }
    }
    ctx.and(&parts)
}

/// Exclusive ownership via the paper's inverse function:
/// `owned-by(own(o)) == o` — O(n) instantiations. The inverse already
/// exists in the state (`page_desc.owner`), exactly as §3.3 observes.
pub fn exclusive_pml4_inverse(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let n = st.params.nr_procs;
    let mut stc = st.clone();
    let mut parts = Vec::new();
    for p in 1..n {
        let cp = ctx.i64_const(p as i64);
        let l = live(ctx, &mut stc, cp);
        let root = stc.read(ctx, "procs", "pml4", &[cp]);
        let owner = stc.read(ctx, "page_desc", "owner", &[root]);
        let inv = ctx.eq(owner, cp);
        parts.push(ctx.implies(l, inv));
    }
    ctx.and(&parts)
}

fn live(ctx: &mut Ctx, st: &mut SpecState, p: TermId) -> TermId {
    use hk_abi::proc_state as ps;
    let mut cases = Vec::new();
    let state = st.read(ctx, "procs", "state", &[p]);
    for s in [ps::EMBRYO, ps::RUNNABLE, ps::RUNNING, ps::SLEEPING] {
        let cs = ctx.i64_const(s);
        cases.push(ctx.eq(state, cs));
    }
    ctx.or(&cases)
}

/// Reference counting, direct sum encoding:
/// `refcnt(f) == sum over (pid, fd) of [ofile(pid, fd) == f]`.
pub fn file_refcnt_sum(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    let mut parts = Vec::new();
    for f in 0..params.nr_files {
        let cf = ctx.i64_const(f as i64);
        let mut count = ctx.i64_const(0);
        for pid in 1..params.nr_procs {
            for fd in 0..params.nr_fds {
                let cp = ctx.i64_const(pid as i64);
                let cd = ctx.i64_const(fd as i64);
                let slot = stc.read(ctx, "procs", "ofile", &[cp, cd]);
                let hit = ctx.eq(slot, cf);
                let one = ctx.i64_const(1);
                let zero = ctx.i64_const(0);
                let inc = ctx.ite(hit, one, zero);
                count = ctx.bv_add(count, inc);
            }
        }
        let rc = stc.read(ctx, "files", "refcnt", &[cf]);
        parts.push(ctx.eq(rc, count));
    }
    ctx.and(&parts)
}

/// Reference counting via the paper's permutation witness (§3.3):
/// for each file `f` there is a permutation `pi(f, -)` of the object
/// space (flattened `(pid, fd)` pairs) such that exactly the first
/// `refcnt(f)` objects refer to `f`, with `pi_inv` witnessing
/// bijectivity. Fresh uninterpreted functions are declared per call.
pub fn file_refcnt_permutation(ctx: &mut Ctx, st: &mut SpecState) -> TermId {
    let params = st.params;
    let mut stc = st.clone();
    let objs = (params.nr_procs - 1) * params.nr_fds;
    let pi = ctx.func("refcnt_pi", vec![Sort::Bv(64), Sort::Bv(64)], Sort::Bv(64));
    let pi_inv = ctx.func(
        "refcnt_pi_inv",
        vec![Sort::Bv(64), Sort::Bv(64)],
        Sort::Bv(64),
    );
    // own(o): which file object o refers to (NR_FILES if closed).
    let own = |ctx: &mut Ctx, stc: &mut SpecState, o: TermId| -> TermId {
        // o = (pid - 1) * NR_FDS + fd.
        let nfd = ctx.i64_const(params.nr_fds as i64);
        let one = ctx.i64_const(1);
        let q = ctx.bv_bin(hk_smt::BvBinOp::Udiv, o, nfd);
        let pid = ctx.bv_add(q, one);
        let fd = ctx.bv_bin(hk_smt::BvBinOp::Urem, o, nfd);
        stc.read(ctx, "procs", "ofile", &[pid, fd])
    };
    let mut parts = Vec::new();
    for f in 0..params.nr_files {
        let cf = ctx.i64_const(f as i64);
        let rc = stc.read(ctx, "files", "refcnt", &[cf]);
        for i in 0..objs {
            let ci = ctx.i64_const(i as i64);
            let o = ctx.apply(pi, &[cf, ci]);
            // Range of pi.
            let zero = ctx.i64_const(0);
            let nobj = ctx.i64_const(objs as i64);
            let ge = ctx.sle(zero, o);
            let lt = ctx.slt(o, nobj);
            parts.push(ctx.and2(ge, lt));
            // First refcnt objects own f, the rest do not.
            let owner = own(ctx, &mut stc, o);
            let owns = ctx.eq(owner, cf);
            let in_prefix = ctx.slt(ci, rc);
            parts.push(ctx.eq(owns, in_prefix));
            // Bijectivity: pi_inv(f, pi(f, i)) == i.
            let back = ctx.apply(pi_inv, &[cf, o]);
            parts.push(ctx.eq(back, ci));
        }
    }
    ctx.and(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::shapes_of;
    use hk_smt::{SatResult, Solver};

    fn setup() -> (Ctx, SpecState) {
        let params = hk_abi::KernelParams::verification();
        let image = hk_kernel::KernelImage::build(params).unwrap();
        let shapes = shapes_of(&image.module);
        let mut ctx = Ctx::new();
        let st = SpecState::fresh(&mut ctx, &shapes, params);
        (ctx, st)
    }

    #[test]
    fn inverse_implies_naive_exclusivity() {
        // inverse-function encoding implies pairwise exclusivity.
        let (mut ctx, mut st) = setup();
        let inv = exclusive_pml4_inverse(&mut ctx, &mut st);
        let naive = exclusive_pml4_naive(&mut ctx, &mut st);
        let mut solver = Solver::new();
        solver.assert(&mut ctx, inv);
        let not_naive = ctx.not(naive);
        solver.assert(&mut ctx, not_naive);
        assert!(matches!(solver.check(&mut ctx), SatResult::Unsat));
    }

    #[test]
    fn sum_encoding_is_satisfiable() {
        // The sum encoding admits models (it is not vacuous — §5's
        // non-vacuity concern).
        let (mut ctx, mut st) = setup();
        let sum = file_refcnt_sum(&mut ctx, &mut st);
        let mut solver = Solver::new();
        solver.assert(&mut ctx, sum);
        assert!(solver.check(&mut ctx).is_sat());
    }

    #[test]
    fn permutation_implies_sum() {
        // The permutation witness implies the counted value... for the
        // degenerate check that both are simultaneously satisfiable.
        let (mut ctx, mut st) = setup();
        let perm = file_refcnt_permutation(&mut ctx, &mut st);
        let sum = file_refcnt_sum(&mut ctx, &mut st);
        let mut solver = Solver::new();
        solver.assert(&mut ctx, perm);
        solver.assert(&mut ctx, sum);
        assert!(solver.check(&mut ctx).is_sat());
    }
}
