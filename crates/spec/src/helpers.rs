//! Spec-side mirrors of the kernel's helper routines (`helpers.hc`).
//!
//! Each function builds the same state transformation the corresponding
//! HyperC helper performs, with effects guarded by the run's accumulated
//! validation condition. Write order matches the implementation exactly,
//! so aliased indices resolve identically through the write chains.

use hk_abi::{page_type, PARENT_NONE, PID_NONE, PTE_P, PTE_PERM_MASK};
use hk_smt::TermId;

use crate::run::SpecRun;

/// `(pid >= 1) & (pid < NR_PROCS)`.
pub fn pid_valid(r: &mut SpecRun, pid: TermId) -> TermId {
    let one = r.c(1);
    let n = r.c(r.st.params.nr_procs as i64);
    let a = r.ctx.sle(one, pid);
    let b = r.ctx.slt(pid, n);
    r.ctx.and2(a, b)
}

/// `0 <= v < hi`.
pub fn in_range(r: &mut SpecRun, v: TermId, hi: i64) -> TermId {
    let zero = r.c(0);
    let h = r.c(hi);
    let a = r.ctx.sle(zero, v);
    let b = r.ctx.slt(v, h);
    r.ctx.and2(a, b)
}

/// Valid RAM page number.
pub fn page_valid(r: &mut SpecRun, pn: TermId) -> TermId {
    in_range(r, pn, r.st.params.nr_pages as i64)
}

/// Valid combined-space frame number.
pub fn pfn_valid(r: &mut SpecRun, pfn: TermId) -> TermId {
    in_range(r, pfn, r.st.params.nr_pfns() as i64)
}

/// Valid DMA page index.
pub fn dma_valid(r: &mut SpecRun, d: TermId) -> TermId {
    in_range(r, d, r.st.params.nr_dmapages as i64)
}

/// Valid word index within a page.
pub fn idx_valid(r: &mut SpecRun, i: TermId) -> TermId {
    in_range(r, i, r.st.params.page_words as i64)
}

/// Valid file descriptor.
pub fn fd_valid(r: &mut SpecRun, fd: TermId) -> TermId {
    in_range(r, fd, r.st.params.nr_fds as i64)
}

/// Valid file-table index.
pub fn file_valid(r: &mut SpecRun, f: TermId) -> TermId {
    in_range(r, f, r.st.params.nr_files as i64)
}

/// Permission has PTE_P and no unknown bits.
pub fn perm_valid(r: &mut SpecRun, perm: TermId) -> TermId {
    let p = r.c(PTE_P);
    let mask = r.c(!PTE_PERM_MASK);
    let zero = r.c(0);
    let has_p = r.ctx.bv_bin(hk_smt::BvBinOp::And, perm, p);
    let a = r.ctx.ne(has_p, zero);
    let extra = r.ctx.bv_bin(hk_smt::BvBinOp::And, perm, mask);
    let b = r.ctx.eq(extra, zero);
    r.ctx.and2(a, b)
}

/// `pid == current || (procs[pid].state == EMBRYO && ppid == current)`.
pub fn is_current_or_embryo_child(r: &mut SpecRun, pid: TermId) -> TermId {
    let current = r.scalar("current");
    let is_cur = r.ctx.eq(pid, current);
    let state = r.rd("procs", "state", &[pid]);
    let embryo = r.c(hk_abi::proc_state::EMBRYO);
    let is_embryo = r.ctx.eq(state, embryo);
    let ppid = r.rd("procs", "ppid", &[pid]);
    let child = r.ctx.eq(ppid, current);
    let both = r.ctx.and2(is_embryo, child);
    r.ctx.or2(is_cur, both)
}

/// `page_desc[pn].ty == FREE`.
pub fn page_is_free(r: &mut SpecRun, pn: TermId) -> TermId {
    let ty = r.rd("page_desc", "ty", &[pn]);
    let free = r.c(page_type::FREE);
    r.ctx.eq(ty, free)
}

/// Mirror of the branch-free `blend(c, a, b) = b + (a - b) * c` (with
/// `c` a 0/1 word), built literally so the term mirrors the
/// implementation's arithmetic.
pub fn blend(r: &mut SpecRun, c: TermId, a: TermId, b: TermId) -> TermId {
    let diff = r.ctx.bv_sub(a, b);
    let scaled = r.ctx.bv_mul(diff, c);
    r.ctx.bv_add(b, scaled)
}

/// Converts a boolean term to the 0/1 word the implementation computes.
pub fn bool_word(r: &mut SpecRun, b: TermId) -> TermId {
    let one = r.c(1);
    let zero = r.c(0);
    r.ctx.ite(b, one, zero)
}

/// Mirror of `freelist_remove` (branch-free form).
pub fn freelist_remove(r: &mut SpecRun, pn: TermId) {
    let none = r.c(PARENT_NONE);
    let prev = r.rd("page_desc", "free_prev", &[pn]);
    let next = r.rd("page_desc", "free_next", &[pn]);
    let hp = r.ctx.ne(prev, none);
    let has_prev = bool_word(r, hp);
    let hn = r.ctx.ne(next, none);
    let has_next = bool_word(r, hn);
    let pslot = r.ctx.bv_mul(prev, has_prev);
    let old_pnext = r.rd("page_desc", "free_next", &[pslot]);
    let v = blend(r, has_prev, next, old_pnext);
    r.wr("page_desc", "free_next", &[pslot], v);
    let head = r.scalar("freelist_head");
    let v = blend(r, has_prev, head, next);
    r.wr_scalar("freelist_head", v);
    let nslot = r.ctx.bv_mul(next, has_next);
    let old_nprev = r.rd("page_desc", "free_prev", &[nslot]);
    let v = blend(r, has_next, prev, old_nprev);
    r.wr("page_desc", "free_prev", &[nslot], v);
    r.wr("page_desc", "free_next", &[pn], none);
    r.wr("page_desc", "free_prev", &[pn], none);
}

/// Mirror of `freelist_push` (branch-free form).
pub fn freelist_push(r: &mut SpecRun, pn: TermId) {
    let none = r.c(PARENT_NONE);
    let head = r.scalar("freelist_head");
    let hh = r.ctx.ne(head, none);
    let has_head = bool_word(r, hh);
    let hslot = r.ctx.bv_mul(head, has_head);
    r.wr("page_desc", "free_next", &[pn], head);
    r.wr("page_desc", "free_prev", &[pn], none);
    let old_hprev = r.rd("page_desc", "free_prev", &[hslot]);
    let v = blend(r, has_head, pn, old_hprev);
    r.wr("page_desc", "free_prev", &[hslot], v);
    r.wr_scalar("freelist_head", pn);
}

/// Mirror of `page_zero`.
pub fn page_zero(r: &mut SpecRun, pn: TermId) {
    let zero = r.c(0);
    for i in 0..r.st.params.page_words {
        let ci = r.c(i as i64);
        r.wr("pages", "word", &[pn, ci], zero);
    }
}

/// Mirror of `page_copy`.
pub fn page_copy(r: &mut SpecRun, dst: TermId, src: TermId) {
    for i in 0..r.st.params.page_words {
        let ci = r.c(i as i64);
        let v = r.rd("pages", "word", &[src, ci]);
        r.wr("pages", "word", &[dst, ci], v);
    }
}

/// Mirror of `alloc_page_typed`.
pub fn alloc_page_typed(
    r: &mut SpecRun,
    pn: TermId,
    owner: TermId,
    ty: i64,
    parent_pn: TermId,
    parent_idx: TermId,
) {
    freelist_remove(r, pn);
    page_zero(r, pn);
    let t = r.c(ty);
    r.wr("page_desc", "ty", &[pn], t);
    r.wr("page_desc", "owner", &[pn], owner);
    r.wr("page_desc", "parent_pn", &[pn], parent_pn);
    r.wr("page_desc", "parent_idx", &[pn], parent_idx);
    r.bump("procs", "nr_pages", &[owner], 1);
}

/// Mirror of `free_page_owned`.
pub fn free_page_owned(r: &mut SpecRun, pn: TermId) {
    let owner = r.rd("page_desc", "owner", &[pn]);
    let free = r.c(page_type::FREE);
    let none = r.c(PARENT_NONE);
    let pid_none = r.c(PID_NONE);
    r.wr("page_desc", "ty", &[pn], free);
    r.wr("page_desc", "owner", &[pn], pid_none);
    r.wr("page_desc", "parent_pn", &[pn], none);
    r.wr("page_desc", "parent_idx", &[pn], none);
    r.wr("page_desc", "devid", &[pn], none);
    freelist_push(r, pn);
    r.bump("procs", "nr_pages", &[owner], -1);
}

/// Mirror of `ready_insert` (branch-free form).
pub fn ready_insert(r: &mut SpecRun, pid: TermId) {
    let current = r.scalar("current");
    let next = r.rd("procs", "ready_next", &[current]);
    r.wr("procs", "ready_next", &[pid], next);
    r.wr("procs", "ready_prev", &[pid], current);
    let rng = in_range(r, next, r.st.params.nr_procs as i64);
    let in_rng = bool_word(r, rng);
    let nslot = r.ctx.bv_mul(next, in_rng);
    let old = r.rd("procs", "ready_prev", &[nslot]);
    let v = blend(r, in_rng, pid, old);
    r.wr("procs", "ready_prev", &[nslot], v);
    r.wr("procs", "ready_next", &[current], pid);
}

/// Mirror of `ready_remove` (branch-free form).
pub fn ready_remove(r: &mut SpecRun, pid: TermId) {
    let none = r.c(PARENT_NONE);
    let prev = r.rd("procs", "ready_prev", &[pid]);
    let next = r.rd("procs", "ready_next", &[pid]);
    let prng = in_range(r, prev, r.st.params.nr_procs as i64);
    let p_rng = bool_word(r, prng);
    let pslot = r.ctx.bv_mul(prev, p_rng);
    let old = r.rd("procs", "ready_next", &[pslot]);
    let v = blend(r, p_rng, next, old);
    r.wr("procs", "ready_next", &[pslot], v);
    let nrng = in_range(r, next, r.st.params.nr_procs as i64);
    let n_rng = bool_word(r, nrng);
    let nslot = r.ctx.bv_mul(next, n_rng);
    let old = r.rd("procs", "ready_prev", &[nslot]);
    let v = blend(r, n_rng, prev, old);
    r.wr("procs", "ready_prev", &[nslot], v);
    r.wr("procs", "ready_next", &[pid], none);
    r.wr("procs", "ready_prev", &[pid], none);
}

/// Mirror of `parent_type_for` (branch-free select chain).
pub fn parent_type_for(r: &mut SpecRun, ty: TermId) -> TermId {
    let cases = [
        (page_type::PDPT, page_type::PML4),
        (page_type::PD, page_type::PDPT),
        (page_type::PT, page_type::PD),
        (page_type::FRAME, page_type::PT),
        (page_type::IOMMU_PDPT, page_type::IOMMU_PML4),
        (page_type::IOMMU_PD, page_type::IOMMU_PDPT),
        (page_type::IOMMU_PT, page_type::IOMMU_PD),
    ];
    let mut result = r.c(-1);
    for (child, parent) in cases {
        let c = r.c(child);
        let p = r.c(parent);
        let is = r.ctx.eq(ty, c);
        let isw = bool_word(r, is);
        result = blend(r, isw, p, result);
    }
    result
}
