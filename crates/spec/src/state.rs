//! The abstract kernel state: named maps over SMT terms.
//!
//! As in the paper (§2.2), abstract state is built from fixed-width
//! integers and maps encoded as uninterpreted functions. Because the
//! kernel keeps *all* its state in global arrays-of-structs, the
//! abstract state mirrors the kernel layout one-to-one: one map per
//! `(global, field)` pair, with arity 0 (scalars like `current`), 1
//! (per-table fields like `procs.state`), or 2 (nested arrays like
//! `procs.ofile` and page contents `pages.word`).
//!
//! That mirroring makes the equivalence function (§2.4) mechanical —
//! `llvm_global('@current') == state.current` becomes name identity —
//! and it means the symbolic executor can use the *same* representation
//! for the implementation state, so refinement reduces to comparing map
//! cells.
//!
//! Writes are recorded as read-over-write chains; a read walks the
//! chain newest-first and falls through to the base uninterpreted
//! function. Guarded writes (`write_if`) express the paper's
//! "validation condition gates the new state" pattern.

use std::collections::HashMap;

use hk_abi::KernelParams;
use hk_smt::{Ctx, FuncId, Sort, TermId};

/// One abstract map: a base uninterpreted function plus a write chain.
#[derive(Debug, Clone)]
pub struct Map {
    /// The base UF (the state at the start of the transition).
    pub base: FuncId,
    /// Number of index arguments (0, 1, or 2).
    pub arity: usize,
    /// Writes, oldest first. Each is (index tuple, value).
    pub writes: Vec<(Vec<TermId>, TermId)>,
}

impl Map {
    /// Reads the map at `idx`, resolving through the write chain.
    pub fn read(&self, ctx: &mut Ctx, idx: &[TermId]) -> TermId {
        assert_eq!(idx.len(), self.arity);
        let mut result = ctx.apply(self.base, idx);
        // Build the ite chain oldest-write innermost.
        for (widx, wval) in &self.writes {
            let conds: Vec<TermId> = widx
                .iter()
                .zip(idx.iter())
                .map(|(&a, &b)| ctx.eq(a, b))
                .collect();
            let cond = ctx.and(&conds);
            result = ctx.ite(cond, *wval, result);
        }
        result
    }

    /// Appends a write.
    pub fn write(&mut self, idx: Vec<TermId>, val: TermId) {
        assert_eq!(idx.len(), self.arity);
        self.writes.push((idx, val));
    }
}

/// Shape of one global taken from the kernel module.
#[derive(Debug, Clone)]
pub struct GlobalShape {
    /// Global name.
    pub name: String,
    /// Number of elements.
    pub elems: u64,
    /// `(field name, field elems)`.
    pub fields: Vec<(String, u64)>,
}

/// Extracts the shapes from a compiled kernel module.
pub fn shapes_of(module: &hk_hir::Module) -> Vec<GlobalShape> {
    module
        .globals
        .iter()
        .map(|g| GlobalShape {
            name: g.name.clone(),
            elems: g.elems,
            fields: g.fields.iter().map(|f| (f.name.clone(), f.elems)).collect(),
        })
        .collect()
}

/// The abstract kernel state.
#[derive(Debug, Clone)]
pub struct SpecState {
    /// Kernel size parameters.
    pub params: KernelParams,
    /// Shapes, for iteration.
    pub shapes: Vec<GlobalShape>,
    maps: HashMap<(String, String), Map>,
}

impl SpecState {
    /// A fully symbolic state: every map is a fresh base UF named
    /// `global.field`.
    pub fn fresh(ctx: &mut Ctx, shapes: &[GlobalShape], params: KernelParams) -> SpecState {
        let mut maps = HashMap::new();
        for g in shapes {
            for (fname, felems) in &g.fields {
                let mut arity = 0;
                if g.elems > 1 {
                    arity += 1;
                }
                if *felems > 1 {
                    arity += 1;
                }
                let domain = vec![Sort::Bv(64); arity];
                let func = ctx.func(format!("{}.{}", g.name, fname), domain, Sort::Bv(64));
                maps.insert(
                    (g.name.clone(), fname.clone()),
                    Map {
                        base: func,
                        arity,
                        writes: Vec::new(),
                    },
                );
            }
        }
        SpecState {
            params,
            shapes: shapes.to_vec(),
            maps,
        }
    }

    /// The map for `(global, field)`.
    ///
    /// # Panics
    ///
    /// Panics on unknown names (a spec typo).
    pub fn map(&self, global: &str, field: &str) -> &Map {
        self.maps
            .get(&(global.to_string(), field.to_string()))
            .unwrap_or_else(|| panic!("unknown map {global}.{field}"))
    }

    fn map_mut(&mut self, global: &str, field: &str) -> &mut Map {
        self.maps
            .get_mut(&(global.to_string(), field.to_string()))
            .unwrap_or_else(|| panic!("unknown map {global}.{field}"))
    }

    /// Reads a cell.
    pub fn read(&mut self, ctx: &mut Ctx, global: &str, field: &str, idx: &[TermId]) -> TermId {
        // Cloning the map metadata is cheap relative to term building and
        // avoids split borrows.
        let map = self.map(global, field).clone();
        map.read(ctx, idx)
    }

    /// Unconditional write.
    pub fn write(&mut self, ctx: &mut Ctx, global: &str, field: &str, idx: &[TermId], val: TermId) {
        let _ = ctx;
        self.map_mut(global, field).write(idx.to_vec(), val);
    }

    /// Guarded write: the cell becomes `val` when `guard` holds and is
    /// unchanged otherwise.
    pub fn write_if(
        &mut self,
        ctx: &mut Ctx,
        guard: TermId,
        global: &str,
        field: &str,
        idx: &[TermId],
        val: TermId,
    ) {
        if ctx.const_bool(guard) == Some(false) {
            return;
        }
        if ctx.const_bool(guard) == Some(true) {
            self.write(ctx, global, field, idx, val);
            return;
        }
        let old = self.read(ctx, global, field, idx);
        let v = ctx.ite(guard, val, old);
        self.write(ctx, global, field, idx, v);
    }

    /// Scalar read (`current`, `uptime`, `freelist_head`).
    pub fn scalar(&mut self, ctx: &mut Ctx, global: &str) -> TermId {
        self.read(ctx, global, "value", &[])
    }

    /// Guarded scalar write.
    pub fn set_scalar_if(&mut self, ctx: &mut Ctx, guard: TermId, global: &str, val: TermId) {
        self.write_if(ctx, guard, global, "value", &[], val);
    }

    /// Every cell of the state as concrete index tuples — the
    /// instantiation set for equivalence checking and invariants.
    pub fn all_cells(&self) -> Vec<(String, String, Vec<u64>)> {
        let mut out = Vec::new();
        for g in &self.shapes {
            for (fname, felems) in &g.fields {
                match (g.elems > 1, *felems > 1) {
                    (false, false) => out.push((g.name.clone(), fname.clone(), vec![])),
                    (true, false) => {
                        for i in 0..g.elems {
                            out.push((g.name.clone(), fname.clone(), vec![i]));
                        }
                    }
                    (true, true) => {
                        for i in 0..g.elems {
                            for j in 0..*felems {
                                out.push((g.name.clone(), fname.clone(), vec![i, j]));
                            }
                        }
                    }
                    (false, true) => {
                        for j in 0..*felems {
                            out.push((g.name.clone(), fname.clone(), vec![j]));
                        }
                    }
                }
            }
        }
        out
    }
}
