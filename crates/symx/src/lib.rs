//! Exhaustive (all-paths) symbolic execution of HIR into SMT terms —
//! the implementation half of the verifier (paper §3.2).
//!
//! The executor uses the *self-finitization* strategy: it simply unrolls
//! every loop and traverses every branch; a function that does not
//! terminate within the instruction budget fails verification, which is
//! exactly the paper's contract for finite interfaces.
//!
//! Memory is modelled the paper's way: each `(global, field)` pair is an
//! uninterpreted function, writes become guarded write chains, reads
//! resolve through them — implemented by reusing [`hk_spec::SpecState`],
//! so the verifier can compare implementation and specification states
//! cell by cell without any translation layer (the equivalence function
//! of §2.4 becomes name identity).
//!
//! Undefined behaviour is *side-checked*, per §3.2:
//!
//! * immediate UB (division by zero, out-of-range shift amounts — LLVM
//!   poison treated conservatively — and out-of-bounds global accesses)
//!   produces [`SideCheck`] obligations the verifier must refute;
//! * undefined values (uninitialized register reads) become fresh
//!   symbolic variables;
//! * volatile reads (DMA-visible fields) also produce fresh variables on
//!   every read.

use hk_hir::{BinOp, CmpKind, FuncId, Gep, Inst, LoopBounds, Module, Operand, Reg, Terminator};
use hk_smt::{BvBinOp, Ctx, Sort, TermId};
use hk_spec::SpecState;

/// One undefined-behaviour obligation: UB occurs exactly when `cond`
/// holds (the path condition is already conjoined in).
#[derive(Debug, Clone)]
pub struct SideCheck {
    /// Condition under which UB would occur.
    pub cond: TermId,
    /// Kind of UB, human-readable.
    pub kind: String,
    /// Function in which the instruction sits.
    pub func: String,
}

/// One completed execution path.
#[derive(Debug, Clone)]
pub struct Path {
    /// The path condition.
    pub cond: TermId,
    /// The returned value.
    pub ret: TermId,
}

/// Result of exhaustively executing one function.
///
/// All paths share one final state: every store was recorded guarded by
/// the path condition at the time it executed, and sibling paths have
/// disjoint conditions, so the single write chain is simultaneously the
/// final state of every path (a standard guarded-update encoding; it
/// also means error paths — which write nothing — add no terms at all).
#[derive(Debug)]
pub struct SymxResult {
    /// All feasible-by-construction paths (conditions may still be
    /// unsatisfiable; the solver sorts that out).
    pub paths: Vec<Path>,
    /// The merged final state (valid under every path's condition).
    pub state: SpecState,
    /// All UB obligations encountered anywhere.
    pub side_checks: Vec<SideCheck>,
    /// Total symbolic instructions executed (for statistics).
    pub executed: u64,
}

impl SymxResult {
    /// The return value as a single term: the ite-merge of the per-path
    /// returns over their (disjoint, exhaustive) conditions.
    pub fn merged_ret(&self, ctx: &mut Ctx) -> TermId {
        let mut it = self.paths.iter();
        let first = it.next().expect("at least one path");
        let mut ret = first.ret;
        for p in it {
            ret = ctx.ite(p.cond, p.ret, ret);
        }
        ret
    }
}

/// Symbolic execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymxError {
    /// The instruction budget was exhausted: the function is not finite.
    BudgetExhausted {
        /// The offending function.
        func: String,
    },
    /// Too many simultaneous paths.
    PathExplosion {
        /// The offending function.
        func: String,
        /// The configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for SymxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymxError::BudgetExhausted { func } => {
                write!(
                    f,
                    "{func}: instruction budget exhausted (non-finite handler?)"
                )
            }
            SymxError::PathExplosion { func, limit } => {
                write!(f, "{func}: more than {limit} paths")
            }
        }
    }
}

impl std::error::Error for SymxError {}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct SymxConfig {
    /// Total instruction budget across all paths.
    pub max_instructions: u64,
    /// Maximum number of pending + finished paths.
    pub max_paths: usize,
    /// Conflict budget for the feasibility checks that prune infeasible
    /// loop continuations (self-finitization needs the solver to see
    /// that a validated bound has been reached; `Unknown` is treated as
    /// feasible, which is sound).
    pub prune_conflict_budget: u64,
}

impl Default for SymxConfig {
    fn default() -> Self {
        SymxConfig {
            max_instructions: 50_000_000,
            max_paths: 4096,
            prune_conflict_budget: 50_000,
        }
    }
}

/// Solver-backed feasibility test used on loop back-edges.
fn feasible(ctx: &mut Ctx, cond: TermId, budget: u64) -> bool {
    if let Some(b) = ctx.const_bool(cond) {
        return b;
    }
    let mut solver = hk_smt::Solver::with_config(hk_smt::SolverConfig {
        sat: hk_smt::SatConfig {
            max_conflicts: Some(budget),
            ..hk_smt::SatConfig::default()
        },
        skip_validation: true,
        ..hk_smt::SolverConfig::default()
    });
    solver.assert(ctx, cond);
    !solver.check(ctx).is_unsat()
}

/// A call frame.
#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    regs: Vec<Option<TermId>>,
    block: u32,
    inst: usize,
    /// Where the callee's return value goes in the caller.
    ret_dst: Option<Reg>,
    /// How often each block has been entered in this frame (loop
    /// detection for infeasible-path pruning).
    visits: std::collections::HashMap<u32, u32>,
}

/// An in-flight path. State is shared: see [`SymxResult`].
#[derive(Debug, Clone)]
struct Task {
    cond: TermId,
    stack: Vec<Frame>,
}

/// Exhaustively executes `func` on `state` with the given argument terms.
pub fn sym_exec(
    ctx: &mut Ctx,
    module: &Module,
    func: FuncId,
    args: &[TermId],
    state: SpecState,
    config: &SymxConfig,
) -> Result<SymxResult, SymxError> {
    sym_exec_bounded(ctx, module, func, args, state, config, None)
}

/// Like [`sym_exec`], but consumes per-loop trip-count bounds proven by
/// the static analysis (`hk_hir::analysis`).
///
/// At a symbolic branch whose target has a proven entry bound `B`, the
/// arm is taken solver-free while the per-frame visit count is below `B`
/// and asserted infeasible once it reaches `B` — the analysis already
/// proved no concrete execution re-enters the block more often. Targets
/// without a bound fall back to the legacy strategy: first entry is
/// free, re-entries pay a feasibility probe.
pub fn sym_exec_bounded(
    ctx: &mut Ctx,
    module: &Module,
    func: FuncId,
    args: &[TermId],
    state: SpecState,
    config: &SymxConfig,
    bounds: Option<&LoopBounds>,
) -> Result<SymxResult, SymxError> {
    let f = module.func_def(func);
    assert_eq!(
        args.len(),
        f.num_params as usize,
        "symx arity for {}",
        f.name
    );
    let mut regs = vec![None; f.num_regs as usize];
    for (i, &a) in args.iter().enumerate() {
        regs[i] = Some(a);
    }
    let root_name = f.name.clone();
    let mut worklist = vec![Task {
        cond: ctx.tru(),
        stack: vec![Frame {
            func,
            regs,
            block: 0,
            inst: 0,
            ret_dst: None,
            visits: std::collections::HashMap::new(),
        }],
    }];
    let mut result = SymxResult {
        paths: Vec::new(),
        state,
        side_checks: Vec::new(),
        executed: 0,
    };
    let mut fresh_counter = 0u64;
    while let Some(mut task) = worklist.pop() {
        if worklist.len() + result.paths.len() > config.max_paths {
            return Err(SymxError::PathExplosion {
                func: root_name,
                limit: config.max_paths,
            });
        }
        'task: loop {
            if result.executed > config.max_instructions {
                return Err(SymxError::BudgetExhausted { func: root_name });
            }
            let frame = task.stack.last().expect("nonempty stack");
            let fdef = module.func_def(frame.func);
            let block = &fdef.blocks[frame.block as usize];
            // Execute the remaining instructions of the current block.
            if frame.inst < block.insts.len() {
                let inst = block.insts[frame.inst].clone();
                result.executed += 1;
                step(
                    ctx,
                    module,
                    &mut task,
                    &mut result.state,
                    &inst,
                    &mut result.side_checks,
                    &mut fresh_counter,
                );
                // `step` may have pushed a callee frame; only advance the
                // pc of the frame the instruction belonged to.
                continue 'task;
            }
            // Terminator.
            match block.term.clone() {
                Terminator::Jmp(t) => {
                    let frame = task.stack.last_mut().unwrap();
                    *frame.visits.entry(t.0).or_insert(0) += 1;
                    frame.block = t.0;
                    frame.inst = 0;
                }
                Terminator::Br { cond, then_, else_ } => {
                    let fdef_name = fdef.name.clone();
                    let c = operand(ctx, &mut task, cond, &fdef_name, &mut fresh_counter);
                    let zero = ctx.i64_const(0);
                    let taken = ctx.ne(c, zero);
                    match ctx.const_bool(taken) {
                        Some(true) => {
                            let frame = task.stack.last_mut().unwrap();
                            *frame.visits.entry(then_.0).or_insert(0) += 1;
                            frame.block = then_.0;
                            frame.inst = 0;
                        }
                        Some(false) => {
                            let frame = task.stack.last_mut().unwrap();
                            *frame.visits.entry(else_.0).or_insert(0) += 1;
                            frame.block = else_.0;
                            frame.inst = 0;
                        }
                        None => {
                            // Fork, pruning infeasible loop continuations:
                            // a successor block already visited in this
                            // frame is a back edge, and continuing down an
                            // unsatisfiable path would unroll forever.
                            let (cur_func, visits) = {
                                let frame = task.stack.last().unwrap();
                                (
                                    frame.func,
                                    (
                                        frame.visits.get(&then_.0).copied().unwrap_or(0),
                                        frame.visits.get(&else_.0).copied().unwrap_or(0),
                                    ),
                                )
                            };
                            let not_taken = ctx.not(taken);
                            let else_cond = ctx.and2(task.cond, not_taken);
                            let then_cond = ctx.and2(task.cond, taken);
                            let arm_ok = |ctx: &mut Ctx, target: u32, n: u32, cond| {
                                match bounds.and_then(|b| b.bound(cur_func, target)) {
                                    // A proven trip-count bound: entries
                                    // below it need no solver probe, and
                                    // entry at the bound is infeasible by
                                    // the analysis' proof.
                                    Some(bound) => n < bound,
                                    None => {
                                        n == 0 || feasible(ctx, cond, config.prune_conflict_budget)
                                    }
                                }
                            };
                            let else_ok = arm_ok(ctx, else_.0, visits.1, else_cond);
                            let then_ok = arm_ok(ctx, then_.0, visits.0, then_cond);
                            if else_ok {
                                let mut other = task.clone();
                                other.cond = else_cond;
                                let frame = other.stack.last_mut().unwrap();
                                *frame.visits.entry(else_.0).or_insert(0) += 1;
                                frame.block = else_.0;
                                frame.inst = 0;
                                worklist.push(other);
                            }
                            if then_ok {
                                task.cond = then_cond;
                                let frame = task.stack.last_mut().unwrap();
                                *frame.visits.entry(then_.0).or_insert(0) += 1;
                                frame.block = then_.0;
                                frame.inst = 0;
                            } else {
                                break 'task;
                            }
                        }
                    }
                }
                Terminator::Ret(v) => {
                    let fdef_name = fdef.name.clone();
                    let val = operand(ctx, &mut task, v, &fdef_name, &mut fresh_counter);
                    let finished = task.stack.pop().unwrap();
                    if let Some(caller) = task.stack.last_mut() {
                        if let Some(dst) = finished.ret_dst {
                            caller.regs[dst.0 as usize] = Some(val);
                        }
                        caller.inst += 1;
                    } else {
                        result.paths.push(Path {
                            cond: task.cond,
                            ret: val,
                        });
                        break 'task;
                    }
                }
            }
        }
    }
    Ok(result)
}

fn operand(
    ctx: &mut Ctx,
    task: &mut Task,
    op: Operand,
    func_name: &str,
    fresh_counter: &mut u64,
) -> TermId {
    match op {
        Operand::Const(c) => ctx.i64_const(c),
        Operand::Reg(r) => {
            let frame = task.stack.last_mut().unwrap();
            if let Some(t) = frame.regs[r.0 as usize] {
                t
            } else {
                // Undefined value: a fresh symbolic variable (LLVM undef
                // semantics, paper §3.2).
                *fresh_counter += 1;
                let v = ctx.var(
                    format!("undef!{}!r{}!{}", func_name, r.0, fresh_counter),
                    Sort::Bv(64),
                );
                frame.regs[r.0 as usize] = Some(v);
                v
            }
        }
    }
}

/// Resolves a GEP: emits the bounds side checks and returns the
/// (global, field, index terms) triple.
fn resolve_gep(
    ctx: &mut Ctx,
    module: &Module,
    task: &mut Task,
    gep: &Gep,
    func_name: &str,
    side_checks: &mut Vec<SideCheck>,
    fresh_counter: &mut u64,
) -> (String, String, Vec<TermId>, bool) {
    let g = module.global_decl(gep.global);
    let fld = &g.fields[gep.field.0 as usize];
    let index = operand(ctx, task, gep.index, func_name, fresh_counter);
    let sub = operand(ctx, task, gep.sub, func_name, fresh_counter);
    // Bounds side checks (skipped when statically in range).
    for (term, hi, what) in [(index, g.elems, "index"), (sub, fld.elems, "sub-index")] {
        let zero = ctx.i64_const(0);
        let h = ctx.i64_const(hi as i64);
        let ge = ctx.sle(zero, term);
        let lt = ctx.slt(term, h);
        let in_bounds = ctx.and2(ge, lt);
        let oob = ctx.not(in_bounds);
        let cond = ctx.and2(task.cond, oob);
        if ctx.const_bool(cond) != Some(false) {
            side_checks.push(SideCheck {
                cond,
                kind: format!("{what} out of bounds for {}.{}", g.name, fld.name),
                func: func_name.to_string(),
            });
        }
    }
    let mut idx = Vec::new();
    if g.elems > 1 {
        idx.push(index);
    }
    if fld.elems > 1 {
        idx.push(sub);
    }
    (g.name.clone(), fld.name.clone(), idx, fld.volatile)
}

fn step(
    ctx: &mut Ctx,
    module: &Module,
    task: &mut Task,
    state: &mut SpecState,
    inst: &Inst,
    side_checks: &mut Vec<SideCheck>,
    fresh_counter: &mut u64,
) {
    let func_name = {
        let frame = task.stack.last().unwrap();
        module.func_def(frame.func).name.clone()
    };
    match inst {
        Inst::Bin { dst, op, a, b } => {
            let x = operand(ctx, task, *a, &func_name, fresh_counter);
            let y = operand(ctx, task, *b, &func_name, fresh_counter);
            let r = sym_bin(ctx, task, *op, x, y, &func_name, side_checks);
            let frame = task.stack.last_mut().unwrap();
            frame.regs[dst.0 as usize] = Some(r);
            frame.inst += 1;
        }
        Inst::Cmp { dst, op, a, b } => {
            let x = operand(ctx, task, *a, &func_name, fresh_counter);
            let y = operand(ctx, task, *b, &func_name, fresh_counter);
            let c = match op {
                CmpKind::Eq => ctx.eq(x, y),
                CmpKind::Ne => ctx.ne(x, y),
                CmpKind::Slt => ctx.slt(x, y),
                CmpKind::Sle => ctx.sle(x, y),
                CmpKind::Ult => ctx.ult(x, y),
                CmpKind::Ule => ctx.ule(x, y),
            };
            let one = ctx.i64_const(1);
            let zero = ctx.i64_const(0);
            let r = ctx.ite(c, one, zero);
            let frame = task.stack.last_mut().unwrap();
            frame.regs[dst.0 as usize] = Some(r);
            frame.inst += 1;
        }
        Inst::Copy { dst, src } => {
            let v = operand(ctx, task, *src, &func_name, fresh_counter);
            let frame = task.stack.last_mut().unwrap();
            frame.regs[dst.0 as usize] = Some(v);
            frame.inst += 1;
        }
        Inst::Load { dst, gep } => {
            let (g, f, idx, volatile) = resolve_gep(
                ctx,
                module,
                task,
                gep,
                &func_name,
                side_checks,
                fresh_counter,
            );
            let v = if volatile {
                // Volatile read: any value at all (paper §3.2).
                *fresh_counter += 1;
                ctx.var(format!("volatile!{g}.{f}!{fresh_counter}"), Sort::Bv(64))
            } else {
                state.read(ctx, &g, &f, &idx)
            };
            let frame = task.stack.last_mut().unwrap();
            frame.regs[dst.0 as usize] = Some(v);
            frame.inst += 1;
        }
        Inst::Store { gep, val } => {
            let v = operand(ctx, task, *val, &func_name, fresh_counter);
            let (g, f, idx, _volatile) = resolve_gep(
                ctx,
                module,
                task,
                gep,
                &func_name,
                side_checks,
                fresh_counter,
            );
            // Guarded by the path condition: sibling paths have disjoint
            // conditions, so one shared write chain serves all paths.
            let cond = task.cond;
            state.write_if(ctx, cond, &g, &f, &idx, v);
            let frame = task.stack.last_mut().unwrap();
            frame.inst += 1;
        }
        Inst::Call { dst, func, args } => {
            let vals: Vec<TermId> = args
                .iter()
                .map(|&a| operand(ctx, task, a, &func_name, fresh_counter))
                .collect();
            let callee = module.func_def(*func);
            let mut regs = vec![None; callee.num_regs as usize];
            for (i, &v) in vals.iter().enumerate() {
                regs[i] = Some(v);
            }
            task.stack.push(Frame {
                func: *func,
                regs,
                block: 0,
                inst: 0,
                ret_dst: Some(*dst),
                visits: std::collections::HashMap::new(),
            });
        }
    }
}

fn sym_bin(
    ctx: &mut Ctx,
    task: &mut Task,
    op: BinOp,
    x: TermId,
    y: TermId,
    func_name: &str,
    side_checks: &mut Vec<SideCheck>,
) -> TermId {
    match op {
        BinOp::Add => ctx.bv_add(x, y),
        BinOp::Sub => ctx.bv_sub(x, y),
        BinOp::Mul => ctx.bv_mul(x, y),
        BinOp::UDiv | BinOp::URem => {
            let zero = ctx.i64_const(0);
            let div0 = ctx.eq(y, zero);
            let cond = ctx.and2(task.cond, div0);
            if ctx.const_bool(cond) != Some(false) {
                side_checks.push(SideCheck {
                    cond,
                    kind: "division by zero".to_string(),
                    func: func_name.to_string(),
                });
            }
            let o = if op == BinOp::UDiv {
                BvBinOp::Udiv
            } else {
                BvBinOp::Urem
            };
            ctx.bv_bin(o, x, y)
        }
        BinOp::And => ctx.bv_bin(BvBinOp::And, x, y),
        BinOp::Or => ctx.bv_bin(BvBinOp::Or, x, y),
        BinOp::Xor => ctx.bv_bin(BvBinOp::Xor, x, y),
        BinOp::Shl | BinOp::LShr | BinOp::AShr => {
            // Out-of-range shift amounts are LLVM poison; the verifier
            // treats poison as immediate UB (paper §3.2).
            let zero = ctx.i64_const(0);
            let sixty_four = ctx.i64_const(64);
            let ge = ctx.sle(zero, y);
            let lt = ctx.slt(y, sixty_four);
            let in_range = ctx.and2(ge, lt);
            let oob = ctx.not(in_range);
            let cond = ctx.and2(task.cond, oob);
            if ctx.const_bool(cond) != Some(false) {
                side_checks.push(SideCheck {
                    cond,
                    kind: "shift amount out of range".to_string(),
                    func: func_name.to_string(),
                });
            }
            let o = match op {
                BinOp::Shl => BvBinOp::Shl,
                BinOp::LShr => BvBinOp::Lshr,
                _ => BvBinOp::Ashr,
            };
            ctx.bv_bin(o, x, y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_smt::eval::{Assignment, Value};
    use hk_smt::TermData;

    /// Compiles HyperC source and returns module + shapes.
    fn compile(src: &str, globals: &[(&str, u64, u64)]) -> (Module, Vec<hk_spec::GlobalShape>) {
        let mut module = Module::new();
        for (name, elems, felems) in globals {
            module.declare_global(hk_hir::GlobalDecl {
                name: name.to_string(),
                elems: *elems,
                fields: vec![hk_hir::FieldDecl {
                    name: "value".into(),
                    elems: *felems,
                    volatile: false,
                }],
            });
        }
        let mut c = hk_hcc::Compiler::new(&mut module);
        c.compile(src).expect("compile");
        let shapes = hk_spec::shapes_of(&module);
        (module, shapes)
    }

    fn var_id(ctx: &Ctx, t: TermId) -> hk_smt::VarId {
        match ctx.data(t) {
            TermData::Var(v) => *v,
            _ => panic!("not a var"),
        }
    }

    #[test]
    fn straight_line_single_path() {
        let (module, shapes) = compile("i64 f(i64 x) { return x + 1; }", &[]);
        let mut ctx = Ctx::new();
        let st = SpecState::fresh(&mut ctx, &shapes, hk_abi::KernelParams::verification());
        let x = ctx.var("x", Sort::Bv(64));
        let f = module.func("f").unwrap();
        let r = sym_exec(&mut ctx, &module, f, &[x], st, &SymxConfig::default()).unwrap();
        assert_eq!(r.paths.len(), 1);
        assert!(r.side_checks.is_empty());
        // ret == x + 1 for any x.
        let mut asg = Assignment::new();
        asg.set_var(var_id(&ctx, x), Value::Bv(41));
        assert_eq!(hk_smt::eval::eval_bv(&ctx, r.paths[0].ret, &asg), 42);
    }

    #[test]
    fn branches_fork_paths() {
        let src = "i64 f(i64 x) { if (x > 0) { return 1; } return 2; }";
        let (module, shapes) = compile(src, &[]);
        let mut ctx = Ctx::new();
        let st = SpecState::fresh(&mut ctx, &shapes, hk_abi::KernelParams::verification());
        let x = ctx.var("x", Sort::Bv(64));
        let f = module.func("f").unwrap();
        let r = sym_exec(&mut ctx, &module, f, &[x], st, &SymxConfig::default()).unwrap();
        assert_eq!(r.paths.len(), 2);
    }

    #[test]
    fn constant_loops_unroll_single_path() {
        let src =
            "i64 f() { i64 s = 0; i64 i; for (i = 0; i < 8; i = i + 1) { s = s + i; } return s; }";
        let (module, shapes) = compile(src, &[]);
        let mut ctx = Ctx::new();
        let st = SpecState::fresh(&mut ctx, &shapes, hk_abi::KernelParams::verification());
        let f = module.func("f").unwrap();
        let r = sym_exec(&mut ctx, &module, f, &[], st, &SymxConfig::default()).unwrap();
        assert_eq!(r.paths.len(), 1);
        assert_eq!(ctx.const_value(r.paths[0].ret), Some(28));
    }

    #[test]
    fn symbolic_bound_forks_linearly() {
        // A loop bounded by a (validated) argument forks once per bound.
        let src = "i64 f(i64 n) { i64 s = 0; i64 i; if (n < 0 || n > 4) { return 0 - 1; } for (i = 0; i < n; i = i + 1) { s = s + 2; } return s; }";
        let (module, shapes) = compile(src, &[]);
        let mut ctx = Ctx::new();
        let st = SpecState::fresh(&mut ctx, &shapes, hk_abi::KernelParams::verification());
        let n = ctx.var("n", Sort::Bv(64));
        let f = module.func("f").unwrap();
        let r = sym_exec(&mut ctx, &module, f, &[n], st, &SymxConfig::default()).unwrap();
        // 2 invalid paths (n<0, n>4) + 5 loop-count paths (0..=4).
        assert_eq!(r.paths.len(), 7);
    }

    #[test]
    fn exported_loop_bounds_replace_solver_probes() {
        // Same shape as `symbolic_bound_forks_linearly`, but executed with
        // the loop bounds the static analysis proves. With a conflict
        // budget of 0 the legacy feasibility probes are useless (Unknown
        // is treated as feasible); the proven bounds alone must both
        // permit unrolling and stop it at the bound.
        let src = "i64 f(i64 n) { i64 s = 0; i64 i; if (n < 0 || n > 4) { return 0 - 1; } for (i = 0; i < n; i = i + 1) { s = s + 2; } return s; }";
        let (module, shapes) = compile(src, &[]);
        let f = module.func("f").unwrap();
        let analysis =
            hk_hir::analysis::analyze_module(&module, &[f], &hk_hir::AnalysisConfig::default());
        assert!(!analysis.has_findings(), "{:?}", analysis.diagnostics);
        assert!(!analysis.bounds.is_empty());
        let mut ctx = Ctx::new();
        let st = SpecState::fresh(&mut ctx, &shapes, hk_abi::KernelParams::verification());
        let n = ctx.var("n", Sort::Bv(64));
        let cfg = SymxConfig {
            max_instructions: 100_000,
            max_paths: 64,
            prune_conflict_budget: 0,
        };
        let r =
            sym_exec_bounded(&mut ctx, &module, f, &[n], st, &cfg, Some(&analysis.bounds)).unwrap();
        // 2 invalid paths (n<0, n>4) + 5 loop-count paths (0..=4).
        assert_eq!(r.paths.len(), 7);
    }

    #[test]
    fn divergent_loop_exhausts_budget() {
        let src = "i64 f(i64 x) { while (x != 0) { x = x + 0; } return 0; }";
        let (module, shapes) = compile(src, &[]);
        let mut ctx = Ctx::new();
        let st = SpecState::fresh(&mut ctx, &shapes, hk_abi::KernelParams::verification());
        let x = ctx.var("x", Sort::Bv(64));
        let f = module.func("f").unwrap();
        let cfg = SymxConfig {
            max_instructions: 5_000,
            max_paths: 64,
            prune_conflict_budget: 1_000,
        };
        let err = sym_exec(&mut ctx, &module, f, &[x], st, &cfg).unwrap_err();
        assert!(
            matches!(err, SymxError::BudgetExhausted { .. })
                || matches!(err, SymxError::PathExplosion { .. })
        );
    }

    #[test]
    fn ub_side_checks_emitted() {
        let src = "i64 f(i64 x, i64 y) { return x / y + (x << y); }";
        let (module, shapes) = compile(src, &[]);
        let mut ctx = Ctx::new();
        let st = SpecState::fresh(&mut ctx, &shapes, hk_abi::KernelParams::verification());
        let x = ctx.var("x", Sort::Bv(64));
        let y = ctx.var("y", Sort::Bv(64));
        let f = module.func("f").unwrap();
        let r = sym_exec(&mut ctx, &module, f, &[x, y], st, &SymxConfig::default()).unwrap();
        assert_eq!(r.side_checks.len(), 2);
        assert!(r.side_checks.iter().any(|c| c.kind.contains("division")));
        assert!(r.side_checks.iter().any(|c| c.kind.contains("shift")));
    }

    #[test]
    fn memory_reads_track_writes() {
        let src = "i64 f(i64 i, i64 v) { table[i] = v; return table[i] + table[0]; }";
        let (module, shapes) = compile(src, &[("table", 8, 1)]);
        let mut ctx = Ctx::new();
        let st = SpecState::fresh(&mut ctx, &shapes, hk_abi::KernelParams::verification());
        let i = ctx.var("i", Sort::Bv(64));
        let v = ctx.var("v", Sort::Bv(64));
        let f = module.func("f").unwrap();
        let r = sym_exec(&mut ctx, &module, f, &[i, v], st, &SymxConfig::default()).unwrap();
        assert_eq!(r.paths.len(), 1);
        // Bounds side checks for the three accesses exist (i unconstrained)
        // — the constant index 0 should NOT produce one.
        assert_eq!(r.side_checks.len(), 2);
        // Evaluate: i=3, v=10, base table = 7 everywhere.
        let mut asg = Assignment::new();
        asg.set_var(var_id(&ctx, i), Value::Bv(3));
        asg.set_var(var_id(&ctx, v), Value::Bv(10));
        let base = r.state.map("table", "value").base;
        asg.func_mut(base).default = 7;
        // table[3] = 10; ret = 10 + table[0] = 17.
        assert_eq!(hk_smt::eval::eval_bv(&ctx, r.paths[0].ret, &asg), 17);
    }

    #[test]
    fn helper_calls_inline() {
        let src = r#"
            i64 helper(i64 x) { if (x > 10) { return 1; } return 0; }
            i64 f(i64 x) { if (helper(x) == 1) { return 100; } return 200; }
        "#;
        let (module, shapes) = compile(src, &[]);
        let mut ctx = Ctx::new();
        let st = SpecState::fresh(&mut ctx, &shapes, hk_abi::KernelParams::verification());
        let x = ctx.var("x", Sort::Bv(64));
        let f = module.func("f").unwrap();
        let r = sym_exec(&mut ctx, &module, f, &[x], st, &SymxConfig::default()).unwrap();
        // helper forks 2 paths; the comparison in f is then constant per
        // path, so 2 total.
        assert_eq!(r.paths.len(), 2);
    }
}
