//! Trusted kernel initialization (paper §5: validated by the boot
//! checker rather than verified).
//!
//! Boot establishes the initial state the two theorems assume: the
//! representation invariant holds, `init` (PID 1) is running with its
//! three pages (page-table root, HVM, stack), every other page is free
//! and threaded on the free list, and all tables are empty.

use hk_abi::{page_type, proc_state, INIT_PID, PARENT_NONE};
use hk_vm::Machine;

use crate::dispatch::Kernel;

/// Page number of init's page-table root.
pub const INIT_PML4_PN: u64 = 0;
/// Page number of init's HVM page.
pub const INIT_HVM_PN: u64 = 1;
/// Page number of init's stack page.
pub const INIT_STACK_PN: u64 = 2;

/// Initializes kernel state in machine memory.
///
/// Physical memory is zeroed at construction, so boot only writes the
/// non-zero facts.
pub fn boot(kernel: &Kernel, machine: &mut Machine) {
    let params = kernel.image.params;
    let w = |m: &mut Machine, g: &str, i: u64, f: &str, s: u64, v: i64| {
        kernel.write_global(m, g, i, f, s, v);
    };
    // Scalars.
    w(machine, "current", 0, "value", 0, INIT_PID);
    w(machine, "uptime", 0, "value", 0, 0);
    // Page metadata: init's three pages, then the free list.
    let init_pages = [
        (INIT_PML4_PN, page_type::PML4),
        (INIT_HVM_PN, page_type::HVM),
        (INIT_STACK_PN, page_type::STACK),
    ];
    for (pn, ty) in init_pages {
        w(machine, "page_desc", pn, "ty", 0, ty);
        w(machine, "page_desc", pn, "owner", 0, INIT_PID);
        w(machine, "page_desc", pn, "parent_pn", 0, PARENT_NONE);
        w(machine, "page_desc", pn, "parent_idx", 0, PARENT_NONE);
        w(machine, "page_desc", pn, "devid", 0, PARENT_NONE);
        w(machine, "page_desc", pn, "free_next", 0, PARENT_NONE);
        w(machine, "page_desc", pn, "free_prev", 0, PARENT_NONE);
    }
    let first_free = 3;
    w(machine, "freelist_head", 0, "value", 0, first_free);
    for pn in first_free as u64..params.nr_pages {
        w(machine, "page_desc", pn, "ty", 0, page_type::FREE);
        w(machine, "page_desc", pn, "owner", 0, 0);
        w(machine, "page_desc", pn, "parent_pn", 0, PARENT_NONE);
        w(machine, "page_desc", pn, "parent_idx", 0, PARENT_NONE);
        w(machine, "page_desc", pn, "devid", 0, PARENT_NONE);
        let next = if pn + 1 < params.nr_pages {
            (pn + 1) as i64
        } else {
            PARENT_NONE
        };
        let prev = if pn > first_free as u64 {
            (pn - 1) as i64
        } else {
            PARENT_NONE
        };
        w(machine, "page_desc", pn, "free_next", 0, next);
        w(machine, "page_desc", pn, "free_prev", 0, prev);
    }
    // Process table.
    for pid in 0..params.nr_procs {
        for fd in 0..params.nr_fds {
            w(machine, "procs", pid, "ofile", fd, params.nr_files as i64);
        }
        w(machine, "procs", pid, "ipc_page", 0, PARENT_NONE);
        w(machine, "procs", pid, "ipc_fd", 0, PARENT_NONE);
        w(machine, "procs", pid, "ready_next", 0, PARENT_NONE);
        w(machine, "procs", pid, "ready_prev", 0, PARENT_NONE);
    }
    let init = INIT_PID as u64;
    w(machine, "procs", init, "state", 0, proc_state::RUNNING);
    w(machine, "procs", init, "pml4", 0, INIT_PML4_PN as i64);
    w(machine, "procs", init, "hvm", 0, INIT_HVM_PN as i64);
    w(machine, "procs", init, "stack_pn", 0, INIT_STACK_PN as i64);
    w(machine, "procs", init, "nr_pages", 0, 3);
    w(machine, "procs", init, "ready_next", 0, INIT_PID);
    w(machine, "procs", init, "ready_prev", 0, INIT_PID);
    // Devices and remapping tables.
    for d in 0..params.nr_devs {
        w(machine, "devs", d, "root", 0, hk_abi::DEV_ROOT_NONE);
    }
    for i in 0..params.nr_intremaps {
        w(machine, "intremaps", i, "devid", 0, PARENT_NONE);
        w(machine, "intremaps", i, "vector", 0, PARENT_NONE);
    }
    for d in 0..params.nr_dmapages {
        w(machine, "dma_desc", d, "cpu_parent_pn", 0, PARENT_NONE);
        w(machine, "dma_desc", d, "cpu_parent_idx", 0, PARENT_NONE);
        w(machine, "dma_desc", d, "io_parent_pn", 0, PARENT_NONE);
        w(machine, "dma_desc", d, "io_parent_idx", 0, PARENT_NONE);
    }
    // Hardware glue: init runs on its (empty) page table.
    machine.set_cr3(INIT_PML4_PN);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_abi::KernelParams;
    use hk_vm::CostModel;

    #[test]
    fn boot_satisfies_rep_invariant() {
        for params in [KernelParams::verification(), KernelParams::production()] {
            let kernel = Kernel::new(params).unwrap();
            let mut machine = kernel.new_machine(CostModel::default_model());
            boot(&kernel, &mut machine);
            assert!(
                kernel.check_invariant(&mut machine).unwrap(),
                "boot state must satisfy check_rep_invariant ({params:?})"
            );
        }
    }

    #[test]
    fn boot_state_shape() {
        let params = KernelParams::verification();
        let kernel = Kernel::new(params).unwrap();
        let mut machine = kernel.new_machine(CostModel::default_model());
        boot(&kernel, &mut machine);
        assert_eq!(kernel.current(&machine), INIT_PID);
        assert_eq!(
            kernel.read_global(&machine, "procs", 1, "state", 0),
            hk_abi::proc_state::RUNNING
        );
        assert_eq!(kernel.read_global(&machine, "procs", 1, "nr_pages", 0), 3);
        assert_eq!(
            kernel.read_global(&machine, "page_desc", 0, "ty", 0),
            hk_abi::page_type::PML4
        );
        assert_eq!(
            kernel.read_global(&machine, "freelist_head", 0, "value", 0),
            3
        );
        // Free list is well linked.
        assert_eq!(
            kernel.read_global(&machine, "page_desc", 3, "free_next", 0),
            4
        );
        assert_eq!(
            kernel.read_global(&machine, "page_desc", params.nr_pages - 1, "free_next", 0),
            PARENT_NONE
        );
    }
}
