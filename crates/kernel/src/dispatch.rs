//! The kernel object: compiled image + placement + the (trusted) trap
//! dispatch glue.
//!
//! Dispatch is the analogue of the paper's unverified assembly glue: it
//! invokes the verified HIR handler, then mirrors kernel state into the
//! hardware registers the handler cannot touch directly — the guest CR3,
//! the IOMMU device table, TLB invalidations, and the console. The
//! handlers themselves are interpreted HIR: the verified artifact is the
//! executed artifact.

use hk_abi::{KernelParams, Sysno};
use hk_hir::{ExecError, Interp};
use hk_vm::{CostModel, Machine};

use crate::image::KernelImage;
use crate::mem::{KernelLayout, MachineMem};

/// A built kernel, ready to run on a machine.
#[derive(Debug)]
pub struct Kernel {
    /// The compiled image.
    pub image: KernelImage,
    /// Physical placement of globals.
    pub layout: KernelLayout,
}

impl Kernel {
    /// Compiles and lays out a kernel.
    ///
    /// # Errors
    ///
    /// Propagates compilation/check failures from [`KernelImage::build`].
    pub fn new(params: KernelParams) -> Result<Kernel, String> {
        let image = KernelImage::build(params)?;
        let layout = KernelLayout::new(&image.module);
        Ok(Kernel { image, layout })
    }

    /// Creates a machine sized for this kernel.
    pub fn new_machine(&self, cost: CostModel) -> Machine {
        Machine::new(self.image.params, self.layout.kernel_words, cost)
    }

    /// Instruction budget per trap: generous, but finite — a handler that
    /// exceeds it has a finiteness bug.
    pub fn trap_fuel(&self) -> u64 {
        100_000 + 200 * self.image.params.page_words
    }

    /// Reads one word of kernel state from machine memory.
    pub fn read_global(
        &self,
        machine: &Machine,
        global: &str,
        index: u64,
        field: &str,
        sub: u64,
    ) -> i64 {
        let g = self.image.module.global(global).expect("unknown global");
        let f = self
            .image
            .module
            .global_decl(g)
            .field(field)
            .expect("unknown field");
        let addr = self.layout.addr(
            &self.image.module,
            hk_hir::interp::Addr {
                global: g,
                index,
                field: f,
                sub,
            },
        );
        machine.phys.read(addr)
    }

    /// Writes one word of kernel state (trusted boot/test use only).
    pub fn write_global(
        &self,
        machine: &mut Machine,
        global: &str,
        index: u64,
        field: &str,
        sub: u64,
        val: i64,
    ) {
        let g = self.image.module.global(global).expect("unknown global");
        let f = self
            .image
            .module
            .global_decl(g)
            .field(field)
            .expect("unknown field");
        let addr = self.layout.addr(
            &self.image.module,
            hk_hir::interp::Addr {
                global: g,
                index,
                field: f,
                sub,
            },
        );
        machine.phys.write(addr, val);
    }

    /// The PID of the running process.
    pub fn current(&self, machine: &Machine) -> i64 {
        self.read_global(machine, "current", 0, "value", 0)
    }

    /// Dispatches one trap: runs the verified handler and applies the
    /// hardware glue. Returns the handler's return value.
    ///
    /// # Errors
    ///
    /// Returns the interpreter error if the handler hit undefined
    /// behaviour or ran out of fuel — impossible for a verified build,
    /// observable in the bug-injection experiments.
    pub fn trap(
        &self,
        machine: &mut Machine,
        sysno: Sysno,
        args: &[i64],
    ) -> Result<i64, ExecError> {
        assert_eq!(args.len(), sysno.arg_count(), "{sysno} arity");
        let func = self.image.handler(sysno);
        let interp = Interp::new(&self.image.module);
        let (ret, executed) = {
            let mut mem = MachineMem {
                phys: &mut machine.phys,
                layout: &self.layout,
            };
            interp.call_counting(&mut mem, func, args, self.trap_fuel())?
        };
        machine.charge_kernel_work(executed);
        self.post_trap_glue(machine, sysno, ret);
        Ok(ret)
    }

    /// Hardware mirroring after a handler runs.
    fn post_trap_glue(&self, machine: &mut Machine, sysno: Sysno, ret: i64) {
        // Guest CR3 follows the current process's page-table root.
        let current = self.current(machine);
        if current >= 0 && (current as u64) < self.image.params.nr_procs {
            let pml4 = self.read_global(machine, "procs", current as u64, "pml4", 0);
            if pml4 >= 0 && (pml4 as u64) < self.image.params.nr_pages {
                machine.set_cr3(pml4 as u64);
            }
        }
        // Mapping-revoking calls invalidate the TLB.
        if ret >= 0 {
            match sysno {
                Sysno::ProtectFrame
                | Sysno::FreePdpt
                | Sysno::FreePd
                | Sysno::FreePt
                | Sysno::FreeFrame
                | Sysno::ReclaimPage => machine.flush_tlb(),
                _ => {}
            }
        }
        // The IOMMU device table mirrors the verified `devs` table.
        match sysno {
            Sysno::AllocIommuRoot | Sysno::FreeIommuRoot | Sysno::ReclaimPage => {
                for dev in 0..self.image.params.nr_devs {
                    let root = self.read_global(machine, "devs", dev, "root", 0);
                    let mirrored = if root >= 0 { Some(root as u64) } else { None };
                    machine.iommu.set_root(dev, mirrored);
                }
            }
            _ => {}
        }
        // Debug console.
        if sysno == Sysno::TrapDebugPrint && ret >= 0 {
            machine.console.putc(ret);
        }
    }

    /// Runs the kernel's own `check_rep_invariant` on the live state —
    /// the boot checker's core (paper §5).
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn check_invariant(&self, machine: &mut Machine) -> Result<bool, ExecError> {
        let interp = Interp::new(&self.image.module);
        let mut mem = MachineMem {
            phys: &mut machine.phys,
            layout: &self.layout,
        };
        let ret = interp.call(&mut mem, self.image.rep_invariant, &[], 10_000_000)?;
        Ok(ret == 1)
    }
}
