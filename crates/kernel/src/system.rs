//! The running system: machine + kernel + user processes.
//!
//! User programs are Rust actors driven by a cooperative scheduler that
//! plays the role of "the CPU executing guest code": it always executes
//! the process the kernel's `current` points at, delivers device
//! interrupts as `trap_irq` VM exits, and fires the preemption timer as
//! `trap_timer`. Actors interact with the world only through
//! [`GuestEnv`]: guest-virtual memory accesses (translated by the real
//! page tables their own hypercalls built) and hypercalls into the
//! verified kernel.
//!
//! Actors must be written in a poll style: a blocked operation (e.g. an
//! empty pipe) returns [`Poll::Pending`] and is retried on the next
//! slice. This is how the repository expresses "user space retries" —
//! the kernel interface itself is all-or-error (finite).

use std::collections::HashMap;

use hk_abi::{proc_state, Sysno};
use hk_vm::paging::PageFault;
use hk_vm::{CostModel, Machine};

use crate::boot;
use crate::dispatch::Kernel;

/// Result of polling an actor once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// Made progress; poll again when scheduled.
    Ready,
    /// Waiting for something (message, pipe space, interrupt).
    Pending,
    /// The actor is done; it should already have killed its process.
    Exited,
}

/// A user program.
pub trait GuestProg {
    /// Runs one slice of the program.
    fn poll(&mut self, env: &mut GuestEnv<'_>) -> Poll;
}

/// Why [`System::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// No actor can make progress and no interrupts are pending.
    Idle,
    /// The current process is not runnable and no successor exists
    /// (machine halted, e.g. init died).
    Halted,
    /// The poll budget was exhausted.
    Budget,
    /// All actors have exited.
    AllExited,
}

/// The environment a guest program runs in.
pub struct GuestEnv<'a> {
    /// The process id this actor runs as.
    pub pid: i64,
    kernel: &'a Kernel,
    /// The machine (public for cycle accounting in benchmarks).
    pub machine: &'a mut Machine,
    new_actors: &'a mut Vec<(i64, Box<dyn GuestProg>)>,
}

impl GuestEnv<'_> {
    /// Issues a hypercall: a full guest->root->guest round trip into the
    /// verified kernel.
    ///
    /// # Panics
    ///
    /// Panics if the kernel reports undefined behaviour (impossible for
    /// a verified kernel image) or if this actor is not `current`.
    pub fn hypercall(&mut self, sysno: Sysno, args: &[i64]) -> i64 {
        assert!(
            !sysno.is_trap() || sysno == Sysno::TrapDebugPrint,
            "guests cannot invoke {sysno} directly"
        );
        assert_eq!(
            self.kernel.current(self.machine),
            self.pid,
            "actor {} issued a hypercall while not current",
            self.pid
        );
        self.machine.charge_hypercall_roundtrip();
        self.kernel
            .trap(self.machine, sysno, args)
            .unwrap_or_else(|e| panic!("kernel trap failed: {e}"))
    }

    /// Reads guest-virtual memory through this process's page table.
    /// On a fault the cost of direct user-space exception delivery is
    /// charged (paper §4.1: the kernel is not involved).
    pub fn read(&mut self, va: u64) -> Result<i64, PageFault> {
        self.machine.guest_read(va).inspect_err(|_| {
            self.machine.charge_fault_direct_user();
        })
    }

    /// Writes guest-virtual memory; fault handling as in [`GuestEnv::read`].
    pub fn write(&mut self, va: u64, val: i64) -> Result<(), PageFault> {
        self.machine.guest_write(va, val).inspect_err(|_| {
            self.machine.charge_fault_direct_user();
        })
    }

    /// Writes one byte to the debug console.
    pub fn putc(&mut self, c: u8) {
        self.hypercall(Sysno::TrapDebugPrint, &[c as i64]);
    }

    /// Writes a string to the debug console.
    pub fn print(&mut self, s: &str) {
        for b in s.bytes() {
            self.putc(b);
        }
    }

    /// Registers the actor for a process this actor created (the
    /// "program image" half of process creation; the kernel half is
    /// `sys_clone_proc` + `sys_set_runnable`).
    pub fn register_actor(&mut self, pid: i64, prog: Box<dyn GuestProg>) {
        self.new_actors.push((pid, prog));
    }

    /// The message registers delivered by the last IPC wake-up, read
    /// from this process's HVM page: `(value, size, sender, got_fd)`.
    pub fn ipc_regs(&self) -> (i64, i64, i64, bool) {
        let hvm = self
            .kernel
            .read_global(self.machine, "procs", self.pid as u64, "hvm", 0);
        let r = |i: u64| {
            self.kernel
                .read_global(self.machine, "pages", hvm as u64, "word", i)
        };
        (r(0), r(1), r(2), r(3) != 0)
    }

    /// This process's state as the kernel sees it.
    pub fn my_state(&self) -> i64 {
        self.proc_field("state")
    }

    /// A field of this process's own process-table entry (pml4, hvm,
    /// ipc_from, ... — the read-only self-knowledge a real process gets
    /// from its mapped process structure).
    pub fn proc_field(&self, field: &str) -> i64 {
        self.kernel
            .read_global(self.machine, "procs", self.pid as u64, field, 0)
    }

    /// Reads message register `i` from this process's HVM page.
    pub fn hvm_reg(&self, i: u64) -> i64 {
        let hvm = self.proc_field("hvm");
        self.kernel
            .read_global(self.machine, "pages", hvm as u64, "word", i)
    }

    /// Clears message register `i` (used to tell a fresh IPC wake-up
    /// from a spurious schedule).
    pub fn clear_hvm_reg(&mut self, i: u64) {
        let hvm = self.proc_field("hvm");
        self.kernel
            .write_global(self.machine, "pages", hvm as u64, "word", i, 0);
    }

    /// Reads a word from a RAM page's contents by page number (used by
    /// actors to inspect pages they own without a guest mapping).
    pub fn page_word(&self, pn: i64, idx: u64) -> i64 {
        self.kernel
            .read_global(self.machine, "pages", pn as u64, "word", idx)
    }

    /// Writes a word into a RAM page the actor owns.
    ///
    /// # Panics
    ///
    /// Panics if the page is not owned by this process — actors may only
    /// touch their own pages (the harness-level analogue of the paging
    /// isolation the kernel enforces for mapped accesses).
    pub fn set_page_word(&mut self, pn: i64, idx: u64, val: i64) {
        let owner = self
            .kernel
            .read_global(self.machine, "page_desc", pn as u64, "owner", 0);
        assert_eq!(owner, self.pid, "page {pn} not owned by {}", self.pid);
        self.kernel
            .write_global(self.machine, "pages", pn as u64, "word", idx, val);
    }
}

/// The whole system.
pub struct System {
    /// The kernel.
    pub kernel: Kernel,
    /// The machine.
    pub machine: Machine,
    actors: HashMap<i64, Box<dyn GuestProg>>,
    /// Guest memory operations per scheduling quantum (0 disables the
    /// preemption timer).
    pub quantum: u64,
}

impl System {
    /// Builds, boots, and returns a system with no actors.
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to compile or the booted state fails
    /// the boot checker — both indicate kernel bugs.
    pub fn boot(params: hk_abi::KernelParams, cost: CostModel) -> System {
        let kernel = Kernel::new(params).expect("kernel build");
        let mut machine = kernel.new_machine(cost);
        boot::boot(&kernel, &mut machine);
        assert!(
            kernel.check_invariant(&mut machine).expect("invariant run"),
            "boot state violates the representation invariant"
        );
        System {
            kernel,
            machine,
            actors: HashMap::new(),
            quantum: 0,
        }
    }

    /// Installs the init actor (PID 1).
    pub fn set_init(&mut self, prog: Box<dyn GuestProg>) {
        self.actors.insert(hk_abi::INIT_PID, prog);
    }

    /// Installs an actor for an existing process.
    pub fn add_actor(&mut self, pid: i64, prog: Box<dyn GuestProg>) {
        self.actors.insert(pid, prog);
    }

    /// Dispatches any pending device interrupts as `trap_irq` VM exits.
    fn deliver_irqs(&mut self) {
        while let Some(v) = self.machine.take_irq() {
            self.machine.charge_hypercall_roundtrip();
            let _ = self
                .kernel
                .trap(&mut self.machine, Sysno::TrapIrq, &[v as i64]);
        }
    }

    /// Runs the scheduler for at most `max_polls` actor slices.
    pub fn run(&mut self, max_polls: u64) -> RunExit {
        let mut consecutive_pending = 0usize;
        for _ in 0..max_polls {
            self.deliver_irqs();
            let current = self.kernel.current(&self.machine);
            let state = self
                .kernel
                .read_global(&self.machine, "procs", current as u64, "state", 0);
            if state != proc_state::RUNNING {
                return RunExit::Halted;
            }
            let Some(mut actor) = self.actors.remove(&current) else {
                // A process with no actor (exited actor, zombie pending
                // reap): try to schedule around it.
                self.machine.charge_hypercall_roundtrip();
                let _ = self.kernel.trap(&mut self.machine, Sysno::TrapTimer, &[]);
                if self.kernel.current(&self.machine) == current {
                    return if self.actors.is_empty() {
                        RunExit::AllExited
                    } else {
                        RunExit::Idle
                    };
                }
                continue;
            };
            if self.quantum > 0 {
                self.machine.arm_timer(self.quantum);
            }
            let cycles_before = self.machine.cycles.total;
            let mut new_actors = Vec::new();
            let poll = {
                let mut env = GuestEnv {
                    pid: current,
                    kernel: &self.kernel,
                    machine: &mut self.machine,
                    new_actors: &mut new_actors,
                };
                actor.poll(&mut env)
            };
            for (pid, prog) in new_actors {
                self.actors.insert(pid, prog);
            }
            match poll {
                Poll::Exited => {
                    // Actor gone; its process should be zombie already.
                }
                _ => {
                    self.actors.insert(current, actor);
                }
            }
            // A poll that consumed machine cycles (hypercalls, guest
            // memory traffic) made progress even if the actor reported
            // Pending; only zero-activity slices count towards idleness.
            let active = self.machine.cycles.total != cycles_before;
            match poll {
                Poll::Ready => consecutive_pending = 0,
                Poll::Pending | Poll::Exited => {
                    if active {
                        consecutive_pending = 0;
                    } else {
                        consecutive_pending += 1;
                    }
                }
            }
            // Preemption: quantum expiry, an explicitly pending actor, or
            // an exited one hands the CPU onward via the timer — but only
            // if the actor did not already hand it off itself (via yield,
            // switch, recv, or reply_wait); firing the timer then would
            // immediately undo the handoff.
            let still_current = self.kernel.current(&self.machine) == current;
            let expired = self.quantum > 0 && self.machine.timer_expired();
            if still_current && (expired || poll != Poll::Ready) {
                self.machine.charge_hypercall_roundtrip();
                let _ = self.kernel.trap(&mut self.machine, Sysno::TrapTimer, &[]);
            }
            if self.actors.is_empty() {
                return RunExit::AllExited;
            }
            if consecutive_pending > 2 * self.actors.len() + 4 {
                return RunExit::Idle;
            }
        }
        RunExit::Budget
    }

    /// Console output so far.
    pub fn console_text(&self) -> String {
        self.machine.console.text()
    }
}
