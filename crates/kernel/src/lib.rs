//! The Hyperkernel: a finite-interface OS kernel whose 50 trap handlers
//! are written in HyperC, compiled to HIR, executed by the HIR
//! interpreter on the `hk-vm` machine — and verified against the
//! specifications in `hk-spec` by the push-button verifier in `hk-core`.
//!
//! Crate layout mirrors the paper's artifact:
//!
//! * [`layout`] — the kernel's global data structures and the constant
//!   environment (everything is fixed-size arrays, paper §4.1);
//! * [`analysis`] — the static-analysis configuration mirroring the
//!   representation invariant, consumed by the verifier's lint phase;
//! * `hyperc/*.hc` — the 50 trap handlers plus helpers and the
//!   representation invariant, in HyperC (the C analogue);
//! * [`image`] — compilation to HIR (the "kernel image");
//! * [`mem`] — physical placement of globals (identity-mapped root mode);
//! * [`boot`] — trusted initialization, validated by the boot checker;
//! * [`dispatch`] — trusted trap glue (CR3/IOMMU/TLB/console mirroring);
//! * [`system`] — the running OS: scheduler, guest actors, [`GuestEnv`].
//!
//! # Examples
//!
//! ```
//! use hk_abi::{KernelParams, Sysno};
//! use hk_kernel::{boot::boot, Kernel};
//! use hk_vm::CostModel;
//!
//! let kernel = Kernel::new(KernelParams::verification()).unwrap();
//! let mut machine = kernel.new_machine(CostModel::default_model());
//! boot(&kernel, &mut machine);
//! // init duplicates a descriptor... which it has not opened: rejected.
//! let ret = kernel.trap(&mut machine, Sysno::Dup, &[0, 1]).unwrap();
//! assert_eq!(ret, -hk_abi::EBADF);
//! ```

pub mod analysis;
pub mod boot;
pub mod dispatch;
pub mod image;
pub mod layout;
pub mod mem;
pub mod system;

pub use analysis::analysis_config;
pub use dispatch::Kernel;
pub use image::KernelImage;
pub use mem::KernelLayout;
pub use system::{GuestEnv, GuestProg, Poll, RunExit, System};
