//! Building the kernel image: compile all HyperC sources against the
//! parameterized layout, check module well-formedness (including the
//! no-recursion finiteness rule), and resolve the 50 handler entry
//! points.

use hk_abi::{KernelParams, Sysno};
use hk_hcc::Compiler;
use hk_hir::{FuncId, Module};

use crate::layout;

/// The HyperC translation units, compiled in dependency order.
/// Public so the bug-injection experiments can mutate individual files.
pub const SOURCES: &[(&str, &str)] = &[
    ("helpers.hc", include_str!("hyperc/helpers.hc")),
    ("proc.hc", include_str!("hyperc/proc.hc")),
    ("vm.hc", include_str!("hyperc/vm.hc")),
    ("fd.hc", include_str!("hyperc/fd.hc")),
    ("ipc.hc", include_str!("hyperc/ipc.hc")),
    ("sched.hc", include_str!("hyperc/sched.hc")),
    ("iommu.hc", include_str!("hyperc/iommu.hc")),
    ("intr.hc", include_str!("hyperc/intr.hc")),
    ("trap.hc", include_str!("hyperc/trap.hc")),
    ("repinv.hc", include_str!("hyperc/repinv.hc")),
];

/// A compiled kernel: the HIR module plus the handler table.
#[derive(Debug)]
pub struct KernelImage {
    /// Size parameters the image was compiled for.
    pub params: KernelParams,
    /// The compiled HIR module (globals + all functions).
    pub module: Module,
    handlers: Vec<FuncId>,
    /// Entry point of `check_rep_invariant`.
    pub rep_invariant: FuncId,
}

impl KernelImage {
    /// Compiles the kernel for the given parameters.
    ///
    /// # Errors
    ///
    /// Returns a description if compilation or module checking fails
    /// (which would indicate a bug in the kernel sources themselves).
    pub fn build(params: KernelParams) -> Result<KernelImage, String> {
        Self::build_with_sources(params, SOURCES.iter().map(|&(f, s)| (f, s.to_string())))
    }

    /// Compiles a kernel from explicit sources — the bug-injection
    /// experiments (paper §6.1 / Figure 7) compile deliberately broken
    /// variants of the stock sources and hand them to the verifier.
    pub fn build_with_sources(
        params: KernelParams,
        sources: impl IntoIterator<Item = (&'static str, String)>,
    ) -> Result<KernelImage, String> {
        assert!(params.validate(), "invalid kernel parameters");
        let mut module = Module::new();
        layout::declare_globals(&mut module, &params);
        let mut compiler = Compiler::new(&mut module);
        for (name, value) in layout::constants(&params) {
            compiler.define_const(name, value);
        }
        for (file, src) in sources {
            compiler
                .compile_named(file, &src)
                .map_err(|e| format!("{file}: {e}"))?;
        }
        let errors = hk_hir::verify::check_module(&module);
        if !errors.is_empty() {
            return Err(format!("module check failed: {}", errors.join("; ")));
        }
        let mut handlers = Vec::with_capacity(Sysno::COUNT);
        for sysno in Sysno::ALL {
            let f = module
                .func(sysno.func_name())
                .ok_or_else(|| format!("missing handler {}", sysno.func_name()))?;
            handlers.push(f);
        }
        let rep_invariant = module
            .func("check_rep_invariant")
            .ok_or("missing check_rep_invariant")?;
        Ok(KernelImage {
            params,
            module,
            handlers,
            rep_invariant,
        })
    }

    /// The HIR entry point of a trap handler.
    pub fn handler(&self, sysno: Sysno) -> FuncId {
        self.handlers[sysno.number() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_compiles_for_both_profiles() {
        for params in [KernelParams::verification(), KernelParams::production()] {
            let image = KernelImage::build(params).expect("kernel must compile");
            assert_eq!(image.params, params);
        }
    }

    #[test]
    fn all_handlers_have_expected_arity() {
        let image = KernelImage::build(KernelParams::verification()).unwrap();
        for sysno in Sysno::ALL {
            let f = image.module.func_def(image.handler(sysno));
            assert_eq!(
                f.num_params as usize,
                sysno.arg_count(),
                "{} arity mismatch",
                sysno.func_name()
            );
        }
    }

    #[test]
    fn scaled_parameters_compile() {
        let params = KernelParams::verification_scaled_pages(4);
        KernelImage::build(params).expect("scaled kernel must compile");
    }
}
