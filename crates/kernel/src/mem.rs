//! Placement of kernel globals in physical memory.
//!
//! The kernel runs identity-mapped in root mode (paper §4.1), so globals
//! live at fixed physical addresses: all metadata tables sit at the
//! bottom of memory (the kernel region of Figure 6), and the `pages`
//! global — the RAM page contents, including every page-table page the
//! hardware walker reads — *is* the RAM-pages region itself.
//!
//! The link checker (`hk-checkers`) validates that the resulting symbol
//! ranges are pairwise disjoint.

use hk_hir::{interp::Addr, MemBackend, Module};
use hk_vm::PhysMem;

/// Physical placement of every kernel global.
#[derive(Debug, Clone)]
pub struct KernelLayout {
    offsets: Vec<u64>,
    sizes: Vec<u64>,
    /// Words occupied by the kernel region (all globals except `pages`).
    pub kernel_words: u64,
    names: Vec<String>,
}

impl KernelLayout {
    /// Computes the placement for a compiled module.
    ///
    /// `pages` is placed at `kernel_words` — i.e. the RAM-pages region
    /// begins immediately after the kernel region, matching
    /// [`hk_vm::MemoryMap`] built with the same `kernel_words`.
    pub fn new(module: &Module) -> Self {
        let pages_id = module.global("pages").expect("kernel has a pages global");
        let mut offsets = vec![0u64; module.globals.len()];
        let mut sizes = vec![0u64; module.globals.len()];
        let mut names = Vec::with_capacity(module.globals.len());
        let mut off = 0;
        for (i, g) in module.globals.iter().enumerate() {
            sizes[i] = g.size_words();
            names.push(g.name.clone());
            if i == pages_id.0 as usize {
                continue; // placed after everything else
            }
            offsets[i] = off;
            off += g.size_words();
        }
        offsets[pages_id.0 as usize] = off;
        KernelLayout {
            offsets,
            sizes,
            kernel_words: off,
            names,
        }
    }

    /// Physical word address of a resolved global access.
    pub fn addr(&self, module: &Module, a: Addr) -> u64 {
        let g = module.global_decl(a.global);
        self.offsets[a.global.0 as usize] + a.index * g.stride() + g.field_offset(a.field) + a.sub
    }

    /// `(name, start, size)` for every global — the symbol table the link
    /// checker inspects.
    pub fn symbols(&self) -> Vec<(String, u64, u64)> {
        self.names
            .iter()
            .cloned()
            .zip(self.offsets.iter().copied())
            .zip(self.sizes.iter().copied())
            .map(|((n, o), s)| (n, o, s))
            .collect()
    }
}

/// A [`MemBackend`] that reads and writes the machine's physical memory
/// according to a [`KernelLayout`] — the identity mapping of root mode.
#[derive(Debug)]
pub struct MachineMem<'a> {
    /// Physical memory.
    pub phys: &'a mut PhysMem,
    /// Global placement.
    pub layout: &'a KernelLayout,
}

impl MemBackend for MachineMem<'_> {
    fn load(&mut self, module: &Module, addr: Addr) -> i64 {
        self.phys.read(self.layout.addr(module, addr))
    }

    fn store(&mut self, module: &Module, addr: Addr, val: i64) {
        let a = self.layout.addr(module, addr);
        self.phys.write(a, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_abi::KernelParams;

    #[test]
    fn pages_global_sits_at_pages_base() {
        let params = KernelParams::verification();
        let image = crate::image::KernelImage::build(params).unwrap();
        let layout = KernelLayout::new(&image.module);
        let pages = image.module.global("pages").unwrap();
        let a = layout.addr(
            &image.module,
            Addr {
                global: pages,
                index: 0,
                field: hk_hir::FieldId(0),
                sub: 0,
            },
        );
        assert_eq!(a, layout.kernel_words);
        // Page pn, word w lands at pages_base + pn*page_words + w.
        let a2 = layout.addr(
            &image.module,
            Addr {
                global: pages,
                index: 5,
                field: hk_hir::FieldId(0),
                sub: 3,
            },
        );
        assert_eq!(a2, layout.kernel_words + 5 * params.page_words + 3);
    }

    #[test]
    fn symbols_are_disjoint() {
        let params = KernelParams::verification();
        let image = crate::image::KernelImage::build(params).unwrap();
        let layout = KernelLayout::new(&image.module);
        let mut syms = layout.symbols();
        syms.sort_by_key(|(_, start, _)| *start);
        for w in syms.windows(2) {
            let (ref n1, s1, len1) = w[0];
            let (ref n2, s2, _) = w[1];
            assert!(s1 + len1 <= s2, "{n1} overlaps {n2}");
        }
    }
}
