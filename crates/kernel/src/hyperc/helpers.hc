// Shared helper routines for the Hyperkernel trap handlers.
//
// Conventions that keep symbolic execution cheap:
//  * validation predicates use bitwise `&` instead of `&&`, so they
//    compile to straight-line code and add no paths;
//  * loops are either constant-bound (page copies) or bounded by a
//    validated argument (data moves), so unrolling forks linearly.

// ---------------------------------------------------------------------
// Range predicates.
// ---------------------------------------------------------------------

i64 pid_valid(i64 pid) {
    return (pid >= 1) & (pid < NR_PROCS);
}

i64 page_valid(i64 pn) {
    return (pn >= 0) & (pn < NR_PAGES);
}

i64 pfn_valid(i64 pfn) {
    return (pfn >= 0) & (pfn < NR_PFNS);
}

i64 dma_valid(i64 d) {
    return (d >= 0) & (d < NR_DMAPAGES);
}

i64 idx_valid(i64 i) {
    return (i >= 0) & (i < PAGE_WORDS);
}

i64 fd_valid(i64 fd) {
    return (fd >= 0) & (fd < NR_FDS);
}

i64 file_valid(i64 f) {
    return (f >= 0) & (f < NR_FILES);
}

// A mapping permission must include PTE_P and contain no unknown bits.
i64 perm_valid(i64 perm) {
    return ((perm & PTE_P) != 0) & ((perm & ~PTE_PERM_MASK) == 0);
}

// Caller must have bounds-checked pid.
i64 is_current_or_embryo_child(i64 pid) {
    if (pid == current) {
        return 1;
    }
    return (procs[pid].state == PROC_EMBRYO) & (procs[pid].ppid == current);
}

// Caller must have bounds-checked pn.
i64 page_is_free(i64 pn) {
    return page_desc[pn].ty == PAGE_FREE;
}

// ---------------------------------------------------------------------
// Branch-free select: c must be 0 or 1; returns a when c, else b.
// Straight-line data-structure updates keep the symbolic executor on a
// single path (a conditional store becomes an unconditional store that
// rewrites the old value), which keeps verification tractable without
// changing any observable behavior.
// ---------------------------------------------------------------------

i64 blend(i64 c, i64 a, i64 b) {
    return b + (a - b) * c;
}

// ---------------------------------------------------------------------
// The free list of pages (suggestion-only; validated at use, §4.2).
// ---------------------------------------------------------------------

i64 freelist_remove(i64 pn) {
    i64 prev = page_desc[pn].free_prev;
    i64 next = page_desc[pn].free_next;
    i64 has_prev = prev != PARENT_NONE;
    i64 has_next = next != PARENT_NONE;
    i64 pslot = prev * has_prev;
    page_desc[pslot].free_next = blend(has_prev, next, page_desc[pslot].free_next);
    freelist_head = blend(has_prev, freelist_head, next);
    i64 nslot = next * has_next;
    page_desc[nslot].free_prev = blend(has_next, prev, page_desc[nslot].free_prev);
    page_desc[pn].free_next = PARENT_NONE;
    page_desc[pn].free_prev = PARENT_NONE;
    return 0;
}

i64 freelist_push(i64 pn) {
    i64 head = freelist_head;
    i64 has_head = head != PARENT_NONE;
    i64 hslot = head * has_head;
    page_desc[pn].free_next = head;
    page_desc[pn].free_prev = PARENT_NONE;
    page_desc[hslot].free_prev = blend(has_head, pn, page_desc[hslot].free_prev);
    freelist_head = pn;
    return 0;
}

// ---------------------------------------------------------------------
// Page contents.
// ---------------------------------------------------------------------

i64 page_zero(i64 pn) {
    i64 i;
    for (i = 0; i < PAGE_WORDS; i = i + 1) {
        pages[pn][i] = 0;
    }
    return 0;
}

i64 page_copy(i64 dst, i64 src) {
    i64 i;
    for (i = 0; i < PAGE_WORDS; i = i + 1) {
        pages[dst][i] = pages[src][i];
    }
    return 0;
}

// ---------------------------------------------------------------------
// Typed page allocation (§4.1 "typed pages").
// ---------------------------------------------------------------------

// Retypes a FREE page (validated by the caller) for `owner`.
i64 alloc_page_typed(i64 pn, i64 owner, i64 ty, i64 parent_pn, i64 parent_idx) {
    freelist_remove(pn);
    page_zero(pn);
    page_desc[pn].ty = ty;
    page_desc[pn].owner = owner;
    page_desc[pn].parent_pn = parent_pn;
    page_desc[pn].parent_idx = parent_idx;
    procs[owner].nr_pages = procs[owner].nr_pages + 1;
    return 0;
}

// Returns an owned page (validated by the caller) to the free list.
i64 free_page_owned(i64 pn) {
    i64 owner = page_desc[pn].owner;
    page_desc[pn].ty = PAGE_FREE;
    page_desc[pn].owner = PID_NONE;
    page_desc[pn].parent_pn = PARENT_NONE;
    page_desc[pn].parent_idx = PARENT_NONE;
    page_desc[pn].devid = PARENT_NONE;
    freelist_push(pn);
    procs[owner].nr_pages = procs[owner].nr_pages - 1;
    return 0;
}

// ---------------------------------------------------------------------
// The ready list of processes (suggestion-only; validated at use).
// ---------------------------------------------------------------------

// Inserts pid after current. Caller guarantees pid is not linked.
i64 ready_insert(i64 pid) {
    i64 next = procs[current].ready_next;
    procs[pid].ready_next = next;
    procs[pid].ready_prev = current;
    i64 in_rng = (next >= 0) & (next < NR_PROCS);
    i64 nslot = next * in_rng;
    procs[nslot].ready_prev = blend(in_rng, pid, procs[nslot].ready_prev);
    procs[current].ready_next = pid;
    return 0;
}

// Unlinks pid from the ready list (tolerates stale links).
i64 ready_remove(i64 pid) {
    i64 prev = procs[pid].ready_prev;
    i64 next = procs[pid].ready_next;
    i64 p_rng = (prev >= 0) & (prev < NR_PROCS);
    i64 pslot = prev * p_rng;
    procs[pslot].ready_next = blend(p_rng, next, procs[pslot].ready_next);
    i64 n_rng = (next >= 0) & (next < NR_PROCS);
    i64 nslot = next * n_rng;
    procs[nslot].ready_prev = blend(n_rng, prev, procs[nslot].ready_prev);
    procs[pid].ready_next = PARENT_NONE;
    procs[pid].ready_prev = PARENT_NONE;
    return 0;
}

// The expected parent page-table type for a child page type, or -1 for
// types that have no page-table parent (branch-free select chain).
i64 parent_type_for(i64 ty) {
    i64 r = 0 - 1;
    r = blend(ty == PAGE_PDPT, PAGE_PML4, r);
    r = blend(ty == PAGE_PD, PAGE_PDPT, r);
    r = blend(ty == PAGE_PT, PAGE_PD, r);
    r = blend(ty == PAGE_FRAME, PAGE_PT, r);
    r = blend(ty == PAGE_IOMMU_PDPT, PAGE_IOMMU_PML4, r);
    r = blend(ty == PAGE_IOMMU_PD, PAGE_IOMMU_PDPT, r);
    r = blend(ty == PAGE_IOMMU_PT, PAGE_IOMMU_PD, r);
    return r;
}
