// Non-syscall trap handlers: preemption timer, external interrupts,
// triple faults, debug output, and the unknown-hypercall fallback.
//
// Thanks to hardware virtualization, ordinary exceptions (page faults,
// GP faults) are delivered straight to user space through the guest IDT
// and never reach the kernel (paper §4.1); only these five events do.

// Preemption-timer VM exit: round-robin to the ready-list suggestion.
i64 trap_timer() {
    i64 cand;
    uptime = uptime + 1;
    cand = procs[current].ready_next;
    if ((cand >= 1) & (cand < NR_PROCS) & (cand != current)) {
        if (procs[cand].state == PROC_RUNNABLE) {
            if (procs[current].state == PROC_RUNNING) {
                procs[current].state = PROC_RUNNABLE;
            }
            procs[cand].state = PROC_RUNNING;
            current = cand;
        }
    }
    return 0;
}

// External interrupt: post the vector to the owning process's pending
// set; the owner collects it with sys_ack_intr.
i64 trap_irq(i64 v) {
    i64 o;
    if ((v < 0) | (v >= NR_VECTORS)) {
        return -EINVAL;
    }
    o = vectors[v].owner;
    if ((o < 1) | (o >= NR_PROCS)) {
        return -EINVAL; // unclaimed vector: spurious, dropped
    }
    procs[o].intr_pending = procs[o].intr_pending | (1 << v);
    return 0;
}

// A triple fault in guest mode kills the faulting process — the only
// exception the kernel itself must handle (paper §4.1).
i64 trap_triple_fault() {
    i64 cand;
    i64 succ = -1;
    cand = procs[current].ready_next;
    if ((cand >= 1) & (cand < NR_PROCS) & (cand != current)) {
        if (procs[cand].state == PROC_RUNNABLE) {
            succ = cand;
        }
    }
    if (succ == -1) {
        if (procs[INIT_PID].state == PROC_RUNNABLE) {
            succ = INIT_PID;
        }
    }
    if (procs[current].state == PROC_RUNNING) {
        ready_remove(current);
        procs[current].state = PROC_ZOMBIE;
    }
    if (succ != -1) {
        procs[succ].state = PROC_RUNNING;
        current = succ;
    }
    return 0;
}

// Debug console output; the dispatch glue forwards the returned byte to
// the console device.
i64 trap_debug_print(i64 val) {
    return val & 255;
}

// Unknown hypercall numbers land here — the kernel has no unverified
// default path.
i64 trap_invalid() {
    return -EINVAL;
}
