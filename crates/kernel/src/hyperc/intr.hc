// Interrupt-vector delegation and the interrupt remapping table.
//
// A process claims a vector, then installs remapping entries that route
// a device's interrupts to that vector. Both the device entry and the
// vector carry reference counts of the remapping entries using them, so
// neither can be reclaimed while a route still exists — the second
// lifetime-ordering bug class the paper's declarative layer caught
// (§6.1, interrupt remapping table).

i64 sys_alloc_vector(i64 v) {
    if ((v < 0) | (v >= NR_VECTORS)) {
        return -EINVAL;
    }
    if (vectors[v].owner != PID_NONE) {
        return -EBUSY;
    }
    vectors[v].owner = current;
    procs[current].nr_vectors = procs[current].nr_vectors + 1;
    return 0;
}

i64 sys_reclaim_vector(i64 v) {
    i64 o;
    if ((v < 0) | (v >= NR_VECTORS)) {
        return -EINVAL;
    }
    o = vectors[v].owner;
    if ((o < 1) | (o >= NR_PROCS)) {
        return -EINVAL;
    }
    if (o != current) {
        if (procs[o].state != PROC_ZOMBIE) {
            return -EPERM;
        }
    }
    if (vectors[v].intremap_refcnt != 0) {
        return -EBUSY;
    }
    vectors[v].owner = PID_NONE;
    procs[o].nr_vectors = procs[o].nr_vectors - 1;
    // Drop any pending delivery of the reclaimed vector.
    procs[o].intr_pending = procs[o].intr_pending & ~(1 << v);
    return 0;
}

i64 sys_alloc_intremap(i64 idx, i64 devid, i64 vector) {
    if ((idx < 0) | (idx >= NR_INTREMAPS)) {
        return -EINVAL;
    }
    if (intremaps[idx].state != INTREMAP_FREE) {
        return -EBUSY;
    }
    if ((devid < 0) | (devid >= NR_DEVS)) {
        return -ENODEV;
    }
    if (devs[devid].owner != current) {
        return -EPERM;
    }
    if ((vector < 0) | (vector >= NR_VECTORS)) {
        return -EINVAL;
    }
    if (vectors[vector].owner != current) {
        return -EPERM;
    }
    intremaps[idx].state = INTREMAP_ACTIVE;
    intremaps[idx].devid = devid;
    intremaps[idx].vector = vector;
    intremaps[idx].owner = current;
    devs[devid].intremap_refcnt = devs[devid].intremap_refcnt + 1;
    vectors[vector].intremap_refcnt = vectors[vector].intremap_refcnt + 1;
    procs[current].nr_intremaps = procs[current].nr_intremaps + 1;
    return 0;
}

i64 sys_reclaim_intremap(i64 idx) {
    i64 o;
    i64 d;
    i64 v;
    if ((idx < 0) | (idx >= NR_INTREMAPS)) {
        return -EINVAL;
    }
    if (intremaps[idx].state != INTREMAP_ACTIVE) {
        return -EINVAL;
    }
    o = intremaps[idx].owner;
    if ((o < 1) | (o >= NR_PROCS)) {
        return -EINVAL;
    }
    if (o != current) {
        if (procs[o].state != PROC_ZOMBIE) {
            return -EPERM;
        }
    }
    d = intremaps[idx].devid;
    v = intremaps[idx].vector;
    devs[d].intremap_refcnt = devs[d].intremap_refcnt - 1;
    vectors[v].intremap_refcnt = vectors[v].intremap_refcnt - 1;
    intremaps[idx].state = INTREMAP_FREE;
    intremaps[idx].devid = PARENT_NONE;
    intremaps[idx].vector = PARENT_NONE;
    intremaps[idx].owner = PID_NONE;
    procs[o].nr_intremaps = procs[o].nr_intremaps - 1;
    return 0;
}
