// IOMMU device-table and page-table management, plus I/O port
// delegation (paper §4.2: "fine-grained system calls for managing IOMMU
// page tables, with similar isolation properties").
//
// A device is claimed by attaching an IOMMU page-table root to its
// device-table entry; DMA then resolves through a 4-level walk that can
// only end at DMA-region pages. The root page records which device
// references it (`devid`), so the entry must be invalidated before the
// root can be reclaimed — the ordering whose absence was one of the
// §6.1 bugs.

i64 sys_alloc_iommu_root(i64 devid, i64 pn) {
    if ((devid < 0) | (devid >= NR_DEVS)) {
        return -ENODEV;
    }
    if (devs[devid].owner != PID_NONE) {
        return -EBUSY;
    }
    if (page_valid(pn) == 0) {
        return -EINVAL;
    }
    if (page_is_free(pn) == 0) {
        return -ENOMEM;
    }
    alloc_page_typed(pn, current, PAGE_IOMMU_PML4, PARENT_NONE, PARENT_NONE);
    page_desc[pn].devid = devid;
    devs[devid].owner = current;
    devs[devid].root = pn;
    procs[current].nr_devs = procs[current].nr_devs + 1;
    return 0;
}

i64 sys_alloc_iommu_pdpt(i64 parent, i64 index, i64 child, i64 perm) {
    i64 r = check_alloc_table(current, parent, index, child, PAGE_IOMMU_PML4, perm);
    if (r != 0) {
        return r;
    }
    return do_alloc_table(current, parent, index, child, PAGE_IOMMU_PDPT, perm);
}

i64 sys_alloc_iommu_pd(i64 parent, i64 index, i64 child, i64 perm) {
    i64 r = check_alloc_table(current, parent, index, child, PAGE_IOMMU_PDPT, perm);
    if (r != 0) {
        return r;
    }
    return do_alloc_table(current, parent, index, child, PAGE_IOMMU_PD, perm);
}

i64 sys_alloc_iommu_pt(i64 parent, i64 index, i64 child, i64 perm) {
    i64 r = check_alloc_table(current, parent, index, child, PAGE_IOMMU_PD, perm);
    if (r != 0) {
        return r;
    }
    return do_alloc_table(current, parent, index, child, PAGE_IOMMU_PT, perm);
}

// Maps DMA page `d` at a leaf of an IOMMU page table. Only DMA pages can
// appear at IOMMU leaves — the kernel half of DMA isolation (the
// machine's protected-memory-region check is the hardware half).
i64 sys_alloc_iommu_frame(i64 pt, i64 index, i64 d, i64 perm) {
    i64 owner;
    if (page_valid(pt) == 0) {
        return -EINVAL;
    }
    if (page_desc[pt].ty != PAGE_IOMMU_PT) {
        return -EINVAL;
    }
    if (page_desc[pt].owner != current) {
        return -EPERM;
    }
    if (idx_valid(index) == 0) {
        return -EINVAL;
    }
    if ((pages[pt][index] & PTE_P) != 0) {
        return -EBUSY;
    }
    if (dma_valid(d) == 0) {
        return -EINVAL;
    }
    owner = dma_desc[d].owner;
    if ((owner != PID_NONE) & (owner != current)) {
        return -EPERM;
    }
    if (dma_desc[d].io_parent_pn != PARENT_NONE) {
        return -EBUSY;
    }
    if (perm_valid(perm) == 0) {
        return -EINVAL;
    }
    if (owner == PID_NONE) {
        dma_desc[d].owner = current;
        procs[current].nr_dmapages = procs[current].nr_dmapages + 1;
    }
    dma_desc[d].io_parent_pn = pt;
    dma_desc[d].io_parent_idx = index;
    pages[pt][index] = ((NR_PAGES + d) << PTE_PFN_SHIFT) | perm;
    return 0;
}

// Invalidates a device-table entry. Must precede reclaiming the root
// page (sys_reclaim_page enforces it through the devid backref) — the
// dangling-reference ordering of §6.1.
i64 sys_free_iommu_root(i64 devid, i64 pn) {
    i64 o;
    if ((devid < 0) | (devid >= NR_DEVS)) {
        return -ENODEV;
    }
    if (page_valid(pn) == 0) {
        return -EINVAL;
    }
    if (devs[devid].root != pn) {
        return -EINVAL;
    }
    o = devs[devid].owner;
    if ((o < 1) | (o >= NR_PROCS)) {
        return -EINVAL;
    }
    if (o != current) {
        if (procs[o].state != PROC_ZOMBIE) {
            return -EPERM;
        }
    }
    // Interrupt-remapping entries routing through this device must be
    // reclaimed first.
    if (devs[devid].intremap_refcnt != 0) {
        return -EBUSY;
    }
    devs[devid].owner = PID_NONE;
    devs[devid].root = DEV_ROOT_NONE;
    page_desc[pn].devid = PARENT_NONE;
    procs[o].nr_devs = procs[o].nr_devs - 1;
    return 0;
}

i64 sys_alloc_port(i64 port) {
    if ((port < 0) | (port >= NR_PORTS)) {
        return -EINVAL;
    }
    if (io_ports[port].owner != PID_NONE) {
        return -EBUSY;
    }
    io_ports[port].owner = current;
    procs[current].nr_ports = procs[current].nr_ports + 1;
    return 0;
}

i64 sys_reclaim_port(i64 port) {
    i64 o;
    if ((port < 0) | (port >= NR_PORTS)) {
        return -EINVAL;
    }
    o = io_ports[port].owner;
    if ((o < 1) | (o >= NR_PROCS)) {
        return -EINVAL;
    }
    if (o != current) {
        if (procs[o].state != PROC_ZOMBIE) {
            return -EPERM;
        }
    }
    io_ports[port].owner = PID_NONE;
    procs[o].nr_ports = procs[o].nr_ports - 1;
    return 0;
}
