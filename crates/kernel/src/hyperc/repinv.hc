// The representation invariant (paper §2.3).
//
// check_rep_invariant() is the kernel's statement of what "well-formed
// kernel state" means. The verifier proves every trap handler preserves
// it (Theorem 1); the boot checker (paper §5) executes it once on the
// freshly-booted state.
//
// Everything here is written with bitwise `&`/`|` — never `&&`/`||` —
// so the whole function is one straight-line path for the symbolic
// executor regardless of state.
//
// The invariant is deliberately *small* — bounds only: every index-like
// field stays inside its table, which is what discharges the verifier's
// out-of-bounds side checks. Richer consistency (reference counts equal
// what they count, exclusive ownership, ...) lives in the declarative
// layer and is checked over the state-machine spec by Theorem 2,
// matching the paper's split (its check_rep_invariant is 197 lines; the
// refcount discipline is §3.3's crosscutting properties).

i64 inv_range(i64 v, i64 lo, i64 hi) {
    return (v >= lo) & (v < hi);
}

// -1 or in [0, hi).
i64 inv_opt(i64 v, i64 hi) {
    return (v == PARENT_NONE) | ((v >= 0) & (v < hi));
}

i64 inv_proc_bounds(i64 p) {
    i64 ok = 1;
    i64 fd;
    ok = ok & inv_range(procs[p].state, 0, 6);
    ok = ok & inv_range(procs[p].ppid, 0, NR_PROCS);
    ok = ok & inv_range(procs[p].pml4, 0, NR_PAGES);
    ok = ok & inv_range(procs[p].hvm, 0, NR_PAGES);
    ok = ok & inv_range(procs[p].stack_pn, 0, NR_PAGES);
    for (fd = 0; fd < NR_FDS; fd = fd + 1) {
        ok = ok & inv_range(procs[p].ofile[fd], 0, NR_FILES + 1);
    }
    ok = ok & inv_range(procs[p].ipc_from, 0, NR_PROCS);
    ok = ok & inv_opt(procs[p].ipc_page, NR_PAGES);
    ok = ok & inv_opt(procs[p].ipc_fd, NR_FDS);
    ok = ok & inv_opt(procs[p].ready_next, NR_PROCS);
    ok = ok & inv_opt(procs[p].ready_prev, NR_PROCS);
    return ok;
}

i64 inv_files() {
    i64 ok = 1;
    i64 f;
    for (f = 0; f < NR_FILES; f = f + 1) {
        ok = ok & inv_range(files[f].ty, 0, 4);
        ok = ok & inv_range(files[f].omode, 0, 2);
        // Pipe handles index a real pipe slot.
        ok = ok & ((files[f].ty != FILE_PIPE) | inv_range(files[f].value, 0, NR_PIPES));
    }
    return ok;
}

i64 inv_pages() {
    i64 ok = 1;
    i64 pn;
    for (pn = 0; pn < NR_PAGES; pn = pn + 1) {
        ok = ok & inv_range(page_desc[pn].ty, 0, 13);
        ok = ok & inv_range(page_desc[pn].owner, 0, NR_PROCS);
        ok = ok & inv_opt(page_desc[pn].parent_pn, NR_PAGES);
        ok = ok & inv_opt(page_desc[pn].parent_idx, PAGE_WORDS);
        // A recorded parent slot is a usable slot.
        ok = ok
            & ((page_desc[pn].parent_pn == PARENT_NONE)
                | (page_desc[pn].parent_idx != PARENT_NONE));
        ok = ok & inv_opt(page_desc[pn].devid, NR_DEVS);
        ok = ok & inv_opt(page_desc[pn].free_next, NR_PAGES);
        ok = ok & inv_opt(page_desc[pn].free_prev, NR_PAGES);
    }
    return ok;
}

i64 inv_dma() {
    i64 ok = 1;
    i64 d;
    for (d = 0; d < NR_DMAPAGES; d = d + 1) {
        ok = ok & inv_range(dma_desc[d].owner, 0, NR_PROCS);
        ok = ok & inv_opt(dma_desc[d].cpu_parent_pn, NR_PAGES);
        ok = ok & inv_opt(dma_desc[d].cpu_parent_idx, PAGE_WORDS);
        ok = ok
            & ((dma_desc[d].cpu_parent_pn == PARENT_NONE)
                | (dma_desc[d].cpu_parent_idx != PARENT_NONE));
        ok = ok & inv_opt(dma_desc[d].io_parent_pn, NR_PAGES);
        ok = ok & inv_opt(dma_desc[d].io_parent_idx, PAGE_WORDS);
        ok = ok
            & ((dma_desc[d].io_parent_pn == PARENT_NONE)
                | (dma_desc[d].io_parent_idx != PARENT_NONE));
    }
    return ok;
}

i64 inv_devices() {
    i64 ok = 1;
    i64 i;
    for (i = 0; i < NR_DEVS; i = i + 1) {
        ok = ok & inv_range(devs[i].owner, 0, NR_PROCS);
        ok = ok & inv_opt(devs[i].root, NR_PAGES);
        // An attached device has an owner; a detached one has neither.
        ok = ok & ((devs[i].owner == PID_NONE) == (devs[i].root == DEV_ROOT_NONE));
    }
    for (i = 0; i < NR_VECTORS; i = i + 1) {
        ok = ok & inv_range(vectors[i].owner, 0, NR_PROCS);
    }
    for (i = 0; i < NR_PORTS; i = i + 1) {
        ok = ok & inv_range(io_ports[i].owner, 0, NR_PROCS);
    }
    for (i = 0; i < NR_INTREMAPS; i = i + 1) {
        ok = ok & inv_range(intremaps[i].state, 0, 2);
        ok = ok
            & ((intremaps[i].state != INTREMAP_ACTIVE)
                | (inv_range(intremaps[i].devid, 0, NR_DEVS)
                    & inv_range(intremaps[i].vector, 0, NR_VECTORS)
                    & inv_range(intremaps[i].owner, 1, NR_PROCS)));
    }
    return ok;
}

i64 inv_pipes() {
    i64 ok = 1;
    i64 p;
    for (p = 0; p < NR_PIPES; p = p + 1) {
        ok = ok & inv_range(pipes[p].readp, 0, PIPE_WORDS);
        ok = ok & inv_range(pipes[p].count, 0, PIPE_WORDS + 1);
    }
    return ok;
}

i64 check_rep_invariant() {
    i64 ok = 1;
    i64 p;
    ok = ok & inv_range(current, 1, NR_PROCS);
    ok = ok & inv_opt(freelist_head, NR_PAGES);
    for (p = 1; p < NR_PROCS; p = p + 1) {
        ok = ok & inv_proc_bounds(p);
    }
    ok = ok & inv_files();
    ok = ok & inv_pages();
    ok = ok & inv_dma();
    ok = ok & inv_devices();
    ok = ok & inv_pipes();
    return ok;
}
